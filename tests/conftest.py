"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make tests/_helpers.py importable from nested test packages.
sys.path.insert(0, str(Path(__file__).parent))

from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.cpu.numa import Machine


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def machine(sim: Simulator) -> Machine:
    return Machine(sim)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=42)
