"""Shared helpers for the test suite (imported via the conftest path hook)."""

from __future__ import annotations

#: Reduced measurement windows for tests: enough simulated time for rates
#: to stabilise, small enough to keep the suite fast.
FAST_WARMUP_NS = 200_000.0
FAST_MEASURE_NS = 800_000.0


def fast_throughput(build, switch_name, frame_size=64, **kwargs):
    """measure_throughput with the reduced test windows."""
    from repro.measure.throughput import measure_throughput

    return measure_throughput(
        build,
        switch_name,
        frame_size,
        warmup_ns=FAST_WARMUP_NS,
        measure_ns=FAST_MEASURE_NS,
        **kwargs,
    )


def full_throughput(build, switch_name, frame_size=64, **kwargs):
    """measure_throughput with the production default windows.

    Needed where transients are long relative to the fast windows: VALE's
    adaptive mega-batches on long chains, and t4p4s's long jitter episodes.
    """
    from repro.measure.throughput import measure_throughput

    return measure_throughput(build, switch_name, frame_size, **kwargs)
