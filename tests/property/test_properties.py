"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.core import units
from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.core.ring import Ring
from repro.core.stats import LatencySample, RunningStats
from repro.cpu.costmodel import Cost
from repro.switches.jitter import CostJitter

frame_sizes = st.integers(min_value=64, max_value=1518)
rates = st.floats(min_value=1e3, max_value=100e9, allow_nan=False)


class TestUnitsProperties:
    @given(frame_sizes)
    def test_wire_bytes_strictly_larger(self, size):
        assert units.wire_bytes(size) == size + 20

    @given(frame_sizes, st.floats(min_value=1.0, max_value=200e6))
    def test_pps_gbps_round_trip(self, size, pps):
        gbps = units.pps_to_gbps(pps, size)
        assert units.gbps_to_pps(gbps, size) == np.float64(pps) or math.isclose(
            units.gbps_to_pps(gbps, size), pps, rel_tol=1e-9
        )

    @given(frame_sizes)
    def test_line_rate_monotone_in_frame_size(self, size):
        if size < 1518:
            assert units.line_rate_pps(size) > units.line_rate_pps(size + 1)

    @given(frame_sizes)
    def test_line_rate_normalises_to_exactly_10g(self, size):
        assert units.pps_to_gbps(units.line_rate_pps(size), size) == math.isclose(
            units.pps_to_gbps(units.line_rate_pps(size), size), 10.0
        ) or math.isclose(units.pps_to_gbps(units.line_rate_pps(size), size), 10.0)

    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=1e8, max_value=5e9))
    def test_cycles_ns_inverse(self, cycles, freq):
        assert math.isclose(
            units.ns_to_cycles(units.cycles_to_ns(cycles, freq), freq),
            cycles,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=50))
    def test_events_always_fire_in_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(times)
        assert sim.events_executed == len(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0, max_value=1000),
    )
    def test_run_until_partitions_events(self, times, horizon):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run_until(horizon)
        assert fired == sorted(t for t in times if t <= horizon)
        assert sim.pending() == sum(1 for t in times if t > horizon)


class TestRingProperties:
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=200))
    def test_conservation(self, capacity, n):
        ring = Ring(capacity)
        accepted = ring.push_batch([Packet() for _ in range(n)])
        assert accepted == min(capacity, n)
        assert ring.dropped == n - accepted
        assert len(ring) == accepted
        popped = ring.pop_batch(n + 10)
        assert len(popped) == accepted
        assert len(ring) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=100))
    def test_fifo_through_interleaved_ops(self, ops):
        """Interleave pushes (positive counts) and pops; order preserved."""
        ring = Ring(10_000)
        pushed = []
        popped = []
        counter = 0
        for op in ops:
            if op % 2 == 0:
                packet = Packet(flow_id=counter)
                counter += 1
                ring.push(packet)
                pushed.append(packet.flow_id)
            else:
                popped.extend(p.flow_id for p in ring.pop_batch(op % 5))
        popped.extend(p.flow_id for p in ring.pop_batch(len(ring)))
        assert popped == pushed


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=200))
    def test_running_stats_matches_numpy(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert math.isclose(stats.mean, float(np.mean(values)), rel_tol=1e-6, abs_tol=1e-6)
        assert math.isclose(
            stats.std, float(np.std(values, ddof=1)), rel_tol=1e-6, abs_tol=1e-6
        )

    @given(
        st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentiles_match_numpy(self, values, q):
        sample = LatencySample()
        for value in values:
            sample.add(value)
        assert math.isclose(
            sample.percentile_us(q),
            float(np.percentile(values, q)) / 1e3,
            rel_tol=1e-6,
            abs_tol=1e-9,
        )

    @given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=100))
    def test_percentile_0_and_100_are_min_max(self, values):
        sample = LatencySample()
        for value in values:
            sample.add(value)
        assert math.isclose(sample.percentile_us(0), min(values) / 1e3, abs_tol=1e-9)
        assert math.isclose(sample.percentile_us(100), max(values) / 1e3, abs_tol=1e-9)


class TestCostProperties:
    costs = st.builds(
        Cost,
        per_batch=st.floats(min_value=0, max_value=1e4),
        per_packet=st.floats(min_value=0, max_value=1e4),
        per_byte=st.floats(min_value=0, max_value=10),
    )

    @given(costs, st.integers(min_value=1, max_value=256), st.integers(min_value=64, max_value=1518))
    def test_cost_monotone_in_packets(self, cost, n, size):
        assert cost.cycles(n + 1, (n + 1) * size) >= cost.cycles(n, n * size)

    @given(costs, costs, st.integers(min_value=1, max_value=256), st.integers(min_value=0, max_value=10**6))
    def test_addition_is_linear(self, a, b, n, total):
        assert math.isclose(
            (a + b).cycles(n, total), a.cycles(n, total) + b.cycles(n, total), rel_tol=1e-9
        )

    @given(costs, st.floats(min_value=1e-6, max_value=100), st.integers(min_value=1, max_value=64))
    def test_scaling_scales_cycles(self, cost, factor, n):
        assert math.isclose(
            cost.scaled(factor).cycles(n, n * 64),
            factor * cost.cycles(n, n * 64),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )

    @given(costs, st.integers(min_value=64, max_value=1518))
    def test_amortisation_decreases_with_batch(self, cost, size):
        assert cost.cycles_per_packet(size, 64) <= cost.cycles_per_packet(size, 1)


class TestJitterProperties:
    @settings(max_examples=25)
    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(min_value=0, max_value=2**31))
    def test_multiplier_positive(self, sigma, seed):
        jitter = CostJitter(np.random.default_rng(seed), sigma=sigma, period_ns=1.0)
        assert all(jitter.multiplier(float(t)) > 0 for t in range(100))

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.8))
    def test_reciprocal_mean_near_one(self, sigma):
        jitter = CostJitter(np.random.default_rng(7), sigma=sigma, period_ns=1.0)
        inverse = [1.0 / jitter.multiplier(float(t)) for t in range(60_000)]
        assert abs(float(np.mean(inverse)) - 1.0) < 0.08


class TestThroughputMonotonicity:
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([(64, 256), (256, 1024), (64, 1024)]))
    def test_analytic_capacity_decreases_with_frame_size(self, sizes):
        from repro.analysis.bottleneck import estimate

        small, large = sizes
        for name in ("vale", "t4p4s"):
            assert (
                estimate(name, "p2p", small).core_capacity_pps
                > estimate(name, "p2p", large).core_capacity_pps
            )

    @settings(max_examples=6, deadline=None)
    @given(st.floats(min_value=1.1, max_value=3.0))
    def test_scaling_all_costs_scales_capacity(self, factor):
        from dataclasses import replace

        from repro.analysis.bottleneck import estimate
        from repro.switches.params import VPP_PARAMS

        base = estimate("vpp", "p2p", 64).core_capacity_pps
        slowed = replace(
            VPP_PARAMS,
            proc=VPP_PARAMS.proc.scaled(factor),
            nic_rx=VPP_PARAMS.nic_rx.scaled(factor),
            nic_tx=VPP_PARAMS.nic_tx.scaled(factor),
        )
        scaled = estimate("vpp", "p2p", 64, params=slowed).core_capacity_pps
        assert math.isclose(scaled, base / factor, rel_tol=1e-9)


class TestBlockProperties:
    """Flyweight blocks: split/merge preserve the frame set and seq range."""

    @given(st.integers(min_value=2, max_value=512), st.data())
    def test_split_then_merge_round_trips(self, count, data):
        from repro.core.packet import PacketBlock

        block = PacketBlock(count=count, t_created=7.0)
        seq0 = block.seq0
        k = data.draw(st.integers(min_value=1, max_value=count - 1))
        front = block.split(k)
        assert (front.count, front.seq0) == (k, seq0)
        assert (block.count, block.seq0) == (count - k, seq0 + k)
        assert front.merge(block)
        assert (front.count, front.seq0) == (count, seq0)

    @given(st.integers(min_value=2, max_value=64), st.data())
    def test_split_partitions_the_materialized_frames(self, count, data):
        from repro.core.packet import PacketBlock

        block = PacketBlock(size=128, flow_id=2, count=count, hops=1)
        seq0 = block.seq0
        k = data.draw(st.integers(min_value=1, max_value=count - 1))
        front = block.split(k)
        seqs = [p.seq for p in front.materialize()] + [p.seq for p in block.materialize()]
        assert seqs == list(range(seq0, seq0 + count))


class TestRingFrameConservation:
    """Every frame pushed is either enqueued or counted as dropped."""

    @given(
        st.integers(min_value=1, max_value=128),
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=48), st.integers(min_value=0, max_value=64)),
            min_size=1,
            max_size=30,
        ),
    )
    def test_push_pop_conserves_frames(self, capacity, steps):
        from repro.core.packet import Packet, make_block

        ring = Ring(capacity)
        offered = 0
        popped = 0
        for push_count, pop_count in steps:
            item = Packet() if push_count == 1 else make_block(push_count, 64, 0.0)
            ring.push(item)
            offered += push_count
            batch = ring.pop_batch(pop_count)
            got = sum(i.count for i in batch)
            assert got <= pop_count
            popped += got
        assert offered == ring.enqueued + ring.dropped
        assert ring.enqueued == popped + len(ring)
        assert 0 <= len(ring) <= capacity

    @given(
        st.integers(min_value=4, max_value=64),
        st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=12),
    )
    def test_pop_returns_seqs_in_push_order(self, capacity, pushes):
        from repro.core.packet import make_block

        ring = Ring(capacity)
        for count in pushes:
            ring.push(make_block(count, 64, 0.0))
        drained = []
        while len(ring):
            for item in ring.pop_batch(5):
                drained.extend(range(item.seq0, item.seq0 + item.count))
        assert drained == sorted(drained)


class TestRingFaultStateProperties:
    """Frame conservation must survive arbitrary fault/restore interleavings.

    The fault layer swaps a ring's class (freeze/disconnect) and swaps it
    back; under any interleaving of pushes, pops and fault transitions,
    every offered frame must still be accounted for as enqueued, dropped
    or still queued -- and FIFO order must survive a freeze.

    Seeds are pinned so CI replays the exact example corpus.
    """

    #: push(n>0) / pop(n<0) / freeze(-1000) / disconnect(-2000) / restore(0)
    ops = st.lists(
        st.one_of(
            st.integers(min_value=1, max_value=32),     # push n frames
            st.integers(min_value=-40, max_value=-1),   # pop up to |n|
            st.sampled_from([-1000, -2000, 0]),         # fault transitions
        ),
        min_size=1,
        max_size=60,
    )

    @seed(20260806)
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=1, max_value=96), ops)
    def test_conservation_with_faults_active(self, capacity, ops):
        from repro.core.packet import Packet, make_block
        from repro.core.ring import disconnect_ring, freeze_ring, restore_ring

        ring = Ring(capacity)
        offered = 0
        popped = 0
        lost = 0  # in-flight frames a disconnect discards (it reports them)
        for op in ops:
            if op == 0:
                restore_ring(ring)
            elif op == -1000:
                restore_ring(ring)
                freeze_ring(ring)
            elif op == -2000:
                restore_ring(ring)
                lost += disconnect_ring(ring)
            elif op > 0:
                item = Packet() if op == 1 else make_block(op, 64, 0.0)
                ring.push(item)
                offered += op
            else:
                popped += sum(i.count for i in ring.pop_batch(-op))
        restore_ring(ring)
        assert offered == ring.enqueued + ring.dropped
        assert ring.enqueued == popped + len(ring) + lost
        assert 0 <= len(ring) <= ring.capacity

    @seed(20260806)
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=8, max_value=64),
        st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=10),
        st.data(),
    )
    def test_freeze_preserves_fifo_order(self, capacity, pushes, data):
        from repro.core.packet import make_block
        from repro.core.ring import freeze_ring, restore_ring

        ring = Ring(capacity)
        for count in pushes:
            ring.push(make_block(count, 64, 0.0))
            if data.draw(st.booleans()):
                freeze_ring(ring)
                assert ring.pop_batch(capacity) == []  # frozen: nothing moves
                restore_ring(ring)
        drained = []
        while len(ring):
            for item in ring.pop_batch(3):
                drained.extend(range(item.seq0, item.seq0 + item.count))
        assert drained == sorted(drained)


class TestBlockIntegrityUnderFaults:
    """Split/truncate invariants hold for blocks bounced off faulted rings."""

    @seed(20260806)
    @settings(max_examples=150, deadline=None)
    @given(
        st.integers(min_value=2, max_value=256),
        st.integers(min_value=1, max_value=300),
        st.data(),
    )
    def test_split_after_fault_round_trip_keeps_seq_range(self, count, cap, data):
        from repro.core.packet import make_block
        from repro.core.ring import disconnect_ring, restore_ring

        ring = Ring(cap)
        block = make_block(count, 64, 0.0)
        seq0, total = block.seq0, block.count

        bounced = make_block(5, 64, 0.0)  # dropped on the floor, released
        disconnect_ring(ring)
        assert ring.push(bounced) == 0
        restore_ring(ring)

        # The surviving block still splits into a clean seq partition.
        k = data.draw(st.integers(min_value=1, max_value=count - 1))
        front = block.split(k)
        assert front.count + block.count == total
        assert front.seq0 == seq0
        assert block.seq0 == seq0 + k
        assert front.seq0 + front.count == block.seq0


class TestWarpIdentityProperties:
    """The steady-state fast-forward is invisible in every observable.

    Property: for ANY (switch, traffic shape, seed) drawn here, driving
    the same testbed with warp off and warp on yields bit-identical full
    state fingerprints -- every counter, timestamp, stats accumulator
    and RNG state.  Configurations where the warp declines (probes,
    bidirectional, pipeline switches) satisfy this trivially, and that
    is the point: declining is a correct answer, diverging never is.
    """

    SWITCHES = ("ovs-dpdk", "vpp", "bess", "fastclick", "t4p4s", "snabb", "vale")
    CONFIGS = (
        ("saturating", {}),
        ("paced", {"rate_pps": 3_000_000.0}),
        ("probed", {"probe_interval_ns": 40_000.0}),
        ("bidi", {"bidirectional": True}),
    )

    @seed(20260806)
    @settings(max_examples=12, deadline=None)
    @given(
        st.sampled_from(SWITCHES),
        st.sampled_from(CONFIGS),
        st.integers(min_value=1, max_value=3),
    )
    def test_warp_never_changes_any_observable(self, switch, config, run_seed):
        from repro.core.warp import state_fingerprint
        from repro.measure.runner import drive
        from repro.scenarios import p2p

        label, kwargs = config
        results = []
        fingerprints = []
        for warp in (False, True):
            tb = p2p.build(switch, frame_size=64, seed=run_seed, **kwargs)
            result = drive(tb, warmup_ns=400_000.0, measure_ns=1_600_000.0, warp=warp)
            results.append(result)
            fingerprints.append(state_fingerprint(tb))
        assert fingerprints[0] == fingerprints[1], (switch, label, run_seed)
        off, on = results
        assert [repr(v) for v in off.per_direction_gbps] == [
            repr(v) for v in on.per_direction_gbps
        ]
        assert [repr(v) for v in off.per_direction_mpps] == [
            repr(v) for v in on.per_direction_mpps
        ]
        assert off.events == on.events

    @seed(20260807)
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(("ovs-dpdk", "vpp", "bess")), st.integers(min_value=1, max_value=5))
    def test_warp_engages_on_clean_p2p(self, switch, run_seed):
        """On the shapes warp targets, it must actually engage (a silent
        blanket decline would also pass the identity property)."""
        from repro.measure.runner import drive
        from repro.scenarios import p2p

        tb = p2p.build(switch, frame_size=64, rate_pps=3_000_000.0, seed=run_seed)
        result = drive(tb, warmup_ns=400_000.0, measure_ns=1_600_000.0, warp=True)
        assert result.warp is not None and result.warp.engaged, (
            switch,
            run_seed,
            result.warp.describe() if result.warp else None,
        )
