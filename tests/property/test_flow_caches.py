"""Property-based tests (hypothesis) for the capacity-bounded flow-cache
models (repro.flows + the per-switch caches they drive).

Invariants under arbitrary run-length flow traffic:

* occupancy never exceeds the configured capacity;
* hits + misses conserve the exact number of frames classified;
* eviction under a pinned seed is deterministic (same traffic, same
  counters -- the serial-vs-parallel campaign identity depends on it);
* block-fold classification equals per-run classification (the flyweight
  summary loses nothing the cache models care about).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Simulator
from repro.core.packet import PacketBlock
from repro.flows import FlowPopulation
from repro.switches.ovs_dpdk import OvsDpdk
from repro.switches.t4p4s import T4P4S
from repro.switches.vale import Vale

#: A burst as run-length (flow, count) pairs, flows drawn from a space a
#: few times wider than the small capacities used below so eviction is
#: actually exercised.
runs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=8)),
    min_size=1,
    max_size=40,
)


def _frames(runs) -> int:
    return sum(count for _, count in runs)


class TestOvsEmcProperties:
    @given(runs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded(self, runs):
        sw = OvsDpdk(Simulator(), emc_entries=16)
        for flow, count in runs:
            sw._classify_run(flow, count, None)
        stats = sw.cache_stats()
        assert stats["emc_entries"] <= stats["emc_capacity"] == 16

    @given(runs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_conservation(self, runs):
        sw = OvsDpdk(Simulator(), emc_entries=16)
        for flow, count in runs:
            sw._classify_run(flow, count, None)
        stats = sw.cache_stats()
        # A miss consumes exactly one frame (the installer); every other
        # frame hits: hits + misses == frames offered.
        assert stats["emc_hits"] + stats["emc_misses"] == _frames(runs)
        assert stats["emc_evictions"] <= stats["emc_misses"]
        assert stats["upcalls"] == stats["megaflows"]

    @given(runs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_block_fold_equals_run_fold(self, runs):
        """Classifying a multi-flow block == classifying its runs."""
        folded = OvsDpdk(Simulator(), emc_entries=16)
        block = PacketBlock(
            64, runs[0][0], 0xAA0000 + runs[0][0], 0xBB0000, 0.0,
            count=_frames(runs), flows=tuple(runs) if len(runs) > 1 else None,
        )
        cycles_block = folded._proc_cycles([block], None, block.count, 64 * block.count)

        unrolled = OvsDpdk(Simulator(), emc_entries=16)
        cycles_runs = unrolled.params.proc.cycles(block.count, 64 * block.count)
        for flow, count in runs:
            cycles_runs += unrolled._classify_run(flow, count, None)

        assert cycles_block == cycles_runs
        assert folded.cache_stats() == unrolled.cache_stats()


class TestValeMacTableProperties:
    @given(runs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded_and_entries_balance(self, runs):
        sw = Vale(Simulator(), mac_entries=16)
        for flow, _count in runs:
            sw._learn_src(0xAA0000 + flow, None)
        stats = sw.cache_stats()
        assert stats["mac_entries"] <= stats["mac_capacity"] == 16
        # Every learn adds one entry, every eviction removes one.
        assert stats["mac_entries"] == stats["mac_learned"] - stats["mac_evictions"]


class TestT4p4sFlowTableProperties:
    @given(runs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded_and_frames_conserved(self, runs):
        sw = T4P4S(Simulator())
        sw.on_flow_population(FlowPopulation(flows=64))
        sw.flow_table_entries = 16
        blocks = [
            PacketBlock(64, flow, 0xAA0000 + flow, 0xBB0000, 0.0, count=count)
            for flow, count in runs
        ]
        cycles = sw._flow_table_cycles(blocks)
        stats = sw.cache_stats()
        assert cycles > 0.0
        assert stats["flow_entries"] <= stats["flow_capacity"] == 16
        assert stats["flow_hits"] + stats["flow_misses"] == _frames(runs)
        assert stats["flow_evictions"] <= stats["flow_misses"]

    @given(runs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_lookup_cost_rises_with_occupancy(self, runs):
        """The occupancy-dependent term: a fuller table is never cheaper
        for the same traffic."""
        empty = T4P4S(Simulator())
        empty.on_flow_population(FlowPopulation(flows=64))
        full = T4P4S(Simulator())
        full.on_flow_population(FlowPopulation(flows=64))
        # Pre-fill 'full' to half capacity with flows outside the strategy
        # space so the offered runs see identical hit/miss sequences.
        for key in range(1000, 1000 + full.flow_table_entries // 2):
            full._flow_keys[key] = 1
        blocks = [
            PacketBlock(64, flow, 0xAA0000 + flow, 0xBB0000, 0.0, count=count)
            for flow, count in runs
        ]
        blocks2 = [
            PacketBlock(64, flow, 0xAA0000 + flow, 0xBB0000, 0.0, count=count)
            for flow, count in runs
        ]
        assert full._flow_table_cycles(blocks2) >= empty._flow_table_cycles(blocks)


class TestDeterministicEviction:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pinned_seed_reproduces_cache_history(self, seed):
        """Same population + same seed => identical eviction history."""
        pop = FlowPopulation(flows=200, dist="zipf")

        def run_once():
            sw = OvsDpdk(Simulator(), emc_entries=32)
            rng = np.random.default_rng(seed)
            for burst in range(20):
                for flow in pop.sample_flows(rng, 32, now_ns=burst * 1e3):
                    sw._classify_run(int(flow), 1, None)
            return sw.cache_stats()

        assert run_once() == run_once()
