"""Property-based tests for the fast-forward tiers' contracts.

Three contracts, sampled with pinned hypothesis seeds so CI failures
reproduce:

1. **Turbo observable-invariance** -- on every turbo-eligible shape,
   warp-on runs are bit-identical to warp-off runs: same end-state
   fingerprint, same per-direction rates (repr-compared), same event
   count, for sampled (switch, shape, rate, seed).
2. **Fluid tolerance** -- when the fluid tier engages, the extrapolated
   rate is within the declared tolerance of the exact rate, across a
   sampled (rate, seed, window) grid.
3. **Between-fault exactness** -- a resilience run with the chain turbo
   warping the inter-fault stretches reproduces the event-exact
   degradation timeline and recovery metrics bit-for-bit, for sampled
   fault instants and durations.
"""

from __future__ import annotations

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.core.fluid import fluid_tolerance
from repro.core.warp import state_fingerprint
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v

#: Turbo-eligible shapes beyond clean uni p2p (which replay covers) and
#: a sub-capacity rate band per shape (slowest-switch headroom).
SHAPES = {
    "p2p-bidi": (p2p.build, {"bidirectional": True}, 0.5e6, 2.0e6),
    "p2v": (p2v.build, {}, 0.3e6, 1.0e6),
    "v2v": (v2v.build, {}, 0.2e6, 0.8e6),
    "loopback": (loopback.build, {"n_vnfs": 2}, 0.1e6, 0.5e6),
}

EXACT_SWITCHES = ["bess", "fastclick", "ovs-dpdk", "vpp", "t4p4s"]


class TestTurboInvariance:
    @seed(20260807)
    @settings(max_examples=8, deadline=None)
    @given(
        shape=st.sampled_from(sorted(SHAPES)),
        switch=st.sampled_from(EXACT_SWITCHES),
        rate_frac=st.floats(min_value=0.0, max_value=1.0),
        run_seed=st.integers(min_value=1, max_value=1_000_000),
    )
    def test_warp_on_matches_warp_off(self, shape, switch, rate_frac, run_seed):
        build, kwargs, lo, hi = SHAPES[shape]
        rate = lo + rate_frac * (hi - lo)
        bidir = kwargs.get("bidirectional", False)

        def run(warp):
            tb = build(switch, frame_size=64, rate_pps=rate, seed=run_seed, **kwargs)
            res = drive(
                tb, warmup_ns=2e5, measure_ns=2.5e6,
                bidirectional=bidir, warp=warp,
            )
            return res, state_fingerprint(tb)

        r_off, f_off = run(False)
        r_on, f_on = run(True)
        assert r_on.warp is not None and r_on.warp.engaged
        assert f_off == f_on
        assert [repr(v) for v in r_off.per_direction_gbps] == [
            repr(v) for v in r_on.per_direction_gbps
        ]
        assert r_off.events == r_on.events


class TestFluidTolerance:
    @seed(20260807)
    @settings(max_examples=6, deadline=None)
    @given(
        rate_mpps=st.floats(min_value=0.5, max_value=5.0),
        run_seed=st.integers(min_value=1, max_value=1_000_000),
        window_ms=st.floats(min_value=20.0, max_value=80.0),
    )
    def test_fluid_rate_within_tolerance(self, rate_mpps, run_seed, window_ms):
        rate = rate_mpps * 1e6
        measure_ns = window_ms * 1e6

        def run(fluid):
            tb = p2p.build("vpp", frame_size=64, rate_pps=rate, seed=run_seed)
            return drive(tb, warmup_ns=6e5, measure_ns=measure_ns, fluid=fluid)

        exact = run(False)
        approx = run(True)
        assert approx.fluid is not None and approx.fluid.engaged
        assert exact.mpps > 0
        rel_err = abs(approx.mpps - exact.mpps) / exact.mpps
        assert rel_err <= fluid_tolerance(), (
            f"fluid {approx.mpps} vs exact {exact.mpps}: {rel_err:.4%}"
        )


class TestBetweenFaultExactness:
    @seed(20260807)
    @settings(max_examples=5, deadline=None)
    @given(
        fault_frac=st.floats(min_value=0.1, max_value=0.7),
        duration_ns=st.floats(min_value=1e5, max_value=6e5),
        run_seed=st.integers(min_value=1, max_value=1_000_000),
    )
    def test_resilience_timeline_bit_identical(
        self, fault_frac, duration_ns, run_seed
    ):
        from repro.faults.plan import FaultEvent, FaultPlan
        from repro.measure.resilience import measure_resilience

        warmup_ns, measure_ns = 6e5, 4e6

        def run(warp):
            plan = FaultPlan.of(
                FaultEvent.from_dict(
                    {"kind": "nic-link-flap", "target": "sut-nic.p1",
                     "at_ns": warmup_ns + fault_frac * measure_ns,
                     "duration_ns": duration_ns}
                )
            )
            return measure_resilience(
                p2p.build, "vpp", 64, plan,
                warmup_ns=warmup_ns, measure_ns=measure_ns,
                rate_pps=1e6, seed=run_seed, warp=warp,
            )

        res_off, rep_off, _ = run(False)
        res_on, rep_on, _ = run(True)
        assert rep_off.to_dict() == rep_on.to_dict()
        assert repr(res_off.gbps) == repr(res_on.gbps)
        assert res_off.events == res_on.events
