"""Property-based tests for the soundness layer's statistical contracts.

Three contracts the methodology stands on:

1. **Trial independence / n=1 bit-identity** -- trial 0 is the base run:
   no ``trial.*`` RNG stream is created, and the result is bit-identical
   to a build that never heard of trials.  Non-zero trials perturb only
   through their dedicated streams.
2. **Bootstrap CI coverage** -- on synthetic samples with a known mean,
   the nominal-95% interval actually covers the truth at roughly the
   nominal rate (bootstrap on small n is mildly anti-conservative, so
   the bound is loose but damning for a broken implementation).
3. **Quarantine monotonicity** -- making a stable sample *more*
   concentrated can never flip it to an unstable verdict.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.measure.runner import drive
from repro.measure.soundness import bootstrap_ci, classify_trials, summarize_trials
from repro.scenarios import p2p

FAST = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


class TestTrialIndependence:
    def test_trial_zero_is_bit_identical_to_no_trial_kwarg(self):
        base = drive(p2p.build("vpp", frame_size=64, seed=1), **FAST)
        explicit = drive(p2p.build("vpp", frame_size=64, seed=1, trial=0), **FAST)
        assert repr(base.gbps) == repr(explicit.gbps)
        assert base.mpps == explicit.mpps

    def test_trial_zero_creates_no_trial_streams(self):
        """The n=1 path must not even *touch* a trial.* RNG stream --
        creating one would consume a SeedSequence spawn and could perturb
        unrelated draws in a future refactor."""
        tb = p2p.build("vpp", frame_size=64, seed=1, trial=0)
        drive(tb, **FAST)
        assert not any(name.startswith("trial.") for name in tb.rngs._streams)

    def test_nonzero_trials_use_their_own_streams(self):
        tb = p2p.build("vpp", frame_size=64, seed=1, trial=2)
        names = [name for name in tb.rngs._streams if name.startswith("trial.")]
        assert names
        assert all(name.startswith("trial.2.") for name in names)

    @pytest.mark.parametrize("trial", [1, 3])
    def test_trials_replay_bit_identically(self, trial):
        """A trial replica is itself deterministic: same trial, same result."""
        first = drive(p2p.build("vale", frame_size=64, seed=1, trial=trial), **FAST)
        again = drive(p2p.build("vale", frame_size=64, seed=1, trial=trial), **FAST)
        assert repr(first.gbps) == repr(again.gbps)

    def test_trials_do_not_change_the_workload_scale(self):
        """Perturbation, not reseeding: every trial of a point must land
        within a few percent of the base run -- the workload is the same."""
        base = drive(p2p.build("vale", frame_size=64, seed=1), **FAST)
        for trial in (1, 2, 3):
            replica = drive(
                p2p.build("vale", frame_size=64, seed=1, trial=trial), **FAST
            )
            assert replica.gbps == pytest.approx(base.gbps, rel=0.10)


class TestBootstrapCoverage:
    def test_nominal_coverage_on_known_mean(self):
        """~95% CIs over N(10, 1) samples of n=10 must cover mu=10 at
        close to the nominal rate.  200 repetitions; the acceptance band
        [0.80, 1.0] is ~9 sigma below nominal -- a sign error, off-by-one
        in the quantiles, or a stuck RNG all land far outside it."""
        rng = np.random.default_rng(20260807)
        covered = 0
        reps = 200
        for _ in range(reps):
            sample = rng.normal(10.0, 1.0, size=10)
            low, high = bootstrap_ci(sample, level=0.95)
            covered += 1 if low <= 10.0 <= high else 0
        assert 0.80 <= covered / reps <= 1.0

    def test_lower_level_gives_narrower_intervals(self):
        rng = np.random.default_rng(7)
        sample = rng.normal(10.0, 1.0, size=12)
        low95, high95 = bootstrap_ci(sample, level=0.95)
        low50, high50 = bootstrap_ci(sample, level=0.50)
        assert (high50 - low50) < (high95 - low95)

    def test_interval_scales_with_spread(self):
        rng = np.random.default_rng(11)
        base = rng.normal(10.0, 1.0, size=10)
        narrow = bootstrap_ci(10.0 + (base - 10.0) * 0.1)
        wide = bootstrap_ci(10.0 + (base - 10.0) * 10.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestQuarantineMonotonicity:
    @given(
        st.floats(min_value=1.0, max_value=100.0),
        st.integers(min_value=3, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_samples_are_always_stable(self, value, n):
        verdict, _ = classify_trials([value] * n)
        assert verdict == "stable"

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0),
            min_size=3,
            max_size=10,
        ),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_shrinking_noise_never_destabilises(self, noise, mean):
        """If mean + eps*noise is stable at eps, it stays stable at eps/10:
        concentrating a sample can only ever improve its verdict."""
        eps = 0.01 * mean
        sample = [mean + eps * v for v in noise]
        verdict, _ = classify_trials(sample)
        if verdict != "stable":
            return  # premise not met; nothing to check
        tighter = [mean + (v - mean) * 0.1 for v in sample]
        tight_verdict, _ = classify_trials(tighter)
        assert tight_verdict == "stable"

    @given(st.integers(min_value=3, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_appending_the_mean_keeps_stable_stable(self, n):
        rng = np.random.default_rng(n)
        sample = list(10.0 + rng.normal(0.0, 0.01, size=n))
        verdict, _ = classify_trials(sample)
        if verdict != "stable":
            return
        mean = sum(sample) / len(sample)
        appended_verdict, _ = classify_trials(sample + [mean])
        assert appended_verdict == "stable"

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_summary_is_internally_consistent(self, values):
        summary = summarize_trials(values)
        assert summary.n == len(values)
        assert summary.ci_low <= summary.ci_high
        assert summary.p5 <= summary.p50 <= summary.p95
        assert min(values) <= summary.mean <= max(values)
        assert summary.verdict in ("stable", "bimodal", "drifting", "inconclusive")
        assert summary.reason  # every verdict carries a documented reason
