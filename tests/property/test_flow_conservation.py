"""Property-based tests: per-flow telemetry conserves every frame.

Two layers of the same invariant:

* **model level** -- arbitrary run-length streams through the accounting
  hooks never lose or invent a frame: for every counter,
  ``sum(tracked records) + other == totals`` regardless of eviction
  pressure, and a punctured wire split partitions a block exactly into
  sent + dropped frames;
* **simulation level** -- a full testbed run (flow churn, block splits,
  driver hiccup drops, injected link faults) reconciles the flowstats
  totals against the independent port/ring aggregate counters frame for
  frame.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.runner import drive
from repro.obs.flowstats import FlowStats
from repro.scenarios import p2p

from tests._helpers import FAST_MEASURE_NS, FAST_WARMUP_NS

COUNTERS = (
    "tx_frames", "tx_bytes", "wire_frames", "wire_bytes", "rx_frames",
    "rx_bytes", "drop_frames", "drop_bytes", "fwd_frames", "cache_hits",
    "cache_misses",
)

runs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=32),
    ),
    min_size=1,
    max_size=30,
)


def _conserved(stats: FlowStats) -> None:
    for name in COUNTERS:
        tracked = sum(getattr(r, name) for r in stats.records.values())
        assert tracked + getattr(stats.other, name) == getattr(stats.totals, name), name


class TestModelConservation:
    @given(
        streams=st.lists(
            st.tuples(st.sampled_from(["tx", "wire", "rx", "drop", "fwd"]), runs_strategy),
            min_size=1,
            max_size=12,
        ),
        top_k=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_hooks_conserve_under_eviction(self, streams, top_k):
        stats = FlowStats(top_k=top_k)
        for kind, runs in streams:
            if kind == "tx":
                stats.tx_runs(runs, 64)
            elif kind == "wire":
                stats.wire_runs(runs, 64)
            elif kind == "rx":
                stats.rx_runs(runs, 64)
            elif kind == "drop":
                stats.drop_runs(runs, 64)
            else:
                stats.fwd_runs(runs)
            assert len(stats.records) <= top_k
            _conserved(stats)

    @given(
        runs=runs_strategy,
        data=st.data(),
        top_k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_split_partitions_block(self, runs, data, top_k):
        """kept + dropped must partition the block's frames exactly."""
        frames = sum(count for _, count in runs)
        kept = sorted(
            data.draw(
                st.sets(st.integers(min_value=0, max_value=frames - 1), max_size=frames)
            )
        )
        stats = FlowStats(top_k=top_k)
        stats.wire_split_runs(runs, kept, 64)
        assert stats.totals.wire_frames == len(kept)
        assert stats.totals.drop_frames == frames - len(kept)
        _conserved(stats)


class TestSimulationConservation:
    @given(
        flows=st.sampled_from([1, 37, 500, 4096]),
        dist=st.sampled_from(["uniform", "zipf"]),
        churn=st.sampled_from([0.0, 50_000.0]),
        top_k=st.sampled_from([4, 64]),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        fault=st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_flow_sums_match_port_and_ring_aggregates(
        self, flows, dist, churn, top_k, seed, fault
    ):
        from repro.faults import FaultEvent, FaultInjector, FaultPlan
        from repro.obs.flowstats import wire_flowstats

        tb = p2p.build(
            "ovs-dpdk", frame_size=64, seed=seed,
            flows=flows, flow_dist=dist, churn=churn,
        )
        stats = FlowStats(top_k=top_k)
        wire_flowstats(tb, stats)
        if fault:
            injector = FaultInjector(
                tb,
                FaultPlan.of(
                    FaultEvent(
                        at_ns=FAST_WARMUP_NS + 100_000.0,
                        kind="nic-link-flap",
                        target="sut-nic.p1",
                        duration_ns=150_000.0,
                    )
                ),
            )
            injector.arm()
        drive(tb, warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS, warp=False)

        _conserved(stats)
        ports = list(tb.extras["gen_ports"]) + list(tb.extras["sut_ports"])
        rings = [port.rx_ring for port in ports]
        # Frames on the wire == the ports' own tx counters; frames lost ==
        # every hooked drop site's own count (tx backlog + driver hiccups
        # + carrier loss on ports, overflow on rings).
        assert stats.totals.wire_frames == sum(p.tx_packets for p in ports)
        assert stats.totals.drop_frames == (
            sum(p.tx_dropped + p.driver_drops for p in ports)
            + sum(r.dropped for r in rings)
        )
        # Delivered frames == what physically arrived at the monitors'
        # ports; offered frames bound everything else (the remainder is
        # still in flight inside rings at shutdown, never double-counted).
        monitor_ports = [p for p in ports if p.sink is not None]
        assert monitor_ports
        assert stats.totals.rx_frames == sum(p.rx_packets for p in monitor_ports)
        # wire_frames counts hops (a p2p frame crosses two wires); every
        # frame is offered once and ends at most once (delivered or
        # dropped), so these bound each other per-hop and per-frame.
        assert stats.totals.wire_frames <= 2 * stats.totals.tx_frames
        assert (
            stats.totals.rx_frames + stats.totals.drop_frames
            <= stats.totals.tx_frames
        )
