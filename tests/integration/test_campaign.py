"""Integration tests for the campaign executor: determinism across
serial/parallel execution, caching, resume and fault tolerance."""

from __future__ import annotations

from dataclasses import replace

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.campaign.cache import ResultCache
from repro.campaign.executor import CampaignResult, run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, RunFailure, RunRecord, RunSpec, execute_run
from repro.campaign.store import CampaignStore

WINDOWS = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


def _campaign(*specs) -> CampaignSpec:
    return CampaignSpec(name="test", runs=tuple(specs))


def _gbps_by_key(result: CampaignResult) -> dict:
    return {key: tuple(o.per_direction_gbps) for key, o in result.outcomes}


def test_execute_run_matches_measure_throughput():
    from repro.measure.throughput import measure_throughput
    from repro.scenarios import p2p

    spec = RunSpec("p2p", "ovs-dpdk", seed=3, **WINDOWS)
    record = execute_run(spec)
    direct = measure_throughput(p2p.build, "ovs-dpdk", 64, seed=3, **WINDOWS)
    assert record.per_direction_gbps == direct.per_direction_gbps
    assert record.per_direction_mpps == direct.per_direction_mpps
    assert record.events == direct.events


def test_serial_and_parallel_executions_identical():
    """The acceptance bar: same spec + seed => identical numbers."""
    campaign = _campaign(
        RunSpec("p2p", "vpp", seed=7, **WINDOWS),
        RunSpec("p2v", "snabb", seed=7, **WINDOWS),
        RunSpec("v2v", "vale", seed=7, bidirectional=True, **WINDOWS),
    )
    serial = run_campaign(campaign, workers=1)
    parallel = run_campaign(campaign, workers=2)
    assert _gbps_by_key(serial) == _gbps_by_key(parallel)
    assert {k: tuple(o.per_direction_mpps) for k, o in serial.outcomes} == {
        k: tuple(o.per_direction_mpps) for k, o in parallel.outcomes
    }


def test_cache_hit_after_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = _campaign(RunSpec("p2p", "bess", **WINDOWS))
    first = run_campaign(campaign, cache=cache)
    assert first.executed == 1 and first.cache_hits == 0

    second = run_campaign(campaign, cache=cache)
    assert second.executed == 0 and second.cache_hits == 1
    assert _gbps_by_key(first) == _gbps_by_key(second)


def test_fingerprint_change_invalidates_cache(tmp_path, monkeypatch):
    from repro.cpu.costmodel import Cost
    from repro.switches.params import ALL_PARAMS

    cache = ResultCache(tmp_path / "cache")
    campaign = _campaign(RunSpec("p2p", "fastclick", **WINDOWS))
    run_campaign(campaign, cache=cache)

    recalibrated = replace(ALL_PARAMS["fastclick"], proc=Cost(per_batch=1.0, per_packet=1.0))
    monkeypatch.setitem(ALL_PARAMS, "fastclick", recalibrated)
    after = run_campaign(campaign, cache=ResultCache(tmp_path / "cache"))
    assert after.cache_hits == 0
    assert after.executed == 1


def test_poisoned_run_is_recorded_not_fatal():
    campaign = _campaign(
        RunSpec("p2p", "bess", **WINDOWS),
        RunSpec("p2p", "vpp", extra=(("_inject", "error"),), **WINDOWS),
        RunSpec("p2p", "vale", **WINDOWS),
    )
    result = run_campaign(campaign, workers=1)
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert isinstance(failure, RunFailure)
    assert failure.spec.switch == "vpp"
    oks = [o for _, o in result.outcomes if isinstance(o, RunRecord) and o.status == "ok"]
    assert len(oks) == 2
    assert all(o.gbps > 0 for o in oks)


def test_worker_death_is_isolated_and_bounded():
    campaign = _campaign(
        RunSpec("p2p", "bess", **WINDOWS),
        RunSpec("p2p", "vale", extra=(("_inject", "worker-death"),), **WINDOWS),
    )
    result = run_campaign(campaign, workers=2, retries=1, backoff_s=0.01)
    assert len(result.failures) == 1
    assert result.failures[0].error == "WorkerDied"
    assert result.failures[0].attempts == 2  # original + 1 retry
    survivors = [o for _, o in result.outcomes if isinstance(o, RunRecord)]
    assert len(survivors) == 1 and survivors[0].status == "ok"


def test_qemu_incompatibility_is_inapplicable_not_failed():
    campaign = _campaign(RunSpec("loopback", "bess", n_vnfs=5, **WINDOWS))
    result = run_campaign(campaign)
    assert not result.failures
    assert len(result.inapplicable) == 1
    assert "qemu" in result.inapplicable[0].detail


def test_store_resume_skips_completed(tmp_path):
    store = CampaignStore(tmp_path / "log.jsonl")
    campaign = _campaign(
        RunSpec("p2p", "bess", **WINDOWS),
        RunSpec("p2p", "t4p4s", **WINDOWS),
    )
    first = run_campaign(campaign, store=store)
    assert first.executed == 2

    resumed = run_campaign(campaign, store=store, resume=True)
    assert resumed.executed == 0
    assert resumed.resumed == 2
    assert _gbps_by_key(first) == _gbps_by_key(resumed)


def test_store_resume_retries_failures(tmp_path):
    store = CampaignStore(tmp_path / "log.jsonl")
    poisoned = RunSpec("p2p", "vpp", extra=(("_inject", "error"),), **WINDOWS)
    first = run_campaign(_campaign(poisoned), store=store)
    assert len(first.failures) == 1

    # The healed spec differs (no _inject), so build the same-key scenario
    # by resuming with the identical spec: failures are not "completed".
    again = run_campaign(_campaign(poisoned), store=store, resume=True)
    assert again.resumed == 0
    assert again.executed == 1


def test_progress_counts_match_result(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = _campaign(
        RunSpec("p2p", "bess", **WINDOWS),
        RunSpec("loopback", "bess", n_vnfs=5, **WINDOWS),
    )
    reporter = ProgressReporter(total=len(campaign))
    result = run_campaign(campaign, cache=cache, progress=reporter)
    assert reporter.done == 2
    assert reporter.executed == result.executed == 2
    assert reporter.inapplicable == 1

    reporter2 = ProgressReporter(total=len(campaign))
    rerun = run_campaign(campaign, cache=cache, progress=reporter2)
    assert rerun.cache_hits == 2  # the inapplicable verdict is cached too
    assert reporter2.cache_hits == 2


def test_per_run_timeout_records_failure():
    import signal

    if not hasattr(signal, "SIGALRM"):
        pytest.skip("per-run timeouts need SIGALRM")
    # A long measurement window against a tiny timeout budget.
    campaign = _campaign(
        RunSpec("p2p", "vpp", warmup_ns=1e6, measure_ns=500_000_000.0)
    )
    result = run_campaign(campaign, workers=1, timeout_s=0.05)
    assert len(result.failures) == 1
    assert result.failures[0].error == "RunTimeoutError"


def test_suite_outcomes_distinguish_inapplicable(tmp_path):
    from repro.measure.suites import PAPER_SUITE

    outcomes = PAPER_SUITE.run_outcomes("bess", **WINDOWS)
    assert outcomes["p2p-64B-uni"].status == "ok"
    assert outcomes["p2p-64B-uni"].gbps > 0
    assert outcomes["loopback5-64B-uni"].status == "inapplicable"
    assert outcomes["loopback5-64B-uni"].gbps is None


def test_suite_run_parallel_matches_serial():
    from repro.measure.suites import SMOKE_SUITE

    serial = SMOKE_SUITE.run("snabb", **WINDOWS)
    parallel = SMOKE_SUITE.run("snabb", workers=2, **WINDOWS)
    assert {k: v.gbps for k, v in serial.items()} == {
        k: v.gbps for k, v in parallel.items()
    }


def test_suite_repeat_averages_replicas():
    from repro.measure.suites import SMOKE_SUITE

    outcomes = SMOKE_SUITE.run_outcomes("vpp", repeat=2, **WINDOWS)
    outcome = outcomes["p2p-64B"]
    assert len(outcome.records) == 2
    seeds = {r.spec.seed for r in outcome.records}
    assert seeds == {1, 2}
    expected = sum(r.gbps for r in outcome.records) / 2
    assert outcome.gbps == pytest.approx(expected)
