"""Integration tests: queueing dynamics observed through telemetry.

These validate the *mechanisms* behind the latency results: queues must
grow where and when the paper's analysis says they do.
"""

from __future__ import annotations

import pytest

from repro.core.trace import Telemetry
from repro.measure.runner import drive
from repro.measure.throughput import estimate_r_plus
from repro.scenarios import p2p


def _p2p_with_telemetry(switch_name, rate_pps, measure_ns=1_500_000.0):
    tb = p2p.build(switch_name, frame_size=64, rate_pps=rate_pps)
    telemetry = Telemetry(tb.sim, period_ns=20_000.0)
    sut0, _ = tb.extras["sut_ports"]
    telemetry.watch_ring("rx", sut0.rx_ring)
    telemetry.watch_ring_drops("drops", sut0.rx_ring)
    telemetry.watch_core_busy("core", tb.sut_core)
    telemetry.start()
    drive(tb, warmup_ns=200_000.0, measure_ns=measure_ns)
    return tb, telemetry


def test_queue_grows_with_load():
    """Mean rx occupancy at 0.99 R+ exceeds 0.50 R+ (Sec. 5.3's logic)."""
    r_plus = estimate_r_plus(p2p.build, "ovs-dpdk", 64, warmup_ns=200_000.0, measure_ns=800_000.0)
    _, mid = _p2p_with_telemetry("ovs-dpdk", 0.5 * r_plus)
    _, high = _p2p_with_telemetry("ovs-dpdk", 0.99 * r_plus)
    assert high.series["rx"].mean > 2 * mid.series["rx"].mean


def test_low_load_queues_stay_empty():
    _, telemetry = _p2p_with_telemetry("bess", 1_000_000.0)
    assert telemetry.series["rx"].mean < 4.0
    assert telemetry.series["drops"].last() == 0


def test_core_utilisation_tracks_load():
    r_plus = estimate_r_plus(p2p.build, "vale", 64, warmup_ns=200_000.0, measure_ns=800_000.0)
    _, low = _p2p_with_telemetry("vale", 0.1 * r_plus)
    _, high = _p2p_with_telemetry("vale", 0.95 * r_plus)
    assert high.utilization("core") > 2 * low.utilization("core")


def test_saturation_pins_the_core():
    _, telemetry = _p2p_with_telemetry("t4p4s", 14.88e6)
    assert telemetry.utilization("core") > 0.9


def test_interrupt_moderation_makes_arrivals_bursty():
    """VALE's ITR releases packets in batches: peak occupancy far above
    the mean, unlike a poll-mode switch at the same load."""
    _, vale = _p2p_with_telemetry("vale", 3_000_000.0)
    _, bess = _p2p_with_telemetry("bess", 3_000_000.0)
    vale_ratio = vale.series["rx"].peak / max(1.0, vale.series["rx"].mean)
    bess_peak = bess.series["rx"].peak
    assert vale.series["rx"].peak > 30           # ITR bursts pile up
    assert bess_peak < vale.series["rx"].peak    # PMD drains continuously


def test_saturating_load_drops_at_ingress_only():
    """At saturation the loss concentrates at the NIC ingress ring; the
    egress stays healthy (the switch never overruns the wire by more
    than its tx backlog)."""
    tb, telemetry = _p2p_with_telemetry("vale", 14.88e6)
    sut0, sut1 = tb.extras["sut_ports"]
    assert sut0.rx_ring.dropped > 1000
    assert sut1.tx_dropped == 0
