"""Integration tests: loopback service chains."""

from __future__ import annotations

import pytest

from _helpers import fast_throughput, full_throughput
from repro.measure.runner import drive
from repro.scenarios import loopback
from repro.switches.registry import ALL_SWITCHES
from repro.vm.machine import QemuCompatibilityError


def test_chain_length_bounds():
    with pytest.raises(ValueError):
        loopback.build("vpp", n_vnfs=0)
    with pytest.raises(ValueError):
        loopback.build("vpp", n_vnfs=6)


def test_every_switch_completes_a_1vnf_chain():
    for name in ALL_SWITCHES:
        assert fast_throughput(loopback.build, name, 64, n_vnfs=1).gbps > 0.3, name


def test_throughput_decreases_with_chain_length():
    previous = float("inf")
    for n in (1, 3, 5):
        gbps = fast_throughput(loopback.build, "vpp", 64, n_vnfs=n).gbps
        assert gbps < previous
        previous = gbps


def test_bess_rejects_chains_beyond_3():
    """Footnote 5: the BESS/QEMU incompatibility."""
    loopback.build("bess", n_vnfs=3)
    with pytest.raises(QemuCompatibilityError):
        loopback.build("bess", n_vnfs=4)


def test_other_switches_reach_5_vnfs():
    for name in ("vpp", "vale", "snabb"):
        tb = loopback.build(name, n_vnfs=5)
        assert len(tb.vms) == 5


def test_path_count_forward_chain():
    tb = loopback.build("vpp", n_vnfs=3)
    # N+1 switch hops for an N-VNF chain.
    assert len(tb.switch.paths) == 4


def test_path_count_bidirectional_chain():
    tb = loopback.build("vpp", n_vnfs=3, bidirectional=True)
    assert len(tb.switch.paths) == 8


def test_packets_traverse_every_vnf():
    tb = loopback.build("vpp", n_vnfs=3, rate_pps=100_000.0)
    drive(tb, warmup_ns=0.0, measure_ns=500_000.0)
    for i in (1, 2, 3):
        assert tb.extras[f"vnf{i}"].forwarded > 0


def test_hop_count_stamped_on_packets():
    tb = loopback.build("vpp", n_vnfs=2, rate_pps=50_000.0)
    seen_hops = []
    rx_port = tb.extras["rx"][0].port
    original_sink = rx_port.sink

    def spy(packets):
        seen_hops.extend(p.hops for p in packets)
        original_sink(packets)

    rx_port.sink = spy
    drive(tb, warmup_ns=0.0, measure_ns=400_000.0)
    # 3 switch hops + 2 guest hops = 5.
    assert seen_hops and set(seen_hops) == {5}


def test_vale_chain_uses_guest_vale_instances():
    from repro.vm.apps import GuestValeXConnect

    tb = loopback.build("vale", n_vnfs=2)
    assert isinstance(tb.extras["vnf1"], GuestValeXConnect)


def test_vhost_chain_uses_l2fwd():
    from repro.vm.apps import GuestL2Fwd

    tb = loopback.build("snabb", n_vnfs=2)
    assert isinstance(tb.extras["vnf1"], GuestL2Fwd)


def test_snabb_collapses_at_4_vnfs():
    """Sec. 5.2: "when the service chain length reaches 4, Snabb becomes
    overloaded and its throughput plummets"."""
    at3 = fast_throughput(loopback.build, "snabb", 64, n_vnfs=3).gbps
    at4 = fast_throughput(loopback.build, "snabb", 64, n_vnfs=4).gbps
    assert at4 < at3 / 3


def test_vale_flat_at_1024b():
    """Sec. 5.2 / Fig. 5c: VALE holds near 10G at 1024 B as chains grow
    (our simulation decays mildly at length 5 -- see EXPERIMENTS.md)."""
    values = {n: full_throughput(loopback.build, "vale", 1024, n_vnfs=n).gbps for n in (1, 3, 5)}
    assert values[1] > 9.0
    assert values[3] > 8.0
    assert values[5] > 0.6 * values[1]


def test_bidirectional_chain_degrades_vale():
    """Sec. 5.2: VALE's bidirectional loopback drops sharply."""
    uni = full_throughput(loopback.build, "vale", 1024, n_vnfs=4).gbps
    bidi = full_throughput(loopback.build, "vale", 1024, n_vnfs=4, bidirectional=True)
    assert bidi.per_direction_gbps[0] < uni * 0.8
