"""Golden shape tests: the qualitative findings of Sec. 5 must hold.

These encode DESIGN.md Sec. 5's "what reproduced means": who wins, by
roughly what factor, where crossovers and collapses fall.  Absolute
values are checked loosely (the paper itself calls its numbers "only
indicative"); orderings are checked strictly.
"""

from __future__ import annotations

import pytest

from _helpers import fast_throughput, full_throughput
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v

THROUGHPUT = {}


def p2p_gbps(name, size=64, bidi=False):
    key = ("p2p", name, size, bidi)
    if key not in THROUGHPUT:
        THROUGHPUT[key] = fast_throughput(p2p.build, name, size, bidirectional=bidi).gbps
    return THROUGHPUT[key]


def p2v_gbps(name, size=64, **kw):
    key = ("p2v", name, size, tuple(kw.items()))
    if key not in THROUGHPUT:
        THROUGHPUT[key] = fast_throughput(p2v.build, name, size, **kw).gbps
    return THROUGHPUT[key]


class TestFig4aP2p:
    def test_top_tier_saturates(self):
        for name in ("bess", "fastclick", "vpp"):
            assert p2p_gbps(name) > 9.5, name

    def test_snabb_around_9(self):
        assert p2p_gbps("snabb") == pytest.approx(8.9, rel=0.12)

    def test_ovs_around_8(self):
        assert p2p_gbps("ovs-dpdk") == pytest.approx(8.05, rel=0.15)

    def test_vale_and_t4p4s_worst(self):
        for name in ("vale", "t4p4s"):
            assert p2p_gbps(name) == pytest.approx(5.6, rel=0.20), name

    def test_ordering(self):
        assert p2p_gbps("bess") >= p2p_gbps("snabb") > p2p_gbps("vale")
        assert p2p_gbps("ovs-dpdk") > p2p_gbps("t4p4s")

    def test_bess_bidirectional_16g(self):
        assert p2p_gbps("bess", bidi=True) == pytest.approx(16.0, rel=0.15)

    def test_fastclick_vpp_exceed_10_bidirectional(self):
        assert p2p_gbps("fastclick", bidi=True) > 10.0
        assert p2p_gbps("vpp", bidi=True) > 10.0


class TestFig4bP2v:
    def test_bess_sustains_10g(self):
        assert p2v_gbps("bess") > 9.5

    def test_mid_tier_5_to_7(self):
        for name in ("fastclick", "vpp", "ovs-dpdk", "snabb"):
            assert 4.5 < p2v_gbps(name) < 8.0, name

    def test_t4p4s_around_4(self):
        # Full windows: t4p4s's long instability episodes need more than
        # the fast test window to average out.
        gbps = full_throughput(p2v.build, "t4p4s", 64).gbps
        assert gbps == pytest.approx(4.04, rel=0.25)

    def test_vale_improves_over_p2p(self):
        assert p2v_gbps("vale") >= p2p_gbps("vale") * 0.97

    def test_vpp_reversed_path_penalty(self):
        forward = p2v_gbps("vpp")
        reversed_ = p2v_gbps("vpp", reversed_path=True)
        assert reversed_ < forward * 0.95

    def test_bidi_256b_bess_fastclick_sustain_line_rate(self):
        for name in ("bess", "fastclick"):
            assert p2v_gbps(name, size=256, bidirectional=True) > 18.0, name

    def test_bidi_256b_others_fail_to_saturate(self):
        for name in ("vpp", "ovs-dpdk", "snabb", "t4p4s"):
            assert p2v_gbps(name, size=256, bidirectional=True) < 19.0, name


class TestFig4cV2v:
    def test_vale_best_at_64b(self):
        vale = fast_throughput(v2v.build, "vale", 64).gbps
        assert vale == pytest.approx(10.5, rel=0.25)
        for name in ("bess", "vpp", "snabb", "ovs-dpdk", "fastclick", "t4p4s"):
            assert fast_throughput(v2v.build, name, 64).gbps < vale, name

    def test_snabb_v2v_beats_its_p2v(self):
        """Sec. 5.2: Snabb is the only switch improving from p2v to v2v."""
        v2v_gbps = fast_throughput(v2v.build, "snabb", 64).gbps
        assert v2v_gbps > p2v_gbps("snabb") * 0.95

    def test_vale_memory_bound_at_1024b(self):
        assert fast_throughput(v2v.build, "vale", 1024).gbps > 30.0

    def test_bidirectional_degrades(self):
        uni = fast_throughput(v2v.build, "vale", 1024).gbps
        bidi = fast_throughput(v2v.build, "vale", 1024, bidirectional=True).gbps
        assert bidi < uni


class TestFig5Loopback:
    def test_bess_wins_1vnf(self):
        bess = fast_throughput(loopback.build, "bess", 64, n_vnfs=1).gbps
        for name in ("vpp", "ovs-dpdk", "snabb", "vale", "t4p4s", "fastclick"):
            assert bess > fast_throughput(loopback.build, name, 64, n_vnfs=1).gbps, name

    def test_vale_overtakes_bess_at_1024b(self):
        vale = full_throughput(loopback.build, "vale", 1024, n_vnfs=3).gbps
        bess = full_throughput(loopback.build, "bess", 1024, n_vnfs=3).gbps
        assert vale >= bess * 0.95

    def test_vale_beats_vhost_switches_on_long_chains(self):
        vale = full_throughput(loopback.build, "vale", 64, n_vnfs=4).gbps
        for name in ("vpp", "ovs-dpdk", "t4p4s", "snabb"):
            assert vale > fast_throughput(loopback.build, name, 64, n_vnfs=4).gbps, name

    def test_t4p4s_worst_1vnf(self):
        t4p4s = fast_throughput(loopback.build, "t4p4s", 64, n_vnfs=1).gbps
        for name in ("bess", "vpp", "snabb", "vale", "fastclick"):
            assert t4p4s < fast_throughput(loopback.build, name, 64, n_vnfs=1).gbps, name


class TestTable3Latency:
    @staticmethod
    def sweep(name, **kw):
        from repro.measure.latency import latency_sweep

        return latency_sweep(
            p2p.build, name, 64, warmup_ns=200_000.0, measure_ns=2_500_000.0, **kw
        )

    def test_bess_lowest_p2p_latency(self):
        bess = self.sweep("bess")
        vale = self.sweep("vale")
        t4p4s = self.sweep("t4p4s")
        assert bess[0.50].mean_us < 8.0
        assert vale[0.50].mean_us > 4 * bess[0.50].mean_us
        assert t4p4s[0.99].mean_us > 10 * bess[0.99].mean_us

    def test_latency_at_099_worst(self):
        for name in ("bess", "vpp", "ovs-dpdk"):
            points = self.sweep(name)
            assert points[0.99].mean_us > points[0.50].mean_us, name

    def test_vale_flat_across_loads(self):
        """Table 3: VALE sits at 32-59 us at *every* load (interrupt floor)."""
        points = self.sweep("vale")
        assert points[0.10].mean_us > 15.0
        assert points[0.99].mean_us < 8 * points[0.10].mean_us


class TestLoopbackLatencyInversion:
    def test_low_load_latency_exceeds_mid_load(self):
        """Table 3: 0.10R+ > 0.50R+ in loopback for every switch but VALE
        (strict l2fwd batching, Sec. 5.3)."""
        from repro.measure.latency import latency_sweep

        for name in ("vpp", "fastclick"):
            points = latency_sweep(
                loopback.build, name, 64, n_vnfs=2,
                warmup_ns=200_000.0, measure_ns=2_500_000.0,
            )
            assert points[0.10].mean_us > points[0.50].mean_us, name

    def test_vale_has_no_inversion(self):
        from repro.measure.latency import latency_sweep

        points = latency_sweep(
            loopback.build, "vale", 64, n_vnfs=2,
            warmup_ns=200_000.0, measure_ns=2_500_000.0,
        )
        assert points[0.10].mean_us < points[0.50].mean_us * 1.5


class TestTable4V2vLatency:
    @staticmethod
    def rtt(name):
        tb = v2v.build_latency(name)
        return drive(tb, warmup_ns=200_000.0, measure_ns=2_000_000.0).latency.mean_us

    def test_ordering(self):
        vale = self.rtt("vale")
        bess = self.rtt("bess")
        snabb = self.rtt("snabb")
        t4p4s = self.rtt("t4p4s")
        assert vale < bess < snabb
        assert bess < t4p4s

    def test_vhost_quartet_is_close(self):
        """Table 4: BESS/FastClick/VPP/OvS within a narrow band (37-45)."""
        rtts = [self.rtt(n) for n in ("bess", "fastclick", "vpp", "ovs-dpdk")]
        assert max(rtts) < 1.6 * min(rtts)
