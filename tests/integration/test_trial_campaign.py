"""Integration tests: the repeat scheduler, multi-trial NDR and latency."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.campaign.cache import ResultCache, run_key
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import RunSpec
from repro.campaign.store import CampaignStore
from repro.measure.ndr import ndr_search
from repro.measure.soundness import TrialPolicy, run_trial_campaign
from repro.scenarios import p2p

WINDOWS = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


def _spec(switch: str = "vpp", **kwargs) -> RunSpec:
    return RunSpec("p2p", switch, seed=1, **WINDOWS, **kwargs)


class TestRepeatScheduler:
    def test_stable_point_stops_at_n_min(self):
        policy = TrialPolicy(n_min=3, n_max=8, rel_ci_target=0.05)
        result = run_trial_campaign([_spec()], policy)
        point = result.points[0]
        assert point.status == "ok"
        assert point.summary.n == 3
        assert point.summary.verdict == "stable"
        assert len(point.records) == 3

    def test_early_stop_retires_progress_budget(self):
        """A converged point cancels its unused trials from the ETA total;
        the reporter must end exactly spent, not padded to n_max."""
        policy = TrialPolicy(n_min=3, n_max=8, rel_ci_target=0.05)
        reporter = ProgressReporter(total=0)
        result = run_trial_campaign([_spec()], policy, progress=reporter)
        n = result.points[0].summary.n
        assert reporter.done == n
        assert reporter.total == n  # 8 - 5 retired

    def test_unstable_point_is_quarantined_with_reason(self):
        """A point that never converges and never classifies stable ends
        quarantined, carrying the classifier's documented reason.

        Snabb's 4-VNF loopback sits on the collapse cliff (Sec. 5.2);
        the trial perturbations push it across, so its six trials mix
        regimes and the classifier refuses to average them.
        """
        spec = RunSpec("loopback", "snabb", n_vnfs=4, seed=1, **WINDOWS)
        policy = TrialPolicy(n_min=6, n_max=6, rel_ci_target=0.0)
        result = run_trial_campaign([spec], policy)
        point = result.points[0]
        assert point.quarantined
        assert point.summary.n == policy.n_max
        assert point.reason == point.summary.reason
        assert point.reason  # stable, documented, non-empty
        assert result.quarantined == [point]

    def test_trial_zero_record_matches_single_run(self):
        """The scheduler's first trial is the plain campaign run."""
        from repro.campaign.spec import execute_run

        policy = TrialPolicy(n_min=3, n_max=3, rel_ci_target=0.05)
        result = run_trial_campaign([_spec()], policy)
        base = execute_run(_spec())
        assert repr(result.points[0].records[0].gbps) == repr(base.gbps)

    def test_trials_are_cached_per_trial_seed(self, tmp_path):
        """Re-running the same trial campaign serves every trial from the
        result cache -- trial specs are first-class cache keys."""
        policy = TrialPolicy(n_min=3, n_max=5, rel_ci_target=0.05)
        cache = ResultCache(tmp_path / "cache")
        first = ProgressReporter(total=0)
        run_trial_campaign([_spec()], policy, cache=cache, progress=first)
        assert first.executed > 0
        second = ProgressReporter(total=0)
        result = run_trial_campaign([_spec()], policy, cache=cache, progress=second)
        assert second.executed == 0
        assert second.cache_hits == first.executed
        assert result.points[0].summary.n == 3

    def test_store_record_carries_the_trial_summary(self, tmp_path):
        """The point summary is re-appended under the base run's key, so
        the JSONL later-lines-win rule updates the stored record."""
        policy = TrialPolicy(n_min=3, n_max=3, rel_ci_target=0.05)
        store = CampaignStore(tmp_path / "log.jsonl")
        result = run_trial_campaign([_spec()], policy, store=store)
        point = result.points[0]
        loaded = store.load()[run_key(point.spec)]
        assert loaded.trials is not None
        assert loaded.trials["n"] == 3
        assert loaded.trials["status"] == "ok"
        assert loaded.trials["verdict"] == point.summary.verdict

    def test_inapplicable_point_is_not_quarantined(self):
        # BESS cannot host 5 chained VMs (paper footnote 5).
        spec = RunSpec("loopback", "bess", n_vnfs=5, seed=1, **WINDOWS)
        policy = TrialPolicy(n_min=2, n_max=3, rel_ci_target=0.05)
        result = run_trial_campaign([spec], policy)
        point = result.points[0]
        assert point.status == "inapplicable"
        assert not point.quarantined
        assert not result.failures

    def test_outcomes_export_every_trial(self):
        policy = TrialPolicy(n_min=3, n_max=3, rel_ci_target=0.05)
        result = run_trial_campaign([_spec(), _spec("vale")], policy)
        keys = [key for key, _ in result.outcomes]
        assert len(keys) == 6
        assert len(set(keys)) == 6  # each trial has its own key

    def test_summary_dict_is_json_shaped(self):
        import json

        policy = TrialPolicy(n_min=3, n_max=3, rel_ci_target=0.05)
        result = run_trial_campaign([_spec()], policy)
        payload = result.summary_dict()
        text = json.dumps(payload, sort_keys=True)
        assert "ci_low" in text and "verdict" in text and "status" in text


class TestMultiTrialNdr:
    def test_percentile_mode_carries_trial_records_and_ci(self):
        result = ndr_search(
            p2p.build, "vale", 64, iterations=5, trials=3,
            tolerance_packets=64, **WINDOWS,
        )
        assert result.trials_per_point == 3
        assert result.loss_percentile == 50.0
        assert len(result.trial_records) == len(result.trials)
        assert all(len(losses) == 3 for _, losses in result.trial_records)
        assert result.ci is not None
        low, high = result.ci
        assert 0.0 <= low <= high

    def test_single_trial_mode_keeps_the_classic_result_shape(self):
        result = ndr_search(p2p.build, "vale", 64, iterations=5, **WINDOWS)
        assert result.trials_per_point == 1
        assert result.loss_percentile is None
        assert result.trial_records == ()
        assert result.ci is None

    def test_percentile_ndr_within_single_trial_bracket(self):
        """The p50-of-trials NDR visits the same dyadic rates and lands
        within the single-trial search's neighbouring brackets."""
        single = ndr_search(
            p2p.build, "vale", 64, iterations=5, tolerance_packets=64, **WINDOWS
        )
        multi = ndr_search(
            p2p.build, "vale", 64, iterations=5, trials=3,
            tolerance_packets=64, **WINDOWS,
        )
        single_rates = [rate for rate, _ in single.trials]
        multi_rates = [rate for rate, _ in multi.trials]
        assert multi_rates[0] == single_rates[0]  # same first bisection probe
        assert multi.ndr_pps > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ndr_search(p2p.build, "vpp", trials=0)
        with pytest.raises(ValueError):
            ndr_search(p2p.build, "vpp", trials=2, loss_percentile=101.0)


class TestMultiTrialLatency:
    def test_sweep_trials_attach_summary(self):
        from repro.measure.latency import latency_sweep

        single = latency_sweep(
            p2p.build, "vpp", fractions=(0.5,), r_plus_pps=5e6,
            measure_ns=FAST_MEASURE_NS, **{"warmup_ns": FAST_WARMUP_NS},
        )
        multi = latency_sweep(
            p2p.build, "vpp", fractions=(0.5,), r_plus_pps=5e6, trials=3,
            measure_ns=FAST_MEASURE_NS, **{"warmup_ns": FAST_WARMUP_NS},
        )
        point = multi[0.5]
        # Trial 0 is the unperturbed base sweep, bit-identical.
        assert repr(point.mean_us) == repr(single[0.5].mean_us)
        assert len(point.trial_means_us) == 3
        assert point.trials is not None
        assert point.trials["metric"] == "latency_mean_us"
        assert point.trials["n"] >= 1
        # The single-trial point leaves the soundness fields untouched.
        assert single[0.5].trial_means_us == ()
        assert single[0.5].trials is None

    def test_sweep_validation(self):
        from repro.measure.latency import latency_sweep

        with pytest.raises(ValueError):
            latency_sweep(p2p.build, "vpp", trials=0, r_plus_pps=1e6)


class TestRepeatSemantics:
    def test_validate_repeat_without_policy_is_loud(self):
        from repro.analysis.validate import validate

        with pytest.raises(ValueError, match="seed_policy"):
            validate(repeat=2)

    def test_suite_trial_policy_keeps_one_seed(self):
        from repro.measure.suites import SMOKE_SUITE

        outcomes = SMOKE_SUITE.run_outcomes(
            "vpp", repeat=2, seed_policy="trial", **WINDOWS
        )
        outcome = outcomes["p2p-64B"]
        assert len(outcome.records) == 2
        assert {r.spec.seed for r in outcome.records} == {1}
        assert [r.spec.trial for r in outcome.records] == [0, 1]
        summary = outcome.trial_summary()
        assert summary is not None and summary.n == 2

    def test_suite_unknown_policy_is_loud(self):
        from repro.measure.suites import SMOKE_SUITE

        with pytest.raises(ValueError, match="seed policy"):
            SMOKE_SUITE.run_outcomes("vpp", repeat=2, seed_policy="lucky", **WINDOWS)
