"""Integration tests: the measurement pipeline (drive / R+ / sweeps)."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.measure.latency import LOAD_FRACTIONS, latency_sweep, measure_latency_at
from repro.measure.runner import drive
from repro.measure.throughput import estimate_r_plus, measure_throughput
from repro.scenarios import p2p


def test_drive_rejects_bad_windows():
    tb = p2p.build("bess")
    with pytest.raises(ValueError):
        drive(tb, warmup_ns=-1.0)
    tb = p2p.build("bess")
    with pytest.raises(ValueError):
        drive(tb, measure_ns=0.0)


def test_run_result_fields():
    result = measure_throughput(
        p2p.build, "vpp", 64, warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS
    )
    assert result.scenario == "p2p"
    assert result.switch == "vpp"
    assert result.frame_size == 64
    assert not result.bidirectional
    assert result.events > 0
    assert result.gbps == sum(result.per_direction_gbps)


def test_deterministic_given_seed():
    kwargs = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS, seed=33)
    a = measure_throughput(p2p.build, "ovs-dpdk", 64, **kwargs)
    b = measure_throughput(p2p.build, "ovs-dpdk", 64, **kwargs)
    assert a.gbps == b.gbps


def test_different_seeds_vary_jittery_switches():
    values = {
        measure_throughput(
            p2p.build, "t4p4s", 64,
            warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS, seed=seed,
        ).gbps
        for seed in range(4)
    }
    assert len(values) > 1


def test_estimate_r_plus_matches_throughput():
    r_plus = estimate_r_plus(
        p2p.build, "vale", 64, warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS
    )
    result = measure_throughput(
        p2p.build, "vale", 64, warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS
    )
    assert r_plus == pytest.approx(result.mpps * 1e6)


def test_measure_latency_at_returns_point():
    point = measure_latency_at(
        p2p.build, "bess", 64, rate_pps=1e6, fraction=0.5,
        warmup_ns=FAST_WARMUP_NS, measure_ns=1_500_000.0,
    )
    assert point.fraction == 0.5
    assert len(point.sample) > 10
    assert point.mean_us > 0
    assert point.std_us >= 0


def test_latency_sweep_covers_paper_fractions():
    points = latency_sweep(
        p2p.build, "bess", 64,
        warmup_ns=FAST_WARMUP_NS, measure_ns=1_200_000.0,
    )
    assert set(points) == set(LOAD_FRACTIONS)
    for fraction, point in points.items():
        assert point.offered_pps > 0
        assert len(point.sample) > 0, fraction


def test_latency_rises_with_load_for_stable_switch():
    points = latency_sweep(
        p2p.build, "bess", 64,
        warmup_ns=FAST_WARMUP_NS, measure_ns=2_000_000.0,
    )
    assert points[0.99].mean_us >= points[0.10].mean_us


def test_latency_sweep_accepts_precomputed_r_plus():
    points = latency_sweep(
        p2p.build, "bess", 64, r_plus_pps=10e6,
        fractions=(0.5,), warmup_ns=FAST_WARMUP_NS, measure_ns=1_000_000.0,
    )
    assert points[0.5].offered_pps == pytest.approx(5e6)


class TestCachedRPlus:
    """latency_sweep reuses campaign-cached R+ rows (repro.campaign.cache)."""

    def test_r_plus_round_trips_through_the_campaign_cache(self, tmp_path):
        from repro.campaign.cache import ResultCache
        from repro.measure.latency import cached_r_plus

        cache = ResultCache(tmp_path / "cache")
        miss = cached_r_plus(p2p.build, "bess", 64, cache)
        assert len(cache) == 1
        hit = cached_r_plus(p2p.build, "bess", 64, cache)
        assert repr(hit) == repr(miss)
        # The number is the plain estimate, bit for bit.
        assert repr(miss) == repr(estimate_r_plus(p2p.build, "bess", 64))

    def test_campaign_record_is_reused_verbatim(self, tmp_path):
        """A prior campaign throughput run at the same grid point feeds
        the sweep without re-measuring: the key is the ordinary campaign
        key, so the record planted by execute_run must be a hit."""
        from repro.campaign.cache import ResultCache
        from repro.campaign.spec import RunSpec, execute_run
        from repro.measure.latency import cached_r_plus

        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec("p2p", "vpp")
        cache.put(spec, execute_run(spec))
        r_plus = cached_r_plus(p2p.build, "vpp", 64, cache)
        assert len(cache) == 1  # reused, not re-keyed
        assert repr(r_plus) == repr(estimate_r_plus(p2p.build, "vpp", 64))

    def test_sweep_with_cache_matches_uncached_sweep(self, tmp_path):
        from repro.campaign.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cached = latency_sweep(
            p2p.build, "bess", 64, cache=cache,
            fractions=(0.5,), warmup_ns=FAST_WARMUP_NS, measure_ns=1_000_000.0,
        )
        plain = latency_sweep(
            p2p.build, "bess", 64,
            fractions=(0.5,), warmup_ns=FAST_WARMUP_NS, measure_ns=1_000_000.0,
        )
        assert repr(cached[0.5].offered_pps) == repr(plain[0.5].offered_pps)
        assert repr(cached[0.5].mean_us) == repr(plain[0.5].mean_us)
        assert len(cache) == 1

    def test_custom_builder_bypasses_the_cache(self, tmp_path):
        """A builder outside repro.scenarios cannot be named by a RunSpec,
        so the sweep measures directly and stores nothing."""
        from repro.campaign.cache import ResultCache
        from repro.measure.latency import cached_r_plus

        def custom_build(switch_name, **kwargs):
            return p2p.build(switch_name, **kwargs)

        cache = ResultCache(tmp_path / "cache")
        r_plus = cached_r_plus(custom_build, "bess", 64, cache)
        assert r_plus > 0
        assert len(cache) == 0
