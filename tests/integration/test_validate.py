"""Integration tests for the reproduction validation battery."""

from __future__ import annotations

import pytest

from repro.analysis.validate import Check, _ordering_check, _value_check, summarize, validate


def test_value_check_within_tolerance():
    check = _value_check("fig", "x", measured=9.0, expected=10.0)
    assert check.passed
    assert check.expected == 10.0


def test_value_check_outside_tolerance():
    assert not _value_check("fig", "x", measured=5.0, expected=10.0).passed


def test_value_check_custom_tolerance():
    assert _value_check("fig", "x", 5.0, 10.0, tolerance=0.6).passed


def test_ordering_check():
    check = _ordering_check("fig", "a beats b", True, 1.0, "why")
    assert check.passed and check.expected is None


def test_summarize():
    checks = [
        Check("a", "x", 1.0, None, True),
        Check("a", "y", 1.0, None, False),
    ]
    assert summarize(checks) == (1, 2)


@pytest.mark.slow
def test_full_validation_passes():
    """The headline: the calibrated simulation satisfies every criterion.

    Uses reduced windows; the t4p4s value check gets extra tolerance at
    this window size (long jitter episodes need longer averaging).
    """
    checks = validate(warmup_ns=250_000.0, measure_ns=1_200_000.0)
    passed, total = summarize(checks)
    failed = [c.name for c in checks if not c.passed]
    # Allow at most one marginal value check to wobble at test windows.
    assert passed >= total - 1, f"failed criteria: {failed}"
    ordering_failures = [c for c in checks if not c.passed and c.expected is None]
    assert not ordering_failures, [c.name for c in ordering_failures]
