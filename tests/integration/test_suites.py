"""Integration tests for the named test suites (CSIT/VSperf style)."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.measure.suites import NFV_SUITE, PAPER_SUITE, SMOKE_SUITE, SUITES

FAST = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


def test_suite_registry():
    assert set(SUITES) == {"paper", "smoke", "nfv"}


def test_paper_suite_covers_the_grid():
    names = [spec.name for spec in PAPER_SUITE.experiments]
    # 3 scenarios x 3 sizes x 2 directions + 5 loopback lengths.
    assert len(names) == 23
    assert "p2p-64B-uni" in names
    assert "v2v-1024B-bidi" in names
    assert "loopback5-64B-uni" in names


def test_smoke_suite_runs_everywhere():
    results = SMOKE_SUITE.run("vpp", **FAST)
    assert set(results) == {"p2p-64B", "p2v-64B", "v2v-64B", "loopback1-64B"}
    assert all(result is not None and result.gbps > 0.3 for result in results.values())


def test_suite_marks_inapplicable_experiments_none():
    results = NFV_SUITE.run("bess", **FAST)
    # BESS runs the 2-VNF chains fine (limit is 3 VMs).
    assert all(result is not None for result in results.values())

    # But the paper suite's long chains are None for BESS.
    long_chain = [s for s in PAPER_SUITE.experiments if s.name == "loopback5-64B-uni"][0]
    assert long_chain.run("bess", FAST_WARMUP_NS, FAST_MEASURE_NS, seed=1) is None


def test_suite_results_deterministic():
    a = SMOKE_SUITE.run("ovs-dpdk", seed=5, **FAST)
    b = SMOKE_SUITE.run("ovs-dpdk", seed=5, **FAST)
    assert {k: v.gbps for k, v in a.items()} == {k: v.gbps for k, v in b.items()}


def test_nfv_suite_is_virtual_only():
    assert all("p2p" not in spec.name for spec in NFV_SUITE.experiments)


@pytest.mark.parametrize("suite", [SMOKE_SUITE])
def test_suite_run_result_types(suite):
    results = suite.run("vale", **FAST)
    for result in results.values():
        assert result.switch == "vale"
        assert result.frame_size in (64, 1024)
