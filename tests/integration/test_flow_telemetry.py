"""Integration tests for per-flow telemetry (repro.obs.flowstats).

The contract, end to end:

* flow telemetry is **free when off** -- no hot-path object carries a
  live tracker unless a session enables it (PR 2's ``obs is None``
  economics), and the seed workload's numbers stay bit-identical;
* flow telemetry is **invisible when on** -- hooks only read, so an
  accounted run reports exactly the numbers of an unaccounted one;
* warp declines accounted runs (replay would skip the hook sites);
* the observation session, campaign records, CSV export, suite tables
  and CLI all carry the summary through.
"""

from __future__ import annotations

import json
import time

from repro.cli import main
from repro.core.packet import PacketBlock, flows_front, make_block, release_batch, release_block
from repro.core.ring import Ring
from repro.measure.runner import drive
from repro.measure.flowreport import flow_report
from repro.obs.session import ObsConfig, observe
from repro.scenarios import p2p, v2v

from tests._helpers import FAST_MEASURE_NS, FAST_WARMUP_NS

WINDOWS = {"warmup_ns": FAST_WARMUP_NS, "measure_ns": FAST_MEASURE_NS}
FLOW_KWARGS = {"flows": 1000, "flow_dist": "zipf"}


# -- disabled-by-default economics ------------------------------------------


def test_hot_path_objects_stay_unaccounted_without_session():
    tb = p2p.build("ovs-dpdk", frame_size=64, **FLOW_KWARGS)
    assert tb.switch.flowstats is None
    for key in ("gen_ports", "sut_ports"):
        for port in tb.extras[key]:
            assert port.flowstats is None
            assert port.rx_ring.flowstats is None
    for source in tb.extras["tx"]:
        assert source.flowstats is None
    drive(tb, **WINDOWS)
    assert tb.switch.flowstats is None
    assert "flowstats" not in tb.extras


def test_obs_config_flowstats_defaults_off():
    config = ObsConfig(trace=True, metrics=True, profile=True)
    assert config.flowstats is False
    tb = p2p.build("ovs-dpdk", frame_size=64)
    observation = observe(tb, config)
    assert observation.flowstats is None
    assert tb.switch.flowstats is None
    drive(tb, **WINDOWS)
    try:
        observation.flow_summary()
    except ValueError:
        pass
    else:
        raise AssertionError("flow_summary must raise when flowstats is off")


class _SeedRing(Ring):
    """The pre-flowstats ring push, replicated for the micro-benchmark.

    ``Ring.push`` with telemetry disabled is meant to do exactly this
    much work; the timing test below fails if per-flow accounting ever
    creeps out from behind its ``flowstats is not None`` gates.
    """

    __slots__ = ()

    def push(self, item):
        count = item.count
        free = self.capacity - self._frames
        if free <= 0:
            self.dropped += count
            if item.__class__ is PacketBlock:
                release_block(item)
            return False
        if count > free:
            self.dropped += count - free
            item.count = free
            if item.flows is not None:
                item.flows = flows_front(item.flows, free)
            count = free
        was_empty = self._frames == 0
        self._queue.append(item)
        self._frames += count
        self.enqueued += count
        if was_empty and self.on_push is not None:
            self.on_push()
        return True


def _ring_drop_path_seconds(ring, n_rounds=3_000) -> float:
    # Overflow-heavy workload: the second push truncates and drops, so
    # every round exercises both flowstats-gated branches in push().
    start = time.perf_counter()
    for _ in range(n_rounds):
        ring.push(make_block(48, 64, 0.0))
        ring.push(make_block(48, 64, 0.0))
        release_batch(ring.pop_batch(64))
    return time.perf_counter() - start


def test_disabled_flowstats_ring_drop_path_overhead_under_5_percent():
    # Interleaved min-of-N: the minimum is the noise-free cost.
    baseline = current = float("inf")
    for _ in range(7):
        baseline = min(baseline, _ring_drop_path_seconds(_SeedRing(64)))
        current = min(current, _ring_drop_path_seconds(Ring(64)))
    assert current <= baseline * 1.05, (
        f"disabled flow telemetry costs the ring drop path: {current:.4f}s "
        f"vs seed-style {baseline:.4f}s"
    )


# -- accounting is bit-identical --------------------------------------------


def test_accounted_run_matches_unaccounted_run():
    """Hooks only read: same Gbps/Mpps/events with telemetry on or off."""
    def run(flowstats: bool):
        tb = p2p.build("ovs-dpdk", frame_size=64, seed=3, **FLOW_KWARGS)
        observation = (
            observe(tb, ObsConfig(flowstats=True, top_k=32)) if flowstats else None
        )
        result = drive(tb, **WINDOWS)
        return result, observation

    plain, _ = run(False)
    accounted, observation = run(True)
    assert plain.per_direction_gbps == accounted.per_direction_gbps
    assert plain.per_direction_mpps == accounted.per_direction_mpps
    assert plain.events == accounted.events
    summary = observation.flow_summary()
    assert summary["totals"]["tx_frames"] > 0
    assert 0 < summary["tracked"] <= 32


def test_warp_declines_accounted_runs():
    tb = p2p.build("ovs-dpdk", frame_size=64)
    observe(tb, ObsConfig(flowstats=True))
    result = drive(tb, **WINDOWS, warp=True)
    assert result.warp is not None
    assert not result.warp.engaged
    assert result.warp.reason == "flow-telemetry"


# -- session plumbing --------------------------------------------------------


def test_observation_carries_flow_summary_and_metrics():
    tb = p2p.build("ovs-dpdk", frame_size=64, seed=2, **FLOW_KWARGS)
    observation = observe(tb, ObsConfig(metrics=True, flowstats=True, top_k=16))
    result = drive(tb, **WINDOWS)
    observation.finish(result)

    summary = observation.flow_summary()
    json.dumps(summary)
    assert summary["top_k"] == 16
    assert summary["totals"]["cache_hits"] + summary["totals"]["cache_misses"] > 0
    assert "flow.tracked" in observation.registry.names()
    snapshot = observation.metrics_snapshot()
    assert snapshot["flowstats"]["totals"] == summary["totals"]

    text = observation.flow_prometheus_text(labels={"switch": "ovs-dpdk"})
    assert 'repro_flow_tx_frames{switch="ovs-dpdk",flow="total"}' in text


def test_per_flow_latency_histograms_for_probe_flows():
    tb = v2v.build_latency("vale", frame_size=64, seed=1)
    observation = observe(tb, ObsConfig(flowstats=True))
    result = drive(tb, warmup_ns=FAST_WARMUP_NS, measure_ns=4 * FAST_MEASURE_NS)
    observation.finish(result)
    digests = observation.flow_summary()["latency_us"]
    assert digests, "probe RTT samples must land in per-flow histograms"
    digest = next(iter(digests.values()))
    assert digest["count"] > 0
    assert digest["p50"] is not None


def test_flow_report_measure_entry_point():
    report = flow_report(
        p2p.build, "ovs-dpdk", top_k=8, seed=1, **WINDOWS, **FLOW_KWARGS
    )
    assert report.result.gbps > 0
    assert report.summary["top_k"] == 8
    assert report.fairness["jain"] > 0
    assert "total" in report.table()


# -- campaign persistence ----------------------------------------------------


def test_campaign_records_and_csv_carry_flowstats(tmp_path):
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import RunRecord, grid
    from repro.campaign.store import export_csv

    spec = grid(
        name="flowstats-it",
        switches=["ovs-dpdk"],
        scenarios=("p2p",),
        frame_sizes=(64,),
        directions=(False,),
        flows=(500,),
        flow_dist="zipf",
        **WINDOWS,
    ).with_obs(ObsConfig(flowstats=True, top_k=8))
    result = run_campaign(spec, workers=1)
    assert not result.failures
    (_, record), = result.outcomes
    assert record.flowstats is not None
    assert record.flowstats["top_k"] == 8
    assert record.flowstats["totals"]["tx_frames"] > 0

    # Round-trips through the record dict and the CSV export.
    revived = RunRecord.from_dict(record.to_dict())
    assert revived.flowstats == record.flowstats
    path = export_csv(result.outcomes, tmp_path / "out.csv")
    text = path.read_text()
    assert "flowstats" in text.splitlines()[0]
    assert '""totals""' in text or "totals" in text


def test_suite_outcomes_carry_flow_columns():
    from repro.measure.suites import SMOKE_SUITE

    outcomes = SMOKE_SUITE.run_outcomes(
        "ovs-dpdk",
        obs=ObsConfig(flowstats=True),
        flows=200,
        flow_dist="zipf",
        **WINDOWS,
    )
    ok = [o for o in outcomes.values() if o.status == "ok"]
    assert ok
    for outcome in ok:
        assert outcome.cache_hit_rate is not None
        assert 0.0 <= outcome.cache_hit_rate <= 1.0
        assert outcome.jain is not None


# -- CLI ---------------------------------------------------------------------


def test_cli_flowstats_command(capsys, tmp_path):
    out = tmp_path / "flows.prom"
    assert main([
        "flowstats", "p2p", "--switch", "ovs-dpdk",
        "--flows", "1k", "--flow-dist", "zipf", "--top-k", "16",
        "--warmup-ns", str(FAST_WARMUP_NS), "--measure-ns", str(FAST_MEASURE_NS),
        "--flow-out", str(out),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "jain=" in stdout and "total" in stdout
    assert 'flow="total"' in out.read_text()


def test_cli_flow_stats_flag_on_single_run(capsys):
    assert main([
        "p2p", "--switch", "vale", "--flow-stats",
        "--warmup-ns", str(FAST_WARMUP_NS), "--measure-ns", str(FAST_MEASURE_NS),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "Gbps" in stdout and "jain=" in stdout


def test_cli_flow_flags_error_on_unsupported_commands(capsys):
    # One shared validation path: commands that cannot carry the flow
    # axis reject it loudly instead of silently dropping it.
    for argv in (
        ["v2v-latency", "--switch", "vale", "--flows", "100"],
        ["validate", "--flows", "100"],
        ["perf", "--flows", "100"],
        ["flowstats", "v2v-latency", "--switch", "vale", "--flows", "100"],
    ):
        assert main(argv) == 1, argv
    err = capsys.readouterr().err
    assert "not supported" in err


def test_cli_resilience_carries_flow_axis(capsys):
    # Satellite of the flag-parity audit: resilience used to silently
    # ignore --flows; now the grid carries it into every run spec.
    assert main([
        "resilience", "p2p", "--switch", "ovs-dpdk",
        "--flows", "200", "--flow-dist", "zipf",
        "--fault", "nic-link-flap@sut-nic.p1:at_ns=800000,duration_ns=200000",
        "--warmup-ns", str(FAST_WARMUP_NS),
        "--measure-ns", str(2 * FAST_MEASURE_NS),
    ]) == 0
    out = capsys.readouterr().out
    assert "resilience 'p2p'" in out


def test_cli_suite_shows_flow_columns(capsys):
    assert main([
        "suite", "--switch", "ovs-dpdk", "--suite", "smoke",
        "--flows", "200", "--flow-dist", "zipf",
        "--warmup-ns", str(FAST_WARMUP_NS), "--measure-ns", str(FAST_MEASURE_NS),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "hit-rate" in stdout and "jain" in stdout
