"""Cross-validation: discrete-event results vs the closed-form model.

The bottleneck model is an independent implementation of the same cost
parameters; wherever queueing dynamics, drops and interrupt effects are
secondary, the two must agree.  Divergence tolerance is generous for
interrupt-driven and high-jitter switches (their dynamics are exactly
what the closed form ignores).
"""

from __future__ import annotations

import pytest

from _helpers import fast_throughput
from repro.analysis.bottleneck import estimate
from repro.scenarios import loopback, p2p, p2v, v2v

STABLE = ("bess", "fastclick", "vpp", "snabb")


@pytest.mark.parametrize("name", STABLE)
@pytest.mark.parametrize("size", (64, 256))
def test_p2p_agreement(name, size):
    predicted = estimate(name, "p2p", size).predicted_gbps
    measured = fast_throughput(p2p.build, name, size).gbps
    assert measured == pytest.approx(predicted, rel=0.15)


@pytest.mark.parametrize("name", STABLE)
def test_p2v_agreement(name):
    predicted = estimate(name, "p2v", 64).predicted_gbps
    measured = fast_throughput(p2v.build, name, 64).gbps
    assert measured == pytest.approx(predicted, rel=0.20)


@pytest.mark.parametrize("name", ("bess", "vpp", "snabb"))
def test_v2v_agreement(name):
    predicted = estimate(name, "v2v", 64).predicted_gbps
    measured = fast_throughput(v2v.build, name, 64).gbps
    assert measured == pytest.approx(predicted, rel=0.25)


@pytest.mark.parametrize("n_vnfs", (1, 2, 3))
def test_loopback_agreement_vpp(n_vnfs):
    predicted = estimate("vpp", "loopback", 64, n_vnfs=n_vnfs).predicted_gbps
    measured = fast_throughput(loopback.build, "vpp", 64, n_vnfs=n_vnfs).gbps
    assert measured == pytest.approx(predicted, rel=0.30)


def test_vale_sim_below_analytic_due_to_interrupts():
    """The DES adds ITR burst losses the closed form cannot see; the
    analytic number is an upper bound."""
    predicted = estimate("vale", "p2p", 64).predicted_gbps
    measured = fast_throughput(p2p.build, "vale", 64).gbps
    assert measured <= predicted * 1.05
    assert measured > predicted * 0.6
