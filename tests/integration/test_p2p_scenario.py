"""Integration tests: the p2p scenario end to end."""

from __future__ import annotations

import pytest

from _helpers import fast_throughput
from repro.measure.runner import drive
from repro.scenarios import p2p
from repro.switches.registry import ALL_SWITCHES


def test_every_switch_forwards_traffic():
    for name in ALL_SWITCHES:
        result = fast_throughput(p2p.build, name, 64)
        assert result.gbps > 1.0, name


def test_wire_is_the_ceiling():
    for name in ("bess", "vpp", "fastclick"):
        result = fast_throughput(p2p.build, name, 64)
        assert result.gbps <= 10.05, name


def test_fast_switches_saturate_at_64b():
    for name in ("bess", "vpp", "fastclick"):
        assert fast_throughput(p2p.build, name, 64).gbps > 9.5, name


def test_all_switches_saturate_at_256b():
    """Sec. 5.2: everything reaches line rate above 256 B unidirectional."""
    for name in ALL_SWITCHES:
        assert fast_throughput(p2p.build, name, 256).gbps > 9.0, name


def test_packet_conservation():
    tb = p2p.build("vpp", frame_size=64)
    result = drive(tb, warmup_ns=0.0, measure_ns=500_000.0)
    tx = tb.extras["tx"][0]
    sut0, sut1 = tb.extras["sut_ports"]
    received = tb.extras["rx"][0].port.rx_packets
    dropped = sut0.rx_ring.dropped + sut1.tx_dropped
    in_flight = len(sut0.rx_ring)
    forwarded = tb.switch.total_forwarded
    # Everything sent is accounted for: delivered, dropped, or in flight.
    assert tx.packets_sent >= received
    assert tx.packets_sent <= received + dropped + in_flight + 3 * 512


def test_bidirectional_has_two_meters():
    tb = p2p.build("bess", frame_size=64, bidirectional=True)
    assert len(tb.meters) == 2
    assert len(tb.switch.paths) == 2


def test_bidirectional_aggregate_exceeds_unidirectional_for_bess():
    uni = fast_throughput(p2p.build, "bess", 64)
    bidi = fast_throughput(p2p.build, "bess", 64, bidirectional=True)
    assert bidi.gbps > uni.gbps * 1.3


def test_core_bound_switch_bidi_equals_uni():
    """Sec. 5.2: slower switches achieve "similar results" bidirectionally."""
    uni = fast_throughput(p2p.build, "vale", 64)
    bidi = fast_throughput(p2p.build, "vale", 64, bidirectional=True)
    assert bidi.gbps == pytest.approx(uni.gbps, rel=0.25)


def test_sut_core_is_on_numa_node0():
    tb = p2p.build("vpp")
    assert tb.sut_core.name.startswith("numa0/")


def test_offered_rate_override():
    result = fast_throughput(p2p.build, "bess", 64, rate_pps=1_000_000.0)
    assert result.mpps == pytest.approx(1.0, rel=0.05)


def test_scenario_label():
    assert p2p.build("vpp").scenario == "p2p"


def test_probe_latency_collected():
    tb = p2p.build("bess", frame_size=64, rate_pps=1e6, probe_interval_ns=20_000.0)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=1_000_000.0)
    assert result.latency is not None
    assert len(result.latency) > 10
    assert result.latency.mean_us > 0


def test_interrupt_switch_higher_latency_than_polling():
    def mean_latency(name):
        tb = p2p.build(name, frame_size=64, rate_pps=1e6, probe_interval_ns=20_000.0)
        return drive(tb, warmup_ns=100_000.0, measure_ns=1_500_000.0).latency.mean_us

    assert mean_latency("vale") > 3 * mean_latency("bess")
