"""Integration tests for the paper's future-work extensions:
multi-core switches and container-hosted VNFs (Sec. 6)."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS, fast_throughput, full_throughput
from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.cpu.numa import Machine
from repro.measure.runner import drive
from repro.nic.port import NicPort
from repro.scenarios import loopback, p2p, p2v
from repro.scenarios.base import Testbed, connect_ports
from repro.switches.registry import create_switch
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate
from repro.vm.container import Container, ContainerRuntime
from repro.vm.machine import QemuCompatibilityError


def build_p2p_multicore(switch_name, n_cores, frame_size=64, seed=1):
    """Bidirectional p2p with the switch spread over ``n_cores``."""
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(seed)
    switch = create_switch(switch_name, sim, rngs=rngs, bus=machine.node0.bus)
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    a0 = switch.attach_phy(sut0)
    a1 = switch.attach_phy(sut1)
    switch.add_path(a0, a1)
    switch.add_path(a1, a0)
    cores = [machine.node0.add_core(f"sut{i}") for i in range(n_cores)]
    switch.bind_cores(cores)
    rate = saturating_rate(frame_size)
    tb = Testbed(sim, machine, rngs, switch, cores[0], frame_size, scenario="p2p-mc")
    for gen, mon in ((gen0, gen1), (gen1, gen0)):
        tx = MoonGenTx(sim, gen, rate, frame_size)
        rx = MoonGenRx(sim, mon, frame_size)
        tx.start(0.0)
        tb.meters.append(rx.meter)
    return tb


class TestMultiCore:
    def test_bind_cores_requires_cores(self, sim):
        switch = create_switch("vpp", sim)
        with pytest.raises(ValueError):
            switch.bind_cores([])

    def test_single_core_degenerates_to_bind_core(self):
        one = drive(build_p2p_multicore("vale", 1), warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)
        assert one.gbps > 3.0

    def test_two_cores_scale_core_bound_switch(self):
        """A CPU-bound switch doubles bidirectional throughput on 2 cores."""
        one = drive(build_p2p_multicore("t4p4s", 1), warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)
        two = drive(build_p2p_multicore("t4p4s", 2), warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)
        assert two.gbps > 1.6 * one.gbps

    def test_wire_bound_switch_does_not_scale(self):
        """BESS already saturates both wires bidirectionally-ish; extra
        cores add little."""
        one = drive(build_p2p_multicore("bess", 1), warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)
        two = drive(build_p2p_multicore("bess", 2), warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)
        assert two.gbps < 1.5 * one.gbps
        assert two.gbps <= 20.05

    def test_paths_distributed_round_robin(self, sim):
        switch = create_switch("vpp", sim)
        machine = Machine(sim)
        ports = [NicPort(sim, f"p{i}") for i in range(4)]
        for port in ports:
            peer = NicPort(sim, f"peer{port.name}")
            port.connect(peer)
        atts = [switch.attach_phy(p) for p in ports]
        for i in range(4):
            switch.add_path(atts[i], atts[(i + 1) % 4])
        cores = [machine.node0.add_core(f"c{i}") for i in range(2)]
        switch.bind_cores(cores)
        assert len(cores[0].tasks) == 1 and len(cores[1].tasks) == 1
        assert len(cores[0].tasks[0].paths) == 2
        assert len(cores[1].tasks[0].paths) == 2


class TestContainers:
    def test_container_runtime_has_no_qemu_limit(self, sim, machine):
        runtime = ContainerRuntime(sim, machine.node0)
        for i in range(6):
            runtime.spawn(f"c{i}")
        assert len(runtime.containers) == 6

    def test_container_is_a_guest(self, sim, machine):
        container = Container(sim, machine.node0, "c1")
        assert container.cores  # hosts apps like a VM

    def test_bess_long_chain_works_with_containers(self):
        """Footnote 5 is QEMU-specific: containerised BESS runs 5 VNFs."""
        with pytest.raises(QemuCompatibilityError):
            loopback.build("bess", n_vnfs=5)
        result = fast_throughput(
            loopback.build, "bess", 64, n_vnfs=5, virtualization="container"
        )
        assert result.gbps > 0.2

    def test_container_vif_keeps_host_costs(self):
        tb_vm = p2v.build("vpp")
        tb_ct = p2v.build("vpp", virtualization="container")
        vm_vif, ct_vif = tb_vm.extras["vif"], tb_ct.extras["vif"]
        assert ct_vif.costs.host_tx == vm_vif.costs.host_tx
        assert ct_vif.costs.guest_rx.per_packet < vm_vif.costs.guest_rx.per_packet
        assert ct_vif.notify_ns < vm_vif.notify_ns

    def test_container_chain_latency_below_vm_chain(self):
        """Lighter guest path + cheaper kicks shave chain RTT."""
        from repro.measure.latency import measure_latency_at

        def rtt(virtualization):
            point = measure_latency_at(
                loopback.build, "vpp", 64, rate_pps=1e6, fraction=0.5,
                warmup_ns=FAST_WARMUP_NS, measure_ns=2_500_000.0,
                n_vnfs=2, virtualization=virtualization,
            )
            return point.mean_us

        assert rtt("container") < rtt("vm")

    def test_unknown_virtualization_rejected(self):
        with pytest.raises(ValueError):
            p2v.build("vpp", virtualization="unikernel")

    def test_vale_containers_use_ptnet_unchanged(self):
        tb = p2v.build("vale", virtualization="container")
        assert tb.extras["vif"].backend == "ptnet"
