"""Representation-independence of the flyweight packet blocks.

The block representation and the scheduler fast paths are *encodings*, not
model changes: every observable figure -- throughput, loss, latency, meter
and port counters, observed metrics -- must be bit-identical to running
the same scenario with seed-style one-object-per-frame emission, and a run
must be deterministic regardless of how many runs preceded it.
"""

from __future__ import annotations

import json

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS

from repro.core.engine import Simulator
from repro.core.packet import PacketBlock, per_packet_emission
from repro.measure.runner import drive
from repro.scenarios import p2p, v2v
from repro.traffic.generator import PacedSource


def _canon(value):
    return repr(value) if isinstance(value, float) else value


def _run_stats(tb, result) -> dict:
    """Every observable figure of a driven testbed, floats repr-exact.

    ``events_executed`` is deliberately absent: it is an engine performance
    counter (core parking removes no-op poll events), not a measurement.
    """
    stats = {
        "gbps": [_canon(g) for g in result.per_direction_gbps],
        "mpps": [_canon(m) for m in result.per_direction_mpps],
        "forwarded": tb.switch.total_forwarded,
        "meter_packets": [m.packets for m in tb.meters],
        "meter_bytes": [m.bytes for m in tb.meters],
        "warmup_packets": [m.warmup_packets for m in tb.meters],
        "ring_drops": [
            (p.input.input_ring.name, p.input.input_ring.dropped, p.input.input_ring.enqueued)
            for p in tb.switch.paths
        ],
        "path_forwarded": [p.forwarded for p in tb.switch.paths],
        "port_tx": [
            (p.name, p.tx_packets, p.tx_bytes, p.tx_dropped, p.driver_drops, p.rx_packets)
            for p in (tb.extras.get("sut_ports") or ())
        ],
    }
    if result.latency is not None and len(result.latency):
        lat = result.latency
        stats["latency"] = {
            "n": len(lat),
            "mean_us": _canon(lat.mean_us),
            "p50": _canon(lat.percentile_us(50)),
            "p99": _canon(lat.percentile_us(99)),
        }
    return stats


def _drive_fast(tb, **kwargs):
    return drive(tb, warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS, **kwargs)


class TestBlockVsPerPacketBitIdentity:
    def test_p2p_throughput_identical(self):
        tb_blocks = p2p.build("ovs-dpdk", frame_size=64)
        blocks = _run_stats(tb_blocks, _drive_fast(tb_blocks))
        with per_packet_emission():
            tb_exact = p2p.build("ovs-dpdk", frame_size=64)
            exact = _run_stats(tb_exact, _drive_fast(tb_exact))
        assert blocks == exact

    def test_p2p_bidirectional_identical(self):
        tb_blocks = p2p.build("vale", frame_size=64, bidirectional=True)
        blocks = _run_stats(tb_blocks, _drive_fast(tb_blocks, bidirectional=True))
        with per_packet_emission():
            tb_exact = p2p.build("vale", frame_size=64, bidirectional=True)
            exact = _run_stats(tb_exact, _drive_fast(tb_exact, bidirectional=True))
        assert blocks == exact

    def test_v2v_identical(self):
        tb_blocks = v2v.build("vale", frame_size=64)
        blocks = _run_stats(tb_blocks, _drive_fast(tb_blocks))
        with per_packet_emission():
            tb_exact = v2v.build("vale", frame_size=64)
            exact = _run_stats(tb_exact, _drive_fast(tb_exact))
        assert blocks == exact

    def test_v2v_latency_probes_identical(self):
        """Probes materialise out of blocks with the same seqs and RTTs."""
        tb_blocks = v2v.build_latency("ovs-dpdk")
        blocks = _run_stats(tb_blocks, drive(tb_blocks, measure_ns=2_000_000.0))
        with per_packet_emission():
            tb_exact = v2v.build_latency("ovs-dpdk")
            exact = _run_stats(tb_exact, drive(tb_exact, measure_ns=2_000_000.0))
        assert "latency" in blocks
        assert blocks == exact

    def test_observed_run_metrics_identical(self):
        """The obs layer sees the same figures whichever encoding runs."""
        from repro.obs.session import ObsConfig, observe

        def observed_snapshot():
            tb = p2p.build("ovs-dpdk", frame_size=64)
            obs = observe(tb, ObsConfig(trace=True, metrics=True, profile=True))
            result = _drive_fast(tb)
            obs.finish(result)
            snap = json.loads(json.dumps(obs.metrics_snapshot(), default=repr, sort_keys=True))
            return _run_stats(tb, result), snap

        stats_blocks, snap_blocks = observed_snapshot()
        with per_packet_emission():
            stats_exact, snap_exact = observed_snapshot()
        assert stats_blocks == stats_exact
        assert snap_blocks == snap_exact


class TestSeqDeterminism:
    """Satellite: per-run seq scoping -- identical runs, identical seqs."""

    @staticmethod
    def _emitted_seqs(probe_interval=20_000.0, per_packet=False):
        class Recorder(PacedSource):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.emitted = []

            def _emit(self, batch):
                self.emitted.extend(batch)

        sim = Simulator()  # resets the per-run seq counter
        src = Recorder(sim, rate_pps=2e6, frame_size=64, probe_interval_ns=probe_interval)
        if per_packet:
            with per_packet_emission():
                src.start(0.0)
                sim.run_until(200_000.0)
        else:
            src.start(0.0)
            sim.run_until(200_000.0)
        seqs, probe_seqs = [], []
        for item in src.emitted:
            if item.__class__ is PacketBlock:
                seqs.extend(range(item.seq0, item.seq0 + item.count))
            else:
                seqs.append(item.seq)
                if item.is_probe:
                    probe_seqs.append(item.seq)
        return seqs, probe_seqs

    def test_two_identical_runs_assign_identical_seqs(self):
        first = self._emitted_seqs()
        second = self._emitted_seqs()
        assert first == second
        assert first[0][0] == 0  # scoped to the run, not the process

    def test_block_and_per_packet_emission_assign_identical_seqs(self):
        blocks = self._emitted_seqs()
        exact = self._emitted_seqs(per_packet=True)
        assert blocks == exact

    def test_scenario_runs_are_process_history_independent(self):
        def stats():
            tb = p2p.build("vpp", frame_size=64)
            return _run_stats(tb, _drive_fast(tb))

        assert stats() == stats()


class TestCoreParkingEquivalence:
    def test_parked_and_busy_polled_runs_match(self, monkeypatch):
        """Parking removes idle poll events, not observable behaviour."""
        from repro.traffic.guest import GuestMonitor

        tb = v2v.build("ovs-dpdk", frame_size=64)
        parked = _run_stats(tb, _drive_fast(tb))

        original_init = GuestMonitor.__init__

        def no_parking_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            del self.park_rings

        monkeypatch.setattr(GuestMonitor, "__init__", no_parking_init)
        tb = v2v.build("ovs-dpdk", frame_size=64)
        assert tb.vms  # the monitor runs in a guest in this scenario
        busy = _run_stats(tb, _drive_fast(tb))
        assert parked == busy
