"""Integration tests: RFC 2544 NDR search vs the paper's R+ methodology."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.measure.ndr import measure_loss, ndr_search
from repro.measure.throughput import estimate_r_plus
from repro.scenarios import p2p

FAST = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


def test_loss_zero_below_capacity():
    loss = measure_loss(p2p.build, "bess", 64, rate_pps=2e6, **FAST)
    assert loss == pytest.approx(0.0, abs=0.01)


def test_loss_positive_above_capacity():
    # VALE's 64B capacity is ~8 Mpps; offering line rate must drop.
    loss = measure_loss(p2p.build, "vale", 64, rate_pps=14.8e6, **FAST)
    assert loss > 0.3


def test_ndr_validation():
    with pytest.raises(ValueError):
        ndr_search(p2p.build, "bess", iterations=0)
    with pytest.raises(ValueError):
        ndr_search(p2p.build, "bess", loss_threshold=1.0)


def test_ndr_converges_below_capacity():
    result = ndr_search(p2p.build, "vale", 64, iterations=7, **FAST)
    r_plus = estimate_r_plus(p2p.build, "vale", 64, **FAST)
    assert 0 < result.ndr_pps <= r_plus * 1.1
    assert len(result.trials) == 7


def test_ndr_trials_are_bisection():
    result = ndr_search(p2p.build, "bess", 64, iterations=5, **FAST)
    offered = [rate for rate, _ in result.trials]
    # First probe is half of line rate; subsequent probes halve the gap.
    assert offered[0] == pytest.approx(14_880_952.38 / 2, rel=1e-3)


def test_strict_ndr_is_unreliable():
    """The paper's footnote 3: strict NDR "may converge to unreliable
    points due to even a single packet drop caused at the driver level".

    BESS genuinely forwards at line rate (R+ ~= 14.88 Mpps), yet the
    strict search gets derailed by sporadic driver drops and lands far
    below it.
    """
    r_plus = estimate_r_plus(p2p.build, "bess", 64, **FAST)
    strict = ndr_search(p2p.build, "bess", 64, iterations=8, **FAST)
    assert strict.ndr_pps < 0.8 * r_plus


def test_tolerant_ndr_approaches_r_plus():
    """Forgiving a handful of sporadic drops recovers the true rate --
    the massaging hardware rigs do implicitly.  This contrast is the
    quantitative argument for the paper's R+ methodology."""
    r_plus = estimate_r_plus(p2p.build, "bess", 64, **FAST)
    strict = ndr_search(p2p.build, "bess", 64, iterations=8, **FAST)
    tolerant = ndr_search(
        p2p.build, "bess", 64, iterations=8, tolerance_packets=64, **FAST
    )
    assert tolerant.ndr_pps > strict.ndr_pps
    assert tolerant.ndr_pps > 0.95 * r_plus


def test_relaxed_threshold_raises_ndr():
    strict = ndr_search(p2p.build, "t4p4s", 64, iterations=7, **FAST)
    relaxed = ndr_search(p2p.build, "t4p4s", 64, iterations=7, loss_threshold=0.05, **FAST)
    assert relaxed.ndr_pps >= strict.ndr_pps


def test_ndr_result_fields():
    result = ndr_search(p2p.build, "bess", 64, iterations=3, **FAST)
    assert result.switch == "bess"
    assert result.frame_size == 64
    assert result.ndr_mpps == pytest.approx(result.ndr_pps / 1e6)


class TestModelSeededSearch:
    """seed_from_model=True: the closed form replaces the top of the tree.

    The one-burst tolerance (64 packets) absorbs the window-edge
    artifacts that make strict loss non-monotone (footnote 3), so the
    two bracket-verification trials imply every skipped decision and the
    seeded search must return the bit-identical ndr_pps in fewer trials.
    These use the production windows: the seeded/unseeded contract is
    about the search tree, not the measurement noise, and the warp keeps
    them cheap.
    """

    TOLERANT = dict(tolerance_packets=64.0)

    @pytest.mark.parametrize("switch", ["vpp", "ovs-dpdk"])
    def test_seeded_is_bit_identical_with_fewer_trials(self, switch):
        plain = ndr_search(p2p.build, switch, 64, **self.TOLERANT)
        seeded = ndr_search(
            p2p.build, switch, 64, seed_from_model=True, **self.TOLERANT
        )
        assert repr(seeded.ndr_pps) == repr(plain.ndr_pps)
        assert len(seeded.trials) < len(plain.trials)
        assert seeded.iterations == plain.iterations == 10

    def test_seeded_trials_are_a_suffix_of_the_unseeded_tree(self):
        """After the two verification trials, the seeded search visits
        exactly the midpoints the unseeded search visited from that
        depth on (the dyadic recurrence is replayed bit-exactly)."""
        plain = ndr_search(p2p.build, "vpp", 64, **self.TOLERANT)
        seeded = ndr_search(
            p2p.build, "vpp", 64, seed_from_model=True, **self.TOLERANT
        )
        refine_rates = [rate for rate, _ in seeded.trials[2:]]
        plain_rates = [rate for rate, _ in plain.trials]
        assert refine_rates == plain_rates[-len(refine_rates):]

    def test_unhelpful_model_falls_back_to_full_search(self):
        """t4p4s saturates far below any dyadic split the margin would
        accept, so the bracket descent stops at depth 0 and the seeded
        search degenerates to the plain one (identical trials)."""
        plain = ndr_search(p2p.build, "t4p4s", 64, **self.TOLERANT)
        seeded = ndr_search(
            p2p.build, "t4p4s", 64, seed_from_model=True, **self.TOLERANT
        )
        assert repr(seeded.ndr_pps) == repr(plain.ndr_pps)
        assert seeded.trials == plain.trials

    def test_broken_model_is_survivable(self, monkeypatch):
        """An exception inside the closed form must not sink the search."""
        import repro.analysis.bottleneck as bottleneck

        def boom(*args, **kwargs):
            raise RuntimeError("no estimate for you")

        monkeypatch.setattr(bottleneck, "estimate", boom)
        plain = ndr_search(p2p.build, "vpp", 64, **self.TOLERANT)
        seeded = ndr_search(
            p2p.build, "vpp", 64, seed_from_model=True, **self.TOLERANT
        )
        assert repr(seeded.ndr_pps) == repr(plain.ndr_pps)
        assert seeded.trials == plain.trials
