"""Integration tests: RFC 2544 NDR search vs the paper's R+ methodology."""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.measure.ndr import measure_loss, ndr_search
from repro.measure.throughput import estimate_r_plus
from repro.scenarios import p2p

FAST = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


def test_loss_zero_below_capacity():
    loss = measure_loss(p2p.build, "bess", 64, rate_pps=2e6, **FAST)
    assert loss == pytest.approx(0.0, abs=0.01)


def test_loss_positive_above_capacity():
    # VALE's 64B capacity is ~8 Mpps; offering line rate must drop.
    loss = measure_loss(p2p.build, "vale", 64, rate_pps=14.8e6, **FAST)
    assert loss > 0.3


def test_ndr_validation():
    with pytest.raises(ValueError):
        ndr_search(p2p.build, "bess", iterations=0)
    with pytest.raises(ValueError):
        ndr_search(p2p.build, "bess", loss_threshold=1.0)


def test_ndr_converges_below_capacity():
    result = ndr_search(p2p.build, "vale", 64, iterations=7, **FAST)
    r_plus = estimate_r_plus(p2p.build, "vale", 64, **FAST)
    assert 0 < result.ndr_pps <= r_plus * 1.1
    assert len(result.trials) == 7


def test_ndr_trials_are_bisection():
    result = ndr_search(p2p.build, "bess", 64, iterations=5, **FAST)
    offered = [rate for rate, _ in result.trials]
    # First probe is half of line rate; subsequent probes halve the gap.
    assert offered[0] == pytest.approx(14_880_952.38 / 2, rel=1e-3)


def test_strict_ndr_is_unreliable():
    """The paper's footnote 3: strict NDR "may converge to unreliable
    points due to even a single packet drop caused at the driver level".

    BESS genuinely forwards at line rate (R+ ~= 14.88 Mpps), yet the
    strict search gets derailed by sporadic driver drops and lands far
    below it.
    """
    r_plus = estimate_r_plus(p2p.build, "bess", 64, **FAST)
    strict = ndr_search(p2p.build, "bess", 64, iterations=8, **FAST)
    assert strict.ndr_pps < 0.8 * r_plus


def test_tolerant_ndr_approaches_r_plus():
    """Forgiving a handful of sporadic drops recovers the true rate --
    the massaging hardware rigs do implicitly.  This contrast is the
    quantitative argument for the paper's R+ methodology."""
    r_plus = estimate_r_plus(p2p.build, "bess", 64, **FAST)
    strict = ndr_search(p2p.build, "bess", 64, iterations=8, **FAST)
    tolerant = ndr_search(
        p2p.build, "bess", 64, iterations=8, tolerance_packets=64, **FAST
    )
    assert tolerant.ndr_pps > strict.ndr_pps
    assert tolerant.ndr_pps > 0.95 * r_plus


def test_relaxed_threshold_raises_ndr():
    strict = ndr_search(p2p.build, "t4p4s", 64, iterations=7, **FAST)
    relaxed = ndr_search(p2p.build, "t4p4s", 64, iterations=7, loss_threshold=0.05, **FAST)
    assert relaxed.ndr_pps >= strict.ndr_pps


def test_ndr_result_fields():
    result = ndr_search(p2p.build, "bess", 64, iterations=3, **FAST)
    assert result.switch == "bess"
    assert result.frame_size == 64
    assert result.ndr_mpps == pytest.approx(result.ndr_pps / 1e6)
