"""Integration tests: the v2v scenario (throughput + Table 4 latency)."""

from __future__ import annotations

import pytest

from _helpers import fast_throughput
from repro.measure.runner import drive
from repro.scenarios import v2v
from repro.switches.registry import ALL_SWITCHES


def test_every_switch_forwards_between_vms():
    for name in ALL_SWITCHES:
        assert fast_throughput(v2v.build, name, 64).gbps > 1.0, name


def test_no_physical_nics_involved():
    tb = v2v.build("vpp")
    assert "sut_ports" not in tb.extras
    assert all(att.is_vif for att in tb.switch.attachments)


def test_vale_dominates_v2v_at_64b():
    """Sec. 5.2: VALE 10.5 Gbps, everyone else below ~7.4."""
    vale = fast_throughput(v2v.build, "vale", 64).gbps
    for name in ALL_SWITCHES:
        if name == "vale":
            continue
        assert fast_throughput(v2v.build, name, 64).gbps < vale, name


def test_vale_exceeds_wire_rate_at_1024b():
    """v2v has no NIC: memory is the only ceiling (Sec. 5.1)."""
    assert fast_throughput(v2v.build, "vale", 1024).gbps > 20.0


def test_virtio_guests_offer_at_most_line_rate():
    result = fast_throughput(v2v.build, "vpp", 1024)
    assert result.gbps <= 10.2


def test_bidirectional_lower_than_unidirectional_per_direction():
    uni = fast_throughput(v2v.build, "snabb", 64)
    bidi = fast_throughput(v2v.build, "snabb", 64, bidirectional=True)
    assert bidi.per_direction_gbps[0] < uni.gbps


def test_vale_bidirectional_uses_bridges_in_both_vms():
    tb = v2v.build("vale", bidirectional=True)
    assert "bridgevm1" in tb.extras and "bridgevm2" in tb.extras


def test_two_vms_spawned():
    assert len(v2v.build("ovs-dpdk").vms) == 2


class TestLatencyMode:
    def test_latency_testbed_shape(self):
        tb = v2v.build_latency("vpp")
        # Two interfaces per VM (Sec. 5.3) and two switch paths.
        assert len(tb.vms[0].interfaces) == 2
        assert len(tb.vms[1].interfaces) == 2
        assert len(tb.switch.paths) == 2

    def test_rtt_measured_for_all_switches(self):
        for name in ALL_SWITCHES:
            tb = v2v.build_latency(name)
            result = drive(tb, warmup_ns=200_000.0, measure_ns=1_500_000.0)
            assert result.latency is not None and len(result.latency) > 5, name
            assert 1.0 < result.latency.mean_us < 500.0, name

    def test_vale_has_the_lowest_rtt(self):
        """Table 4: VALE 21 us beats every vhost-user switch."""

        def rtt(name):
            tb = v2v.build_latency(name)
            return drive(tb, warmup_ns=200_000.0, measure_ns=1_500_000.0).latency.mean_us

        vale = rtt("vale")
        for name in ("bess", "vpp", "ovs-dpdk", "fastclick"):
            assert vale < rtt(name), name

    def test_probe_stream_is_1mpps(self):
        tb = v2v.build_latency("bess")
        assert tb.extras["gen"].rate_pps == pytest.approx(1e6)
