"""Failure injection: the testbed under hostile configurations.

These tests stress invariants rather than calibration: packet
conservation, graceful degradation and absence of deadlock when rings
are tiny, stalls are enormous, drop rates are pathological or offered
load is absurd.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.core.rng import RngRegistry
from repro.cpu.cores import Core
from repro.cpu.numa import Machine
from repro.measure.runner import drive
from repro.nic.port import NicPort
from repro.scenarios import p2p, p2v
from repro.scenarios.base import Testbed, connect_ports
from repro.switches.params import SwitchParams, VPP_PARAMS
from repro.switches.registry import create_switch
from repro.traffic.moongen import MoonGenRx, MoonGenTx


def build_p2p_custom(params, rate_pps=14.88e6, frame_size=64, nic_kwargs=None, drop_prob=None):
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(1)
    switch = create_switch(params.name, sim, rngs=rngs, params=params)
    nic_kwargs = nic_kwargs or {}
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0", **nic_kwargs), NicPort(sim, "s1", **nic_kwargs)
    if drop_prob is not None:
        for port in (gen0, gen1, sut0, sut1):
            port.driver_drop_prob = drop_prob
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    switch.add_path(switch.attach_phy(sut0), switch.attach_phy(sut1))
    switch.bind_core(machine.node0.add_core("sut"))
    tx = MoonGenTx(sim, gen0, rate_pps, frame_size)
    rx = MoonGenRx(sim, gen1, frame_size)
    tx.start(0.0)
    tb = Testbed(sim, machine, rngs, switch, machine.node0.cores[0], frame_size, scenario="fault")
    tb.meters.append(rx.meter)
    tb.extras.update(tx=tx, rx=rx, ports=(gen0, gen1, sut0, sut1))
    return tb


def test_one_slot_rings_still_forward_something():
    params = replace(VPP_PARAMS, nic_rx_slots=1, nic_tx_slots=1, batch_size=1)
    tb = build_p2p_custom(params)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=500_000.0)
    assert 0 < result.gbps < 10.0
    sut0 = tb.extras["ports"][2]
    assert sut0.rx_ring.dropped > 0  # tiny ring sheds load, no deadlock


def test_total_driver_failure_blackholes_cleanly():
    tb = build_p2p_custom(VPP_PARAMS, drop_prob=1.0)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=500_000.0)
    assert result.gbps == 0.0
    gen0 = tb.extras["ports"][0]
    assert gen0.driver_drops == tb.extras["tx"].packets_sent


def test_pathological_stall_storm_degrades_not_deadlocks():
    stormy = replace(
        VPP_PARAMS, stall_period_ns=50_000.0, stall_cycles=100_000.0
    )  # a 38us stall every 50us
    calm = drive(build_p2p_custom(VPP_PARAMS), warmup_ns=100_000.0, measure_ns=800_000.0)
    storm = drive(build_p2p_custom(stormy), warmup_ns=100_000.0, measure_ns=800_000.0)
    assert 0 < storm.gbps < 0.6 * calm.gbps


def test_extreme_jitter_keeps_conservation():
    wild = replace(VPP_PARAMS, jitter_sigma=1.5, jitter_period_ns=20_000.0)
    tb = build_p2p_custom(wild)
    drive(tb, warmup_ns=0.0, measure_ns=600_000.0)
    tx = tb.extras["tx"]
    gen0, gen1, sut0, sut1 = tb.extras["ports"]
    delivered = gen1.rx_packets
    dropped = (
        gen0.driver_drops + gen0.tx_dropped
        + sut0.rx_ring.dropped + sut1.tx_dropped + sut1.driver_drops
    )
    in_flight = len(sut0.rx_ring)
    # Conservation within the final scheduler horizon: packets may sit
    # mid-wire, in a scheduled delivery event, or in a processing batch
    # at cutoff -- bounded by a few max-size batches plus wire depth.
    slack = 4 * 256 + 512
    assert abs(tx.packets_sent - (delivered + dropped + in_flight)) <= slack


def test_zero_offered_load_rejected():
    with pytest.raises(ValueError):
        p2p.build("vpp", rate_pps=0.0)


def test_absurd_offered_load_clamped_to_line_rate():
    tb = p2p.build("bess", rate_pps=1e12)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=500_000.0)
    assert result.gbps <= 10.05


def test_guest_ring_exhaustion_sheds_load():
    """A vring of 2 slots: the guest path throttles, the SUT survives."""
    from dataclasses import replace as dreplace

    from repro.switches.params import ALL_PARAMS

    tiny = dreplace(ALL_PARAMS["vpp"], vring_slots=2)
    original = ALL_PARAMS["vpp"]
    ALL_PARAMS["vpp"] = tiny
    try:
        tb = p2v.build("vpp", frame_size=64)
        result = drive(tb, warmup_ns=100_000.0, measure_ns=500_000.0)
    finally:
        ALL_PARAMS["vpp"] = original
    assert 0 < result.gbps < 3.0
    vif = tb.extras["vif"]
    assert vif.to_guest.dropped > 0


def test_interrupt_switch_survives_wake_latency_spike():
    from repro.switches.params import VALE_PARAMS

    sleepy = replace(VALE_PARAMS, interrupt_latency_ns=500_000.0)  # 0.5 ms wake
    tb = build_p2p_custom(sleepy, rate_pps=1e6)
    result = drive(tb, warmup_ns=200_000.0, measure_ns=1_000_000.0)
    assert result.gbps > 0  # still forwards, just slowly


def test_switch_with_zero_cost_saturates_wire_exactly():
    free = SwitchParams(
        name="vpp",
        display_name="FreeSwitch",
        proc=type(VPP_PARAMS.proc)(0.0, 0.0, 0.0),
        nic_rx=type(VPP_PARAMS.proc)(0.0, 0.0, 0.0),
        nic_tx=type(VPP_PARAMS.proc)(0.0, 0.0, 0.0),
        jitter_sigma=0.0,
    )
    tb = build_p2p_custom(free)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=500_000.0)
    assert result.gbps == pytest.approx(10.0, rel=0.02)
