"""Integration tests for fault injection and resilience measurement.

Covers the per-layer fault kinds end-to-end, the determinism contract
(same seed + plan => byte-identical metrics, serial or parallel), the
campaign wiring, the env-gated watchdog and graceful SIGINT handling.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import RunSpec, execute_run, grid
from repro.campaign.store import CampaignStore
from repro.faults import FaultEvent, FaultPlan
from repro.measure.resilience import measure_resilience
from repro.scenarios import p2p, p2v

_WINDOWS = {"warmup_ns": 400_000.0, "measure_ns": 1_600_000.0}


def _flap(at_ns=800_000.0, duration_ns=300_000.0, target="sut-nic.p1"):
    return FaultPlan.of(
        FaultEvent(at_ns=at_ns, kind="nic-link-flap", target=target, duration_ns=duration_ns)
    )


# ---------------------------------------------------------------------------
# Fault effects, per layer
# ---------------------------------------------------------------------------


def test_link_flap_costs_frames_then_recovers():
    result, report, obs = measure_resilience(
        p2p.build, "vale", 64, _flap(), **_WINDOWS
    )
    assert obs is None
    assert report.pre_fault_pps > 1e6
    assert report.loss_during_fault_frames > 0
    assert report.drops_during_fault_frames > 0
    assert report.recovered
    assert report.time_to_recover_ns is not None
    assert report.fault_spans[0]["detail"]["frames_dropped"] > 0
    # The flap must hurt the aggregate number vs an unfaulted run.
    clean = p2p.build("vale", frame_size=64, seed=1)
    from repro.measure.runner import drive

    baseline = drive(clean, **_WINDOWS)
    assert result.gbps < baseline.gbps


def test_timeline_shows_the_outage_window():
    _, report, _ = measure_resilience(p2p.build, "vale", 64, _flap(), **_WINDOWS)
    during = [
        row["pps"]
        for row in report.timeline
        if 800_000.0 < row["t_ns"] <= 1_100_000.0
    ]
    after = [row["pps"] for row in report.timeline if row["t_ns"] > 1_300_000.0]
    assert during and min(during) < 0.5 * report.pre_fault_pps
    assert after and max(after) > 0.9 * report.pre_fault_pps


def test_vnf_crash_halts_guest_traffic_and_restarts():
    plan = FaultPlan.of(
        FaultEvent(at_ns=800_000.0, kind="vnf-crash", target="vm1", duration_ns=300_000.0)
    )
    _, report, _ = measure_resilience(p2v.build, "vale", 64, plan, **_WINDOWS)
    span = report.fault_spans[0]
    assert span["kind"] == "vnf-crash"
    assert "frames_lost" in span["detail"]
    assert "frames_drained" in span["detail"]
    assert report.loss_during_fault_frames > 0


def test_vif_disconnect_and_freeze():
    for kind in ("vif-disconnect", "vif-freeze"):
        plan = FaultPlan.of(
            FaultEvent(at_ns=800_000.0, kind=kind, target="vm1.eth0", duration_ns=200_000.0)
        )
        _, report, _ = measure_resilience(p2v.build, "vale", 64, plan, **_WINDOWS)
        assert report.fault_spans[0]["kind"] == kind
        assert report.recovered, f"{kind} should heal after reconnect/thaw"


def test_core_preempt_and_throttle_degrade_throughput():
    for kind in ("core-preempt", "core-throttle"):
        plan = FaultPlan.of(
            FaultEvent(at_ns=800_000.0, kind=kind, target="numa0/sut", duration_ns=300_000.0)
        )
        _, report, _ = measure_resilience(p2p.build, "vale", 64, plan, **_WINDOWS)
        assert report.loss_during_fault_frames > 0, kind
        assert report.recovered, kind


def test_mac_flush_is_instant_and_survivable():
    plan = FaultPlan.of(
        FaultEvent(at_ns=800_000.0, kind="switch-mac-flush", target="switch")
    )
    _, report, _ = measure_resilience(p2p.build, "vale", 64, plan, **_WINDOWS)
    span = report.fault_spans[0]
    assert span["start_ns"] == span["end_ns"] == 800_000.0
    assert span["detail"]["entries_flushed"] >= 1
    assert report.recovered


def test_emc_flush_and_flow_reinstall_on_ovs():
    plan = FaultPlan.of(
        FaultEvent(at_ns=700_000.0, kind="switch-emc-flush", target="switch"),
        FaultEvent(
            at_ns=1_000_000.0, kind="switch-flow-reinstall", target="switch",
            duration_ns=200_000.0,
        ),
    )
    _, report, _ = measure_resilience(p2p.build, "ovs-dpdk", 64, plan, **_WINDOWS)
    kinds = [span["kind"] for span in report.fault_spans]
    assert "switch-emc-flush" in kinds
    assert "switch-flow-reinstall" in kinds
    reinstall = next(s for s in report.fault_spans if s["kind"] == "switch-flow-reinstall")
    # p2p installs no OpenFlow rules, so the reinstall window flushes the
    # caches and reinstalls an empty set; rule preservation itself is
    # unit-tested against a populated table.
    assert reinstall["detail"]["rules"] == 0
    assert report.recovered


def test_mem_contention_with_stochastic_bursts_is_deterministic():
    plan = FaultPlan.of(
        FaultEvent(
            at_ns=800_000.0, kind="mem-contention", target="numa0",
            duration_ns=400_000.0, seed=7,
            args=(("factor", 0.4), ("burst_bytes", 262144.0), ("bursts", 20.0)),
        )
    )
    reports = [
        measure_resilience(p2p.build, "snabb", 64, plan, **_WINDOWS)[1].to_dict()
        for _ in range(2)
    ]
    assert json.dumps(reports[0], sort_keys=True) == json.dumps(reports[1], sort_keys=True)


# ---------------------------------------------------------------------------
# Campaign wiring + determinism
# ---------------------------------------------------------------------------


def _resilience_grid(seeds=(1,), switches=("vale",)):
    return grid(
        name="resilience-it",
        switches=switches,
        scenarios=("p2p",),
        frame_sizes=(64,),
        directions=(False,),
        seeds=seeds,
        fault_plans=(_flap(),),
        **_WINDOWS,
    )


def _comparable(record) -> str:
    payload = record.to_dict()
    payload.pop("wall_clock_s", None)  # host timing, not simulation output
    return json.dumps(payload, sort_keys=True)


def test_execute_run_attaches_resilience_report():
    spec = _resilience_grid().runs[0]
    assert spec.kind == "resilience"
    record = execute_run(spec)
    assert record.status == "ok"
    assert record.resilience is not None
    assert record.resilience["recovered"] is True
    assert record.resilience["fault_spans"]
    # And the record round-trips through its wire format.
    from repro.campaign.spec import RunRecord

    clone = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert clone.resilience == record.resilience


def test_same_seed_and_plan_is_byte_identical():
    spec = _resilience_grid().runs[0]
    assert _comparable(execute_run(spec)) == _comparable(execute_run(spec))


@pytest.mark.skipif(os.name != "posix", reason="needs fork for the process pool")
def test_serial_and_parallel_resilience_records_are_byte_identical():
    campaign = _resilience_grid(seeds=(1, 2), switches=("vale", "bess"))
    serial = run_campaign(campaign, workers=1)
    parallel = run_campaign(campaign, workers=2)
    assert len(serial.outcomes) == len(parallel.outcomes) == 4
    for (_, a), (_, b) in zip(serial.outcomes, parallel.outcomes):
        assert _comparable(a) == _comparable(b)


def test_unfaulted_spec_wire_format_is_unchanged():
    """No plan => no 'faults' key: pre-fault cache keys and stores stay valid."""
    spec = RunSpec(scenario="p2p", switch="vale")
    assert "faults" not in spec.to_dict()
    faulted = _resilience_grid().runs[0]
    assert "faults" in faulted.to_dict()
    from repro.campaign.cache import params_fingerprint, run_key

    fp = params_fingerprint("vale")
    assert run_key(spec, fp) != run_key(faulted, fp)


def test_with_faults_toggles_the_fault_axis():
    campaign = grid(
        "toggle", ["vale"], scenarios=("p2p",), frame_sizes=(64,),
        directions=(False,), **_WINDOWS,
    )
    faulted = campaign.with_faults(_flap())
    assert all(run.kind == "resilience" and run.faults for run in faulted.runs)
    cleared = faulted.with_faults(FaultPlan())
    assert all(run.kind == "throughput" and not run.faults for run in cleared.runs)
    assert [r.to_dict() for r in cleared.runs] == [r.to_dict() for r in campaign.runs]


# ---------------------------------------------------------------------------
# Env-gated watchdog in the runner
# ---------------------------------------------------------------------------


def test_drive_watchdog_env_gate(monkeypatch, tmp_path):
    from repro.measure.runner import drive

    report_path = tmp_path / "watchdog.jsonl"
    monkeypatch.setenv("REPRO_WATCHDOG", "1")
    monkeypatch.setenv("REPRO_WATCHDOG_REPORT", str(report_path))
    tb = p2p.build("vale", frame_size=64, seed=1)
    watched = drive(tb, **_WINDOWS)
    rows = [json.loads(line) for line in report_path.read_text().splitlines()]
    assert len(rows) == 1
    assert rows[0]["label"] == "p2p/vale/64B"
    assert rows[0]["violations"] == []
    assert rows[0]["scans"] > 0

    # The watchdog only reads: measured numbers are identical without it.
    monkeypatch.delenv("REPRO_WATCHDOG")
    monkeypatch.delenv("REPRO_WATCHDOG_REPORT")
    unwatched = drive(p2p.build("vale", frame_size=64, seed=1), **_WINDOWS)
    assert watched.per_direction_gbps == unwatched.per_direction_gbps


def test_drive_watchdog_strict_mode(monkeypatch):
    from repro.faults.watchdog import WatchdogError
    from repro.measure.runner import drive

    monkeypatch.setenv("REPRO_WATCHDOG", "strict")
    tb = p2p.build("vale", frame_size=64, seed=1)
    # Seed corruption that the first scan must catch.
    tb.switch.paths[0].forwarded += 1_000_000
    with pytest.raises(WatchdogError, match="conservation"):
        drive(tb, **_WINDOWS)


# ---------------------------------------------------------------------------
# Graceful SIGINT/SIGTERM
# ---------------------------------------------------------------------------


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_sigint_interrupts_campaign_with_resumable_store(tmp_path):
    campaign = grid(
        "interruptible", ["vale", "bess", "snabb"], scenarios=("p2p",),
        frame_sizes=(64,), directions=(False,), **_WINDOWS,
    )
    store_path = tmp_path / "store.jsonl"
    lines: list[str] = []

    def emit(message: str) -> None:
        lines.append(message)
        # Interrupt after the first completed run.
        if message.startswith("[1/"):
            os.kill(os.getpid(), signal.SIGINT)

    result = run_campaign(
        campaign,
        workers=1,
        store=CampaignStore(str(store_path)),
        progress=ProgressReporter(total=len(campaign), emit=emit),
    )
    assert result.interrupted
    assert 1 <= len(result.outcomes) < len(campaign)
    # The partial rows were flushed and are resumable.
    resumed = run_campaign(
        campaign, workers=1, store=CampaignStore(str(store_path)), resume=True
    )
    assert not resumed.interrupted
    assert resumed.resumed == len(result.outcomes)
    assert resumed.executed == len(campaign) - len(result.outcomes)
    assert len(resumed.outcomes) == len(campaign)


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_sigterm_is_handled_like_sigint():
    campaign = grid(
        "terminable", ["vale", "bess"], scenarios=("p2p",),
        frame_sizes=(64,), directions=(False,), **_WINDOWS,
    )

    def emit(message: str) -> None:
        if message.startswith("[1/"):
            os.kill(os.getpid(), signal.SIGTERM)

    result = run_campaign(
        campaign, workers=1,
        progress=ProgressReporter(total=len(campaign), emit=emit),
    )
    assert result.interrupted
    assert len(result.outcomes) < len(campaign)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_resilience_happy_path(capsys):
    from repro.cli import main

    rc = main([
        "resilience", "p2p", "--switch", "vale",
        "--fault", "nic-link-flap@sut-nic.p1:at_ns=800000,duration_ns=300000",
        "--warmup-ns", "400000", "--measure-ns", "1600000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resilience 'p2p'" in out
    assert "nic-link-flap@sut-nic.p1" in out
    assert "yes" in out  # recovered column


def test_cli_resilience_epsilon_and_bin_flow_into_the_report(capsys):
    from repro.cli import main

    rc = main([
        "resilience", "p2p", "--switch", "vale",
        "--fault", "nic-link-flap@sut-nic.p1:at_ns=800000,duration_ns=300000",
        "--epsilon", "0.2", "--bin-ns", "50000",
        "--warmup-ns", "400000", "--measure-ns", "1600000",
    ])
    assert rc == 0
