"""Integration tests for the observability layer (repro.obs).

Covers the PR's acceptance bars: the `repro-bench trace` artifact is
valid Chrome trace JSON, the cycle-attribution profiler agrees with the
closed-form capacity model within queueing noise, observation never
changes the measurement, snapshots are deterministic across serial and
parallel campaign execution, and redirected stdout stays a clean CSV.
"""

from __future__ import annotations

import csv
import heapq
import json
import time

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
from repro.analysis.bottleneck import diff_attribution, stage_breakdown
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, RunRecord, RunSpec
from repro.cli import main
from repro.core.engine import Simulator
from repro.measure.runner import drive
from repro.measure.throughput import measure_throughput
from repro.obs import ObsConfig, observe
from repro.scenarios import p2p, v2v

WINDOWS = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


# --- the CLI trace artifact (acceptance criterion) ------------------------


def test_cli_trace_emits_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = main([
        "trace", "p2p", "--switch", "vpp", "--trace-out", str(out),
        "--warmup-ns", str(FAST_WARMUP_NS), "--measure-ns", str(FAST_MEASURE_NS),
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] in ("ms", "ns")
    assert len(events) > 10
    # Every event carries the Chrome trace-event envelope fields
    # (metadata records have no timestamp).
    assert all({"ph", "pid", "tid"} <= set(e) for e in events)
    assert all("ts" in e for e in events if e["ph"] != "M")
    phases = {e["ph"] for e in events}
    assert "X" in phases  # spans
    assert "M" in phases  # thread-name metadata for the string tracks
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert any(name.startswith("core/") for name in names)
    assert any(name.startswith("path/") for name in names)
    # tids are remapped to ints for the viewer.
    assert all(isinstance(e["tid"], int) for e in events)


def test_cli_trace_rejects_unknown_target(capsys):
    assert main(["trace", "nonsense", "--switch", "vpp"]) == 1


# --- profiler vs closed form (acceptance criterion) -----------------------


def _observed_chain(build, switch, scenario):
    tb = build(switch, frame_size=64)
    obs = observe(tb)
    result = drive(tb, **WINDOWS)
    obs.finish(result)
    return obs.profile().chain_cycles_per_packet()


@pytest.mark.parametrize("name", ("vpp", "bess"))
def test_attribution_matches_closed_form_p2p(name):
    observed = _observed_chain(p2p.build, name, "p2p")
    predicted = stage_breakdown(name, "p2p", 64)
    diff = diff_attribution(observed, predicted)
    assert diff["total"]["ratio"] == pytest.approx(1.0, abs=0.25)
    # The raw stages individually, not just a lucky total.
    for stage in ("rx", "proc", "tx"):
        assert diff[stage]["ratio"] == pytest.approx(1.0, abs=0.35)


@pytest.mark.parametrize("name", ("vpp", "snabb"))
def test_attribution_matches_closed_form_v2v(name):
    observed = _observed_chain(v2v.build, name, "v2v")
    predicted = stage_breakdown(name, "v2v", 64)
    diff = diff_attribution(observed, predicted)
    assert diff["total"]["ratio"] == pytest.approx(1.0, abs=0.30)


# --- observation is read-only ---------------------------------------------


def test_observed_run_is_bit_identical_to_unobserved():
    plain = measure_throughput(p2p.build, "vpp", 64, seed=5, **WINDOWS)

    tb = p2p.build("vpp", frame_size=64, seed=5)
    obs = observe(tb, trace=True)
    observed = drive(tb, **WINDOWS)
    obs.finish(observed)

    assert observed.per_direction_gbps == plain.per_direction_gbps
    assert observed.per_direction_mpps == plain.per_direction_mpps
    assert observed.events == plain.events


# --- determinism across serial and parallel execution (satellite f) -------


def test_metric_snapshots_identical_serial_vs_parallel(tmp_path):
    campaign = CampaignSpec(
        name="obs-determinism",
        runs=(
            RunSpec("p2p", "vpp", seed=7, **WINDOWS),
            RunSpec("v2v", "snabb", seed=7, **WINDOWS),
        ),
    ).with_obs(trace=True, metrics=True, profile=True)

    serial = run_campaign(campaign, workers=1)
    parallel = run_campaign(campaign, workers=2)

    def snapshots(result):
        out = {}
        for key, outcome in result.outcomes:
            assert isinstance(outcome, RunRecord)
            assert outcome.metrics is not None
            out[key] = json.dumps(outcome.metrics, sort_keys=True)
        return out

    assert snapshots(serial) == snapshots(parallel)


def test_snapshot_contains_all_three_surfaces():
    tb = p2p.build("vpp", frame_size=64)
    obs = observe(tb, trace=True)
    result = drive(tb, **WINDOWS)
    obs.finish(result)
    snapshot = obs.metrics_snapshot()
    assert snapshot["metrics"]["run.gbps"] == pytest.approx(result.gbps)
    assert snapshot["profile"]["packets"] > 0
    assert snapshot["trace"]["events"] > 0
    json.dumps(snapshot)  # must survive the JSONL store / CSV column


# --- clean stdout when piping (satellite a) --------------------------------


def test_campaign_stdout_is_clean_csv(tmp_path, capsys):
    rc = main([
        "campaign", "--suite", "smoke", "--switches", "vpp",
        "--no-cache", "--export-csv", "-", "--metrics",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    # stdout parses as a CSV table and contains nothing else.
    rows = list(csv.DictReader(captured.out.splitlines()))
    assert rows and all(row["switch"] == "vpp" for row in rows)
    assert all(row["status"] == "ok" for row in rows)
    assert all(json.loads(row["metrics"])["metrics"] for row in rows)
    # The human-facing telemetry went to stderr instead.
    assert "campaign summary" in captured.err


# --- disabled observability is near-free (acceptance criterion) ------------


class _SeedSimulator(Simulator):
    """The growth seed's dispatch loop, replicated for the micro-benchmark.

    The engine's unobserved branch is meant to stay byte-identical to
    this; the timing test below fails if per-event observer support ever
    creeps into the disabled path.
    """

    def run_until(self, t_end_ns: float) -> None:
        self._running = True
        try:
            queue = self._queue
            while queue and queue[0][0] <= t_end_ns:
                time_ns, _, callback = heapq.heappop(queue)
                self._now = time_ns
                callback()
                self.events_executed += 1
            self._now = max(self._now, t_end_ns)
        finally:
            self._running = False


def _dispatch_seconds(sim_cls, n_events=20_000) -> float:
    sim = sim_cls()

    def rearm() -> None:
        if sim.events_executed < n_events:
            sim.after(1.0, rearm)

    sim.after(0.0, rearm)
    start = time.perf_counter()
    sim.run_until(float(n_events + 2))
    elapsed = time.perf_counter() - start
    assert sim.events_executed >= n_events
    return elapsed


def test_disabled_observability_dispatch_overhead_under_5_percent():
    # Interleaved min-of-N: the minimum is the noise-free dispatch cost.
    baseline = current = float("inf")
    for _ in range(7):
        baseline = min(baseline, _dispatch_seconds(_SeedSimulator))
        current = min(current, _dispatch_seconds(Simulator))
    assert current <= baseline * 1.05, (
        f"unobserved dispatch loop regressed: {current:.4f}s vs "
        f"seed-style {baseline:.4f}s"
    )


def _ring_push_pop_seconds(ring, n_rounds=4_000) -> float:
    from repro.core.packet import make_block, release_batch

    start = time.perf_counter()
    for _ in range(n_rounds):
        ring.push(make_block(32, 64, 0.0))
        release_batch(ring.pop_batch(32))
    return time.perf_counter() - start


def test_fault_capable_ring_hot_path_overhead_under_5_percent():
    """The fault layer must cost unfaulted rings nothing measurable.

    Fault states are entered by swapping the ring's *class* and left by
    swapping it back, so a pristine ring and a faulted-then-restored ring
    must run the same push/pop machinery: no flags, no extra branches.
    The watchdog is likewise external (a periodic scanner), so with
    ``REPRO_WATCHDOG`` unset the hot path is exactly the pre-fault code.
    """
    from repro.core.ring import Ring, disconnect_ring, freeze_ring, restore_ring

    pristine = Ring(64)
    restored = Ring(64)
    freeze_ring(restored)
    restore_ring(restored)
    disconnect_ring(restored)
    restore_ring(restored)
    assert restored.__class__ is Ring

    baseline = current = float("inf")
    for _ in range(7):
        baseline = min(baseline, _ring_push_pop_seconds(pristine))
        current = min(current, _ring_push_pop_seconds(restored))
    assert current <= baseline * 1.05, (
        f"faulted-then-restored ring slower than pristine: {current:.4f}s "
        f"vs {baseline:.4f}s"
    )
