"""Integration tests for the repro.flows traffic-diversity axis.

The contracts, end to end:

* ``flows=1`` (and all flow defaults) is *exactly* the seed workload --
  bit-identical numbers, block fast path engaged, no flow population
  registered, no cache gauges;
* multi-flow offered load drives the capacity-bounded flow caches into
  distinct regimes (EMC hit-rate degrades with flow count);
* warp auto-declines flow-diverse runs with a stable reason and never
  engages;
* the flow axis rides campaign specs deterministically (serial ==
  parallel) and labels/cache keys stay backward-compatible.
"""

from __future__ import annotations

import pytest

from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS, fast_throughput
from repro.campaign.executor import run_campaign
from repro.campaign.spec import grid
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v

WINDOWS = dict(warmup_ns=FAST_WARMUP_NS, measure_ns=FAST_MEASURE_NS)


# -- flows=1 is the seed workload, verbatim ---------------------------------


def test_single_flow_build_registers_no_population():
    tb = p2p.build("ovs-dpdk", frame_size=64, flows=1)
    assert "flow_population" not in tb.extras
    assert tb.extras["tx"][0].flow_population is None


def test_single_flow_numbers_bit_identical_to_seed():
    seed_run = fast_throughput(p2p.build, "ovs-dpdk")
    flow_run = fast_throughput(p2p.build, "ovs-dpdk", flows=1, flow_dist="zipf")
    assert seed_run.per_direction_gbps == flow_run.per_direction_gbps
    assert seed_run.per_direction_mpps == flow_run.per_direction_mpps
    assert seed_run.events == flow_run.events


def test_single_flow_keeps_block_fast_path():
    tb = p2p.build("ovs-dpdk", frame_size=64, flows=1)
    assert tb.extras["tx"][0]._uniform  # flyweight block emission engaged


def test_multi_flow_build_registers_population():
    tb = p2p.build("ovs-dpdk", frame_size=64, flows=1000, flow_dist="zipf")
    pop = tb.extras["flow_population"]
    assert pop.flows == 1000 and pop.dist == "zipf"
    assert tb.extras["tx"][0].flow_population is pop
    assert not tb.extras["tx"][0]._uniform


@pytest.mark.parametrize("build", [p2p.build, p2v.build, v2v.build, loopback.build])
def test_every_scenario_accepts_the_flow_axis(build):
    result = fast_throughput(build, "ovs-dpdk", flows=256, flow_dist="zipf")
    assert result.gbps > 0.0


# -- distinct cache regimes -------------------------------------------------


def _cache_after_run(switch_name, **kwargs):
    tb = p2p.build(switch_name, frame_size=64, **kwargs)
    drive(tb, **WINDOWS)
    return tb.switch.cache_stats()


def test_emc_hit_rate_degrades_with_flow_count():
    few = _cache_after_run("ovs-dpdk", flows=100, flow_dist="zipf")
    many = _cache_after_run("ovs-dpdk", flows=100_000, flow_dist="zipf")
    # 100 flows sit comfortably in the 8K EMC: everything hits after
    # warm-up.  100K flows thrash it.
    assert few["emc_hit_rate"] > 0.95
    assert many["emc_hit_rate"] < few["emc_hit_rate"]
    assert many["emc_misses"] > few["emc_misses"]
    assert many["upcalls"] > few["upcalls"]


def test_throughput_collapses_under_emc_thrash():
    clean = fast_throughput(p2p.build, "ovs-dpdk")
    thrashed = fast_throughput(p2p.build, "ovs-dpdk", flows=100_000, flow_dist="zipf")
    assert thrashed.gbps < 0.5 * clean.gbps


def test_vale_mac_table_eviction_storm():
    stats = _cache_after_run("vale", flows=100_000, flow_dist="zipf")
    assert stats["mac_entries"] == stats["mac_capacity"]  # pinned at the cap
    assert stats["mac_evictions"] > 0
    assert stats["mac_learned"] - stats["mac_evictions"] == stats["mac_entries"]


def test_t4p4s_flow_table_only_arms_under_population():
    single = _cache_after_run("t4p4s")
    multi = _cache_after_run("t4p4s", flows=100_000, flow_dist="zipf")
    assert single == {}
    assert multi["flow_hit_rate"] < 1.0
    assert multi["flow_entries"] <= multi["flow_capacity"]


def test_churn_prevents_cache_convergence():
    steady = _cache_after_run("ovs-dpdk", flows=100)
    churning = _cache_after_run("ovs-dpdk", flows=100, churn=5e6)
    # 5M flows/s over a ~1ms window cycles thousands of fresh flows
    # through a population that would otherwise converge after warm-up.
    assert churning["emc_misses"] > 3 * max(steady["emc_misses"], 1)
    assert churning["emc_hit_rate"] < steady["emc_hit_rate"]


# -- warp: decline, never engage --------------------------------------------


def test_warp_declines_multi_flow_with_stable_reason():
    tb = p2p.build("ovs-dpdk", frame_size=64, flows=1000, flow_dist="zipf")
    result = drive(tb, **WINDOWS, warp=True)
    assert result.warp is not None
    assert not result.warp.engaged
    assert result.warp.reason == "multi-flow-traffic"


def test_warp_declines_churn_with_stable_reason():
    tb = p2p.build("ovs-dpdk", frame_size=64, flows=100, churn=1e6)
    result = drive(tb, **WINDOWS, warp=True)
    assert not result.warp.engaged
    assert result.warp.reason == "flow-churn"


def test_warp_never_engages_across_flow_grid():
    for switch in ("ovs-dpdk", "vale", "t4p4s"):
        tb = p2p.build(switch, frame_size=64, flows=4096, flow_dist="zipf")
        result = drive(tb, **WINDOWS, warp=True)
        assert not result.warp.engaged, switch


def test_warp_results_match_event_by_event_when_declined():
    """A declined warp must not perturb the run: warp=True and warp=False
    produce bit-identical numbers for flow-diverse traffic."""
    on = fast_throughput(p2p.build, "ovs-dpdk", flows=1000, flow_dist="zipf", warp=True)
    off = fast_throughput(p2p.build, "ovs-dpdk", flows=1000, flow_dist="zipf", warp=False)
    assert on.per_direction_gbps == off.per_direction_gbps
    assert on.events == off.events


# -- determinism ------------------------------------------------------------


def test_multi_flow_run_is_deterministic():
    a = fast_throughput(p2p.build, "ovs-dpdk", flows=10_000, flow_dist="zipf", seed=5)
    b = fast_throughput(p2p.build, "ovs-dpdk", flows=10_000, flow_dist="zipf", seed=5)
    assert a.per_direction_gbps == b.per_direction_gbps
    assert a.events == b.events


def test_flow_campaign_serial_equals_parallel():
    campaign = grid(
        "flow-identity",
        switches=("ovs-dpdk", "vale"),
        scenarios=("p2p",),
        frame_sizes=(64,),
        directions=(False,),
        flows=(1, 1000),
        flow_dist="zipf",
        **WINDOWS,
    )
    assert len(campaign) == 4  # 2 switches x 2 flow counts
    serial = run_campaign(campaign, workers=1)
    parallel = run_campaign(campaign, workers=2)
    assert {k: tuple(o.per_direction_gbps) for k, o in serial.outcomes} == {
        k: tuple(o.per_direction_gbps) for k, o in parallel.outcomes
    }


def test_flow_axis_label_and_cache_key_compat():
    campaign = grid(
        "labels", switches=("ovs-dpdk",), scenarios=("p2p",), frame_sizes=(64,),
        directions=(False,), flows=(1, 1000), flow_dist="zipf", **WINDOWS,
    )
    labels = [run.label for run in campaign.runs]
    assert "p2p-64B-uni/ovs-dpdk#s1" in labels  # flows=1: pre-flow-axis label
    assert "p2p-64B-uni+1000flows/ovs-dpdk#s1" in labels
    by_label = {run.label: run for run in campaign.runs}
    assert by_label["p2p-64B-uni/ovs-dpdk#s1"].extra == ()  # unchanged cache key


# -- observability gating ---------------------------------------------------


def test_cache_gauges_present_only_under_population():
    from repro.obs import ObsConfig, observe

    tb = p2p.build("ovs-dpdk", frame_size=64, flows=1000, flow_dist="zipf")
    observation = observe(tb, ObsConfig(metrics=True))
    result = drive(tb, **WINDOWS)
    observation.finish(result)
    text = observation.prometheus_text()
    assert "cache" in text and "emc_hit_rate" in text

    tb1 = p2p.build("ovs-dpdk", frame_size=64)
    observation1 = observe(tb1, ObsConfig(metrics=True))
    result1 = drive(tb1, **WINDOWS)
    observation1.finish(result1)
    assert "cache" not in observation1.prometheus_text()
