"""Integration tests: the p2v scenario end to end."""

from __future__ import annotations

import pytest

from _helpers import fast_throughput
from repro.measure.runner import drive
from repro.scenarios import p2v
from repro.switches.registry import ALL_SWITCHES
from repro.vm.apps import GuestValeBridge


def test_every_switch_reaches_the_guest():
    for name in ALL_SWITCHES:
        result = fast_throughput(p2v.build, name, 64)
        assert result.gbps > 1.0, name


def test_vhost_tax_at_64b():
    """Sec. 5.2: p2v is below p2p for vhost-user switches at 64 B."""
    from repro.scenarios import p2p

    for name in ("vpp", "ovs-dpdk", "fastclick", "snabb"):
        p2p_gbps = fast_throughput(p2p.build, name, 64).gbps
        p2v_gbps = fast_throughput(p2v.build, name, 64).gbps
        assert p2v_gbps < p2p_gbps, name


def test_vale_p2v_beats_its_p2p():
    """Sec. 5.2: ptnet zero-copy makes VALE *better* towards a VM."""
    from repro.scenarios import p2p

    p2p_gbps = fast_throughput(p2p.build, "vale", 64).gbps
    p2v_gbps = fast_throughput(p2v.build, "vale", 64).gbps
    assert p2v_gbps > p2p_gbps * 0.98


def test_bess_still_saturates():
    assert fast_throughput(p2v.build, "bess", 64).gbps > 9.0


def test_reversed_path_vpp_penalty():
    """Sec. 5.2: VM->NIC is slower than NIC->VM for VPP."""
    forward = fast_throughput(p2v.build, "vpp", 64).gbps
    reversed_ = fast_throughput(p2v.build, "vpp", 64, reversed_path=True).gbps
    assert reversed_ < forward


def test_reversed_path_excludes_bidirectional():
    with pytest.raises(ValueError):
        p2v.build("vpp", reversed_path=True, bidirectional=True)


def test_reversed_path_wiring():
    tb = p2v.build("vpp", reversed_path=True)
    path = tb.switch.paths[0]
    assert path.input.is_vif and not path.output.is_vif


def test_vale_uses_ptnet_interface():
    tb = p2v.build("vale")
    assert tb.extras["vif"].backend == "ptnet"


def test_vhost_switches_use_vhost_user():
    tb = p2v.build("vpp")
    assert tb.extras["vif"].backend == "vhost-user"


def test_vale_bidirectional_uses_bridge():
    tb = p2v.build("vale", bidirectional=True)
    assert isinstance(tb.extras.get("bridge"), GuestValeBridge)


def test_vale_unidirectional_has_no_bridge():
    tb = p2v.build("vale")
    assert "bridge" not in tb.extras


def test_bidirectional_counts_both_directions():
    tb = p2v.build("vpp", bidirectional=True)
    result = drive(tb, warmup_ns=100_000.0, measure_ns=800_000.0)
    assert len(result.per_direction_gbps) == 2
    assert all(g > 0.5 for g in result.per_direction_gbps)


def test_one_vm_spawned():
    tb = p2v.build("snabb")
    assert len(tb.vms) == 1
    assert len(tb.vms[0].cores) == 4
