"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.core.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.at(30, lambda: fired.append("c"))
    sim.at(10, lambda: fired.append("a"))
    sim.at(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo(sim):
    fired = []
    for tag in "abcde":
        sim.at(100, lambda tag=tag: fired.append(tag))
    sim.run()
    assert fired == list("abcde")


def test_after_is_relative_to_now(sim):
    times = []
    sim.at(50, lambda: sim.after(25, lambda: times.append(sim.now)))
    sim.run()
    assert times == [75]


def test_run_until_stops_at_boundary(sim):
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(99, lambda: fired.append(99))
    sim.at(101, lambda: fired.append(101))
    sim.run_until(100)
    assert fired == [10, 99]
    assert sim.now == 100
    assert sim.pending() == 1


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.at(100, lambda: fired.append(100))
    sim.run_until(100)
    assert fired == [100]


def test_run_until_advances_clock_when_queue_empty(sim):
    sim.run_until(500)
    assert sim.now == 500


def test_clock_monotonic_during_run(sim):
    observed = []
    sim.at(5, lambda: observed.append(sim.now))
    sim.at(5, lambda: sim.after(0, lambda: observed.append(sim.now)))
    sim.at(7, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


def test_scheduling_in_the_past_raises(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.after(1, lambda: chain(depth + 1))

    sim.at(0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_events_executed_counter(sim):
    for t in range(10):
        sim.at(t, lambda: None)
    sim.run()
    assert sim.events_executed == 10


def test_run_is_not_reentrant(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.at(1, reenter)
    sim.run()


def test_run_until_is_not_reentrant(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run_until(10)

    sim.at(1, reenter)
    sim.run_until(5)


def test_pending_counts_queued_events(sim):
    assert sim.pending() == 0
    sim.at(1, lambda: None)
    sim.at(2, lambda: None)
    assert sim.pending() == 2


def test_repeated_run_until_progresses(sim):
    fired = []
    for t in (10, 20, 30):
        sim.at(t, lambda t=t: fired.append(t))
    sim.run_until(15)
    assert fired == [10]
    sim.run_until(35)
    assert fired == [10, 20, 30]
