"""Unit tests for service-time jitter and stall processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.switches.jitter import CostJitter, StallProcess


def test_zero_sigma_is_exactly_one():
    jitter = CostJitter(np.random.default_rng(0), sigma=0.0)
    assert all(jitter.multiplier(t) == 1.0 for t in range(0, 10_000, 1000))


def test_multiplier_constant_within_period():
    jitter = CostJitter(np.random.default_rng(0), sigma=0.5, period_ns=1000.0)
    first = jitter.multiplier(0.0)
    assert jitter.multiplier(500.0) == first
    assert jitter.multiplier(999.0) == first


def test_multiplier_resamples_each_period():
    jitter = CostJitter(np.random.default_rng(0), sigma=0.5, period_ns=1000.0)
    values = {jitter.multiplier(t * 1000.0) for t in range(50)}
    assert len(values) > 10


def test_reciprocal_mean_is_one():
    """Throughput-neutrality: E[1/multiplier] == 1 (R+ unchanged)."""
    jitter = CostJitter(np.random.default_rng(0), sigma=0.6, period_ns=1.0)
    inverse = [1.0 / jitter.multiplier(float(t)) for t in range(200_000)]
    assert float(np.mean(inverse)) == pytest.approx(1.0, rel=0.02)


def test_invalid_args():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        CostJitter(rng, sigma=-0.1)
    with pytest.raises(ValueError):
        CostJitter(rng, sigma=0.1, period_ns=0.0)
    with pytest.raises(ValueError):
        StallProcess(rng, mean_period_ns=0.0, stall_cycles=100.0)


def test_stall_process_poisson_rate():
    stalls = StallProcess(np.random.default_rng(1), mean_period_ns=1000.0, stall_cycles=50.0)
    total = 0.0
    for t in range(0, 1_000_000, 10):
        total += stalls.cycles_due(float(t))
    # ~1000 stalls expected over 1 ms at a 1 us mean period.
    assert stalls.stalls == pytest.approx(1000, rel=0.15)
    assert total == pytest.approx(stalls.stalls * 50.0)


def test_stall_charges_only_once_per_event():
    stalls = StallProcess(np.random.default_rng(2), mean_period_ns=1e9, stall_cycles=10.0)
    stalls._next_stall_ns = 100.0
    assert stalls.cycles_due(150.0) == 10.0
    # Next stall is far in the future: immediately asking again is free.
    assert stalls.cycles_due(151.0) == 0.0
