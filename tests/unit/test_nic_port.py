"""Unit tests for NIC ports, wires and serialization."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.core.units import line_rate_pps, wire_time_ns
from repro.nic.port import NicPort, dual_port_nic


def _pair(sim, **kwargs):
    a = NicPort(sim, "a", **kwargs)
    b = NicPort(sim, "b", **kwargs)
    a.connect(b)
    return a, b


def test_send_requires_connection(sim):
    port = NicPort(sim, "lonely")
    with pytest.raises(RuntimeError):
        port.send_batch([Packet()])


def test_connect_is_symmetric(sim):
    a, b = _pair(sim)
    assert a.peer is b and b.peer is a


def test_frames_arrive_after_serialization_and_pcie(sim):
    a, b = _pair(sim, pcie_latency_ns=100.0)
    a.send_batch([Packet(size=64)])
    sim.run()
    assert len(b.rx_ring) == 1
    assert sim.now == pytest.approx(wire_time_ns(64) + 100.0)


def test_sink_bypasses_rx_ring(sim):
    a, b = _pair(sim)
    seen = []
    b.sink = seen.extend
    a.send_batch([Packet(), Packet()])
    sim.run()
    assert len(seen) == 2
    assert len(b.rx_ring) == 0


def test_line_rate_is_enforced(sim):
    a, b = _pair(sim)
    received = []
    b.sink = received.extend
    # Offer 2x line rate for 100 us; no backlog limit issues (sink drains).
    n = int(2 * line_rate_pps(64) * 100e-6)
    a.send_batch([Packet() for _ in range(min(n, a.tx_slots))])
    sim.run()
    # All accepted frames arrive exactly back-to-back at line rate.
    assert a.tx_packets == len(received)
    assert sim.now == pytest.approx(a.tx_packets * wire_time_ns(64), rel=1e-6)


def test_tx_backlog_drops_when_ring_full(sim):
    a, b = _pair(sim, tx_slots=8)
    sent = a.send_batch([Packet() for _ in range(20)])
    assert sent <= 10  # 8 slots (+ rounding of the time-based bound)
    assert a.tx_dropped == 20 - sent


def test_tx_backlog_limit_scales_with_frame_size(sim):
    a64, _ = _pair(sim, tx_slots=8)
    a64.send_batch([Packet(size=64) for _ in range(20)])
    sim2 = type(sim)()
    a1024 = NicPort(sim2, "a", tx_slots=8)
    b1024 = NicPort(sim2, "b", tx_slots=8)
    a1024.connect(b1024)
    a1024.send_batch([Packet(size=1024) for _ in range(20)])
    # Same *count* budget regardless of frame size.
    assert a1024.tx_packets == a64.tx_packets


def test_hw_tx_timestamping_only_probes(sim):
    a, b = _pair(sim)
    a.timestamp_tx = True
    probe = Packet(is_probe=True)
    plain = Packet()
    a.send_batch([plain, probe])
    sim.run()
    assert probe.tx_timestamp is not None
    assert plain.tx_timestamp is None


def test_hw_rx_timestamping_at_wire_arrival(sim):
    a, b = _pair(sim, pcie_latency_ns=500.0)
    b.timestamp_rx = True
    probe = Packet(is_probe=True)
    a.send_batch([probe])
    sim.run()
    # RX stamp is at wire arrival, before the PCIe delay.
    assert probe.rx_timestamp == pytest.approx(wire_time_ns(64))


def test_existing_tx_timestamp_not_overwritten(sim):
    a, b = _pair(sim)
    a.timestamp_tx = True
    probe = Packet(is_probe=True)
    probe.tx_timestamp = 42.0
    a.send_batch([probe])
    sim.run()
    assert probe.tx_timestamp == 42.0


def test_rx_moderation_quantises_delivery(sim):
    a, b = _pair(sim, pcie_latency_ns=100.0)
    b.rx_moderation_ns = 10_000.0
    a.send_batch([Packet()])
    sim.run()
    # Wire arrival ~67ns + PCIe 100ns -> released at the 10us boundary.
    assert sim.now == pytest.approx(10_000.0)
    assert len(b.rx_ring) == 1


def test_rx_moderation_batches_multiple_sends(sim):
    a, b = _pair(sim, pcie_latency_ns=0.0)
    b.rx_moderation_ns = 10_000.0
    a.send_batch([Packet()])
    sim.after(3_000, lambda: a.send_batch([Packet()]))
    sim.run()
    assert len(b.rx_ring) == 2
    assert sim.now == pytest.approx(10_000.0)


def test_dual_port_nic_names(sim):
    p0, p1 = dual_port_nic(sim, "nic0")
    assert p0.name == "nic0.p0"
    assert p1.name == "nic0.p1"


def test_tx_bytes_counter(sim):
    a, b = _pair(sim)
    a.send_batch([Packet(size=128), Packet(size=256)])
    assert a.tx_bytes == 384
