"""Unit tests for NUMA topology and the memory bus."""

from __future__ import annotations

import pytest

from repro.cpu.numa import Machine, MemoryBus, NumaNode


class TestMemoryBus:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            MemoryBus(0)

    def test_idle_bus_copy_time(self):
        bus = MemoryBus(bandwidth_bytes_per_s=1e9)  # 1 B/ns
        assert bus.reserve(1000, now_ns=0.0) == pytest.approx(1000.0)

    def test_zero_bytes_is_free(self):
        bus = MemoryBus(1e9)
        assert bus.reserve(0, 0.0) == 0.0
        assert bus.bytes_copied == 0

    def test_concurrent_copies_serialise(self):
        bus = MemoryBus(1e9)
        first = bus.reserve(1000, now_ns=0.0)
        second = bus.reserve(1000, now_ns=0.0)
        assert first == pytest.approx(1000.0)
        assert second == pytest.approx(2000.0)

    def test_bus_frees_up_over_time(self):
        bus = MemoryBus(1e9)
        bus.reserve(1000, now_ns=0.0)
        # By t=5000 the earlier copy has long finished.
        assert bus.reserve(1000, now_ns=5000.0) == pytest.approx(1000.0)

    def test_bytes_accounting(self):
        bus = MemoryBus(1e9)
        bus.reserve(100, 0.0)
        bus.reserve(200, 0.0)
        assert bus.bytes_copied == 300


class TestMachine:
    def test_two_numa_nodes_by_default(self, sim):
        machine = Machine(sim)
        assert len(machine.nodes) == 2
        assert machine.node0.index == 0
        assert machine.node1.index == 1

    def test_nodes_have_independent_buses(self, sim):
        machine = Machine(sim)
        assert machine.node0.bus is not machine.node1.bus

    def test_single_node_machine_has_no_node1(self, sim):
        machine = Machine(sim, nodes=1)
        with pytest.raises(ValueError):
            _ = machine.node1

    def test_zero_nodes_rejected(self, sim):
        with pytest.raises(ValueError):
            Machine(sim, nodes=0)

    def test_add_core_registers_and_names(self, sim):
        machine = Machine(sim)
        core = machine.node0.add_core("sut")
        assert core in machine.node0.cores
        assert core.name == "numa0/sut"

    def test_node_accepts_custom_bus(self, sim):
        bus = MemoryBus(5e9)
        node = NumaNode(sim, 7, bus=bus)
        assert node.bus is bus
