"""Unit tests for VMs and the hypervisor."""

from __future__ import annotations

import pytest

from repro.cpu.numa import Machine
from repro.vif.vhost_user import make_vhost_user_interface
from repro.vm.machine import Hypervisor, QemuCompatibilityError, VirtualMachine


def test_vm_gets_four_vcpus_by_default(sim, machine):
    vm = VirtualMachine(sim, machine.node0, "vm1")
    assert len(vm.cores) == 4


def test_vcpu_names_include_vm(sim, machine):
    vm = VirtualMachine(sim, machine.node0, "vm1")
    assert vm.cores[0].name == "numa0/vm1/vcpu0"


def test_plug_registers_interface(sim, machine):
    vm = VirtualMachine(sim, machine.node0, "vm1")
    vif = vm.plug(make_vhost_user_interface("vm1.eth0"))
    assert vm.interfaces == [vif]


def test_run_attaches_and_starts(sim, machine):
    vm = VirtualMachine(sim, machine.node0, "vm1")

    class App:
        polls = 0

        def poll(self, core):
            App.polls += 1
            return 0.0

    vm.run(App(), vcpu=2)
    sim.run_until(1000)
    assert App.polls > 0
    assert vm.cores[2].tasks


def test_hypervisor_enforces_vm_limit(sim, machine):
    hypervisor = Hypervisor(sim, machine.node0, max_vms=3)
    for i in range(3):
        hypervisor.spawn(f"vm{i}")
    with pytest.raises(QemuCompatibilityError):
        hypervisor.spawn("vm3")


def test_hypervisor_unlimited_by_default(sim, machine):
    hypervisor = Hypervisor(sim, machine.node0)
    for i in range(10):
        hypervisor.spawn(f"vm{i}")
    assert len(hypervisor.vms) == 10


def test_spawned_vms_are_tracked(sim, machine):
    hypervisor = Hypervisor(sim, machine.node0)
    vm = hypervisor.spawn("vm1")
    assert hypervisor.vms == [vm]
