"""Unit tests for the statistical soundness layer (repro.measure.soundness)."""

from __future__ import annotations

import math

import pytest

from repro.measure.soundness import (
    DEFAULT_POLICY,
    SEED_POLICIES,
    TrialPolicy,
    TrialSummary,
    bootstrap_ci,
    classify_trials,
    percentile,
    summarize_trials,
    trial_specs,
)


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50.0) == 2.5

    def test_endpoints(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)


class TestBootstrapCi:
    def test_deterministic(self):
        """The interval is a pure function of the sample -- reruns match."""
        data = [1.0, 1.2, 0.9, 1.1, 1.05]
        assert bootstrap_ci(data) == bootstrap_ci(data)

    def test_contains_the_mean_for_a_tight_sample(self):
        data = [10.0, 10.1, 9.9, 10.05, 9.95]
        low, high = bootstrap_ci(data)
        mean = sum(data) / len(data)
        assert low <= mean <= high
        assert high - low < 0.5

    def test_single_value_degenerates_to_zero_width(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_constant_sample_degenerates_to_zero_width(self):
        assert bootstrap_ci([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_wider_spread_wider_interval(self):
        tight = bootstrap_ci([1.0, 1.01, 0.99, 1.0, 1.02])
        wide = bootstrap_ci([1.0, 2.0, 0.1, 1.5, 0.5])
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])


class TestClassifyTrials:
    def test_too_few_trials_is_inconclusive(self):
        verdict, reason = classify_trials([1.0, 1.1])
        assert verdict == "inconclusive"
        assert "n=2 < 3 trials" in reason

    def test_non_finite_is_inconclusive(self):
        verdict, reason = classify_trials([1.0, math.nan, 1.1])
        assert verdict == "inconclusive"
        assert reason == "non-finite trial values"

    def test_zero_variance_is_stable(self):
        verdict, reason = classify_trials([5.0, 5.0, 5.0])
        assert verdict == "stable"
        assert reason == "zero variance across trials"

    def test_low_cv_is_stable(self):
        verdict, reason = classify_trials([1.0, 1.01, 0.99, 1.005])
        assert verdict == "stable"
        assert "cv=" in reason

    def test_two_clusters_is_bimodal(self):
        verdict, reason = classify_trials([1.0, 1.001, 1.002, 2.0, 2.001, 2.002])
        assert verdict == "bimodal"
        assert "two clusters" in reason
        assert "3+3 trials" in reason

    def test_monotone_trend_is_drifting(self):
        verdict, reason = classify_trials([1.0, 1.2, 1.4, 1.6, 1.8])
        assert verdict == "drifting"
        assert "monotone trend" in reason

    def test_noise_without_structure_is_inconclusive(self):
        # High-CV but unordered and unimodal: nothing to blame.
        verdict, reason = classify_trials([1.0, 1.6, 0.7, 1.5, 0.8, 1.45, 0.9])
        assert verdict == "inconclusive"
        assert "no structure" in reason

    def test_a_single_outlier_is_not_bimodal(self):
        # One cluster of 4 and a lone point: the bimodal test needs >= 2
        # members on both sides, so this cannot split.
        verdict, _ = classify_trials([1.0, 1.0, 1.0, 1.0, 10.0])
        assert verdict != "bimodal"


class TestTrialPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrialPolicy(n_min=0)
        with pytest.raises(ValueError):
            TrialPolicy(n_min=5, n_max=3)
        with pytest.raises(ValueError):
            TrialPolicy(ci_level=1.0)
        with pytest.raises(ValueError):
            TrialPolicy(seed_policy="lucky-dip")

    def test_known_policies(self):
        assert SEED_POLICIES == ("trial", "reseed")


class TestTrialSummary:
    def test_summarize_and_round_trip(self):
        summary = summarize_trials([1.0, 1.02, 0.98, 1.01], metric="gbps")
        assert summary.n == 4
        assert summary.metric == "gbps"
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.p5 <= summary.p50 <= summary.p95
        assert TrialSummary.from_dict(summary.to_dict()) == summary

    def test_converged_needs_n_min_and_tight_ci(self):
        policy = TrialPolicy(n_min=3, n_max=5, rel_ci_target=0.05)
        tight = summarize_trials([1.0, 1.001, 0.999], policy)
        assert tight.converged(policy)
        wide = summarize_trials([1.0, 2.0, 0.5], policy)
        assert not wide.converged(policy)
        # n below n_min never converges regardless of width.
        two = summarize_trials([1.0, 1.0], policy)
        assert not two.converged(policy)

    def test_half_width_properties(self):
        summary = summarize_trials([2.0, 2.0, 2.0])
        assert summary.half_width == 0.0
        assert summary.rel_half_width == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_trials([])


class TestTrialSpecs:
    def test_trial_policy_keeps_base_spec_and_seed(self):
        from repro.campaign.spec import RunSpec

        base = RunSpec("p2p", "vpp", seed=7)
        specs = trial_specs(base, 3, "trial")
        assert specs[0] is base  # trial 0 IS the base run, bit-identical
        assert [s.trial for s in specs] == [0, 1, 2]
        assert {s.seed for s in specs} == {7}

    def test_reseed_policy_walks_the_seed(self):
        from repro.campaign.spec import RunSpec

        base = RunSpec("p2p", "vpp", seed=7)
        specs = trial_specs(base, 3, "reseed")
        assert [s.seed for s in specs] == [7, 8, 9]
        assert {s.trial for s in specs} == {0}

    def test_unknown_policy_raises(self):
        from repro.campaign.spec import RunSpec

        with pytest.raises(ValueError):
            trial_specs(RunSpec("p2p", "vpp"), 2, "lucky-dip")
