"""Unit tests for the Appendix A control-plane front-ends."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.cpu.cores import Core
from repro.nic.port import NicPort
from repro.switches.control import (
    BessScript,
    ConfigError,
    OvsCtl,
    SnabbConfig,
    ValeCtl,
    VppCli,
    apply_click_config,
)
from repro.switches.registry import create_switch
from repro.vif.vhost_user import make_vhost_user_interface

#: The paper's Appendix A.1 BESS p2p script, verbatim.
BESS_P2P_SCRIPT = """
inport::PMDPort(port_id=0)
outport::PMDPort(port_id=1)
in0::QueueInc(port=inport, qid=0)
out0::QueueOut(port=outport, qid=0)
in0 -> out0
"""

#: Appendix A.2: p2v with a vhost-user vdev.
BESS_P2V_SCRIPT = """
inport::PMDPort(port_id=0)
in0::QueueInc(port=inport, qid=0)
v1::PMDPort(vdev="virtio_user0,iface=/tmp/sock0")
in0 -> PortOut(port=v1.name)
"""


def _two_ports(sim):
    a, b = NicPort(sim, "p0"), NicPort(sim, "p1")
    peer_a, peer_b = NicPort(sim, "peer0"), NicPort(sim, "peer1")
    a.connect(peer_a)
    b.connect(peer_b)
    return a, b


def _forwards(sim, switch, src_port, dst_port, n=4):
    """Push frames into src and count what exits dst."""
    received = []
    dst_port.peer.sink = received.extend
    switch.bind_core(Core(sim, "sut"))
    src_port.rx_ring.push_batch([Packet() for _ in range(n)])
    sim.run_until(3_000_000)
    return len(received)


class TestBessScript:
    def test_p2p_script_builds_the_path(self, sim):
        switch = create_switch("bess", sim)
        p0, p1 = _two_ports(sim)
        BessScript(switch, ports={0: p0, 1: p1}).run(BESS_P2P_SCRIPT)
        assert len(switch.paths) == 1
        assert _forwards(sim, switch, p0, p1) == 4

    def test_p2v_script_with_vdev(self, sim):
        switch = create_switch("bess", sim)
        p0, _ = _two_ports(sim)
        vif = make_vhost_user_interface("virtio_user0")
        BessScript(switch, ports={0: p0}, vdevs={"virtio_user0": vif}).run(BESS_P2V_SCRIPT)
        path = switch.paths[0]
        assert not path.input.is_vif and path.output.is_vif

    def test_unknown_port_id(self, sim):
        switch = create_switch("bess", sim)
        with pytest.raises(ConfigError, match="port_id"):
            BessScript(switch).run("x::PMDPort(port_id=7)")

    def test_unknown_module_in_edge(self, sim):
        switch = create_switch("bess", sim)
        with pytest.raises(ConfigError, match="unknown module"):
            BessScript(switch).run("a -> b")

    def test_unsupported_module(self, sim):
        switch = create_switch("bess", sim)
        with pytest.raises(ConfigError, match="unsupported"):
            BessScript(switch).run("x::WildcardMatch(fields=[])")

    def test_comments_and_blanks_ignored(self, sim):
        switch = create_switch("bess", sim)
        p0, p1 = _two_ports(sim)
        script = "# the p2p config\n\n" + BESS_P2P_SCRIPT
        BessScript(switch, ports={0: p0, 1: p1}).run(script)
        assert len(switch.paths) == 1


class TestVppCli:
    def test_l2patch_pair(self, sim):
        switch = create_switch("vpp", sim)
        p0, p1 = _two_ports(sim)
        cli = VppCli(switch, {"port0": p0, "port1": p1})
        cli.exec_script(
            """
            test l2patch rx port0 tx port1
            test l2patch rx port1 tx port0
            """
        )
        assert len(switch.paths) == 2
        assert _forwards(sim, switch, p0, p1) == 4

    def test_unknown_interface(self, sim):
        switch = create_switch("vpp", sim)
        with pytest.raises(ConfigError, match="unknown interface"):
            VppCli(switch, {}).exec("test l2patch rx nope tx nada")

    def test_unsupported_command(self, sim):
        switch = create_switch("vpp", sim)
        with pytest.raises(ConfigError, match="unsupported"):
            VppCli(switch, {}).exec("show runtime")


class TestOvsCtl:
    def test_bridge_flow_wiring(self, sim):
        switch = create_switch("ovs-dpdk", sim)
        p0, p1 = _two_ports(sim)
        ctl = OvsCtl(switch, {"dpdk0": p0, "dpdk1": p1})
        ctl.vsctl("add-br br0")
        ctl.vsctl("add-port br0 dpdk0")
        ctl.vsctl("add-port br0 dpdk1")
        ctl.ofctl_add_flow("br0", "in_port=1,actions=output:2")
        assert len(switch.paths) == 1
        assert _forwards(sim, switch, p0, p1) == 4

    def test_duplicate_bridge(self, sim):
        ctl = OvsCtl(create_switch("ovs-dpdk", sim), {})
        ctl.vsctl("add-br br0")
        with pytest.raises(ConfigError):
            ctl.vsctl("add-br br0")

    def test_flow_to_missing_port(self, sim):
        switch = create_switch("ovs-dpdk", sim)
        p0, _ = _two_ports(sim)
        ctl = OvsCtl(switch, {"dpdk0": p0})
        ctl.vsctl("add-br br0")
        ctl.vsctl("add-port br0 dpdk0")
        with pytest.raises(ConfigError, match="out of range"):
            ctl.ofctl_add_flow("br0", "in_port=1,actions=output:2")

    def test_unsupported_vsctl(self, sim):
        ctl = OvsCtl(create_switch("ovs-dpdk", sim), {})
        with pytest.raises(ConfigError):
            ctl.vsctl("set-controller br0 tcp:1.2.3.4")


class TestValeCtl:
    def test_attach_two_ports_creates_bidirectional_mesh(self, sim):
        switch = create_switch("vale", sim)
        p0, p1 = _two_ports(sim)
        ctl = ValeCtl(switch, {"p1": p0, "p2": p1})
        ctl.exec("vale-ctl -a vale0:p1")
        ctl.exec("vale-ctl -a vale0:p2")
        assert len(switch.paths) == 2  # both directions, as an L2 switch

    def test_three_ports_full_mesh(self, sim):
        switch = create_switch("vale", sim)
        p0, p1 = _two_ports(sim)
        vif = make_vhost_user_interface("v0")
        ctl = ValeCtl(switch, {"p1": p0, "p2": p1, "v0": vif})
        for port in ("p1", "p2", "v0"):
            ctl.exec(f"vale-ctl -a vale0:{port}")
        assert len(switch.paths) == 6  # 3 ports, all ordered pairs

    def test_interface_creation_validates_name(self, sim):
        ctl = ValeCtl(create_switch("vale", sim), {})
        with pytest.raises(ConfigError):
            ctl.exec("vale-ctl -n v0")

    def test_separate_bridges_do_not_cross_connect(self, sim):
        switch = create_switch("vale", sim)
        p0, p1 = _two_ports(sim)
        ctl = ValeCtl(switch, {"p1": p0, "p2": p1})
        ctl.exec("vale-ctl -a vale0:p1")
        ctl.exec("vale-ctl -a vale1:p2")
        assert len(switch.paths) == 0


class TestSnabbConfig:
    def test_app_and_link(self, sim):
        switch = create_switch("snabb", sim)
        p0, p1 = _two_ports(sim)
        config = SnabbConfig(switch)
        config.app("nic1", p0)
        config.app("nic2", p1)
        config.link("nic1.tx -> nic2.rx")
        assert len(switch.paths) == 1
        assert _forwards(sim, switch, p0, p1) == 4

    def test_duplicate_app(self, sim):
        config = SnabbConfig(create_switch("snabb", sim))
        config.app("nic1", NicPort(sim, "x"))
        with pytest.raises(ConfigError):
            config.app("nic1", NicPort(sim, "y"))

    def test_link_unknown_app(self, sim):
        config = SnabbConfig(create_switch("snabb", sim))
        with pytest.raises(ConfigError):
            config.link("a.tx -> b.rx")


class TestClickConfig:
    def test_appendix_one_liner(self, sim):
        switch = create_switch("fastclick", sim)
        p0, p1 = _two_ports(sim)
        apply_click_config(switch, "FromDPDKDevice(0)->ToDPDKDevice(1)", {"0": p0, "1": p1})
        assert len(switch.paths) == 1
        assert _forwards(sim, switch, p0, p1) == 4

    def test_unknown_device(self, sim):
        switch = create_switch("fastclick", sim)
        with pytest.raises(ConfigError):
            apply_click_config(switch, "FromDPDKDevice(0)->ToDPDKDevice(1)", {})
