"""Unit tests for the fluid (rate-based) fast-forward tier."""

from __future__ import annotations

import pytest

from repro.core.fluid import (
    CAL_CAP_NS,
    CAL_FLOOR_NS,
    FluidReport,
    fluid_enabled,
    fluid_tolerance,
    try_fluid,
)
from repro.core.warp import engine_features
from repro.measure.runner import drive
from repro.scenarios import p2p


def test_fluid_enabled_parses_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FLUID", raising=False)
    assert fluid_enabled() is False
    assert fluid_enabled(default=True) is True
    for value, expected in [
        ("1", True), ("true", True), ("on", True), ("yes", True),
        ("0", False), ("false", False), ("off", False), ("", False),
    ]:
        monkeypatch.setenv("REPRO_FLUID", value)
        assert fluid_enabled() is expected, value


def test_fluid_tolerance_parses_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FLUID_TOLERANCE", raising=False)
    assert fluid_tolerance() == 0.05
    monkeypatch.setenv("REPRO_FLUID_TOLERANCE", "0.02")
    assert fluid_tolerance() == 0.02
    monkeypatch.setenv("REPRO_FLUID_TOLERANCE", "garbage")
    assert fluid_tolerance() == 0.05


def test_engine_features_gain_fluid_keys_only_when_enabled(monkeypatch):
    """Cache-key safety: a fluid-off session must fingerprint exactly as
    it did before the fluid tier existed."""
    monkeypatch.delenv("REPRO_FLUID", raising=False)
    off = dict(engine_features())
    assert not any(key.startswith("fluid") for key in off)
    monkeypatch.setenv("REPRO_FLUID", "1")
    on = dict(engine_features())
    assert on["fluid_version"] >= 1
    assert on["fluid_tolerance"] == fluid_tolerance()


def test_report_describe_both_shapes():
    engaged = FluidReport(
        engaged=True, fluid_ns=9e6, calibration_ns=1e6, tolerance=0.05
    )
    assert engaged.describe().startswith("engaged[fluid]:")
    declined = FluidReport(engaged=False, reason="span-too-short")
    assert declined.describe() == "declined[fluid]: span-too-short"


def test_engages_on_clean_run_and_extrapolates():
    tb = p2p.build("vpp", frame_size=64, rate_pps=3e6, seed=1)
    result = drive(tb, warmup_ns=6e5, measure_ns=6e7, fluid=True)
    report = result.fluid
    assert report is not None and report.engaged, result
    assert CAL_FLOOR_NS <= report.calibration_ns <= CAL_CAP_NS
    assert report.fluid_ns == pytest.approx(6e7 - report.calibration_ns)
    # The heap was drained and meters hold extrapolated window counts.
    assert result.mpps == pytest.approx(3.0, rel=0.05)
    total = sum(m.packets for m in tb.meters)
    assert total == pytest.approx(3e6 * 6e7 / 1e9, rel=0.05)


def test_declines_below_double_calibration_span():
    tb = p2p.build("vpp", frame_size=64, seed=1)
    report = try_fluid(tb, 6e5, 6e5 + 1.5 * CAL_FLOOR_NS)
    assert not report.engaged
    assert report.reason == "span-too-short"
    assert not report.advanced


def test_declines_under_watchdog():
    tb = p2p.build("vpp", frame_size=64, seed=1)
    report = try_fluid(tb, 6e5, 6e7, watchdog_active=True)
    assert not report.engaged
    assert report.reason == "watchdog-active"


def test_declines_on_armed_fault_plan():
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultEvent, FaultPlan

    tb = p2p.build("vpp", frame_size=64, seed=1)
    plan = FaultPlan.of(
        FaultEvent.from_dict(
            {"kind": "nic-link-flap", "target": "sut-nic.p1",
             "at_ns": 1.2e6, "duration_ns": 3e5}
        )
    )
    FaultInjector(tb, plan).arm()
    report = try_fluid(tb, 6e5, 6e7)
    assert not report.engaged
    assert report.reason == "fault-plan-active"


def test_declines_on_flow_telemetry():
    tb = p2p.build("ovs-dpdk", frame_size=64, seed=1)
    tb.extras["flowstats"] = object()  # what obs attach leaves behind
    report = try_fluid(tb, 6e5, 6e7)
    assert not report.engaged
    assert report.reason == "flow-telemetry"


def test_declines_on_flow_churn():
    tb = p2p.build(
        "ovs-dpdk", frame_size=64, seed=1,
        flow_dist="uniform", flows=64, churn=1000.0,
    )
    report = try_fluid(tb, 6e5, 6e7)
    assert not report.engaged
    assert report.reason == "flow-churn"


def test_drive_fluid_kwarg_pins_the_tier(monkeypatch):
    monkeypatch.delenv("REPRO_FLUID", raising=False)
    tb = p2p.build("vpp", frame_size=64, rate_pps=3e6, seed=1)
    result = drive(tb, measure_ns=6e7, fluid=True)
    assert result.fluid is not None and result.fluid.engaged
    assert result.warp is not None
    assert result.warp.engaged and result.warp.mode == "fluid"
    # Default-off: no fluid attempt at all without the kwarg or env.
    tb = p2p.build("vpp", frame_size=64, rate_pps=3e6, seed=1)
    result = drive(tb, measure_ns=6e7)
    assert result.fluid is None


def test_fluid_rate_within_declared_tolerance():
    tb = p2p.build("vpp", frame_size=64, rate_pps=3e6, seed=1)
    exact = drive(tb, measure_ns=6e7)
    tb = p2p.build("vpp", frame_size=64, rate_pps=3e6, seed=1)
    fluid = drive(tb, measure_ns=6e7, fluid=True)
    assert fluid.fluid.engaged
    rel_err = abs(fluid.mpps - exact.mpps) / exact.mpps
    assert rel_err <= fluid_tolerance()
