"""Unit tests for the switch registry."""

from __future__ import annotations

import pytest

from repro.core.engine import Simulator
from repro.switches.base import SoftwareSwitch
from repro.switches.params import ALL_PARAMS, SwitchParams
from repro.switches.registry import (
    ALL_SWITCHES,
    create_switch,
    params_for,
    register_switch,
    switch_names,
)


def test_all_switches_instantiable(sim):
    for name in switch_names():
        switch = create_switch(name, sim)
        assert isinstance(switch, SoftwareSwitch)
        assert switch.params.name == name


def test_unknown_switch_rejected(sim):
    with pytest.raises(KeyError, match="unknown switch"):
        create_switch("openflow9000", sim)
    with pytest.raises(KeyError, match="unknown switch"):
        params_for("openflow9000")


def test_params_for_matches_all_params():
    for name in ALL_SWITCHES:
        assert params_for(name) is ALL_PARAMS[name]


def test_custom_params_override(sim):
    custom = SwitchParams(name="vpp", display_name="VPP", batch_size=64)
    switch = create_switch("vpp", sim, params=custom)
    assert switch.params.batch_size == 64


def test_register_custom_switch(sim):
    params = SwitchParams(name="mysw-test", display_name="MySW")

    class MySwitch(SoftwareSwitch):
        def __init__(self, sim, rngs=None, bus=None, params=params):
            super().__init__(sim, params, rngs=rngs, bus=bus)
    register_switch("mysw-test", MySwitch, params)
    try:
        switch = create_switch("mysw-test", sim)
        assert isinstance(switch, MySwitch)
        assert params_for("mysw-test") is params
        with pytest.raises(ValueError):
            register_switch("mysw-test", MySwitch, params)
    finally:
        # Leave the global registry clean for other tests.
        from repro.switches import registry

        registry._FACTORIES.pop("mysw-test")
        ALL_PARAMS.pop("mysw-test")


def test_duplicate_builtin_rejected():
    with pytest.raises(ValueError):
        register_switch("vpp", lambda *a, **k: None, ALL_PARAMS["vpp"])
