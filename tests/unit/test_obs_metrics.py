"""Unit tests for the observability metrics registry."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, hdr_bounds


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(3.5)
    assert counter.read() == pytest.approx(4.5)


def test_counter_rejects_decrease():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_set_and_read():
    gauge = Gauge("g")
    gauge.set(7)
    assert gauge.read() == 7.0


def test_callback_gauge_is_lazy():
    calls = []

    def probe() -> float:
        calls.append(1)
        return float(len(calls))

    gauge = Gauge("g", probe)
    assert calls == []  # registering costs nothing
    assert gauge.read() == 1.0
    assert gauge.read() == 2.0
    with pytest.raises(ValueError):
        gauge.set(5)


def test_hdr_bounds_shape():
    bounds = hdr_bounds(max_value=8, subdivisions=4)
    assert bounds[0] == pytest.approx(0.25)
    assert 1.0 in bounds and 2.0 in bounds and 4.0 in bounds and 8.0 in bounds
    assert list(bounds) == sorted(bounds)
    # Relative spacing within an octave is 1/subdivisions.
    i = bounds.index(4.0)
    assert bounds[i + 1] - bounds[i] == pytest.approx(1.0)


def test_hdr_bounds_validates():
    with pytest.raises(ValueError):
        hdr_bounds(max_value=1)
    with pytest.raises(ValueError):
        hdr_bounds(subdivisions=0)


def test_histogram_percentile_bounded_error():
    hist = Histogram("h")
    for value in range(1, 1001):
        hist.observe(float(value))
    # HDR buckets with 4 subdivisions bound relative error to ~25%.
    assert hist.percentile(50) == pytest.approx(500, rel=0.3)
    assert hist.percentile(99) == pytest.approx(990, rel=0.3)
    assert hist.min == 1.0
    assert hist.max == 1000.0
    assert hist.mean == pytest.approx(500.5)


def test_histogram_percentile_clips_to_observed_range():
    hist = Histogram("h")
    hist.observe(5.0)
    assert hist.percentile(0) == 5.0
    assert hist.percentile(100) == 5.0


def test_histogram_empty():
    hist = Histogram("h")
    assert math.isnan(hist.mean)
    assert math.isnan(hist.percentile(50))
    assert hist.summary() == {"count": 0}


def test_histogram_summary_fields():
    hist = Histogram("h")
    for value in (1.0, 2.0, 3.0):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 3
    assert summary["sum"] == pytest.approx(6.0)
    assert summary["min"] == 1.0 and summary["max"] == 3.0
    assert set(summary) >= {"p50", "p90", "p99"}


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=[2.0, 1.0])


def test_histogram_percentile_validates_range():
    with pytest.raises(ValueError):
        Histogram("h").percentile(101)


def test_registry_rejects_duplicates():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_get_names_unknown_metric():
    registry = MetricsRegistry()
    registry.counter("a.known")
    with pytest.raises(KeyError, match="a.known"):
        registry.get("a.missing")


def test_registry_snapshot_is_json_safe():
    import json

    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g", lambda: 1.5)
    hist = registry.histogram("h")
    hist.observe(10.0)
    snapshot = registry.snapshot()
    assert snapshot["c"] == 2.0
    assert snapshot["g"] == 1.5
    assert snapshot["h"]["count"] == 1
    json.dumps(snapshot)  # must round-trip

    assert registry.names() == ["c", "g", "h"]
    assert len(registry) == 3
