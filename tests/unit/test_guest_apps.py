"""Unit tests for the guest VNF applications."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.cpu.cores import Core
from repro.vif.ptnet import make_ptnet_interface
from repro.vif.vhost_user import make_vhost_user_interface
from repro.vm.apps import GuestL2Fwd, GuestValeBridge, GuestValeXConnect


def _vhost_pair():
    return make_vhost_user_interface("eth0"), make_vhost_user_interface("eth1")


def _ptnet_pair():
    return make_ptnet_interface("pt0"), make_ptnet_interface("pt1")


def _run_app(sim, app, until_ns):
    core = Core(sim, "vcpu0")
    core.attach(app)
    core.start()
    sim.run_until(until_ns)
    return core


class TestGuestL2Fwd:
    def test_forwards_rx_to_tx(self, sim):
        rx, tx = _vhost_pair()
        app = GuestL2Fwd(sim, rx, tx, burst=4)
        rx.to_guest.push_batch([Packet() for _ in range(4)])
        _run_app(sim, app, 100_000)
        assert len(tx.to_host) == 4
        assert app.forwarded == 4

    def test_rewrites_destination_mac(self, sim):
        rx, tx = _vhost_pair()
        app = GuestL2Fwd(sim, rx, tx, burst=4, dst_mac=0xAA)
        rx.to_guest.push_batch([Packet(dst_mac=0x01) for _ in range(4)])
        _run_app(sim, app, 100_000)
        out = tx.to_host.pop_batch(4)
        assert all(p.dst_mac == 0xAA for p in out)
        assert all(p.hops == 1 for p in out)

    def test_partial_batch_waits_for_drain_timeout(self, sim):
        rx, tx = _vhost_pair()
        app = GuestL2Fwd(sim, rx, tx, burst=32, drain_ns=50_000.0)
        rx.to_guest.push_batch([Packet() for _ in range(3)])
        core = Core(sim, "vcpu0")
        core.attach(app)
        core.start()
        sim.run_until(20_000)
        assert len(tx.to_host) == 0  # buffered, below burst, timer not due
        sim.run_until(200_000)
        assert len(tx.to_host) == 3  # drained on timeout

    def test_full_burst_flushes_immediately(self, sim):
        rx, tx = _vhost_pair()
        app = GuestL2Fwd(sim, rx, tx, burst=8, drain_ns=10_000_000.0)
        rx.to_guest.push_batch([Packet() for _ in range(8)])
        _run_app(sim, app, 50_000)
        assert len(tx.to_host) == 8

    def test_strict_batching_penalises_low_load(self, sim):
        """The Sec. 5.3 mechanism: drain delay dominates at low rate."""
        rx, tx = _vhost_pair()
        app = GuestL2Fwd(sim, rx, tx, burst=32, drain_ns=100_000.0)
        packet = Packet(t_created=0.0)
        rx.to_guest.push(packet)
        core = Core(sim, "vcpu0")
        core.attach(app)
        core.start()
        sim.run_until(1_000_000)
        assert len(tx.to_host) == 1
        # The lone packet waited roughly the full drain interval.
        assert app._last_flush_ns >= 90_000.0


class TestGuestValeXConnect:
    def test_forwards_both_directions(self, sim):
        a, b = _ptnet_pair()
        app = GuestValeXConnect(sim, a, b)
        a.to_guest.push_batch([Packet() for _ in range(3)])
        b.to_guest.push_batch([Packet() for _ in range(2)])
        _run_app(sim, app, 100_000)
        assert len(b.to_host) == 3
        assert len(a.to_host) == 2
        assert app.forwarded == 5

    def test_adaptive_batching_no_drain_delay(self, sim):
        """VALE forwards whatever is pending -- no low-load timer."""
        a, b = _ptnet_pair()
        app = GuestValeXConnect(sim, a, b)
        a.to_guest.push(Packet())
        _run_app(sim, app, 5_000)
        assert len(b.to_host) == 1  # forwarded within microseconds

    def test_increments_hops(self, sim):
        a, b = _ptnet_pair()
        app = GuestValeXConnect(sim, a, b)
        a.to_guest.push(Packet())
        _run_app(sim, app, 10_000)
        assert b.to_host.pop_batch(1)[0].hops == 1


class TestGuestValeBridge:
    def test_outbound_path(self, sim):
        vif = make_ptnet_interface("pt0")
        bridge = GuestValeBridge(sim, vif)
        bridge.gen_to_bridge.push_batch([Packet() for _ in range(5)])
        _run_app(sim, bridge, 100_000)
        assert len(vif.to_host) == 5

    def test_inbound_path(self, sim):
        vif = make_ptnet_interface("pt0")
        bridge = GuestValeBridge(sim, vif)
        vif.to_guest.push_batch([Packet() for _ in range(5)])
        _run_app(sim, bridge, 100_000)
        assert len(bridge.bridge_to_monitor) == 5

    def test_bridge_is_an_extra_hop_with_real_cost(self, sim):
        """The paper's workaround costs more than the VNF cross-connect."""
        assert GuestValeBridge(sim, make_ptnet_interface("p")).proc.per_byte > (
            GuestValeXConnect(sim, *_ptnet_pair()).proc.per_byte
        )
