"""Unit tests for the cycle-attribution profiler."""

from __future__ import annotations

import json

import pytest

from repro.obs.profiler import CycleProfiler, STAGES


def test_record_batch_accumulates_per_path():
    profiler = CycleProfiler(switch="vpp", scenario="p2p")
    profiler.record_batch("a->b", 32, rx_cycles=320.0, proc_cycles=640.0, tx_cycles=160.0)
    profiler.record_batch("a->b", 32, rx_cycles=320.0, proc_cycles=640.0, tx_cycles=160.0,
                          overhead_cycles=64.0)
    report = profiler.report()
    (path,) = report.paths
    assert path.packets == 64
    assert path.batches == 2
    assert path.mean_batch == 32.0
    cpp = path.cycles_per_packet()
    assert cpp["rx"] == pytest.approx(10.0)
    assert cpp["proc"] == pytest.approx(20.0)
    assert cpp["tx"] == pytest.approx(5.0)
    assert cpp["overhead"] == pytest.approx(1.0)


def test_chain_sums_paths():
    profiler = CycleProfiler()
    profiler.record_batch("hop1", 10, 100.0, 200.0, 50.0)
    profiler.record_batch("hop2", 10, 40.0, 60.0, 20.0)
    chain = profiler.report().chain_cycles_per_packet()
    assert chain["rx"] == pytest.approx(10.0 + 4.0)
    assert chain["proc"] == pytest.approx(20.0 + 6.0)
    assert chain["tx"] == pytest.approx(5.0 + 2.0)


def test_global_overhead_amortised_over_chain_packets():
    profiler = CycleProfiler()
    profiler.record_batch("hop", 100, 0.0, 0.0, 0.0)
    profiler.record_global_overhead("stall", 300.0)
    profiler.record_global_overhead("stall", 200.0)
    profiler.record_global_overhead("app", 500.0)
    report = profiler.report()
    assert report.global_overhead_cycles == {"stall": 500.0, "app": 500.0}
    assert report.chain_cycles_per_packet()["overhead"] == pytest.approx(10.0)


def test_empty_report_is_all_zero():
    report = CycleProfiler().report()
    assert report.packets == 0
    assert report.chain_cycles_per_packet() == {stage: 0.0 for stage in STAGES}
    assert report.total_cycles_per_packet == 0.0


def test_to_dict_round_trips_through_json():
    profiler = CycleProfiler(switch="snabb", scenario="loopback")
    profiler.record_batch("nic->vm", 64, 640.0, 1280.0, 320.0)
    profiler.record_global_overhead("app", 128.0)
    payload = json.loads(json.dumps(profiler.report().to_dict()))
    assert payload["switch"] == "snabb"
    assert payload["packets"] == 64
    assert payload["paths"][0]["name"] == "nic->vm"
    assert payload["chain_cycles_per_packet"]["overhead"] == pytest.approx(2.0)
