"""Unit tests for the steady-state fast-forward (repro.core.warp).

The warp's contract has two halves, and both get tested here:

* when it engages, the fast-forwarded run is *bit-identical* to the
  event-by-event run -- every counter, timestamp, stats accumulator and
  RNG state (see also the property tests and tools/warp_check.py);
* when the run is not provably replay-safe (faults armed, watchdog
  scanning, per-packet observers, probes, non-p2p shapes...) it declines
  automatically, with a stable reason surfaced in the WarpReport.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SimulationError, Simulator
from repro.core.stats import RateMeter
from repro.core.warp import (
    WARP_VERSION,
    WarpReport,
    engine_features,
    state_fingerprint,
    try_warp,
    warp_enabled,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.measure.runner import drive
from repro.scenarios import p2p, v2v

WARMUP = 600_000.0
MEASURE = 3_000_000.0


def _drive(tb, warp):
    return drive(tb, warmup_ns=WARMUP, measure_ns=MEASURE, warp=warp)


# -- environment switch and feature flags -----------------------------------


def test_warp_enabled_parses_environment(monkeypatch):
    monkeypatch.delenv("REPRO_WARP", raising=False)
    assert warp_enabled() is True
    assert warp_enabled(default=False) is False
    for value in ("0", "false", "off", "no", " OFF "):
        monkeypatch.setenv("REPRO_WARP", value)
        assert warp_enabled() is False, value
    for value in ("1", "true", "on", "yes"):
        monkeypatch.setenv("REPRO_WARP", value)
        assert warp_enabled(default=False) is True, value
    monkeypatch.setenv("REPRO_WARP", "gibberish")
    assert warp_enabled() is True  # unrecognised -> default


def test_engine_features_reflect_warp_state(monkeypatch):
    monkeypatch.delenv("REPRO_WARP", raising=False)
    assert engine_features() == {"warp": True, "warp_version": WARP_VERSION}
    monkeypatch.setenv("REPRO_WARP", "0")
    assert engine_features() == {"warp": False, "warp_version": WARP_VERSION}


def test_report_describe_both_shapes():
    ok = WarpReport(engaged=True, warped_ns=2e6, events_replayed=7, verify_ns=2.5e5)
    assert "engaged" in ok.describe() and "7 events" in ok.describe()
    no = WarpReport(engaged=False, reason="probes-active")
    assert no.describe() == "declined[replay]: probes-active"
    turbo = WarpReport(engaged=True, mode="turbo", warped_ns=1e6)
    assert turbo.describe().startswith("engaged[turbo]")


# -- engagement and bit-identity --------------------------------------------


@pytest.mark.parametrize("switch", ["vpp", "ovs-dpdk"])
def test_warp_engages_and_is_bit_identical(switch):
    off = p2p.build(switch, frame_size=64, rate_pps=3e6)
    r_off = _drive(off, warp=False)
    on = p2p.build(switch, frame_size=64, rate_pps=3e6)
    r_on = _drive(on, warp=True)

    assert r_off.warp is None
    assert r_on.warp is not None and r_on.warp.engaged, r_on.warp.describe()
    assert r_on.warp.warped_ns > 0
    assert state_fingerprint(off) == state_fingerprint(on)
    assert [repr(v) for v in r_off.per_direction_gbps] == [
        repr(v) for v in r_on.per_direction_gbps
    ]
    assert r_off.events == r_on.events


def test_warp_engages_under_saturating_input():
    tb = p2p.build("bess", frame_size=64)
    result = _drive(tb, warp=True)
    assert result.warp is not None and result.warp.engaged


# -- automatic declines ------------------------------------------------------


def _reason(tb, watchdog_active=False):
    report = try_warp(tb, WARMUP, WARMUP + MEASURE, watchdog_active)
    assert not report.engaged
    return report.reason


def test_declines_on_armed_fault_plan():
    tb = p2p.build("vpp", frame_size=64)
    plan = FaultPlan.of(
        FaultEvent.from_dict(
            {
                "kind": "nic-link-flap",
                "target": "sut-nic.p1",
                "at_ns": 1.2e6,
                "duration_ns": 3e5,
            }
        )
    )
    injector = FaultInjector(tb, plan)
    assert "fault_injector" not in tb.extras  # constructing does not mark
    injector.arm()
    assert tb.extras["fault_injector"] is injector  # arm() marks the testbed
    assert _reason(tb) == "fault-plan-active"


def test_declines_under_watchdog():
    tb = p2p.build("vpp", frame_size=64)
    assert _reason(tb, watchdog_active=True) == "watchdog-active"


def test_declines_on_per_packet_observation():
    from repro.obs import ObsConfig, observe

    tb = p2p.build("vpp", frame_size=64)
    observe(tb, ObsConfig(profile=True))
    assert _reason(tb) == "per-packet-tracing"


def test_declines_on_latency_probes():
    tb = p2p.build("vpp", frame_size=64, probe_interval_ns=20_000.0)
    assert _reason(tb) == "probes-active"


def test_declines_on_non_p2p_scenario():
    tb = v2v.build("vpp", frame_size=64)
    assert _reason(tb) == "scenario:v2v"


def test_declines_on_bidirectional_traffic():
    tb = p2p.build("vpp", frame_size=64, bidirectional=True)
    assert _reason(tb) == "bidirectional"


@pytest.mark.parametrize("switch", ["snabb", "vale"])
def test_declines_on_unsupported_switches(switch):
    tb = p2p.build(switch, frame_size=64)
    report = try_warp(tb, WARMUP, WARMUP + MEASURE, False)
    assert not report.engaged
    assert report.reason  # a stable, non-empty reason is part of the contract
    # ...and the run still completes normally afterwards.
    result = _drive(tb, warp=True)
    assert result.warp is not None and not result.warp.engaged
    assert result.mpps > 0


def test_declines_on_short_span():
    tb = p2p.build("vpp", frame_size=64)
    report = try_warp(tb, 100_000.0, 200_000.0, False)
    assert not report.engaged
    assert report.reason == "span-too-short"


# -- commit plumbing ---------------------------------------------------------


def test_replace_pending_refuses_mid_dispatch():
    sim = Simulator()

    def hostile():
        sim.replace_pending([], now=5.0, seq=99, events=1)

    sim.at(1.0, hostile)
    with pytest.raises(SimulationError, match="mid-dispatch"):
        sim.run_until(2.0)


def test_replace_pending_refuses_rewind():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run_until(10.0)
    with pytest.raises(SimulationError, match="rewind"):
        sim.replace_pending([], now=5.0, seq=99, events=1)


def test_replace_pending_installs_state():
    sim = Simulator()
    fired = []
    sim.replace_pending(
        [(12.0, 3, lambda: fired.append("a")), (13.0, 4, lambda: fired.append("b"))],
        now=11.0,
        seq=5,
        events=2,
    )
    assert sim.now == 11.0
    assert sim.events_executed == 2
    sim.run_until(20.0)
    assert fired == ["a", "b"]
    assert sim.events_executed == 4


def test_rate_meter_set_counts():
    meter = RateMeter(frame_size_hint=64)
    meter.open_window(10.0)
    meter.close_window(20.0)
    meter.set_counts(100, 6_400, 7)
    assert meter.packets == 100
    assert meter.bytes == 6_400
    assert meter.warmup_packets == 7


def test_warp_label_maps_reports_to_record_column():
    from types import SimpleNamespace

    from repro.campaign.spec import _warp_label
    from repro.core.warp import WarpReport

    assert _warp_label(SimpleNamespace(warp=None)) is None
    engaged = WarpReport(engaged=True, mode="turbo", warped_ns=1e6)
    assert _warp_label(SimpleNamespace(warp=engaged)) == "turbo"
    declined = WarpReport(engaged=False, mode="replay", reason="interrupt-driven")
    assert _warp_label(SimpleNamespace(warp=declined)) == "declined:interrupt-driven"


def test_warp_decline_prometheus_counters():
    from types import SimpleNamespace

    from repro.obs.exporters import warp_decline_prometheus_text

    outcomes = [
        ("a", SimpleNamespace(warp="replay")),
        ("b", SimpleNamespace(warp="turbo")),
        ("c", SimpleNamespace(warp="turbo")),
        ("d", SimpleNamespace(warp="declined:interrupt-driven")),
        ("e", SimpleNamespace(warp="declined:interrupt-driven")),
        ("f", SimpleNamespace(warp="declined:scenario:weird")),
        ("g", SimpleNamespace(warp=None)),  # warp off: not counted
    ]
    text = warp_decline_prometheus_text(outcomes, labels={"campaign": "x"})
    assert "# TYPE repro_warp_engaged_total counter" in text
    assert "# TYPE repro_warp_declined_total counter" in text
    assert 'repro_warp_engaged_total{campaign="x",mode="turbo"} 2' in text
    assert 'repro_warp_engaged_total{campaign="x",mode="replay"} 1' in text
    # Label values are sanitised for Prometheus (hyphens and colons
    # become underscores).
    assert (
        'repro_warp_declined_total{campaign="x",reason="interrupt_driven"} 2'
        in text
    )
    assert 'reason="scenario_weird"' in text


def test_warp_decline_prometheus_empty_is_just_headers():
    from repro.obs.exporters import warp_decline_prometheus_text

    text = warp_decline_prometheus_text([])
    assert text.count("# TYPE") == 2
