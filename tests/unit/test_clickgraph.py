"""Unit tests for the Click element-graph compiler."""

from __future__ import annotations

import pytest

from repro.switches.clickgraph import (
    ELEMENT_COSTS,
    PAPER_P2P_CONFIG,
    CompiledChain,
    UnknownElementError,
    compile_chain,
    compile_config,
    proc_cost_for,
)
from repro.switches.params import FASTCLICK_PARAMS


def test_paper_config_compiles_to_calibrated_proc():
    proc = proc_cost_for(PAPER_P2P_CONFIG)
    assert proc.per_packet == pytest.approx(FASTCLICK_PARAMS.proc.per_packet)
    assert proc.per_batch == pytest.approx(FASTCLICK_PARAMS.proc.per_batch)


def test_chain_cost_is_sum_of_elements():
    chain = compile_chain([("FromDPDKDevice", "0"), ("Counter", ""), ("ToDPDKDevice", "1")])
    expected = (
        ELEMENT_COSTS["FromDPDKDevice"].per_packet
        + ELEMENT_COSTS["Counter"].per_packet
        + ELEMENT_COSTS["ToDPDKDevice"].per_packet
    )
    assert chain.proc.per_packet == pytest.approx(expected)
    assert chain.depth == 3


def test_per_byte_elements_propagate():
    chain = compile_chain([("SetIPChecksum", "")])
    assert chain.proc.per_byte > 0


def test_unknown_element_rejected():
    with pytest.raises(UnknownElementError, match="WarpDrive"):
        compile_chain([("WarpDrive", "9")])


def test_compile_config_multiline():
    config = """
    FromDPDKDevice(0) -> ToDPDKDevice(1);
    FromDPDKDevice(1) -> Counter() -> ToDPDKDevice(0)
    """
    chains = compile_config(config)
    assert len(chains) == 2
    assert chains[1].depth == 3


def test_proc_cost_uses_worst_chain():
    config = """
    FromDPDKDevice(0) -> ToDPDKDevice(1);
    FromDPDKDevice(1) -> IPClassifier(x) -> ToDPDKDevice(0)
    """
    proc = proc_cost_for(config)
    assert proc.per_packet == pytest.approx(
        ELEMENT_COSTS["FromDPDKDevice"].per_packet
        + ELEMENT_COSTS["IPClassifier"].per_packet
        + ELEMENT_COSTS["ToDPDKDevice"].per_packet
    )


def test_empty_config_rejected():
    with pytest.raises(ValueError):
        proc_cost_for("   ")


def test_richer_graph_lowers_throughput():
    """Composing more elements costs measurable throughput."""
    from dataclasses import replace

    from repro.analysis.bottleneck import estimate

    rich = proc_cost_for(
        "FromDPDKDevice(0) -> IPClassifier(x) -> Counter() -> SetIPChecksum() -> ToDPDKDevice(1)"
    )
    rich_params = replace(FASTCLICK_PARAMS, proc=rich)
    base = estimate("fastclick", "p2p", 64).core_capacity_pps
    heavy = estimate("fastclick", "p2p", 64, params=rich_params).core_capacity_pps
    assert heavy < base


def test_compiled_chain_is_value_object():
    chain = compile_chain([("Counter", "")])
    assert isinstance(chain, CompiledChain)
    assert chain.elements == ("Counter",)
