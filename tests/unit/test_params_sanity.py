"""Sanity invariants over the calibrated parameter set.

These guard the calibration against accidental edits: every constraint
here traces to a claim in the paper or to physical sense.
"""

from __future__ import annotations

import pytest

from repro.cpu.cores import DEFAULT_FREQ_HZ
from repro.core.units import line_rate_pps
from repro.switches.params import ALL_PARAMS


@pytest.fixture(params=sorted(ALL_PARAMS))
def params(request):
    return ALL_PARAMS[request.param]


class TestPhysicalSanity:
    def test_costs_nonnegative(self, params):
        for cost in (params.nic_rx, params.nic_tx, params.proc):
            assert cost.per_batch >= 0
            assert cost.per_packet >= 0
            assert cost.per_byte >= 0

    def test_vif_costs_nonnegative(self, params):
        for cost in (
            params.vif_costs.host_tx,
            params.vif_costs.host_rx,
            params.vif_costs.guest_tx,
            params.vif_costs.guest_rx,
        ):
            assert cost.per_packet >= 0 and cost.per_byte >= 0

    def test_batch_size_sane(self, params):
        assert 1 <= params.batch_size <= 512

    def test_ring_sizes_are_powers_of_two(self, params):
        for slots in (params.nic_rx_slots, params.nic_tx_slots, params.vring_slots):
            assert slots & (slots - 1) == 0, slots

    def test_jitter_bounded(self, params):
        assert 0 <= params.jitter_sigma < 1.0
        assert 0 <= params.jitter_sigma_vif < 1.0

    def test_bidir_penalty_is_mild(self, params):
        assert 1.0 <= params.bidir_vif_penalty <= 1.5


class TestPaperConstraints:
    def test_no_switch_exceeds_line_rate_by_much_at_64b(self, params):
        """p2p capacity should be of testbed magnitude (not 100x off)."""
        per_packet = (
            params.nic_rx.cycles_per_packet(64, params.batch_size)
            + params.proc.cycles_per_packet(64, params.batch_size)
            + params.nic_tx.cycles_per_packet(64, params.batch_size)
        )
        capacity = DEFAULT_FREQ_HZ / per_packet
        assert 0.25 * line_rate_pps(64) < capacity < 4 * line_rate_pps(64)

    def test_only_vale_is_interrupt_driven(self):
        interrupt = {name for name, p in ALL_PARAMS.items() if p.interrupt_driven}
        assert interrupt == {"vale"}

    def test_moderation_only_with_interrupts(self, params):
        if params.rx_moderation_ns is not None:
            assert params.interrupt_driven

    def test_only_snabb_is_pipeline(self):
        pipeline = {name for name, p in ALL_PARAMS.items() if p.pipeline}
        assert pipeline == {"snabb"}

    def test_only_bess_has_vm_limit(self):
        limited = {name for name, p in ALL_PARAMS.items() if p.max_vms is not None}
        assert limited == {"bess"}

    def test_vpp_vhost_rx_penalty(self):
        """Sec. 5.2's reversed-path finding, encoded asymmetrically."""
        costs = ALL_PARAMS["vpp"].vif_costs
        assert costs.host_rx.per_packet > costs.host_tx.per_packet

    def test_snabb_nic_rx_beats_its_vhost(self):
        """Sec. 5.2: Snabb's v2v beats its p2v, so its NIC path must cost
        more than its vhost path at 64B."""
        params = ALL_PARAMS["snabb"]
        assert params.nic_rx.per_packet > params.vif_costs.host_tx.cycles_per_packet(64, 10**9)

    def test_vale_copies_per_byte(self):
        assert ALL_PARAMS["vale"].proc.per_byte > 0

    def test_vale_ptnet_is_zero_copy(self):
        assert ALL_PARAMS["vale"].vif_costs.host_copy_factor == 0.0

    def test_vhost_switches_copy(self):
        for name, params in ALL_PARAMS.items():
            if name != "vale":
                assert params.vif_costs.host_copy_factor == 1.0, name

    def test_fastclick_table2_rings(self):
        assert ALL_PARAMS["fastclick"].nic_rx_slots == 4096

    def test_t4p4s_strict_batching_only(self):
        waiting = {name for name, p in ALL_PARAMS.items() if p.batch_wait_ns is not None}
        assert waiting == {"t4p4s"}

    def test_drain_timers_only_where_documented(self):
        draining = {name for name, p in ALL_PARAMS.items() if p.tx_drain_ns is not None}
        assert draining == {"fastclick", "snabb"}

    @staticmethod
    def _p2p_hop_cycles(params):
        return (
            params.nic_rx.cycles_per_packet(64, params.batch_size)
            + params.proc.cycles_per_packet(64, params.batch_size)
            + params.nic_tx.cycles_per_packet(64, params.batch_size)
        )

    def test_bess_has_the_cheapest_p2p_hop(self):
        """Fig. 4a: BESS tops the p2p ranking."""
        costs = {name: self._p2p_hop_cycles(p) for name, p in ALL_PARAMS.items()}
        assert min(costs, key=costs.get) == "bess"

    def test_vale_and_t4p4s_have_the_costliest_p2p_hops(self):
        """Fig. 4a: VALE and t4p4s share the bottom at ~5.6 Gbps."""
        costs = {name: self._p2p_hop_cycles(p) for name, p in ALL_PARAMS.items()}
        worst_two = sorted(costs, key=costs.get)[-2:]
        assert set(worst_two) == {"vale", "t4p4s"}
