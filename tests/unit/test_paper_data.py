"""Unit tests: the recorded paper data is internally consistent."""

from __future__ import annotations

import pytest

from repro.analysis import paper_values as pv
from repro.switches.registry import ALL_SWITCHES
from repro.testbed import PLATFORM, VERSIONS


class TestPaperValues:
    def test_fig4_tables_cover_all_switches(self):
        for table in (pv.FIG4A_P2P_UNI_64B, pv.FIG4A_P2P_BIDI_64B, pv.FIG4B_P2V_UNI_64B, pv.FIG4C_V2V_UNI_64B):
            assert set(table) == set(ALL_SWITCHES)

    def test_table3_covers_all_switches_and_scenarios(self):
        assert set(pv.TABLE3) == set(ALL_SWITCHES)
        for name, rows in pv.TABLE3.items():
            assert set(rows) == {"p2p", 1, 2, 3, 4}, name
            for scenario, cells in rows.items():
                if cells is None:
                    assert name == "bess" and scenario == 4  # the paper's '-'
                else:
                    assert len(cells) == 3

    def test_table4_covers_all_switches(self):
        assert set(pv.TABLE4) == set(ALL_SWITCHES)

    def test_table4_verbatim_values(self):
        # Spot-check against the paper's Table 4.
        assert pv.TABLE4["vale"] == 21.0
        assert pv.TABLE4["t4p4s"] == 70.0
        assert pv.TABLE4["bess"] == 37.0

    def test_table3_verbatim_values(self):
        # Spot-check the most-quoted cells.
        assert pv.TABLE3["t4p4s"][4] == (548, 228, 7275)
        assert pv.TABLE3["fastclick"][4][0] == 978
        assert pv.TABLE3["bess"]["p2p"] == (4.0, 4.6, 6.4)

    def test_vale_v2v_ratio_consistent(self):
        # 35 Gbps at 64% of unidirectional -> uni ~54.7 Gbps.
        implied_uni = pv.VALE_V2V_BIDI_1024B / pv.VALE_V2V_BIDI_RATIO
        assert implied_uni == pytest.approx(54.7, abs=0.1)

    def test_loopback_findings_is_nonempty_prose(self):
        assert len(pv.LOOPBACK_FINDINGS) >= 5
        assert all(isinstance(f, str) and f for f in pv.LOOPBACK_FINDINGS)


class TestPlatformSpec:
    def test_platform_matches_sec_5_1(self):
        assert "E5-2690 v3" in PLATFORM.cpu
        assert "82599" in PLATFORM.nics
        assert PLATFORM.numa_nodes == 2
        assert "QEMU 2.5.0" in PLATFORM.hypervisor

    def test_versions_cover_all_switches(self):
        assert set(VERSIONS.versions) == set(ALL_SWITCHES)

    def test_versions_verbatim(self):
        assert VERSIONS.versions["vpp"] == "19.04"
        assert VERSIONS.versions["ovs-dpdk"] == "2.11.90"
