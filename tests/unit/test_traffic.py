"""Unit tests for the traffic tools (MoonGen, pkt-gen, FloWatcher)."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, batch_count
from repro.core.ring import Ring
from repro.cpu.cores import Core
from repro.nic.port import NicPort
from repro.traffic.flowatcher import FloWatcher
from repro.traffic.generator import PacedSource
from repro.traffic.guest import GuestMonitor, GuestTrafficGen
from repro.traffic.moongen import (
    MoonGenRx,
    MoonGenTx,
    effective_tx_rate,
    load_rate,
    rate_for_gbps,
    saturating_rate,
)
from repro.traffic.pktgen import PKTGEN_MAX_RATE_PPS, make_pktgen_rx, make_pktgen_tx
from repro.vif.vhost_user import make_vhost_user_interface


class RecordingSource(PacedSource):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted = []

    def _emit(self, batch):
        self.emitted.extend(batch)


class TestPacedSource:
    def test_rate_is_respected(self, sim):
        src = RecordingSource(sim, rate_pps=1e6, frame_size=64)
        src.start(0.0)
        sim.run_until(1_000_000)  # 1 ms at 1 Mpps ~ 1000 packets
        assert batch_count(src.emitted) == pytest.approx(1000, rel=0.05)
        assert src.packets_sent == batch_count(src.emitted)

    def test_burst_shrinks_at_low_rate(self, sim):
        src = RecordingSource(sim, rate_pps=100_000, frame_size=64, burst=32)
        assert src.burst < 32

    def test_full_burst_at_line_rate(self, sim):
        src = RecordingSource(sim, rate_pps=saturating_rate(64), frame_size=64, burst=32)
        assert src.burst == 32

    def test_probe_interval(self, sim):
        src = RecordingSource(
            sim, rate_pps=5e6, frame_size=64, probe_interval_ns=100_000.0
        )
        src.start(0.0)
        sim.run_until(1_000_000)
        probes = [p for p in src.emitted if p.is_probe]
        assert len(probes) == pytest.approx(10, abs=2)
        assert src.probes_sent == len(probes)

    def test_no_probes_without_interval(self, sim):
        src = RecordingSource(sim, rate_pps=5e6, frame_size=64)
        src.start(0.0)
        sim.run_until(100_000)
        assert not any(p.is_probe for p in src.emitted)

    def test_stop_at(self, sim):
        src = RecordingSource(sim, rate_pps=1e6, frame_size=64)
        src.start(0.0, stop_at_ns=500_000.0)
        sim.run()
        assert sim.now <= 520_000
        assert len(src.emitted) <= 520

    def test_flow_count_cycles_flows(self, sim):
        src = RecordingSource(sim, rate_pps=1e7, frame_size=64, flow_count=4)
        src.start(0.0)
        sim.run_until(10_000)
        flows = {p.flow_id for p in src.emitted}
        assert flows == {0, 1, 2, 3}

    def test_invalid_args(self, sim):
        with pytest.raises(ValueError):
            RecordingSource(sim, rate_pps=0, frame_size=64)
        with pytest.raises(ValueError):
            RecordingSource(sim, rate_pps=1e6, frame_size=64, burst=0)
        with pytest.raises(ValueError):
            RecordingSource(sim, rate_pps=1e6, frame_size=64, flow_count=0)

    def test_custom_stamp_probe_tx(self, sim):
        stamped = []
        src = RecordingSource(
            sim,
            rate_pps=1e6,
            frame_size=64,
            probe_interval_ns=50_000.0,
            stamp_probe_tx=lambda p, t: stamped.append((p, t)),
        )
        src.start(0.0)
        sim.run_until(200_000)
        assert stamped
        assert all(isinstance(p, Packet) for p, _ in stamped)


class TestMoonGen:
    def test_rate_rounding_near_line_rate(self):
        # 9.9 Gbps requested -> rounded to 10 Gbps (paper footnote 6).
        requested = rate_for_gbps(9.9, 64)
        assert effective_tx_rate(requested, 64) == pytest.approx(saturating_rate(64))

    def test_no_rounding_below_floor(self):
        requested = rate_for_gbps(9.5, 64)
        assert effective_tx_rate(requested, 64) == requested

    def test_tx_clamps_to_line_rate(self, sim):
        port = NicPort(sim, "gen")
        tx = MoonGenTx(sim, port, rate_pps=1e9, frame_size=64)
        assert tx.rate_pps == pytest.approx(saturating_rate(64))

    def test_tx_enables_hw_timestamping(self, sim):
        port = NicPort(sim, "gen")
        MoonGenTx(sim, port, rate_pps=1e6, frame_size=64)
        assert port.timestamp_tx

    def test_rx_counts_and_records_latency(self, sim):
        a = NicPort(sim, "a")
        b = NicPort(sim, "b")
        a.connect(b)
        rx = MoonGenRx(sim, b, frame_size=64)
        rx.meter.open_window(0.0)
        probe = Packet(is_probe=True)
        probe.tx_timestamp = 0.0
        a.send_batch([probe, Packet()])
        sim.run()
        assert rx.meter.packets == 2
        assert len(rx.meter.latency) == 1

    def test_load_rate(self):
        assert load_rate(0.5, 10e6) == 5e6
        with pytest.raises(ValueError):
            load_rate(0, 10e6)

    def test_v2v_probe_rate_is_1mpps(self):
        # Table 4: 672 Mbps of 64B frames == 1 Mpps.
        assert rate_for_gbps(0.672, 64) == pytest.approx(1e6)


class TestGuestTools:
    def test_guest_gen_emits_into_vif(self, sim):
        vif = make_vhost_user_interface("v")
        gen = GuestTrafficGen(sim, vif, rate_pps=1e6, frame_size=64)
        gen.start(0.0)
        sim.run_until(100_000)
        assert len(vif.to_host) > 0

    def test_guest_gen_via_ring(self, sim):
        vif = make_vhost_user_interface("v")
        ring = Ring(128)
        gen = GuestTrafficGen(sim, vif, rate_pps=1e6, frame_size=64, via_ring=ring)
        gen.start(0.0)
        sim.run_until(100_000)
        assert len(ring) > 0
        assert len(vif.to_host) == 0

    def test_monitor_requires_source(self, sim):
        with pytest.raises(ValueError):
            GuestMonitor(sim, None, 64)

    def test_monitor_counts_and_stamps(self, sim):
        vif = make_vhost_user_interface("v")
        monitor = GuestMonitor(sim, vif, 64)
        monitor.meter.open_window(0.0)
        core = Core(sim, "vcpu")
        core.attach(monitor)
        core.start()
        probe = Packet(is_probe=True)
        probe.tx_timestamp = 0.0
        vif.to_guest.push_batch([probe, Packet()])
        sim.run_until(10_000)
        assert monitor.meter.packets == 2
        assert probe.rx_timestamp is not None
        assert len(monitor.meter.latency) == 1

    def test_pktgen_is_not_10g_capped(self, sim):
        vif = make_vhost_user_interface("v")
        gen = make_pktgen_tx(sim, vif, rate_pps=1e9, frame_size=64)
        assert gen.rate_pps == PKTGEN_MAX_RATE_PPS

    def test_pktgen_rx_is_a_monitor(self, sim):
        vif = make_vhost_user_interface("v")
        assert isinstance(make_pktgen_rx(sim, vif, 64), GuestMonitor)

    def test_flowatcher_per_flow_counters(self, sim):
        vif = make_vhost_user_interface("v")
        fw = FloWatcher(sim, vif, 64)
        core = Core(sim, "vcpu")
        core.attach(fw)
        core.start()
        vif.to_guest.push_batch([Packet(flow_id=1), Packet(flow_id=1), Packet(flow_id=2)])
        sim.run_until(10_000)
        assert fw.flow_counts[1] == 2
        assert fw.flow_counts[2] == 1
