"""Unit tests for the VPP graph-path compiler."""

from __future__ import annotations

import pytest

from repro.switches.params import VPP_PARAMS
from repro.switches.vppgraph import (
    IP4_ACL_ROUTER_PATH,
    IP4_ROUTER_PATH,
    L2_BRIDGE_PATH,
    L2PATCH_PATH,
    NODE_COSTS,
    UnknownNodeError,
    compile_path,
)


def test_l2patch_compiles_to_calibrated_proc():
    compiled = compile_path(L2PATCH_PATH)
    assert compiled.proc.per_packet == pytest.approx(VPP_PARAMS.proc.per_packet)
    assert compiled.proc.per_batch == pytest.approx(VPP_PARAMS.proc.per_batch)


def test_io_nodes_are_free_inside_the_graph():
    assert NODE_COSTS["dpdk-input"] == 0.0
    assert NODE_COSTS["interface-output"] == 0.0


def test_dispatch_scales_with_depth():
    shallow = compile_path(L2PATCH_PATH)
    deep = compile_path(IP4_ROUTER_PATH)
    assert deep.proc.per_batch > shallow.proc.per_batch
    assert deep.depth == 6


def test_router_costs_more_than_patch():
    assert (
        compile_path(IP4_ROUTER_PATH).proc.per_packet
        > compile_path(L2PATCH_PATH).proc.per_packet
    )


def test_acl_adds_on_top_of_router():
    assert (
        compile_path(IP4_ACL_ROUTER_PATH).proc.per_packet
        == compile_path(IP4_ROUTER_PATH).proc.per_packet + NODE_COSTS["acl-plugin"]
    )


def test_bridge_path_between_patch_and_router():
    patch = compile_path(L2PATCH_PATH).proc.per_packet
    bridge = compile_path(L2_BRIDGE_PATH).proc.per_packet
    router = compile_path(IP4_ROUTER_PATH).proc.per_packet
    assert patch < bridge < router


def test_unknown_node_rejected():
    with pytest.raises(UnknownNodeError):
        compile_path(("dpdk-input", "quantum-tunnel"))


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        compile_path(())


def test_vector_amortisation_of_dispatch():
    """Per-packet dispatch share shrinks as vectors fill -- the point of
    vector packet processing."""
    compiled = compile_path(IP4_ROUTER_PATH)
    at_1 = compiled.proc.cycles_per_packet(64, batch_size=1)
    at_256 = compiled.proc.cycles_per_packet(64, batch_size=256)
    assert at_256 < at_1 / 2
