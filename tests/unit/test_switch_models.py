"""Unit tests for the seven switch models' distinctive behaviours."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.cpu.cores import Core
from repro.nic.port import NicPort
from repro.switches.bess import Bess
from repro.switches.fastclick import FastClick, parse_click_config
from repro.switches.ovs_dpdk import OvsDpdk
from repro.switches.params import (
    OVS_EMC_MISS_EXTRA,
    OVS_UPCALL_EXTRA,
    T4P4S_PARAMS,
    T4P4S_STAGES,
)
from repro.switches.snabb import Snabb
from repro.switches.t4p4s import T4P4S, P4Table
from repro.switches.vale import VALE_MAC_TABLE_ENTRIES, Vale
from repro.switches.vpp import Vpp
from repro.vif.ptnet import make_ptnet_interface
from repro.vif.vhost_user import make_vhost_user_interface


def drive_p2p(sim, switch, packets):
    """Wire a switch port-to-port and push packets through it."""
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    gen0.connect(sut0)
    gen1.connect(sut1)
    a0 = switch.attach_phy(sut0)
    a1 = switch.attach_phy(sut1)
    switch.add_path(a0, a1)
    switch.bind_core(Core(sim, "sut"))
    received = []
    gen1.sink = received.extend
    gen0.send_batch(packets)
    sim.run_until(2_000_000)
    return received


class TestBess:
    def test_module_chain_mirrors_bessctl_config(self, sim):
        switch = Bess(sim)
        drive_p2p(sim, switch, [Packet()])
        chain = next(iter(switch.pipelines.values()))
        assert chain == ["QueueInc(s0.p2p)", "QueueOut(s1.p2p)"] or [
            c.split("(")[0] for c in chain
        ] == ["QueueInc", "QueueOut"]

    def test_module_counters_track_packets(self, sim):
        switch = Bess(sim)
        drive_p2p(sim, switch, [Packet() for _ in range(5)])
        assert all(count == 5 for count in switch.module_counters.values())

    def test_vif_paths_use_port_modules(self, sim):
        switch = Bess(sim)
        v = switch.attach_vif(make_vhost_user_interface("v"))
        p = switch.attach_phy(NicPort(sim, "p"))
        path = switch.add_path(p, v)
        assert switch.pipelines[id(path)][1].startswith("PortOut")

    def test_qemu_limit_in_params(self, sim):
        assert Bess(sim).params.max_vms == 3


class TestOvs:
    def test_single_flow_hits_emc_after_first_packet(self, sim):
        switch = OvsDpdk(sim)
        drive_p2p(sim, switch, [Packet(flow_id=1) for _ in range(50)])
        assert switch.emc_misses == 1
        assert switch.upcalls == 1
        assert switch.emc_hits == 49

    def test_distinct_flows_each_miss_once(self, sim):
        switch = OvsDpdk(sim)
        packets = [Packet(flow_id=i) for i in range(10)]
        drive_p2p(sim, switch, packets)
        assert switch.emc_misses == 10
        assert switch.upcalls == 10

    def test_emc_eviction_under_pressure(self, sim):
        switch = OvsDpdk(sim, emc_entries=4)
        packets = [Packet(flow_id=i % 8) for i in range(64)]
        drive_p2p(sim, switch, packets)
        # 8 flows through a 4-entry cache: repeated misses, but megaflows
        # exist so no further upcalls.
        assert switch.upcalls == 8
        assert switch.emc_misses > 8

    def test_miss_costs_more_than_hit(self, sim):
        assert OVS_EMC_MISS_EXTRA.per_packet > 0
        assert OVS_UPCALL_EXTRA.per_packet > OVS_EMC_MISS_EXTRA.per_packet


class TestVale:
    def test_learns_source_macs(self, sim):
        switch = Vale(sim)
        drive_p2p(sim, switch, [Packet(src_mac=0xAA), Packet(src_mac=0xBB)])
        assert switch.learned == 2
        assert switch.lookup(0xAA) is switch.paths[0].input

    def test_known_destination_not_flooded(self, sim):
        switch = Vale(sim)
        drive_p2p(sim, switch, [Packet(src_mac=0xAA, dst_mac=0xAA)])
        assert switch.flooded == 0

    def test_unknown_destination_flooded(self, sim):
        switch = Vale(sim)
        drive_p2p(sim, switch, [Packet(src_mac=0xAA, dst_mac=0xDEAD)])
        assert switch.flooded == 1

    def test_mac_table_bounded(self, sim):
        switch = Vale(sim)
        packets = [Packet(src_mac=i) for i in range(VALE_MAC_TABLE_ENTRIES + 50)]
        drive_p2p(sim, switch, packets)
        assert len(switch._mac_table) <= VALE_MAC_TABLE_ENTRIES

    def test_interrupt_driven_with_moderation(self, sim):
        params = Vale(sim).params
        assert params.interrupt_driven
        assert params.rx_moderation_ns is not None

    def test_copy_cost_is_per_byte(self, sim):
        # The port-to-port isolation copy (Sec. 2.1).
        assert Vale(sim).params.proc.per_byte > 0


class TestVpp:
    def test_node_runtime_counters(self, sim):
        switch = Vpp(sim)
        drive_p2p(sim, switch, [Packet() for _ in range(8)])
        assert switch.node_runtime["dpdk-input"].vectors == 8
        assert switch.node_runtime["l2-patch"].vectors == 8
        assert switch.node_runtime["interface-output"].calls >= 1

    def test_vectors_per_call(self, sim):
        switch = Vpp(sim)
        drive_p2p(sim, switch, [Packet() for _ in range(8)])
        node = switch.node_runtime["l2-patch"]
        assert node.vectors_per_call == pytest.approx(8.0)

    def test_vhost_nodes_used_on_vif_paths(self, sim):
        switch = Vpp(sim)
        vif = make_vhost_user_interface("v")
        port = NicPort(sim, "p")
        path = switch.add_path(switch.attach_vif(vif), switch.attach_phy(port))
        assert switch._graph_nodes(path)[0] == "vhost-user-input"

    def test_vhost_rx_penalty_in_params(self, sim):
        costs = Vpp(sim).params.vif_costs
        assert costs.host_rx.per_packet > costs.host_tx.per_packet

    def test_vector_size_256(self, sim):
        assert Vpp(sim).params.batch_size == 256


class TestT4p4s:
    def test_table_lookup_hits_and_misses(self):
        table = P4Table()
        class FakePort:
            pass
        port = FakePort()
        table.add_entry(0x1, port)
        assert table.lookup(0x1) is port
        assert table.lookup(0x2) is None
        assert (table.hits, table.misses) == (1, 1)
        assert len(table) == 1

    def test_paths_install_table_entries(self, sim):
        switch = T4P4S(sim)
        drive_p2p(sim, switch, [Packet()])
        assert len(switch.table) == 1

    def test_forwarding_consults_table(self, sim):
        switch = T4P4S(sim)
        drive_p2p(sim, switch, [Packet(dst_mac=0x02_00_00_00_00_02)])
        assert switch.table.hits == 1

    def test_stage_accounting(self, sim):
        switch = T4P4S(sim)
        drive_p2p(sim, switch, [Packet() for _ in range(4)])
        for stage in ("parse", "match_action", "deparse"):
            assert switch.stage_cycles[stage] > 0

    def test_stage_split_sums_to_proc(self):
        total_per_packet = sum(c.per_packet for c in T4P4S_STAGES.values())
        total_per_byte = sum(c.per_byte for c in T4P4S_STAGES.values())
        assert total_per_packet == pytest.approx(T4P4S_PARAMS.proc.per_packet)
        assert total_per_byte == pytest.approx(T4P4S_PARAMS.proc.per_byte)

    def test_mac_learning_removed_by_default(self, sim):
        # Table 2 tuning: "Remove source MAC learning phase".
        assert not T4P4S(sim).mac_learning

    def test_mac_learning_costs_extra_when_enabled(self, sim):
        tuned = T4P4S(sim)
        untuned = T4P4S(sim, mac_learning=True)
        batch = [Packet() for _ in range(8)]
        path = None  # _proc_cycles ignores the path for cost purposes
        assert untuned._proc_cycles(batch, path, 8, 512) > tuned._proc_cycles(batch, path, 8, 512)


class TestSnabb:
    def test_pipeline_model(self, sim):
        assert Snabb(sim).params.pipeline

    def test_app_graph_recorded(self, sim):
        switch = Snabb(sim)
        drive_p2p(sim, switch, [Packet()])
        assert switch.app_count == 2
        assert len(switch.links) == 1
        assert "->" in switch.links[0]

    def test_vhost_apps_for_vifs(self, sim):
        switch = Snabb(sim)
        vif = make_vhost_user_interface("vm1.eth0")
        switch.add_path(switch.attach_vif(vif), switch.attach_phy(NicPort(sim, "p")))
        assert "VhostUser" in switch.apps.values()

    def test_jit_stall_counter(self, sim):
        switch = Snabb(sim)
        # Saturate long enough for the Poisson stall process to fire.
        gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
        sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
        gen0.connect(sut0)
        gen1.connect(sut1)
        switch.add_path(switch.attach_phy(sut0), switch.attach_phy(sut1))
        switch.bind_core(Core(sim, "sut"))
        gen1.sink = lambda pkts: None
        for burst in range(200):
            sim.after(burst * 10_000, lambda: gen0.send_batch([Packet() for _ in range(32)]))
        sim.run_until(3_000_000)
        assert switch.jit_stalls >= 1

    def test_thrash_threshold_matches_4vnf_chain(self, sim):
        # 2 NICs + 2*4 vifs = 10 attachments >= threshold 9.
        params = Snabb(sim).params
        assert params.thrash_attachments == 9
        assert params.thrash_factor > 1.0


class TestFastClick:
    def test_parse_click_config(self):
        chains = parse_click_config("FromDPDKDevice(0)->ToDPDKDevice(1)")
        assert chains == [[("FromDPDKDevice", "0"), ("ToDPDKDevice", "1")]]

    def test_parse_multiline(self):
        config = """
        FromDPDKDevice(0) -> ToDPDKDevice(1);
        FromDPDKDevice(1) -> ToDPDKDevice(0)
        """
        assert len(parse_click_config(config)) == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_click_config("NotAnElement")

    def test_element_graph_built_from_paths(self, sim):
        switch = FastClick(sim)
        drive_p2p(sim, switch, [Packet()])
        assert switch.element_graph[0][0][0] == "FromDPDKDevice"
        assert switch.element_graph[0][1][0] == "ToDPDKDevice"

    def test_load_config_replaces_graph(self, sim):
        switch = FastClick(sim)
        switch.load_config("FromDPDKDevice(0)->ToDPDKDevice(1)")
        assert len(switch.element_graph) == 1

    def test_ring_tuning_from_table2(self, sim):
        params = FastClick(sim).params
        assert params.nic_rx_slots == 4096
        assert params.nic_tx_slots == 4096

    def test_vif_tx_drain_configured(self, sim):
        assert FastClick(sim).params.tx_drain_ns is not None
