"""Unit tests for framing arithmetic and unit conversions."""

from __future__ import annotations

import pytest

from repro.core import units


def test_wire_overhead_is_20_bytes():
    # preamble 7 + SFD 1 + IFG 12
    assert units.WIRE_OVERHEAD == 20


def test_wire_bytes_64():
    assert units.wire_bytes(64) == 84


def test_wire_bytes_rejects_runt_frames():
    with pytest.raises(ValueError):
        units.wire_bytes(32)


def test_line_rate_64b_is_14_88_mpps():
    # The headline constant of every 10G benchmarking paper.
    assert units.line_rate_pps(64) == pytest.approx(14_880_952.38, rel=1e-6)


def test_line_rate_1024b():
    assert units.line_rate_pps(1024) == pytest.approx(10e9 / (1044 * 8))


def test_pps_to_gbps_round_trip():
    for size in units.PAPER_FRAME_SIZES:
        pps = units.line_rate_pps(size)
        assert units.pps_to_gbps(pps, size) == pytest.approx(10.0)
        assert units.gbps_to_pps(10.0, size) == pytest.approx(pps)


def test_wire_time_64b():
    # 84 bytes at 10 Gbps = 67.2 ns
    assert units.wire_time_ns(64) == pytest.approx(67.2)


def test_wire_time_scales_with_rate():
    assert units.wire_time_ns(64, rate_bps=1_000_000_000) == pytest.approx(672.0)


def test_cycles_ns_round_trip():
    freq = 2.6e9
    assert units.ns_to_cycles(units.cycles_to_ns(1300, freq), freq) == pytest.approx(1300)


def test_cycles_to_ns_at_2_6ghz():
    assert units.cycles_to_ns(2600, 2.6e9) == pytest.approx(1000.0)


def test_mpps():
    assert units.mpps(14_880_952) == pytest.approx(14.880952)


def test_paper_frame_sizes():
    assert units.PAPER_FRAME_SIZES == (64, 256, 1024)
