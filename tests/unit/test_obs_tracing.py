"""Unit tests for the structured event tracer and engine observer."""

from __future__ import annotations

import pytest

from repro.core.engine import Simulator
from repro.obs.tracing import SimObserver, Tracer


def test_span_event_shape():
    tracer = Tracer()
    tracer.span("work", ts_ns=100.0, dur_ns=50.0, tid="core/sut", args={"n": 32})
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["ts"] == 100.0 and event["dur"] == 50.0
    assert event["tid"] == "core/sut"
    assert event["args"] == {"n": 32}


def test_instant_and_counter_shapes():
    tracer = Tracer()
    tracer.instant("wake", ts_ns=5.0, tid="core/sut")
    tracer.counter("sim.queue", ts_ns=6.0, values={"pending": 3.0}, tid="engine")
    instant, counter = tracer.events
    assert instant["ph"] == "i" and instant["s"] == "t"
    assert counter["ph"] == "C" and counter["args"] == {"pending": 3.0}


def test_sampling_is_deterministic_from_key():
    tracer = Tracer(sample_rate=64)
    decisions = [tracer.sampled(float(k)) for k in range(256)]
    assert decisions == [tracer.sampled(float(k)) for k in range(256)]
    assert sum(decisions) == 4  # exactly 1 in 64
    assert Tracer(sample_rate=1).sampled(12345.0)


def test_max_events_drops_are_counted():
    tracer = Tracer(max_events=3)
    for i in range(10):
        tracer.instant(f"e{i}", ts_ns=float(i))
    assert len(tracer) == 3
    assert tracer.dropped_events == 7


def test_tracer_validates_config():
    with pytest.raises(ValueError):
        Tracer(sample_rate=0)
    with pytest.raises(ValueError):
        Tracer(max_events=0)


def test_sim_observer_counts_dispatches():
    sim = Simulator()
    observer = SimObserver(sim)
    sim.set_observer(observer)

    def tick() -> None:
        pass

    for t in (10, 20, 30):
        sim.at(t, tick)
    sim.run_until(100)
    (name, count), *_ = observer.top_dispatchers()
    assert "tick" in name
    assert count == 3


def test_sim_observer_emits_queue_counter():
    sim = Simulator()
    tracer = Tracer()
    observer = SimObserver(sim, tracer)
    observer.COUNTER_EVERY = 2
    sim.set_observer(observer)
    for t in range(10):
        sim.at(float(t), lambda: None)
    sim.run_until(100)
    counters = [e for e in tracer.events if e["ph"] == "C"]
    assert counters
    assert all(e["name"] == "sim.queue" for e in counters)


def test_unobserved_engine_has_no_observer():
    sim = Simulator()
    assert sim.observer is None
    fired = []
    sim.at(10, lambda: fired.append(1))
    sim.run_until(100)
    assert fired == [1]
