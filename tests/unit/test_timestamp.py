"""Unit tests for the timestamping engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.packet import Packet
from repro.nic.timestamp import HardwareTimestamper, SoftwareTimestamper


def test_hardware_stamps_are_tight():
    ts = HardwareTimestamper(np.random.default_rng(0), jitter_ns=25.0)
    packet = Packet(is_probe=True)
    ts.stamp_tx(packet, 1000.0)
    ts.stamp_rx(packet, 5000.0)
    assert 1000.0 <= packet.tx_timestamp <= 1025.0
    assert 5000.0 <= packet.rx_timestamp <= 5025.0


def test_hardware_rtt_error_bounded_by_jitter():
    ts = HardwareTimestamper(np.random.default_rng(1), jitter_ns=25.0)
    errors = []
    for _ in range(200):
        packet = Packet(is_probe=True)
        ts.stamp_tx(packet, 0.0)
        ts.stamp_rx(packet, 10_000.0)
        errors.append(abs(packet.latency_ns - 10_000.0))
    assert max(errors) <= 25.0


def test_software_stamps_inflate_rtt():
    ts = SoftwareTimestamper(np.random.default_rng(2))
    rtts = []
    for _ in range(500):
        packet = Packet(is_probe=True)
        ts.stamp_tx(packet, 0.0)
        ts.stamp_rx(packet, 10_000.0)
        rtts.append(packet.latency_ns)
    mean_rtt = float(np.mean(rtts))
    # Mean inflation = 2*(overhead + jitter mean), always positive.
    expected = 10_000.0 + 2 * (ts.overhead_ns + ts.jitter_ns)
    assert mean_rtt == pytest.approx(expected, rel=0.1)
    assert min(rtts) > 10_000.0


def test_software_stamps_add_spread():
    hw = HardwareTimestamper(np.random.default_rng(3))
    sw = SoftwareTimestamper(np.random.default_rng(3))

    def spread(ts):
        rtts = []
        for _ in range(300):
            packet = Packet(is_probe=True)
            ts.stamp_tx(packet, 0.0)
            ts.stamp_rx(packet, 10_000.0)
            rtts.append(packet.latency_ns)
        return float(np.std(rtts))

    assert spread(sw) > spread(hw)
