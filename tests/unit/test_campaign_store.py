"""Unit tests for campaign persistence (JSONL log, resume, CSV export)."""

from __future__ import annotations

import csv

from repro.campaign.spec import RunFailure, RunRecord, RunSpec
from repro.campaign.store import CampaignStore, export_csv


def _record(spec: RunSpec, gbps: float = 9.5) -> RunRecord:
    return RunRecord(spec=spec, per_direction_gbps=[gbps], per_direction_mpps=[14.1], events=3)


def test_append_then_load(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    a, b = RunSpec("p2p", "vpp"), RunSpec("p2p", "bess")
    store.append("ka", _record(a))
    store.append("kb", RunFailure(spec=b, error="RuntimeError", message="boom"))
    loaded = store.load()
    assert set(loaded) == {"ka", "kb"}
    assert isinstance(loaded["ka"], RunRecord)
    assert isinstance(loaded["kb"], RunFailure)


def test_completed_keys_exclude_failures(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    store.append("ok", _record(RunSpec("p2p", "vpp")))
    store.append("bad", RunFailure(spec=RunSpec("p2p", "bess"), error="E", message="m"))
    assert store.completed_keys() == {"ok"}


def test_later_lines_win(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    spec = RunSpec("p2p", "vpp")
    store.append("k", _record(spec, gbps=1.0))
    store.append("k", _record(spec, gbps=2.0))
    assert store.load()["k"].gbps == 2.0


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "campaign.jsonl"
    store = CampaignStore(path)
    store.append("k", _record(RunSpec("p2p", "vpp")))
    with path.open("a") as fh:
        fh.write('{"record": "result", "spec": {"scenari')  # killed mid-write
    assert set(store.load()) == {"k"}


def test_missing_file_loads_empty(tmp_path):
    assert CampaignStore(tmp_path / "absent.jsonl").load() == {}


def test_export_csv_rows(tmp_path):
    ok = _record(RunSpec("p2p", "vpp"))
    na = RunRecord(spec=RunSpec("loopback", "bess", n_vnfs=5), status="inapplicable", detail="qemu")
    bad = RunFailure(spec=RunSpec("p2p", "vale"), error="RuntimeError", message="boom")
    path = export_csv([("a", ok), ("b", na), ("c", bad)], tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert [r["status"] for r in rows] == ["ok", "inapplicable", "failed"]
    assert rows[0]["gbps"] == "9.5000"
    assert rows[1]["gbps"] == ""
    assert rows[2]["error"] == "RuntimeError: boom"
    assert rows[1]["n_vnfs"] == "5"


def test_torn_mid_record_truncation_costs_exactly_one_row(tmp_path):
    """Truncating the log mid-record loses that record and nothing else."""
    path = tmp_path / "campaign.jsonl"
    store = CampaignStore(path)
    specs = [RunSpec("p2p", sw) for sw in ("vpp", "bess", "snabb")]
    for i, spec in enumerate(specs):
        store.append(f"k{i}", _record(spec, gbps=float(i)))
    # Tear the *middle* record: cut the file a few bytes into line 2.
    lines = path.read_bytes().split(b"\n")
    torn = b"\n".join([lines[0], lines[1][:20]])
    path.write_bytes(torn)
    assert set(store.load()) == {"k0"}
    # Resume appends after the torn tail; the new record must survive.
    store.append("k2", _record(specs[2], gbps=2.0))
    loaded = store.load()
    assert set(loaded) == {"k0", "k2"}
    assert loaded["k2"].gbps == 2.0


def test_append_after_torn_tail_newline_repairs(tmp_path):
    path = tmp_path / "campaign.jsonl"
    path.write_text('{"record": "result", "spec": {"scenari')  # no newline
    store = CampaignStore(path)
    store.append("k", _record(RunSpec("p2p", "vpp")))
    raw = path.read_text()
    assert raw.count("\n") == 2  # repaired tail + the new record's line
    assert set(store.load()) == {"k"}


def test_metrics_column_round_trips(tmp_path):
    import json

    snapshot = {"metrics": {"sim.events_executed": 42.0}, "profile": None,
                "trace": {"events": 0, "dropped": 0}}
    record = RunRecord(
        spec=RunSpec("p2p", "vpp"),
        per_direction_gbps=[9.5],
        per_direction_mpps=[14.1],
        events=3,
        metrics=snapshot,
    )
    path = export_csv([("k", record)], tmp_path / "out.csv")
    with path.open() as fh:
        (row,) = list(csv.DictReader(fh))
    assert json.loads(row["metrics"]) == snapshot

    # And through the JSONL store.
    store = CampaignStore(tmp_path / "campaign.jsonl")
    store.append("k", record)
    assert store.load()["k"].metrics == snapshot


def test_metrics_column_empty_without_observation(tmp_path):
    path = export_csv([("k", _record(RunSpec("p2p", "vpp")))], tmp_path / "out.csv")
    with path.open() as fh:
        (row,) = list(csv.DictReader(fh))
    assert row["metrics"] == ""


def test_export_csv_dash_streams_to_stdout(capsys):
    result = export_csv([("k", _record(RunSpec("p2p", "vpp")))], "-")
    assert result is None
    out = capsys.readouterr().out
    rows = list(csv.DictReader(out.splitlines()))
    assert rows[0]["switch"] == "vpp"
    assert rows[0]["gbps"] == "9.5000"


def test_trials_column_round_trips(tmp_path):
    """A record carrying a soundness trial summary persists it through
    the JSONL log and exports it as a JSON cell in the CSV."""
    import json

    spec = RunSpec("p2p", "vpp")
    record = _record(spec)
    record.trials = {"n": 3, "mean": 9.5, "verdict": "stable", "status": "ok"}
    store = CampaignStore(tmp_path / "campaign.jsonl")
    store.append("k", record)
    assert store.load()["k"].trials == record.trials

    path = export_csv([("k", record), ("p", _record(spec))], tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert json.loads(rows[0]["trials"])["verdict"] == "stable"
    assert rows[1]["trials"] == ""  # single-trial records stay blank


def test_warp_column_round_trips(tmp_path):
    """The fast-forward tier label persists through the JSONL log and
    exports as a CSV column; records without it stay blank."""
    spec = RunSpec("p2p", "vpp")
    warped = _record(spec)
    warped.warp = "turbo"
    declined = _record(spec)
    declined.warp = "declined:interrupt-driven"
    store = CampaignStore(tmp_path / "campaign.jsonl")
    store.append("w", warped)
    loaded = store.load()["w"]
    assert loaded.warp == "turbo"

    path = export_csv(
        [("w", warped), ("d", declined), ("p", _record(spec))],
        tmp_path / "out.csv",
    )
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["warp"] == "turbo"
    assert rows[1]["warp"] == "declined:interrupt-driven"
    assert rows[2]["warp"] == ""
