"""Unit tests for campaign persistence (JSONL log, resume, CSV export)."""

from __future__ import annotations

import csv

from repro.campaign.spec import RunFailure, RunRecord, RunSpec
from repro.campaign.store import CampaignStore, export_csv


def _record(spec: RunSpec, gbps: float = 9.5) -> RunRecord:
    return RunRecord(spec=spec, per_direction_gbps=[gbps], per_direction_mpps=[14.1], events=3)


def test_append_then_load(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    a, b = RunSpec("p2p", "vpp"), RunSpec("p2p", "bess")
    store.append("ka", _record(a))
    store.append("kb", RunFailure(spec=b, error="RuntimeError", message="boom"))
    loaded = store.load()
    assert set(loaded) == {"ka", "kb"}
    assert isinstance(loaded["ka"], RunRecord)
    assert isinstance(loaded["kb"], RunFailure)


def test_completed_keys_exclude_failures(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    store.append("ok", _record(RunSpec("p2p", "vpp")))
    store.append("bad", RunFailure(spec=RunSpec("p2p", "bess"), error="E", message="m"))
    assert store.completed_keys() == {"ok"}


def test_later_lines_win(tmp_path):
    store = CampaignStore(tmp_path / "campaign.jsonl")
    spec = RunSpec("p2p", "vpp")
    store.append("k", _record(spec, gbps=1.0))
    store.append("k", _record(spec, gbps=2.0))
    assert store.load()["k"].gbps == 2.0


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "campaign.jsonl"
    store = CampaignStore(path)
    store.append("k", _record(RunSpec("p2p", "vpp")))
    with path.open("a") as fh:
        fh.write('{"record": "result", "spec": {"scenari')  # killed mid-write
    assert set(store.load()) == {"k"}


def test_missing_file_loads_empty(tmp_path):
    assert CampaignStore(tmp_path / "absent.jsonl").load() == {}


def test_export_csv_rows(tmp_path):
    ok = _record(RunSpec("p2p", "vpp"))
    na = RunRecord(spec=RunSpec("loopback", "bess", n_vnfs=5), status="inapplicable", detail="qemu")
    bad = RunFailure(spec=RunSpec("p2p", "vale"), error="RuntimeError", message="boom")
    path = export_csv([("a", ok), ("b", na), ("c", bad)], tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert [r["status"] for r in rows] == ["ok", "inapplicable", "failed"]
    assert rows[0]["gbps"] == "9.5000"
    assert rows[1]["gbps"] == ""
    assert rows[2]["error"] == "RuntimeError: boom"
    assert rows[1]["n_vnfs"] == "5"
