"""Unit tests for virtual interfaces (virtio/vhost-user/ptnet)."""

from __future__ import annotations

import pytest

from repro.cpu.numa import MemoryBus
from repro.vif.ptnet import DEFAULT_PTNET_COSTS, make_ptnet_interface
from repro.vif.vhost_user import DEFAULT_VHOST_COSTS, VHOST_NOTIFY_NS, make_vhost_user_interface


def test_vhost_interface_backend_and_rings():
    vif = make_vhost_user_interface("vm1.eth0")
    assert vif.backend == "vhost-user"
    assert vif.to_guest.capacity == 1024
    assert vif.to_host.capacity == 1024
    assert vif.notify_ns == VHOST_NOTIFY_NS


def test_ptnet_interface_backend():
    vif = make_ptnet_interface("vm1.ptnet0")
    assert vif.backend == "ptnet"
    assert vif.notify_ns == 0.0


def test_vhost_copies_every_byte():
    vif = make_vhost_user_interface("v")
    assert vif.host_copy_bytes(1500) == 1500


def test_ptnet_is_zero_copy():
    vif = make_ptnet_interface("p")
    assert vif.host_copy_bytes(1500) == 0


def test_vhost_reserves_memory_bandwidth():
    bus = MemoryBus(1e9)  # 1 B/ns
    vif = make_vhost_user_interface("v", bus=bus)
    delay = vif.reserve_bus(500, now_ns=0.0)
    assert delay == pytest.approx(500.0)
    assert bus.bytes_copied == 500


def test_ptnet_never_touches_the_bus():
    bus = MemoryBus(1e9)
    vif = make_ptnet_interface("p", bus=bus)
    assert vif.reserve_bus(5000, now_ns=0.0) == 0.0
    assert bus.bytes_copied == 0


def test_no_bus_means_no_delay():
    vif = make_vhost_user_interface("v")
    assert vif.reserve_bus(5000, 0.0) == 0.0


def test_vhost_per_byte_cost_exists():
    # The memcpy term the paper blames for every virtualisation gap.
    assert DEFAULT_VHOST_COSTS.host_tx.per_byte > 0
    assert DEFAULT_VHOST_COSTS.host_rx.per_byte > 0


def test_ptnet_has_no_per_byte_cost():
    assert DEFAULT_PTNET_COSTS.host_tx.per_byte == 0
    assert DEFAULT_PTNET_COSTS.host_rx.per_byte == 0


def test_ptnet_fixed_cost_below_vhost():
    frame = 64
    assert DEFAULT_PTNET_COSTS.host_tx.cycles_per_packet(frame) < (
        DEFAULT_VHOST_COSTS.host_tx.cycles_per_packet(frame)
    )


def test_custom_slots():
    vif = make_vhost_user_interface("v", slots=4096)
    assert vif.to_guest.capacity == 4096
