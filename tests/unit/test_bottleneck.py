"""Unit tests for the closed-form capacity model."""

from __future__ import annotations

import pytest

from repro.analysis.bottleneck import _scenario_hops, estimate
from repro.core.units import line_rate_pps
from repro.cpu.costmodel import Cost
from repro.switches.params import SwitchParams


def test_scenario_hop_kinds():
    assert _scenario_hops("p2p", 1) == (["p2p"], 2)
    assert _scenario_hops("p2v", 1) == (["p2v"], 2)
    assert _scenario_hops("v2v", 1) == (["v2v"], 2)
    hops, attachments = _scenario_hops("loopback", 3)
    assert hops == ["p2v", "v2v", "v2v", "v2p"]
    assert attachments == 8


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        _scenario_hops("p2x", 1)


def test_line_rate_clips_fast_switches():
    est = estimate("bess", "p2p", 64)
    assert est.core_capacity_pps > line_rate_pps(64)
    assert est.predicted_pps == pytest.approx(line_rate_pps(64))


def test_slow_switch_is_cpu_bound():
    est = estimate("vale", "p2p", 64)
    assert est.predicted_pps == pytest.approx(est.core_capacity_pps)
    assert est.predicted_gbps < 10.0


def test_bidirectional_shares_the_core():
    uni = estimate("t4p4s", "p2p", 64)
    bidi = estimate("t4p4s", "p2p", 64, bidirectional=True)
    # Core-bound switch: aggregate bidi equals unidirectional capacity.
    assert bidi.predicted_pps == pytest.approx(uni.predicted_pps)


def test_bidirectional_doubles_wire_bound_switch():
    uni = estimate("bess", "p2p", 1024)
    bidi = estimate("bess", "p2p", 1024, bidirectional=True)
    assert bidi.predicted_pps == pytest.approx(2 * uni.predicted_pps)


def test_longer_chains_cost_more():
    previous = float("inf")
    for n in range(1, 6):
        est = estimate("vpp", "loopback", 64, n_vnfs=n)
        assert est.core_capacity_pps < previous
        previous = est.core_capacity_pps


def test_vhost_tax_p2v_vs_p2p():
    p2p = estimate("vpp", "p2p", 64)
    p2v = estimate("vpp", "p2v", 64)
    assert p2v.core_capacity_pps < p2p.core_capacity_pps


def test_vale_v2v_beats_its_p2p():
    # ptnet hops are cheaper than the netmap NIC path (Sec. 5.2).
    assert (
        estimate("vale", "v2v", 64).core_capacity_pps
        > estimate("vale", "p2p", 64).core_capacity_pps
    )


def test_v2v_ptnet_offered_rate_uncapped():
    est = estimate("vale", "v2v", 64)
    assert est.offered_pps > line_rate_pps(64)


def test_v2v_virtio_offered_at_line_rate():
    est = estimate("vpp", "v2v", 64)
    assert est.offered_pps == pytest.approx(line_rate_pps(64))


def test_snabb_thrash_cliff():
    ok = estimate("snabb", "loopback", 64, n_vnfs=3)
    thrashed = estimate("snabb", "loopback", 64, n_vnfs=4)
    # The drop from 3 to 4 VNFs is far steeper than the hop-count ratio.
    assert thrashed.core_capacity_pps < ok.core_capacity_pps / 2


def test_custom_params_accepted():
    params = SwitchParams(
        name="x", display_name="X", proc=Cost(per_packet=1000.0)
    )
    est = estimate("x", "p2p", 64, params=params)
    assert est.switch == "x"
    assert est.core_capacity_pps < 2.6e6


def test_larger_frames_lower_pps_but_saturate_wire():
    small = estimate("ovs-dpdk", "p2p", 64)
    large = estimate("ovs-dpdk", "p2p", 1024)
    assert large.predicted_pps < small.predicted_pps
    assert large.predicted_gbps == pytest.approx(10.0)
