"""Unit tests for the repro-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.switches.registry import switch_names


def test_throughput_command(capsys):
    assert main(["p2p", "--switch", "bess", "--size", "64"]) == 0
    out = capsys.readouterr().out
    assert "p2p unidirectional 64B bess" in out
    assert "Gbps" in out


def test_bidirectional_flag(capsys):
    assert main(["p2p", "--switch", "bess", "--bidirectional"]) == 0
    assert "bidirectional" in capsys.readouterr().out


def test_loopback_with_vnfs(capsys):
    assert main(["loopback", "--switch", "vale", "--vnfs", "2"]) == 0
    assert "loopback" in capsys.readouterr().out


def test_v2v_latency_command(capsys):
    assert main(["v2v-latency", "--switch", "vale"]) == 0
    out = capsys.readouterr().out
    assert "v2v RTT latency" in out
    assert "us" in out


def test_latency_sweep_command(capsys):
    assert main(["p2p", "--switch", "bess", "--latency"]) == 0
    out = capsys.readouterr().out
    assert "0.10 R+" in out
    assert "0.99 R+" in out


def test_suite_command(capsys):
    assert main(["suite", "--switch", "vale", "--suite", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "suite 'smoke'" in out
    assert "p2p-64B" in out


def test_unknown_suite(capsys):
    assert main(["suite", "--suite", "nonexistent"]) == 1
    assert "unknown suite" in capsys.readouterr().out


def test_window_overrides_accepted(capsys):
    assert main([
        "p2p", "--switch", "bess",
        "--warmup-ns", "100000", "--measure-ns", "400000",
    ]) == 0
    assert "Gbps" in capsys.readouterr().out


def test_window_overrides_on_v2v_latency(capsys):
    assert main([
        "v2v-latency", "--switch", "vale",
        "--warmup-ns", "200000", "--measure-ns", "1500000",
    ]) == 0
    assert "us" in capsys.readouterr().out


def test_suite_renders_inapplicable_cells(capsys):
    assert main([
        "suite", "--switch", "bess", "--suite", "paper",
        "--warmup-ns", "100000", "--measure-ns", "300000",
    ]) == 0
    out = capsys.readouterr().out
    # BESS cannot host the 4/5-VM chains (footnote 5): the table says so
    # instead of printing literal None.
    assert "n/a (qemu)" in out
    assert "None" not in out


def test_campaign_command_smoke(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main([
        "campaign", "--suite", "smoke", "--switches", "bess,vale",
        "--warmup-ns", "100000", "--measure-ns", "300000",
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign summary:" in out
    assert "8/8 runs" in out
    assert "8 executed" in out

    # Second invocation: everything memoised, nothing simulated.
    assert main([
        "campaign", "--suite", "smoke", "--switches", "bess,vale",
        "--warmup-ns", "100000", "--measure-ns", "300000",
    ]) == 0
    out = capsys.readouterr().out
    assert "0 executed" in out
    assert "8 cache hits" in out


def test_campaign_rejects_unknown_suite_and_switch(capsys):
    assert main(["campaign", "--suite", "nope"]) == 1
    assert "unknown suite" in capsys.readouterr().out
    assert main(["campaign", "--suite", "smoke", "--switches", "bess,warp"]) == 1
    assert "unknown switches" in capsys.readouterr().out


def test_campaign_store_and_csv(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main([
        "campaign", "--suite", "smoke", "--switches", "bess",
        "--no-cache", "--store", "log.jsonl", "--export-csv", "out.csv",
        "--warmup-ns", "100000", "--measure-ns", "300000",
    ]) == 0
    capsys.readouterr()
    assert (tmp_path / "log.jsonl").exists()
    assert (tmp_path / "out.csv").read_text().startswith("key,")

    # Resume executes nothing: all four runs are already in the store.
    assert main([
        "campaign", "--suite", "smoke", "--switches", "bess",
        "--no-cache", "--store", "log.jsonl", "--resume",
        "--warmup-ns", "100000", "--measure-ns", "300000",
    ]) == 0
    out = capsys.readouterr().out
    assert "0 executed" in out
    assert "4 resumed" in out


def test_unknown_switch_rejected(capsys):
    assert main(["p2p", "--switch", "notaswitch"]) == 1
    err = capsys.readouterr().err
    assert "notaswitch" in err
    # The error must be actionable: every registered switch is listed.
    for name in switch_names():
        assert name in err


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["warp-drive"])


def test_perf_command_writes_report(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out_path = tmp_path / "bench.json"
    assert main([
        "perf", "--cases", "engine.dispatch", "--repeat", "1",
        "--json", "--perf-out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "engine.dispatch" in out
    assert "Mev/s" in out
    import json

    report = json.loads(out_path.read_text())
    assert report["cases"]["engine.dispatch"]["events_per_sec"] > 0
    # The committed baseline resolves independently of the cwd.
    assert "speedup" in report


def test_perf_rejects_unknown_case(capsys):
    assert main(["perf", "--cases", "nope"]) == 1
    assert "unknown perf cases" in capsys.readouterr().out


def test_perf_gate_passes_within_tolerance(tmp_path, capsys):
    """--max-regress lets the bench fail CI; a generous baseline passes."""
    import json

    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"cases": {"engine.dispatch": {"kind": "engine", "wall_s": 1e9}}}
    ))
    assert main([
        "perf", "--cases", "engine.dispatch", "--repeat", "1",
        "--baseline", str(baseline), "--max-regress", "20",
    ]) == 0
    assert "perf gate" in capsys.readouterr().err


def test_perf_gate_fails_on_regression(tmp_path, capsys):
    import json

    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"cases": {"engine.dispatch": {"kind": "engine", "wall_s": 1e-9}}}
    ))
    assert main([
        "perf", "--cases", "engine.dispatch", "--repeat", "1",
        "--baseline", str(baseline), "--max-regress", "20",
    ]) == 4
    assert "regressed" in capsys.readouterr().err


def test_perf_gate_fails_closed_without_baseline(tmp_path, capsys):
    assert main([
        "perf", "--cases", "engine.dispatch", "--repeat", "1",
        "--baseline", str(tmp_path / "missing.json"), "--max-regress", "20",
    ]) == 4
    assert "failing closed" in capsys.readouterr().err


def test_profile_surfaces_warp_state(capsys):
    """--profile reports what the fast-forward did (here: why it declined
    -- per-packet profiling is one of the replay-safety guard rails)."""
    assert main(["p2p", "--switch", "vpp", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "warp: declined[turbo]: per-packet-tracing" in out


def test_no_warp_flag(capsys):
    assert main(["p2p", "--switch", "vpp", "--profile", "--no-warp"]) == 0
    assert "warp: disabled" in capsys.readouterr().out
