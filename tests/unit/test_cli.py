"""Unit tests for the repro-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_throughput_command(capsys):
    assert main(["p2p", "--switch", "bess", "--size", "64"]) == 0
    out = capsys.readouterr().out
    assert "p2p unidirectional 64B bess" in out
    assert "Gbps" in out


def test_bidirectional_flag(capsys):
    assert main(["p2p", "--switch", "bess", "--bidirectional"]) == 0
    assert "bidirectional" in capsys.readouterr().out


def test_loopback_with_vnfs(capsys):
    assert main(["loopback", "--switch", "vale", "--vnfs", "2"]) == 0
    assert "loopback" in capsys.readouterr().out


def test_v2v_latency_command(capsys):
    assert main(["v2v-latency", "--switch", "vale"]) == 0
    out = capsys.readouterr().out
    assert "v2v RTT latency" in out
    assert "us" in out


def test_latency_sweep_command(capsys):
    assert main(["p2p", "--switch", "bess", "--latency"]) == 0
    out = capsys.readouterr().out
    assert "0.10 R+" in out
    assert "0.99 R+" in out


def test_suite_command(capsys):
    assert main(["suite", "--switch", "vale", "--suite", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "suite 'smoke'" in out
    assert "p2p-64B" in out


def test_unknown_suite(capsys):
    assert main(["suite", "--suite", "nonexistent"]) == 1
    assert "unknown suite" in capsys.readouterr().out


def test_unknown_switch_rejected():
    with pytest.raises(SystemExit):
        main(["p2p", "--switch", "notaswitch"])


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["warp-drive"])
