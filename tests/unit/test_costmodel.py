"""Unit tests for the cycle cost model."""

from __future__ import annotations

import pytest

from repro.cpu.costmodel import ZERO_COST, Cost


def test_cycles_linear_composition():
    cost = Cost(per_batch=100.0, per_packet=10.0, per_byte=0.5)
    assert cost.cycles(4, 256) == pytest.approx(100 + 40 + 128)


def test_zero_packets_cost_nothing():
    cost = Cost(per_batch=100.0, per_packet=10.0)
    assert cost.cycles(0, 0) == 0.0


def test_cycles_per_packet_amortises_batch_term():
    cost = Cost(per_batch=320.0, per_packet=10.0, per_byte=0.1)
    assert cost.cycles_per_packet(64, batch_size=32) == pytest.approx(10 + 10 + 6.4)


def test_cycles_per_packet_rejects_bad_batch():
    with pytest.raises(ValueError):
        Cost().cycles_per_packet(64, batch_size=0)


def test_add_combines_componentwise():
    total = Cost(1, 2, 3) + Cost(10, 20, 30)
    assert (total.per_batch, total.per_packet, total.per_byte) == (11, 22, 33)


def test_scaled():
    doubled = Cost(1, 2, 3).scaled(2.0)
    assert (doubled.per_batch, doubled.per_packet, doubled.per_byte) == (2, 4, 6)


def test_zero_cost_is_identity():
    cost = Cost(5, 6, 7)
    combined = cost + ZERO_COST
    assert combined == cost


def test_cost_is_frozen():
    with pytest.raises(AttributeError):
        Cost().per_packet = 1.0  # type: ignore[misc]


def test_batch_amortisation_consistency():
    """cycles(n)/n equals cycles_per_packet at the same batch size."""
    cost = Cost(per_batch=64.0, per_packet=7.0, per_byte=0.25)
    n, size = 32, 128
    assert cost.cycles(n, n * size) / n == pytest.approx(
        cost.cycles_per_packet(size, batch_size=n)
    )
