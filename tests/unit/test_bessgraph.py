"""Unit tests for the BESS module-pipeline compiler."""

from __future__ import annotations

import pytest

from repro.switches.bessgraph import (
    MODULE_COSTS,
    PAPER_P2P_PIPELINE,
    SHAPER_PIPELINE,
    UnknownModuleError,
    compile_pipeline,
)
from repro.switches.params import BESS_PARAMS


def test_paper_pipeline_compiles_to_calibrated_proc():
    compiled = compile_pipeline(PAPER_P2P_PIPELINE)
    assert compiled.proc.per_packet == pytest.approx(BESS_PARAMS.proc.per_packet)
    assert compiled.proc.per_batch == pytest.approx(BESS_PARAMS.proc.per_batch)


def test_pipeline_cost_is_sum_of_modules():
    compiled = compile_pipeline(("QueueInc", "Measure", "QueueOut"))
    expected = (
        MODULE_COSTS["QueueInc"].per_packet
        + MODULE_COSTS["Measure"].per_packet
        + MODULE_COSTS["QueueOut"].per_packet
    )
    assert compiled.proc.per_packet == pytest.approx(expected)
    assert compiled.depth == 3


def test_per_byte_modules_propagate():
    compiled = compile_pipeline(("QueueInc", "IPChecksum", "QueueOut"))
    assert compiled.proc.per_byte > 0


def test_shaper_pipeline_costs_more():
    assert (
        compile_pipeline(SHAPER_PIPELINE).proc.per_packet
        > compile_pipeline(PAPER_P2P_PIPELINE).proc.per_packet
    )


def test_unknown_module_rejected():
    with pytest.raises(UnknownModuleError):
        compile_pipeline(("QueueInc", "FluxCapacitor"))


def test_empty_pipeline_rejected():
    with pytest.raises(ValueError):
        compile_pipeline(())


def test_shaper_throughput_cost_via_capacity_model():
    from dataclasses import replace

    from repro.analysis.bottleneck import estimate

    shaper = replace(BESS_PARAMS, proc=compile_pipeline(SHAPER_PIPELINE).proc)
    base = estimate("bess", "p2p", 64).core_capacity_pps
    shaped = estimate("bess", "p2p", 64, params=shaper).core_capacity_pps
    assert shaped < base
    # Even the shaper pipeline keeps BESS well ahead of the slow tier at
    # 64B -- the headroom that makes it "a viable choice" (Sec. 5.4).
    assert shaped > estimate("t4p4s", "p2p", 64).core_capacity_pps
