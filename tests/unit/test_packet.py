"""Unit tests for the packet model."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, make_batch


def test_default_packet_is_minimum_frame():
    assert Packet().size == 64


def test_runt_frame_rejected():
    with pytest.raises(ValueError):
        Packet(size=60)


def test_sequence_numbers_are_unique_and_increasing():
    a, b = Packet(), Packet()
    assert b.seq > a.seq


def test_latency_requires_both_stamps():
    packet = Packet()
    assert packet.latency_ns is None
    packet.tx_timestamp = 100.0
    assert packet.latency_ns is None
    packet.rx_timestamp = 350.0
    assert packet.latency_ns == pytest.approx(250.0)


def test_make_batch_produces_one_flow():
    batch = make_batch(8, size=256, t_created=123.0, flow_id=5)
    assert len(batch) == 8
    assert all(p.size == 256 for p in batch)
    assert all(p.flow_id == 5 for p in batch)
    assert all(p.t_created == 123.0 for p in batch)


def test_make_batch_default_macs_match_forwarding_tables():
    batch = make_batch(1, size=64, t_created=0.0)
    # The t4p4s dmac table installs entries starting at this address.
    assert batch[0].dst_mac == 0x02_00_00_00_00_02


def test_packet_not_probe_by_default():
    assert not Packet().is_probe


def test_hops_counter_starts_at_zero():
    assert Packet().hops == 0
