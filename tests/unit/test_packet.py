"""Unit tests for the packet model."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, make_batch


def test_default_packet_is_minimum_frame():
    assert Packet().size == 64


def test_runt_frame_rejected():
    with pytest.raises(ValueError):
        Packet(size=60)


def test_sequence_numbers_are_unique_and_increasing():
    a, b = Packet(), Packet()
    assert b.seq > a.seq


def test_latency_requires_both_stamps():
    packet = Packet()
    assert packet.latency_ns is None
    packet.tx_timestamp = 100.0
    assert packet.latency_ns is None
    packet.rx_timestamp = 350.0
    assert packet.latency_ns == pytest.approx(250.0)


def test_make_batch_produces_one_flow():
    batch = make_batch(8, size=256, t_created=123.0, flow_id=5)
    assert len(batch) == 8
    assert all(p.size == 256 for p in batch)
    assert all(p.flow_id == 5 for p in batch)
    assert all(p.t_created == 123.0 for p in batch)


def test_make_batch_default_macs_match_forwarding_tables():
    batch = make_batch(1, size=64, t_created=0.0)
    # The t4p4s dmac table installs entries starting at this address.
    assert batch[0].dst_mac == 0x02_00_00_00_00_02


def test_packet_not_probe_by_default():
    assert not Packet().is_probe


def test_hops_counter_starts_at_zero():
    assert Packet().hops == 0


# -- flyweight blocks and the free list -------------------------------------


def test_block_reserves_a_contiguous_seq_range():
    from repro.core.packet import PacketBlock

    block = PacketBlock(count=4)
    follower = Packet()
    assert follower.seq == block.seq0 + 4


def test_block_materialize_yields_per_packet_equivalents():
    from repro.core.packet import PacketBlock

    block = PacketBlock(size=128, flow_id=3, t_created=42.0, count=5, hops=2)
    packets = block.materialize()
    assert [p.seq for p in packets] == list(range(block.seq0, block.seq0 + 5))
    assert all(
        (p.size, p.flow_id, p.t_created, p.hops) == (128, 3, 42.0, 2)
        for p in packets
    )


def test_block_split_keeps_fifo_seq_order():
    from repro.core.packet import PacketBlock

    block = PacketBlock(count=8)
    seq0 = block.seq0
    front = block.split(3)
    assert (front.count, front.seq0) == (3, seq0)
    assert (block.count, block.seq0) == (5, seq0 + 3)


def test_block_merge_requires_contiguity_and_matching_template():
    from repro.core.packet import PacketBlock

    a = PacketBlock(count=4)
    b = PacketBlock(count=2)
    assert a.merge(b)  # b immediately follows a's seq range
    assert a.count == 6
    c = PacketBlock(count=2, flow_id=9)
    assert not a.merge(c)  # template mismatch
    Packet()  # burn one seq: the next block is no longer contiguous
    d = PacketBlock(count=1)
    assert not a.merge(d)


def test_release_block_recycles_the_object():
    from repro.core.packet import acquire_block, release_block

    block = acquire_block(64, 0, 1, 2, 0.0, 8)
    release_block(block)
    again = acquire_block(256, 7, 3, 4, 9.0, 2)
    assert again is block
    assert (again.size, again.flow_id, again.count, again.t_created) == (256, 7, 2, 9.0)


def test_release_batch_recycles_blocks_but_not_packets():
    from repro.core.packet import make_block, pool_size, release_batch

    block = make_block(4, 64, 0.0)
    before = pool_size()
    release_batch([Packet(), block, Packet()])
    assert pool_size() == before + 1


def test_pooled_acquire_still_validates():
    from repro.core.packet import acquire_block, release_block

    release_block(acquire_block(64, 0, 1, 2, 0.0, 1))
    with pytest.raises(ValueError):
        acquire_block(60, 0, 1, 2, 0.0, 1)
    with pytest.raises(ValueError):
        acquire_block(64, 0, 1, 2, 0.0, 0)


def test_per_packet_emission_context_restores_mode():
    from repro.core.packet import blocks_enabled, per_packet_emission

    assert blocks_enabled()
    with per_packet_emission():
        assert not blocks_enabled()
    assert blocks_enabled()


def test_batch_stats_mixes_packets_and_blocks():
    from repro.core.packet import batch_count, batch_stats, make_block

    batch = [Packet(size=64), make_block(10, 128, 0.0), Packet(size=256)]
    assert batch_count(batch) == 12
    assert batch_stats(batch) == (12, 64 + 10 * 128 + 256)
