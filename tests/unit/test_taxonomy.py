"""Unit tests: taxonomy (Tables 1/2/5) consistency with the models."""

from __future__ import annotations

from repro.switches.params import ALL_PARAMS
from repro.switches.registry import ALL_SWITCHES, params_for
from repro.switches.taxonomy import (
    PIPELINE_SWITCHES,
    TAXONOMY,
    TUNINGS,
    USE_CASES,
    Architecture,
    Paradigm,
    ProcessingModel,
    Reprogrammability,
)


def test_every_registered_switch_has_a_taxonomy_row():
    assert set(TAXONOMY) == set(ALL_SWITCHES)


def test_every_switch_has_a_use_case_row():
    assert set(USE_CASES) == set(ALL_SWITCHES)


def test_seven_switches():
    assert len(ALL_SWITCHES) == 7


def test_snabb_is_the_only_pure_pipeline():
    assert PIPELINE_SWITCHES == {"snabb"}


def test_pipeline_taxonomy_matches_model_params():
    for name in ALL_SWITCHES:
        is_pipeline = TAXONOMY[name].processing_model is ProcessingModel.PIPELINE
        assert params_for(name).pipeline == is_pipeline


def test_ptnet_taxonomy_matches_interrupt_model():
    # Only the netmap-based switch uses ptnet, and only it is
    # interrupt-driven (Sec. 2.1).
    for name in ALL_SWITCHES:
        uses_ptnet = TAXONOMY[name].virtual_interface == "ptnet"
        assert params_for(name).interrupt_driven == uses_ptnet
    assert TAXONOMY["vale"].virtual_interface == "ptnet"


def test_match_action_switches():
    match_action = {
        name for name, row in TAXONOMY.items() if row.paradigm is Paradigm.MATCH_ACTION
    }
    assert match_action == {"ovs-dpdk", "t4p4s"}


def test_self_contained_switches():
    self_contained = {
        name
        for name, row in TAXONOMY.items()
        if row.architecture is Architecture.SELF_CONTAINED
    }
    assert self_contained == {"ovs-dpdk", "vpp", "vale", "t4p4s"}


def test_reprogrammability_grades():
    assert TAXONOMY["snabb"].reprogrammability is Reprogrammability.HIGH
    assert TAXONOMY["bess"].reprogrammability is Reprogrammability.HIGH
    assert TAXONOMY["vale"].reprogrammability is Reprogrammability.LOW
    assert TAXONOMY["fastclick"].reprogrammability is Reprogrammability.LOW
    assert TAXONOMY["vpp"].reprogrammability is Reprogrammability.MEDIUM


def test_tunings_match_table2():
    assert set(TUNINGS) == {"fastclick", "t4p4s", "vale"}


def test_fastclick_tuning_applied_to_params():
    # Table 2: "Increase descriptor ring size to 4096".
    assert ALL_PARAMS["fastclick"].nic_rx_slots == 4096


def test_languages_recorded():
    assert "Lua" in TAXONOMY["snabb"].languages
    assert "C++" in TAXONOMY["fastclick"].languages
    assert "Python" in TAXONOMY["bess"].languages


def test_bess_qemu_remark_is_modelled():
    assert "QEMU" in USE_CASES["bess"][1]
    assert ALL_PARAMS["bess"].max_vms == 3


def test_snabb_bottleneck_remark_is_modelled():
    assert "Bottlenecked" in USE_CASES["snabb"][0] or "Bottlenecked" in USE_CASES["snabb"][1]
    assert ALL_PARAMS["snabb"].thrash_attachments is not None
