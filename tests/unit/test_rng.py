"""Unit tests for the seeded RNG registry."""

from __future__ import annotations

from repro.core.rng import RngRegistry, _stable_hash


def test_same_seed_same_stream():
    a = RngRegistry(1).stream("jitter").normal(size=5)
    b = RngRegistry(1).stream("jitter").normal(size=5)
    assert (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("jitter").normal(size=5)
    b = RngRegistry(2).stream("jitter").normal(size=5)
    assert not (a == b).all()


def test_named_streams_are_independent():
    registry = RngRegistry(1)
    a = registry.stream("a").normal(size=5)
    b = registry.stream("b").normal(size=5)
    assert not (a == b).all()


def test_stream_is_cached():
    registry = RngRegistry(1)
    assert registry.stream("x") is registry.stream("x")


def test_adding_a_stream_does_not_perturb_others():
    solo = RngRegistry(9)
    solo_draws = solo.stream("target").normal(size=4)

    mixed = RngRegistry(9)
    mixed.stream("earlier").normal(size=100)  # unrelated consumption
    mixed_draws = mixed.stream("target").normal(size=4)
    assert (solo_draws == mixed_draws).all()


def test_stable_hash_is_deterministic_and_bounded():
    assert _stable_hash("abc") == _stable_hash("abc")
    assert _stable_hash("abc") != _stable_hash("abd")
    assert 0 <= _stable_hash("anything") < 2**63
