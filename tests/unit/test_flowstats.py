"""Unit tests for repro.obs.flowstats: the bounded heavy-hitter tracker.

The load-bearing invariant is *conservation*: the space-saving table may
forget which flow a frame belonged to (folding evicted records into the
``other`` rollup), but it must never lose or invent a frame -- for every
counter, ``sum(tracked) + other == totals`` at all times.
"""

from __future__ import annotations

import json

from repro.obs.exporters import MAX_FLOW_LABELS, flow_prometheus_text
from repro.obs.flowstats import (
    DEFAULT_TOP_K,
    FlowRecord,
    FlowStats,
    OTHER_FLOW,
    flow_table,
    jain_index,
)

COUNTERS = (
    "tx_frames",
    "tx_bytes",
    "wire_frames",
    "wire_bytes",
    "rx_frames",
    "rx_bytes",
    "drop_frames",
    "drop_bytes",
    "fwd_frames",
    "cache_hits",
    "cache_misses",
    "weight",
)


def assert_conserved(stats: FlowStats) -> None:
    for name in COUNTERS:
        tracked = sum(getattr(r, name) for r in stats.records.values())
        other = getattr(stats.other, name)
        total = getattr(stats.totals, name)
        if name == "weight":
            # totals does not accumulate weight; tracked+other is the
            # authoritative sum of accounted frames across hooks.
            continue
        assert tracked + other == total, f"{name}: {tracked}+{other} != {total}"


class TestSpaceSaving:
    def test_capacity_bounded_and_conserved(self):
        stats = FlowStats(top_k=4)
        for flow in range(100):
            stats.tx_runs(((flow, flow + 1),), 64)
            assert len(stats.records) <= 4
        assert_conserved(stats)
        assert stats.evictions == 96
        assert stats.adoptions == 100

    def test_eviction_folds_into_other(self):
        stats = FlowStats(top_k=2)
        stats.tx_runs(((1, 10), (2, 20)), 64)
        stats.tx_runs(((3, 5),), 64)  # evicts flow 1 (min weight)
        assert set(stats.records) == {2, 3}
        assert stats.other.tx_frames == 10
        assert stats.other.flow == OTHER_FLOW
        # Newcomer keeps the victim's weight as an error bound, not as
        # inherited count (textbook space-saving would over-attribute).
        assert stats.records[3].error == 10
        assert stats.records[3].tx_frames == 5
        assert_conserved(stats)

    def test_returning_flow_is_a_fresh_record(self):
        stats = FlowStats(top_k=2)
        stats.tx_runs(((1, 1), (2, 50)), 64)
        stats.tx_runs(((3, 50),), 64)  # evicts 1
        stats.tx_runs(((1, 1),), 64)  # 1 returns, evicting nothing heavier
        assert stats.records[1].tx_frames == 1
        assert_conserved(stats)

    def test_mixed_hooks_conserve_each_counter(self):
        stats = FlowStats(top_k=3)
        for step in range(50):
            flow = (step * 7) % 11
            stats.tx_runs(((flow, 4),), 128)
            stats.wire_runs(((flow, 3),), 128)
            stats.drop_runs(((flow, 1),), 128)
            stats.rx_runs(((flow, 3),), 128)
            stats.fwd_runs(((flow, 3),))
            stats.cache(flow, 3, 1)
        assert_conserved(stats)
        assert stats.totals.tx_frames == 200
        assert stats.totals.drop_frames == 50
        assert stats.totals.cache_misses == 50

    def test_top_k_must_be_positive(self):
        try:
            FlowStats(top_k=0)
        except ValueError:
            pass
        else:
            raise AssertionError("top_k=0 must raise")


class TestWireSplit:
    def test_split_attributes_survivors_and_drops(self):
        stats = FlowStats(top_k=8)
        runs = ((5, 3), (6, 2), (7, 4))
        # Frames 0..8; keep offsets 1,2,4,8 -> flow5 keeps 2, flow6 keeps
        # 1, flow7 keeps 1.
        stats.wire_split_runs(runs, [1, 2, 4, 8], 64)
        assert stats.records[5].wire_frames == 2
        assert stats.records[5].drop_frames == 1
        assert stats.records[6].wire_frames == 1
        assert stats.records[6].drop_frames == 1
        assert stats.records[7].wire_frames == 1
        assert stats.records[7].drop_frames == 3
        assert stats.totals.wire_frames == 4
        assert stats.totals.drop_frames == 5
        assert_conserved(stats)

    def test_all_kept_and_none_kept(self):
        stats = FlowStats(top_k=8)
        stats.wire_split_runs(((1, 2), (2, 2)), [0, 1, 2, 3], 64)
        assert stats.totals.wire_frames == 4
        assert stats.totals.drop_frames == 0
        stats.wire_split_runs(((3, 3),), [], 64)
        assert stats.records[3].drop_frames == 3


class TestDerivedMetrics:
    def test_jain_index(self):
        assert jain_index([]) == 1.0
        assert jain_index([5, 5, 5, 5]) == 1.0
        assert abs(jain_index([1, 0, 0, 0]) - 0.25) < 1e-12
        assert 0.0 < jain_index([10, 1]) < 1.0

    def test_loss_rate_prefers_offered_frames(self):
        record = FlowRecord(1)
        record.tx_frames, record.drop_frames = 10, 3
        assert record.loss_rate == 0.3
        rx_only = FlowRecord(2)
        rx_only.rx_frames, rx_only.drop_frames = 6, 2
        assert rx_only.loss_rate == 0.25
        assert FlowRecord(3).loss_rate == 0.0

    def test_latency_overflow_folds_into_other(self):
        stats = FlowStats(top_k=2)
        stats.latency(1, 5_000.0)
        stats.latency(2, 6_000.0)
        stats.latency(3, 7_000.0)  # over capacity -> "other" histogram
        digests = stats.latency_digests()
        assert set(digests) == {"1", "2", "other"}
        assert digests["1"]["count"] == 1

    def test_summary_is_json_safe_and_ranked(self):
        stats = FlowStats(top_k=4)
        stats.tx_runs(((1, 100), (2, 10), (3, 1)), 64)
        stats.latency(1, 4_200.0)
        summary = stats.summary()
        json.dumps(summary)  # must not raise
        assert [r["flow"] for r in summary["flows"]] == [1, 2, 3]
        assert summary["totals"]["tx_frames"] == 111
        assert summary["fairness"]["jain"] > 0.0

    def test_flow_table_renders(self):
        stats = FlowStats(top_k=4)
        stats.tx_runs(((1, 10), (2, 5)), 64)
        stats.rx_runs(((1, 9),), 64)
        stats.drop_runs(((1, 1), (2, 5)), 64)
        text = flow_table(stats.summary())
        assert "total" in text and "jain=" in text
        # No latency samples -> dashes, not a format crash.
        assert "-" in text


class TestPrometheusExport:
    def test_labels_sanitized_and_merged(self):
        stats = FlowStats(top_k=4)
        stats.tx_runs(((7, 3),), 64)
        text = flow_prometheus_text(stats.summary(), labels={"switch": "vale"})
        assert 'repro_flow_tx_frames{switch="vale",flow="7"} 3' in text
        assert 'flow="total"' in text
        assert 'flow="other"' in text
        assert "repro_flow_fairness_jain" in text
        assert "repro_flow_top_k" in text

    def test_cardinality_capped(self):
        # A summary wider than the cap (can't happen via FlowStats, which
        # is already top-k bounded, but the exporter must not trust that).
        record = FlowRecord(0).to_dict()
        summary = {
            "flows": [dict(record, flow=i) for i in range(MAX_FLOW_LABELS + 50)],
            "other": FlowRecord(OTHER_FLOW).to_dict(),
            "totals": FlowRecord(-2).to_dict(),
            "fairness": {
                "jain": 1.0, "skew": None,
                "loss_p50": 0.0, "loss_p90": 0.0, "loss_p99": 0.0,
            },
            "tracked": MAX_FLOW_LABELS + 50,
            "evictions": 0,
            "top_k": DEFAULT_TOP_K,
        }
        text = flow_prometheus_text(summary)
        flows = {
            line.split('flow="')[1].split('"')[0]
            for line in text.splitlines()
            if 'flow="' in line
        }
        assert len(flows) <= MAX_FLOW_LABELS + 2  # + other/total
        # None-valued fairness gauges are skipped, not emitted as "None".
        assert "None" not in text
