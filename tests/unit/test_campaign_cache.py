"""Unit tests for the on-disk result cache and its fingerprint keying."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.cache import ResultCache, params_fingerprint, run_key
from repro.campaign.spec import RunRecord, RunSpec
from repro.switches.params import ALL_PARAMS
from repro.cpu.costmodel import Cost


def _record(spec: RunSpec) -> RunRecord:
    return RunRecord(spec=spec, per_direction_gbps=[9.5], per_direction_mpps=[14.1], events=3)


def test_put_then_get_round_trips(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec("p2p", "vpp")
    assert cache.get(spec) is None
    cache.put(spec, _record(spec))
    hit = cache.get(spec)
    assert hit is not None
    assert hit.gbps == pytest.approx(9.5)
    assert hit.cached  # hits are flagged so telemetry can count them
    assert len(cache) == 1


def test_key_depends_on_spec_fields(tmp_path):
    base = RunSpec("p2p", "vpp")
    assert run_key(base) == run_key(RunSpec("p2p", "vpp"))
    assert run_key(base) != run_key(RunSpec("p2p", "vpp", seed=2))
    assert run_key(base) != run_key(RunSpec("p2p", "vpp", frame_size=256))
    assert run_key(base) != run_key(RunSpec("p2p", "bess"))


def test_fingerprint_changes_with_cost_model(monkeypatch):
    before = params_fingerprint("vpp")
    recalibrated = replace(ALL_PARAMS["vpp"], proc=Cost(per_batch=1.0, per_packet=1.0))
    monkeypatch.setitem(ALL_PARAMS, "vpp", recalibrated)
    assert params_fingerprint("vpp") != before
    # Other switches' fingerprints are unaffected.
    assert params_fingerprint("bess") == params_fingerprint("bess")


def test_recalibration_invalidates_entries(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec("p2p", "vpp")
    cache.put(spec, _record(spec))
    assert cache.get(spec) is not None

    recalibrated = replace(ALL_PARAMS["vpp"], proc=Cost(per_batch=1.0, per_packet=1.0))
    monkeypatch.setitem(ALL_PARAMS, "vpp", recalibrated)
    fresh_view = ResultCache(tmp_path / "cache")  # fingerprints memoised per instance
    assert fresh_view.get(spec) is None


def test_invalidate_one_and_all(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a, b = RunSpec("p2p", "vpp"), RunSpec("p2p", "bess")
    cache.put(a, _record(a))
    cache.put(b, _record(b))
    assert cache.invalidate(a) == 1
    assert cache.get(a) is None
    assert cache.get(b) is not None
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec("p2p", "vpp")
    path = cache.put(spec, _record(spec))
    path.write_text("{ not json")
    assert cache.get(spec) is None


def test_fingerprint_changes_with_engine_features(monkeypatch):
    """Toggling or versioning the warp engine invalidates cache keys."""
    monkeypatch.delenv("REPRO_WARP", raising=False)
    warp_on = params_fingerprint("vpp")
    monkeypatch.setenv("REPRO_WARP", "0")
    warp_off = params_fingerprint("vpp")
    assert warp_on != warp_off

    import repro.core.warp as warp_mod

    monkeypatch.delenv("REPRO_WARP", raising=False)
    monkeypatch.setattr(warp_mod, "WARP_VERSION", warp_mod.WARP_VERSION + 1)
    assert params_fingerprint("vpp") not in (warp_on, warp_off)


def test_engine_toggle_invalidates_entries(tmp_path, monkeypatch):
    """A record cached with warp on is a miss once warp is off (and back)."""
    monkeypatch.delenv("REPRO_WARP", raising=False)
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec("p2p", "vpp")
    cache.put(spec, _record(spec))
    assert cache.get(spec) is not None

    monkeypatch.setenv("REPRO_WARP", "0")
    off_view = ResultCache(tmp_path / "cache")  # fingerprints memoised per instance
    assert off_view.get(spec) is None

    monkeypatch.delenv("REPRO_WARP", raising=False)
    on_view = ResultCache(tmp_path / "cache")
    assert on_view.get(spec) is not None
