"""Unit tests for the telemetry subsystem."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.core.ring import Ring
from repro.core.trace import Series, Telemetry
from repro.cpu.cores import Core


def test_series_statistics():
    series = Series("s")
    for t, v in ((0, 1.0), (10, 3.0), (20, 2.0)):
        series.add(t, v)
    assert series.mean == pytest.approx(2.0)
    assert series.peak == 3.0
    assert series.last() == 2.0


def test_empty_series():
    series = Series("s")
    assert series.mean == 0.0
    assert series.peak == 0.0
    assert series.last() == 0.0


def test_invalid_period(sim):
    with pytest.raises(ValueError):
        Telemetry(sim, period_ns=0)


def test_duplicate_probe_rejected(sim):
    telemetry = Telemetry(sim)
    telemetry.watch("x", lambda: 0.0)
    with pytest.raises(ValueError):
        telemetry.watch("x", lambda: 1.0)


def test_samples_on_period(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    values = iter(range(1000))
    series = telemetry.watch("count", lambda: float(next(values)))
    telemetry.start()
    sim.run_until(1_000)
    assert len(series.values) == 11  # t=0..1000 inclusive
    assert series.times_ns[1] - series.times_ns[0] == pytest.approx(100.0)


def test_stop_at(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: 1.0)
    telemetry.start(stop_at_ns=250.0)
    sim.run_until(10_000)
    assert series.times_ns[-1] <= 250.0


def test_watch_ring_occupancy(sim):
    ring = Ring(64)
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch_ring("ring", ring)
    telemetry.start()
    sim.at(150, lambda: ring.push_batch([Packet() for _ in range(5)]))
    sim.run_until(400)
    assert series.values[0] == 0
    assert series.last() == 5


def test_watch_ring_drops(sim):
    ring = Ring(2)
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch_ring_drops("drops", ring)
    telemetry.start()
    sim.at(150, lambda: ring.push_batch([Packet() for _ in range(5)]))
    sim.run_until(400)
    assert series.last() == 3


def test_core_utilization(sim):
    core = Core(sim, "c", freq_hz=1e9)

    class Busy:
        def poll(self, core):
            return 50.0  # always half-busy at 100ns poll granularity? no: full

    core.attach(Busy())
    core.start()
    telemetry = Telemetry(sim, period_ns=1_000.0)
    telemetry.watch_core_busy("core", core)
    telemetry.start()
    sim.run_until(100_000)
    # The task consumes 50 cycles (=50ns) per iteration and iterations are
    # back-to-back, so utilisation is ~100%.
    assert telemetry.utilization("core") == pytest.approx(1.0, abs=0.05)


def test_utilization_requires_samples(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    telemetry.watch("core", lambda: 0.0)
    assert telemetry.utilization("core") == 0.0
