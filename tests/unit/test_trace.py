"""Unit tests for the telemetry subsystem."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.core.ring import Ring
from repro.core.trace import Series, Telemetry
from repro.cpu.cores import Core


def test_series_statistics():
    series = Series("s")
    for t, v in ((0, 1.0), (10, 3.0), (20, 2.0)):
        series.add(t, v)
    assert series.mean == pytest.approx(2.0)
    assert series.peak == 3.0
    assert series.last() == 2.0


def test_empty_series():
    series = Series("s")
    assert series.mean == 0.0
    assert series.peak == 0.0
    assert series.last() == 0.0


def test_invalid_period(sim):
    with pytest.raises(ValueError):
        Telemetry(sim, period_ns=0)


def test_duplicate_probe_rejected(sim):
    telemetry = Telemetry(sim)
    telemetry.watch("x", lambda: 0.0)
    with pytest.raises(ValueError):
        telemetry.watch("x", lambda: 1.0)


def test_samples_on_period(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    values = iter(range(1000))
    series = telemetry.watch("count", lambda: float(next(values)))
    telemetry.start()
    sim.run_until(1_000)
    assert len(series.values) == 11  # t=0..1000 inclusive
    assert series.times_ns[1] - series.times_ns[0] == pytest.approx(100.0)


def test_stop_at(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: 1.0)
    telemetry.start(stop_at_ns=250.0)
    sim.run_until(10_000)
    assert series.times_ns[-1] <= 250.0


def test_watch_ring_occupancy(sim):
    ring = Ring(64)
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch_ring("ring", ring)
    telemetry.start()
    sim.at(150, lambda: ring.push_batch([Packet() for _ in range(5)]))
    sim.run_until(400)
    assert series.values[0] == 0
    assert series.last() == 5


def test_watch_ring_drops(sim):
    ring = Ring(2)
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch_ring_drops("drops", ring)
    telemetry.start()
    sim.at(150, lambda: ring.push_batch([Packet() for _ in range(5)]))
    sim.run_until(400)
    assert series.last() == 3


def test_core_utilization(sim):
    core = Core(sim, "c", freq_hz=1e9)

    class Busy:
        def poll(self, core):
            return 50.0  # always half-busy at 100ns poll granularity? no: full

    core.attach(Busy())
    core.start()
    telemetry = Telemetry(sim, period_ns=1_000.0)
    telemetry.watch_core_busy("core", core)
    telemetry.start()
    sim.run_until(100_000)
    # The task consumes 50 cycles (=50ns) per iteration and iterations are
    # back-to-back, so utilisation is ~100%.
    assert telemetry.utilization("core") == pytest.approx(1.0, abs=0.05)


def test_utilization_requires_samples(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    telemetry.watch("core", lambda: 0.0)
    assert telemetry.utilization("core") == 0.0


def test_series_percentile_and_min():
    series = Series("s")
    for t, v in enumerate((5.0, 1.0, 3.0, 2.0, 4.0)):
        series.add(t, v)
    assert series.min == 1.0
    assert series.percentile(0) == 1.0
    assert series.percentile(50) == 3.0
    assert series.percentile(100) == 5.0


def test_series_percentile_validates_range():
    series = Series("s")
    with pytest.raises(ValueError):
        series.percentile(101)
    assert series.percentile(50) == 0.0  # empty series


def test_stop_halts_sampling(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: 1.0)
    telemetry.start()
    sim.run_until(500)
    assert telemetry.running
    telemetry.stop()
    assert not telemetry.running
    n = len(series.values)
    sim.run_until(2_000)
    assert len(series.values) == n  # the pending sample died silently


def test_restart_after_stop_appends(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: sim.now)
    telemetry.start()
    sim.run_until(300)
    telemetry.stop()
    sim.run_until(1_000)
    telemetry.start()
    sim.run_until(1_300)
    # Samples from both windows land in the same series, none in between.
    assert any(t <= 300 for t in series.times_ns)
    assert any(t >= 1_000 for t in series.times_ns)
    assert not any(400 <= t <= 900 for t in series.times_ns)


def test_restart_after_stop_at_expiry(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: 1.0)
    telemetry.start(stop_at_ns=250.0)
    sim.run_until(1_000)
    assert not telemetry.running
    first_window = len(series.values)
    telemetry.start()  # no stop_at: samples until the run ends
    sim.run_until(1_500)
    assert len(series.values) > first_window
    assert series.times_ns[-1] > 1_000


def test_double_start_is_idempotent(sim):
    telemetry = Telemetry(sim, period_ns=100.0)
    series = telemetry.watch("x", lambda: 1.0)
    telemetry.start()
    telemetry.start()  # must not double the sampling rate
    sim.run_until(1_000)
    assert len(series.values) == 11


def test_utilization_unknown_series_names_known(sim):
    telemetry = Telemetry(sim)
    telemetry.watch("alpha", lambda: 0.0)
    telemetry.watch("beta", lambda: 0.0)
    with pytest.raises(KeyError) as excinfo:
        telemetry.utilization("gamma")
    message = str(excinfo.value)
    assert "gamma" in message
    assert "alpha" in message and "beta" in message
