"""Unit tests for campaign progress/ETA reporting."""

from __future__ import annotations

from repro.campaign.progress import ProgressReporter, run_tier
from repro.campaign.spec import RunFailure, RunRecord, RunSpec


def _record(
    status: str = "ok", warp: str | None = None, wall_clock_s: float = 0.0
) -> RunRecord:
    return RunRecord(
        spec=RunSpec("p2p", "vpp"),
        status=status,
        per_direction_gbps=[9.5] if status == "ok" else [],
        events=100 if status == "ok" else 0,
        warp=warp,
        wall_clock_s=wall_clock_s,
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_counters_by_source():
    reporter = ProgressReporter(total=4)
    reporter.update(_record(), source="executed")
    reporter.update(_record(), source="cache")
    reporter.update(_record(), source="store")
    reporter.update(RunFailure(spec=RunSpec("p2p", "vale"), error="E", message="m"))
    assert reporter.done == 4
    assert reporter.executed == 2  # the failure counts as an execution attempt
    assert reporter.cache_hits == 1
    assert reporter.resumed == 1
    assert reporter.failures == 1
    assert reporter.events == 300


def test_inapplicable_is_not_a_failure():
    reporter = ProgressReporter(total=1)
    reporter.update(_record("inapplicable"))
    assert reporter.inapplicable == 1
    assert reporter.failures == 0


def test_eta_from_mean_pace():
    clock = FakeClock()
    reporter = ProgressReporter(total=4, clock=clock)
    reporter.start()
    clock.now = 10.0
    reporter.update(_record())
    assert reporter.eta_s() == 30.0  # 10s/run, 3 runs left
    reporter.update(_record())
    reporter.update(_record())
    reporter.update(_record())
    assert reporter.eta_s() is None  # finished


def test_eta_zero_run_grid_is_none():
    """A degenerate empty grid must not divide by zero or emit an ETA."""
    clock = FakeClock()
    reporter = ProgressReporter(total=0, clock=clock)
    reporter.start()
    clock.now = 5.0
    assert reporter.eta_s() is None


def test_eta_single_run_grid_never_estimates():
    """With one run there is nothing left to estimate: before it finishes
    there is no pace, after it finishes there is no remainder."""
    clock = FakeClock()
    reporter = ProgressReporter(total=1, clock=clock)
    reporter.start()
    assert reporter.eta_s() is None
    clock.now = 10.0
    reporter.update(_record())
    assert reporter.eta_s() is None


def test_eta_ignores_cache_hits_for_pace():
    """A burst of instant cache hits must not forecast a near-zero ETA
    for the real runs still pending."""
    clock = FakeClock()
    reporter = ProgressReporter(total=10, clock=clock)
    reporter.start()
    for _ in range(5):
        reporter.update(_record(), source="cache")
    # Only hits so far: no execution pace, so no estimate at all.
    assert reporter.eta_s() is None
    clock.now = 10.0
    reporter.update(_record(), source="executed")
    # Pace = 10s per *executed* run, 4 runs remaining.
    assert reporter.eta_s() == 40.0


def test_eta_suffix_absent_when_no_estimate():
    lines = []
    reporter = ProgressReporter(total=1, emit=lines.append)
    reporter.update(_record())
    assert all("ETA" not in line for line in lines)


def test_emitted_lines_and_summary():
    lines = []
    reporter = ProgressReporter(total=2, emit=lines.append)
    reporter.update(_record())
    reporter.update(_record("inapplicable"), source="cache")
    assert any("9.50 Gbps" in line for line in lines)
    assert any("n/a (qemu)" in line and "[cached]" in line for line in lines)
    summary = reporter.summary()
    assert "2/2 runs" in summary
    assert "1 executed" in summary
    assert "1 cache hits" in summary
    assert "0 failed" in summary


def test_failure_line_names_the_error():
    lines = []
    reporter = ProgressReporter(total=1, emit=lines.append)
    reporter.update(RunFailure(spec=RunSpec("p2p", "vale"), error="RuntimeError", message="boom"))
    assert any("FAILED (RuntimeError: boom)" in line for line in lines)


def test_retire_shrinks_the_total_and_eta():
    """A trial point that converges early cancels its unused repeat
    budget: the ETA shrinks immediately."""
    clock = FakeClock()
    reporter = ProgressReporter(total=10, clock=clock)
    reporter.start()
    clock.now = 10.0
    reporter.update(_record())
    assert reporter.eta_s() == 90.0
    reporter.retire(5)
    assert reporter.total == 5
    assert reporter.eta_s() == 40.0


def test_retire_never_drops_below_done():
    reporter = ProgressReporter(total=3)
    reporter.update(_record())
    reporter.update(_record())
    reporter.retire(100)
    assert reporter.total == 2


def test_retire_ignores_nonpositive_counts():
    reporter = ProgressReporter(total=5)
    reporter.retire(0)
    reporter.retire(-3)
    assert reporter.total == 5


def test_run_tier_classification():
    assert run_tier(_record(warp="replay")) == "warped"
    assert run_tier(_record(warp="turbo")) == "warped"
    assert run_tier(_record(warp="fluid")) == "fluid"
    assert run_tier(_record(warp="declined:probes-active")) == "exact"
    assert run_tier(_record(warp=None)) == "exact"
    assert run_tier(RunFailure(spec=RunSpec("p2p", "vale"), error="E", message="m")) == "exact"


def test_eta_blends_tier_costs():
    """A fast warped prefix must not forecast warp pace for exact runs:
    the blend reflects the observed executed mix, from per-run recorded
    wall-clocks rather than reporter elapsed time."""
    clock = FakeClock()
    reporter = ProgressReporter(total=4, clock=clock)
    reporter.start()
    clock.now = 11.0
    reporter.update(_record(warp="turbo", wall_clock_s=1.0))
    reporter.update(_record(warp="declined:scenario:v2v", wall_clock_s=10.0))
    # Blended pace (1 + 10) / 2 = 5.5s/run at concurrency 1, 2 remaining.
    assert reporter.eta_s() == 11.0
    assert reporter.tier_costs["warped"] == [1, 1.0]
    assert reporter.tier_costs["exact"] == [1, 10.0]


def test_eta_tier_costs_stay_cache_hit_blind():
    clock = FakeClock()
    reporter = ProgressReporter(total=10, clock=clock)
    reporter.start()
    for _ in range(5):
        reporter.update(_record(warp="fluid", wall_clock_s=123.0), source="cache")
    assert reporter.eta_s() is None
    assert reporter.tier_costs == {}
    clock.now = 2.0
    reporter.update(_record(warp="fluid", wall_clock_s=2.0), source="executed")
    # 2s/run, 4 remaining, concurrency 1.
    assert reporter.eta_s() == 8.0


def test_eta_discounts_parallel_workers():
    """Two workers each burning 10s inside a 10s elapsed window means
    the remainder drains at ~2 runs per 10s, not 1."""
    clock = FakeClock()
    reporter = ProgressReporter(total=6, clock=clock)
    reporter.start()
    clock.now = 10.0
    reporter.update(_record(warp="declined:pipeline-switch", wall_clock_s=10.0))
    reporter.update(_record(warp="declined:pipeline-switch", wall_clock_s=10.0))
    # Blended 10s/run over concurrency 2 -> 5s/run, 4 remaining.
    assert reporter.eta_s() == 20.0


def test_summary_reports_tier_pace():
    reporter = ProgressReporter(total=2)
    reporter.update(_record(warp="turbo", wall_clock_s=0.5))
    reporter.update(_record(warp="declined:interrupt-driven", wall_clock_s=4.0))
    summary = reporter.summary()
    assert "warped pace 0.500s/run x1" in summary
    assert "exact pace 4.000s/run x1" in summary


def test_retire_keeps_pace_cache_hit_blind():
    """Retiring budget must not fold cache hits into the pace estimate."""
    clock = FakeClock()
    reporter = ProgressReporter(total=10, clock=clock)
    reporter.start()
    for _ in range(4):
        reporter.update(_record(), source="cache")
    reporter.retire(2)
    assert reporter.eta_s() is None  # still no executed-run pace
    clock.now = 8.0
    reporter.update(_record(), source="executed")
    # Pace 8s per executed run; 8 total - 5 done = 3 remaining.
    assert reporter.eta_s() == 24.0
