"""Unit tests for the table/figure renderers."""

from __future__ import annotations

import math

from repro.analysis.tables import ascii_bars, format_series, format_table


def test_format_table_basic():
    out = format_table(["switch", "Gbps"], [["vpp", 10.0], ["vale", 5.56]])
    lines = out.splitlines()
    assert lines[0].startswith("switch")
    assert "10.0" in out and "5.56" in out


def test_format_table_title():
    out = format_table(["a"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_format_table_none_renders_dash():
    out = format_table(["a"], [[None]])
    assert "-" in out.splitlines()[-1]


def test_format_table_nan_renders_dash():
    out = format_table(["a"], [[math.nan]])
    assert out.splitlines()[-1].strip() == "-"


def test_number_formatting_precision():
    out = format_table(["v"], [[123.456], [12.345], [1.2345]])
    assert "123" in out
    assert "12.3" in out
    assert "1.23" in out


def test_columns_align():
    out = format_table(["name", "x"], [["a", 1], ["long-name", 22]])
    widths = {len(line) for line in out.splitlines()}
    assert len(widths) == 1  # every row padded to the same width


def test_format_series():
    out = format_series("vale", [1, 2, 3], [10.0, 9.5, None])
    assert out.startswith("vale:")
    assert "1=10.0" in out
    assert "3=-" in out


def test_ascii_bars():
    out = ascii_bars({"bess": 10.0, "vale": 5.0})
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[0].count("#") > lines[1].count("#")
    assert "Gbps" in lines[0]


def test_ascii_bars_empty():
    assert ascii_bars({}) == "(no data)"


def test_ascii_bars_zero_values():
    out = ascii_bars({"a": 0.0})
    assert "0.00" in out
