"""Unit tests for repro.flows: population specs, sampling, the campaign
axis encoding, and the CLI flag plumbing."""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from repro.flows import (
    FlowPopulation,
    flow_axis_items,
    flow_kwargs_from_items,
    resolve_flow_population,
)
from repro.flows.population import DEFAULT_ZIPF_ALPHA, FLOW_DISTS


def _rng(seed=1):
    return np.random.default_rng(seed)


class TestFlowPopulationValidation:
    def test_defaults_are_trivial(self):
        pop = FlowPopulation()
        assert pop.is_trivial
        assert pop.flows == 1 and pop.dist == "uniform"
        assert pop.zipf_alpha == DEFAULT_ZIPF_ALPHA

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flows": 0},
            {"flows": -3},
            {"dist": "pareto"},
            {"zipf_alpha": 0.0},
            {"zipf_alpha": -1.0},
            {"churn_fps": -1.0},
            {"size_mix": "no-such-mix"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            FlowPopulation(**kwargs)

    def test_non_trivial_when_any_axis_set(self):
        assert not FlowPopulation(flows=2).is_trivial
        assert not FlowPopulation(churn_fps=10.0).is_trivial
        assert not FlowPopulation(size_mix="imix").is_trivial
        # A distribution choice alone changes nothing at one flow.
        assert FlowPopulation(dist="zipf").is_trivial

    def test_size_profile_lookup(self):
        assert FlowPopulation().size_profile is None
        profile = FlowPopulation(size_mix="imix").size_profile
        assert profile is not None

    def test_dists_registry(self):
        assert FLOW_DISTS == ("uniform", "zipf")


class TestSampling:
    def test_single_flow_samples_zero(self):
        pop = FlowPopulation(flows=1)
        ranks = pop.sample_flows(_rng(), 64)
        assert ranks.shape == (64,)
        assert not ranks.any()

    @pytest.mark.parametrize("dist", FLOW_DISTS)
    def test_ranks_within_population(self, dist):
        pop = FlowPopulation(flows=100, dist=dist)
        ranks = pop.sample_flows(_rng(), 4096)
        assert ranks.min() >= 0
        assert ranks.max() < 100

    def test_zipf_is_head_heavy(self):
        pop = FlowPopulation(flows=1000, dist="zipf")
        ranks = pop.sample_flows(_rng(), 20_000)
        # Rank 0 must dominate any deep-tail rank by a wide margin.
        head = int((ranks == 0).sum())
        tail = int((ranks >= 500).sum())
        assert head > tail

    def test_uniform_is_flat(self):
        pop = FlowPopulation(flows=10, dist="uniform")
        ranks = pop.sample_flows(_rng(), 50_000)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_same_seed_same_draw(self):
        pop = FlowPopulation(flows=5000, dist="zipf")
        a = pop.sample_flows(_rng(42), 1024)
        b = pop.sample_flows(_rng(42), 1024)
        assert (a == b).all()

    def test_churn_slides_the_active_window(self):
        pop = FlowPopulation(flows=100, dist="uniform", churn_fps=1e6)
        early = pop.sample_flows(_rng(7), 256, now_ns=0.0)
        late = pop.sample_flows(_rng(7), 256, now_ns=3e6)
        # 1e6 flows/s * 3 ms = 3000 fresh flows: same draws, shifted ids.
        assert (late - early == 3000).all()

    def test_churn_is_a_pure_function_of_time(self):
        pop = FlowPopulation(flows=100, churn_fps=500.0)
        a = pop.sample_flows(_rng(3), 128, now_ns=4e6)
        b = pop.sample_flows(_rng(3), 128, now_ns=4e6)
        assert (a == b).all()

    def test_zipf_cdf_cached_and_well_formed(self):
        pop = FlowPopulation(flows=1000, dist="zipf")
        cdf = pop._cdf()
        assert cdf is pop._cdf()  # cached, not rebuilt
        assert cdf[-1] == 1.0
        assert (np.diff(cdf) >= 0).all()
        assert FlowPopulation(flows=1000)._cdf() is None  # uniform: no CDF


class TestResolve:
    def test_trivial_resolves_to_none(self):
        assert resolve_flow_population() is None
        assert resolve_flow_population(flows=1, flow_dist="zipf") is None

    def test_non_trivial_resolves_to_population(self):
        pop = resolve_flow_population(flows=100_000, flow_dist="zipf", churn=10.0)
        assert isinstance(pop, FlowPopulation)
        assert pop.flows == 100_000
        assert pop.dist == "zipf"
        assert pop.churn_fps == 10.0

    def test_size_mix_alone_is_non_trivial(self):
        pop = resolve_flow_population(size_mix="imix")
        assert pop is not None and pop.size_mix == "imix"


class TestAxisItems:
    def test_defaults_encode_to_nothing(self):
        assert flow_axis_items() == ()
        assert flow_axis_items(flows=1, flow_dist="zipf") == ()

    def test_non_defaults_encode_canonically(self):
        items = flow_axis_items(flows=1000, flow_dist="zipf", churn=5.0, size_mix="imix")
        assert items == (
            ("flows", 1000),
            ("flow_dist", "zipf"),
            ("churn", 5.0),
            ("size_mix", "imix"),
        )

    def test_uniform_dist_is_omitted(self):
        assert flow_axis_items(flows=1000) == (("flows", 1000),)

    def test_round_trip_through_kwargs(self):
        extra = dict(flow_axis_items(flows=64, churn=2.0)) | {"reversed_path": True}
        kwargs = flow_kwargs_from_items(extra)
        assert kwargs == {"flows": 64, "churn": 2.0}
        assert extra == {"reversed_path": True}  # popped in place


class TestCliFlags:
    def _args(self, **overrides):
        base = dict(flows="1", flow_dist="uniform", churn=0.0, size_mix=None)
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_flow_counts_parse_suffixes(self):
        from repro.cli import _flow_counts

        assert _flow_counts(self._args(flows="1")) == [1]
        assert _flow_counts(self._args(flows="100k")) == [100_000]
        assert _flow_counts(self._args(flows="1m")) == [1_000_000]
        assert _flow_counts(self._args(flows="1,1k,100K,1M")) == [
            1, 1_000, 100_000, 1_000_000,
        ]

    def test_flow_kwargs_empty_at_defaults(self):
        from repro.cli import _flow_kwargs

        assert _flow_kwargs(self._args()) == {}

    def test_flow_kwargs_carry_non_defaults(self):
        from repro.cli import _flow_kwargs

        kwargs = _flow_kwargs(
            self._args(flows="100k", flow_dist="zipf", churn=5.0, size_mix="imix")
        )
        assert kwargs == {
            "flows": 100_000,
            "flow_dist": "zipf",
            "churn": 5.0,
            "size_mix": "imix",
        }

    def test_comma_list_rejected_outside_campaign(self, capsys):
        from repro.cli import main

        assert main(["p2p", "--flows", "1,1k"]) == 1

    def test_bad_flows_token_rejected(self):
        from repro.cli import main

        assert main(["p2p", "--flows", "lots"]) == 1

    def test_unknown_size_mix_rejected(self):
        from repro.cli import main

        assert main(["p2p", "--size-mix", "jumbo-only"]) == 1

    def test_single_run_accepts_flow_flags(self, capsys):
        from _helpers import FAST_MEASURE_NS, FAST_WARMUP_NS
        from repro.cli import main

        code = main([
            "p2p", "--switch", "ovs-dpdk", "--flows", "1k", "--flow-dist", "zipf",
            "--warmup-ns", str(FAST_WARMUP_NS), "--measure-ns", str(FAST_MEASURE_NS),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p2p unidirectional 64B ovs-dpdk" in out
