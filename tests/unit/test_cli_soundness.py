"""CLI tests for the soundness layer: --seed-policy, trial campaigns and
the variance-aware perf gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST = ["--warmup-ns", "100000", "--measure-ns", "400000"]


class TestRepeatSemantics:
    @pytest.mark.parametrize("command", [
        ["suite", "--switch", "vpp", "--repeat", "2"],
        ["campaign", "--suite", "smoke", "--repeat", "2"],
        ["validate", "--repeat", "2"],
    ])
    def test_repeat_without_policy_is_a_loud_error(self, command, capsys):
        assert main(command) == 2
        err = capsys.readouterr().err
        assert "--seed-policy" in err
        assert "trial" in err and "reseed" in err

    def test_seed_policy_rejected_on_single_run_commands(self, capsys):
        assert main(["p2p", "--switch", "vpp", "--seed-policy", "trial"]) == 1
        assert "--seed-policy is not supported" in capsys.readouterr().err

    def test_perf_repeat_is_exempt(self, capsys):
        # perf repeats are wall-clock samples, not statistical replicas.
        assert main(["perf", "--cases", "engine.dispatch", "--repeat", "2"]) == 0


class TestTrialCampaignCommand:
    def test_end_to_end_artifacts(self, tmp_path, capsys):
        summary_path = tmp_path / "trials.json"
        csv_path = tmp_path / "out.csv"
        prom_path = tmp_path / "trials.prom"
        assert main([
            "campaign", "--suite", "smoke", "--switches", "vpp",
            "--repeat", "4", "--seed-policy", "trial", "--no-cache",
            "--trial-summary", str(summary_path),
            "--export-csv", str(csv_path),
            "--metrics-out", str(prom_path),
            *FAST,
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out and "95% CI" in out

        summary = json.loads(summary_path.read_text())
        assert summary  # one entry per grid point
        entry = next(iter(summary.values()))
        assert {"status", "n", "ci_low", "ci_high", "verdict"} <= set(entry)

        header = csv_path.read_text().splitlines()[0]
        assert "trials" in header.split(",")

        prom = prom_path.read_text()
        assert "repro_trials_n{" in prom
        assert "repro_trials_quarantined{" in prom

    def test_reseed_policy_keeps_the_legacy_seed_axis(self, tmp_path, capsys):
        assert main([
            "campaign", "--suite", "smoke", "--switches", "vpp",
            "--repeat", "2", "--seed-policy", "reseed", "--no-cache",
            *FAST,
        ]) == 0
        out = capsys.readouterr().out
        assert "#s1" in out and "#s2" in out  # two seeds, no trial suffix
        assert "+t1" not in out


class TestVarianceAwareGate:
    CASE = ["perf", "--cases", "engine.dispatch", "--repeat", "1"]

    def test_overlapping_cis_pass_where_the_point_gate_would_fail(
        self, tmp_path, capsys
    ):
        """A baseline whose CI overlaps the current run must not fail the
        gate, even when its point estimate alone screams regression."""
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "cases": {"engine.dispatch": {
                "kind": "engine",
                "wall_s": 1e-9,  # point gate: regressed by ~infinity
                "trials": {"n": 5, "ci_low": 1e-9, "ci_high": 1e9},
            }}
        }))
        assert main([
            *self.CASE, "--baseline", str(baseline), "--max-regress", "20",
        ]) == 0
        assert "perf gate" in capsys.readouterr().err

    def test_disjoint_cis_below_floor_fail_with_exit_4(self, tmp_path, capsys):
        """Injected regression: the baseline CI sits entirely below any
        plausible current run, so the optimistic ratio is still a
        regression and CI must fail."""
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "cases": {"engine.dispatch": {
                "kind": "engine",
                "wall_s": 1e-9,
                "trials": {"n": 5, "ci_low": 0.5e-9, "ci_high": 2e-9},
            }}
        }))
        assert main([
            *self.CASE, "--baseline", str(baseline), "--max-regress", "20",
        ]) == 4
        assert "regressed" in capsys.readouterr().err

    def test_missing_baseline_still_fails_closed(self, tmp_path, capsys):
        assert main([
            *self.CASE, "--baseline", str(tmp_path / "nope.json"),
            "--max-regress", "20",
        ]) == 4
        assert "failing closed" in capsys.readouterr().err

    def test_report_carries_trial_summaries(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        out_path = tmp_path / "bench.json"
        assert main([
            "perf", "--cases", "engine.dispatch", "--repeat", "2",
            "--json", "--perf-out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        case = report["cases"]["engine.dispatch"]
        assert case["trials"]["n"] == 2
        assert len(case["samples"]) == 2
        assert case["trials"]["ci_low"] <= case["trials"]["ci_high"]
        # wall_s stays the noise-free minimum of the samples.
        assert case["wall_s"] == min(case["samples"])
