"""Unit tests for the OpenFlow table and the mini-P4 compiler."""

from __future__ import annotations

import pytest

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.switches.openflow import FlowMatch, FlowRule, OpenFlowTable
from repro.switches.p4 import (
    L2FWD_PROGRAM,
    L3FWD_PROGRAM,
    MatchKind,
    P4Program,
    P4TableSpec,
    compile_program,
)
from repro.switches.params import T4P4S_STAGES
from repro.switches.t4p4s import T4P4S


class TestFlowMatch:
    def test_wildcard_matches_everything(self):
        assert FlowMatch().matches(Packet(), in_port=3)

    def test_exact_fields(self):
        match = FlowMatch(in_port=1, dst_mac=0xAB)
        assert match.matches(Packet(dst_mac=0xAB), in_port=1)
        assert not match.matches(Packet(dst_mac=0xAB), in_port=2)
        assert not match.matches(Packet(dst_mac=0xCD), in_port=1)

    def test_wildcard_count(self):
        assert FlowMatch().wildcard_count == 4
        assert FlowMatch(in_port=1, flow_id=2).wildcard_count == 2


class TestFlowRule:
    def test_output_action(self):
        rule = FlowRule(FlowMatch(), "output:3")
        assert rule.output_port == 3

    def test_drop_action(self):
        assert FlowRule(FlowMatch(), "drop").output_port is None

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            FlowRule(FlowMatch(), "flood")


class TestOpenFlowTable:
    def test_priority_ordering(self):
        table = OpenFlowTable()
        table.add_rule(FlowRule(FlowMatch(), "output:1", priority=0))
        table.add_rule(FlowRule(FlowMatch(dst_mac=0xAB), "output:2", priority=10))
        hit = table.lookup(Packet(dst_mac=0xAB), in_port=0)
        assert hit.output_port == 2  # specific high-priority rule wins

    def test_fallthrough_to_low_priority(self):
        table = OpenFlowTable()
        table.add_rule(FlowRule(FlowMatch(dst_mac=0xAB), "output:2", priority=10))
        table.add_rule(FlowRule(FlowMatch(), "output:1", priority=0))
        assert table.lookup(Packet(dst_mac=0xCD), in_port=0).output_port == 1

    def test_miss_counted(self):
        table = OpenFlowTable()
        table.add_rule(FlowRule(FlowMatch(dst_mac=0xAB), "output:1"))
        assert table.lookup(Packet(dst_mac=0xCD), in_port=0) is None
        assert table.misses == 1

    def test_per_rule_statistics(self):
        table = OpenFlowTable()
        rule = FlowRule(FlowMatch(), "output:1")
        table.add_rule(rule)
        table.lookup(Packet(size=100), 0)
        table.lookup(Packet(size=200), 0)
        assert rule.n_packets == 2
        assert rule.n_bytes == 300

    def test_megaflow_unwildcards_inspected_fields(self):
        table = OpenFlowTable()
        table.add_rule(FlowRule(FlowMatch(dst_mac=0xAB), "output:1"))
        packet = Packet(dst_mac=0xAB, flow_id=7)
        rule = table.lookup(packet, 0)
        megaflow = table.derive_megaflow(packet, 0, rule)
        assert megaflow.dst_mac == 0xAB   # constrained by some rule
        assert megaflow.flow_id is None   # nothing matches on flow_id
        assert megaflow.in_port is None

    def test_dump_flows_format(self):
        table = OpenFlowTable()
        table.add_rule(FlowRule(FlowMatch(in_port=1), "output:2", priority=5))
        dump = table.dump_flows()
        assert len(dump) == 1
        assert "in_port=1" in dump[0]
        assert "actions=output:2" in dump[0]


class TestP4Compiler:
    def test_l2fwd_compiles_to_calibrated_stages(self):
        compiled = compile_program(L2FWD_PROGRAM)
        for stage, cost in compiled.stage_table().items():
            assert cost.per_packet == pytest.approx(T4P4S_STAGES[stage].per_packet), stage
            assert cost.per_byte == pytest.approx(T4P4S_STAGES[stage].per_byte), stage

    def test_more_headers_cost_more_parse(self):
        l2 = compile_program(L2FWD_PROGRAM)
        l3 = compile_program(L3FWD_PROGRAM)
        assert l3.parse.per_packet > l2.parse.per_packet

    def test_fancier_matches_cost_more(self):
        exact = P4Program("a", ("ethernet",), (P4TableSpec("t", "f"),))
        lpm = P4Program(
            "b", ("ethernet",), (P4TableSpec("t", "f", match_kind=MatchKind.LPM),)
        )
        assert (
            compile_program(lpm).match_action.per_packet
            > compile_program(exact).match_action.per_packet
        )

    def test_table_size_term(self):
        small = P4Program("a", ("ethernet",), (P4TableSpec("t", "f", max_entries=512),))
        huge = P4Program("b", ("ethernet",), (P4TableSpec("t", "f", max_entries=1 << 20),))
        assert (
            compile_program(huge).match_action.per_packet
            > compile_program(small).match_action.per_packet
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            P4Program("x", ("warpcore",), (P4TableSpec("t", "f"),))
        with pytest.raises(ValueError):
            P4Program("x", (), (P4TableSpec("t", "f"),))
        with pytest.raises(ValueError):
            P4Program("x", ("ethernet",), ())
        with pytest.raises(ValueError):
            P4TableSpec("t", "f", max_entries=0)
        with pytest.raises(ValueError):
            P4TableSpec("t", "f", actions=())

    def test_t4p4s_default_equals_l2fwd_program(self):
        default = T4P4S(Simulator())
        programmed = T4P4S(Simulator(), program=L2FWD_PROGRAM)
        assert programmed.params.proc.per_packet == pytest.approx(
            default.params.proc.per_packet
        )
        assert programmed.pipeline_spec is not None

    def test_t4p4s_l3fwd_is_slower(self):
        l2 = T4P4S(Simulator(), program=L2FWD_PROGRAM)
        l3 = T4P4S(Simulator(), program=L3FWD_PROGRAM)
        assert l3.params.proc.per_packet > l2.params.proc.per_packet


class TestOvsOpenFlowIntegration:
    def test_upcall_populates_megaflows_and_rule_stats(self, sim):
        from repro.cpu.cores import Core
        from repro.nic.port import NicPort
        from repro.switches.control import OvsCtl
        from repro.switches.registry import create_switch

        switch = create_switch("ovs-dpdk", sim)
        p0, p1 = NicPort(sim, "p0"), NicPort(sim, "p1")
        peer0, peer1 = NicPort(sim, "x0"), NicPort(sim, "x1")
        p0.connect(peer0)
        p1.connect(peer1)
        ctl = OvsCtl(switch, {"dpdk0": p0, "dpdk1": p1})
        ctl.vsctl("add-br br0")
        ctl.vsctl("add-port br0 dpdk0")
        ctl.vsctl("add-port br0 dpdk1")
        ctl.ofctl_add_flow("br0", "in_port=1,actions=output:2")
        switch.bind_core(Core(sim, "sut"))
        peer1.sink = lambda pkts: None
        p0.rx_ring.push_batch([Packet(flow_id=i) for i in range(5)])
        sim.run_until(2_000_000)
        assert switch.upcalls == 5
        assert len(switch.megaflow_entries) == 5
        assert len(switch.flow_table.dump_flows()) == 1
        assert "n_packets=5" in switch.flow_table.dump_flows()[0]
