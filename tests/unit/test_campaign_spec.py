"""Unit tests for campaign run/grid specifications."""

from __future__ import annotations

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    RunFailure,
    RunRecord,
    RunSpec,
    from_suite,
    grid,
    outcome_from_dict,
    runspec_from_experiment,
)
from repro.measure.suites import PAPER_SUITE, SMOKE_SUITE


def test_runspec_roundtrips_through_dict():
    spec = RunSpec(
        "p2v", "vpp", frame_size=256, bidirectional=True, seed=7,
        extra=(("reversed_path", True),),
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_runspec_extra_is_canonically_sorted():
    a = RunSpec("p2p", "vpp", extra=(("b", 1), ("a", 2)))
    b = RunSpec("p2p", "vpp", extra=(("a", 2), ("b", 1)))
    assert a == b


def test_runspec_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        RunSpec("warp", "vpp")


def test_runspec_latency_kind_is_v2v_only():
    RunSpec("v2v", "vale", kind="latency")  # fine
    with pytest.raises(ValueError, match="latency"):
        RunSpec("p2p", "vale", kind="latency")


def test_label_names_chain_length_and_seed():
    spec = RunSpec("loopback", "vale", n_vnfs=3, seed=9)
    assert spec.label == "loopback3-64B-uni/vale#s9"


def test_grid_cartesian_size():
    campaign = grid(
        "g", switches=("vpp", "bess"), scenarios=("p2p",),
        frame_sizes=(64, 1024), directions=(False, True), seeds=(1, 2),
    )
    assert len(campaign) == 2 * 2 * 2 * 2


def test_grid_vnfs_only_sweeps_loopback():
    campaign = grid(
        "g", switches=("vpp",), scenarios=("p2p", "loopback"),
        frame_sizes=(64,), directions=(False,), vnfs=(1, 2, 3),
    )
    loopbacks = [s for s in campaign if s.scenario == "loopback"]
    p2ps = [s for s in campaign if s.scenario == "p2p"]
    assert {s.n_vnfs for s in loopbacks} == {1, 2, 3}
    assert len(p2ps) == 1


def test_with_repeats_replicates_seeds():
    campaign = CampaignSpec("c", (RunSpec("p2p", "vpp", seed=5),)).with_repeats(3)
    assert [s.seed for s in campaign] == [5, 6, 7]


def test_deduplicated_preserves_order():
    a, b = RunSpec("p2p", "vpp"), RunSpec("p2p", "bess")
    campaign = CampaignSpec("c", (a, b, a)).deduplicated()
    assert campaign.runs == (a, b)


def test_from_suite_expands_switches_and_seeds():
    campaign = from_suite(SMOKE_SUITE, ["vpp", "vale"], seeds=(1, 2))
    assert len(campaign) == len(SMOKE_SUITE.experiments) * 2 * 2
    assert campaign.name == "suite:smoke"


def test_from_suite_accepts_name():
    assert len(from_suite("smoke", ["vpp"])) == len(SMOKE_SUITE.experiments)
    with pytest.raises(KeyError, match="unknown suite"):
        from_suite("nope", ["vpp"])


def test_runspec_from_experiment_maps_the_paper_grid():
    long_chain = [s for s in PAPER_SUITE.experiments if s.name == "loopback5-64B-uni"][0]
    spec = runspec_from_experiment(long_chain, "vale", 1e5, 1e6, seed=3)
    assert spec.scenario == "loopback"
    assert spec.n_vnfs == 5
    assert spec.seed == 3


def test_runspec_from_experiment_rejects_custom_builders():
    from repro.measure.suites import ExperimentSpec

    custom = ExperimentSpec("custom", build=lambda *a, **k: None)
    assert runspec_from_experiment(custom, "vpp", 1e5, 1e6, 1) is None


def test_record_roundtrip_and_mirror_properties():
    record = RunRecord(
        spec=RunSpec("v2v", "snabb", frame_size=256),
        per_direction_gbps=[3.0, 2.0],
        per_direction_mpps=[4.0, 3.5],
        events=10,
        duration_ns=1e6,
    )
    revived = outcome_from_dict(record.to_dict())
    assert isinstance(revived, RunRecord)
    assert revived.gbps == pytest.approx(5.0)
    assert revived.mpps == pytest.approx(7.5)
    assert revived.switch == "snabb"
    assert revived.frame_size == 256
    assert revived.ok


def test_failure_roundtrip():
    failure = RunFailure(
        spec=RunSpec("p2p", "vpp"), error="RuntimeError", message="boom", attempts=2
    )
    revived = outcome_from_dict(failure.to_dict())
    assert isinstance(revived, RunFailure)
    assert revived.error == "RuntimeError"
    assert revived.attempts == 2
    assert not revived.ok


class TestTrialAxis:
    """The soundness-trial field on RunSpec (repro.measure.soundness)."""

    def test_trial_roundtrips_through_dict(self):
        spec = RunSpec("p2p", "vpp", seed=3, trial=2)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_trial_zero_is_omitted_from_dict(self):
        """Cache-key stability: the default trial must serialise exactly
        as it did before the field existed."""
        assert "trial" not in RunSpec("p2p", "vpp").to_dict()

    def test_trial_suffixes_the_label(self):
        assert RunSpec("p2p", "vpp", seed=9, trial=2).label.endswith("#s9+t2")
        assert RunSpec("p2p", "vpp", seed=9).label.endswith("#s9")

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError, match="trial"):
            RunSpec("p2p", "vpp", trial=-1)

    def test_with_trials_expands_each_run(self):
        campaign = CampaignSpec("c", (RunSpec("p2p", "vpp", seed=5),)).with_trials(3)
        assert [s.trial for s in campaign] == [0, 1, 2]
        assert {s.seed for s in campaign} == {5}

    def test_with_trials_reseed_policy(self):
        campaign = CampaignSpec(
            "c", (RunSpec("p2p", "vpp", seed=5),)
        ).with_trials(3, seed_policy="reseed")
        assert [s.seed for s in campaign] == [5, 6, 7]
        assert {s.trial for s in campaign} == {0}

    def test_with_trials_one_is_identity(self):
        campaign = CampaignSpec("c", (RunSpec("p2p", "vpp"),))
        assert campaign.with_trials(1) is campaign

    def test_trial_cache_keys_are_distinct(self):
        from repro.campaign.cache import run_key

        base = RunSpec("p2p", "vpp")
        keys = {run_key(base), run_key(RunSpec("p2p", "vpp", trial=1))}
        assert len(keys) == 2
