"""Unit tests for repro.faults: plans, the injector, the watchdog."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, make_block
from repro.core.ring import (
    DisconnectedRing,
    FrozenRing,
    Ring,
    disconnect_ring,
    freeze_ring,
    restore_ring,
)
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultInjector,
    FaultTargetError,
    InvariantWatchdog,
    WatchdogError,
    parse_fault,
)
from repro.scenarios import p2p, p2v, v2v


# ---------------------------------------------------------------------------
# FaultEvent / FaultPlan model
# ---------------------------------------------------------------------------


def test_event_validates_kind_with_actionable_error():
    with pytest.raises(ValueError) as err:
        FaultEvent(at_ns=0.0, kind="frobnicate", target="x", duration_ns=1.0)
    for kind in FAULT_KINDS:
        assert kind in str(err.value)


def test_event_rejects_zero_duration_for_window_kinds():
    with pytest.raises(ValueError, match="positive duration_ns"):
        FaultEvent(at_ns=0.0, kind="nic-link-flap", target="p0")


def test_instant_kinds_need_no_duration():
    event = FaultEvent(at_ns=5.0, kind="switch-mac-flush", target="switch")
    assert event.end_ns == 5.0
    assert event.label == "switch-mac-flush@switch"


def test_event_rejects_unknown_kind_argument():
    with pytest.raises(ValueError, match="does not take argument"):
        FaultEvent(
            at_ns=0.0,
            kind="core-throttle",
            target="numa0/sut",
            duration_ns=1.0,
            args=(("warp", 9.0),),
        )


def test_event_arg_falls_back_to_kind_default():
    event = FaultEvent(at_ns=0.0, kind="core-throttle", target="c", duration_ns=1.0)
    assert event.arg("factor") == 0.5
    tuned = FaultEvent(
        at_ns=0.0, kind="core-throttle", target="c", duration_ns=1.0,
        args=(("factor", 0.25),),
    )
    assert tuned.arg("factor") == 0.25


def test_event_round_trips_through_dict_and_key():
    event = FaultEvent(
        at_ns=100.0, kind="mem-contention", target="numa0", duration_ns=50.0,
        seed=3, args=(("factor", 0.7),),
    )
    assert FaultEvent.from_dict(event.to_dict()) == event
    assert FaultEvent.from_key(event.to_key()) == event


def test_plan_sorts_events_and_reports_window():
    late = FaultEvent(at_ns=200.0, kind="core-preempt", target="c", duration_ns=10.0)
    early = FaultEvent(at_ns=50.0, kind="core-preempt", target="d", duration_ns=100.0)
    plan = FaultPlan.of(late, early)
    assert plan.events[0] is early
    assert plan.first_at_ns == 50.0
    assert plan.last_end_ns == 210.0
    assert len(plan) == 2 and bool(plan)


def test_empty_plan_is_falsy_with_inf_start():
    plan = FaultPlan()
    assert not plan
    assert plan.first_at_ns == float("inf")
    assert plan.last_end_ns == 0.0


def test_parse_fault_grammar():
    event = parse_fault("vif-disconnect@vm1.eth0:at_ns=1e6,duration_ns=3e5,seed=2")
    assert event == FaultEvent(
        at_ns=1e6, kind="vif-disconnect", target="vm1.eth0", duration_ns=3e5, seed=2
    )
    tuned = parse_fault("core-throttle@numa0/sut:at_ns=10,duration_ns=5,factor=0.4")
    assert tuned.arg("factor") == 0.4


@pytest.mark.parametrize(
    "text, match",
    [
        ("nonsense", "expected"),
        ("justakind:at_ns=1", "kind@target"),
        ("warp-drive@x:at_ns=1", "valid kinds"),
        ("core-preempt@c:at_ns=abc", "not a number"),
        ("core-preempt@c:duration_ns=5", "needs at_ns"),
        ("core-preempt@c:at_ns", "key=value"),
    ],
)
def test_parse_fault_rejects_malformed_text(text, match):
    with pytest.raises(ValueError, match=match):
        parse_fault(text)


# ---------------------------------------------------------------------------
# Ring fault states
# ---------------------------------------------------------------------------


def test_frozen_ring_holds_frames_and_restores():
    ring = Ring(8)
    ring.push(make_block(4, 64, 0.0))
    freeze_ring(ring)
    assert ring.__class__ is FrozenRing
    assert ring.pop_batch(8) == []
    assert len(ring) == 4  # frames held, not lost
    restore_ring(ring)
    assert ring.__class__ is Ring
    assert sum(i.count for i in ring.pop_batch(8)) == 4


def test_disconnected_ring_drops_pushes_and_counts_them():
    ring = Ring(8)
    disconnect_ring(ring)
    before = ring.dropped
    assert ring.push(make_block(3, 64, 0.0)) == 0
    assert ring.push(Packet()) == 0
    assert ring.dropped == before + 4
    assert ring.pop_batch(8) == []
    restore_ring(ring)
    assert ring.push(Packet()) == 1


def test_double_fault_on_one_ring_is_an_error():
    ring = Ring(4)
    freeze_ring(ring)
    with pytest.raises(ValueError, match="already"):
        disconnect_ring(ring)
    restore_ring(ring)
    restore_ring(ring)  # idempotent


def test_clear_reports_lost_frames():
    ring = Ring(8)
    ring.push(make_block(5, 64, 0.0))
    assert ring.clear() == 5
    assert len(ring) == 0


# ---------------------------------------------------------------------------
# FaultInjector resolution
# ---------------------------------------------------------------------------


def test_injector_rejects_unknown_target_listing_available():
    tb = p2p.build("vale", frame_size=64, seed=1)
    plan = FaultPlan.of(
        FaultEvent(at_ns=1.0, kind="nic-link-flap", target="bogus.p9", duration_ns=1.0)
    )
    with pytest.raises(FaultTargetError) as err:
        FaultInjector(tb, plan)
    message = str(err.value)
    assert "bogus.p9" in message
    assert "sut-nic.p1" in message  # available targets are listed


def test_injector_rejects_unsupported_switch_kind():
    # VALE has a MAC table but no EMC; the error lists switches that do.
    tb = p2p.build("vale", frame_size=64, seed=1)
    plan = FaultPlan.of(
        FaultEvent(at_ns=1.0, kind="switch-emc-flush", target="switch")
    )
    with pytest.raises(FaultTargetError):
        FaultInjector(tb, plan)


def test_injector_resolves_every_layer():
    tb = v2v.build("vale", frame_size=64, seed=1)
    plan = FaultPlan.of(
        FaultEvent(at_ns=1.0, kind="vif-disconnect", target="vm1.eth0", duration_ns=1.0),
        FaultEvent(at_ns=1.0, kind="vnf-crash", target="vm2", duration_ns=1.0),
        FaultEvent(at_ns=1.0, kind="core-preempt", target="numa0/sut", duration_ns=1.0),
        FaultEvent(at_ns=1.0, kind="mem-contention", target="numa0", duration_ns=1.0),
        FaultEvent(at_ns=1.0, kind="switch-mac-flush", target="switch"),
    )
    injector = FaultInjector(tb, plan)  # no FaultTargetError
    assert injector.plan is plan


def test_unfaulted_run_never_constructs_rng_streams():
    """Determinism contract: arming a plan without stochastic kinds draws
    nothing; an absent plan means no injector at all (see golden stats)."""
    tb = p2p.build("vale", frame_size=64, seed=1)
    streams_before = set(tb.rngs.names()) if hasattr(tb.rngs, "names") else None
    plan = FaultPlan.of(
        FaultEvent(at_ns=1_000.0, kind="nic-link-flap", target="sut-nic.p1", duration_ns=500.0)
    )
    injector = FaultInjector(tb, plan)
    injector.arm()
    tb.sim.run_until(2_000.0)
    if streams_before is not None:
        assert set(tb.rngs.names()) == streams_before
    assert len(injector.spans) == 1


def test_flow_reinstall_preserves_rules_and_their_stats():
    from repro.core.engine import Simulator
    from repro.switches.openflow import FlowMatch, FlowRule
    from repro.switches.registry import create_switch

    switch = create_switch("ovs-dpdk", Simulator())
    rule = FlowRule(match=FlowMatch(flow_id=1), action="output:1", priority=5, n_packets=42)
    switch.flow_table.add_rule(rule)
    switch.flow_table.add_rule(FlowRule(match=FlowMatch(), action="drop", priority=0))

    stashed = switch.begin_flow_reinstall()
    assert len(stashed) == 2
    assert len(switch.flow_table) == 0  # slow-path storm while empty
    switch.finish_flow_reinstall(stashed)
    assert len(switch.flow_table) == 2
    assert switch.flow_table._rules[0] is rule  # priority order + stats kept
    assert switch.flow_table._rules[0].n_packets == 42


# ---------------------------------------------------------------------------
# InvariantWatchdog
# ---------------------------------------------------------------------------


def test_watchdog_clean_run_has_no_violations():
    tb = p2p.build("vale", frame_size=64, seed=1)
    watchdog = InvariantWatchdog(tb, interval_ns=50_000.0)
    watchdog.start()
    tb.sim.run_until(500_000.0)
    report = watchdog.finalize()
    assert report["violations"] == []
    assert report["scans"] >= 10
    assert report["rings_watched"] > 0


def test_watchdog_catches_seeded_conservation_bug():
    """A deliberately corrupted forwarded counter must be flagged."""
    tb = p2p.build("vale", frame_size=64, seed=1)
    watchdog = InvariantWatchdog(tb, interval_ns=50_000.0)
    watchdog.start()
    tb.sim.run_until(200_000.0)

    # Seed the bug: pretend the path forwarded frames it never received.
    path = tb.switch.paths[0]
    path.forwarded += 1_000_000

    violations = watchdog.scan_once()
    assert any(v.check == "conservation" for v in violations)
    report = watchdog.report()
    assert any(row["check"] == "conservation" for row in report["violations"])


def test_watchdog_catches_seeded_ring_corruption():
    tb = p2p.build("vale", frame_size=64, seed=1)
    watchdog = InvariantWatchdog(tb, interval_ns=50_000.0)
    tb.sim.run_until(200_000.0)

    name, ring = watchdog._rings[0]
    ring._frames = ring.capacity + 7  # occupancy out of bounds + inconsistent

    violations = watchdog.scan_once()
    checks = {v.check for v in violations}
    assert "ring-occupancy" in checks
    assert "ring-consistency" in checks
    assert any(v.subject == name for v in violations)


def test_watchdog_strict_mode_raises():
    tb = p2p.build("vale", frame_size=64, seed=1)
    watchdog = InvariantWatchdog(tb, interval_ns=50_000.0, strict=True)
    tb.sim.run_until(200_000.0)
    tb.switch.paths[0].forwarded += 1_000_000
    with pytest.raises(WatchdogError, match="conservation"):
        watchdog.scan_once()


def test_watchdog_report_appends_jsonl(tmp_path):
    import json

    tb = p2p.build("vale", frame_size=64, seed=1)
    watchdog = InvariantWatchdog(tb, interval_ns=100_000.0)
    watchdog.start()
    tb.sim.run_until(300_000.0)
    watchdog.finalize()
    path = tmp_path / "watchdog.jsonl"
    watchdog.append_report(str(path), label="unit")
    watchdog.append_report(str(path), label="unit-2")
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [row["label"] for row in rows] == ["unit", "unit-2"]
    assert rows[0]["violations"] == []


def test_watchdog_survives_active_faults():
    """Class-swapped (faulted) rings must not trip the invariants."""
    tb = p2v.build("vale", frame_size=64, seed=1)
    plan = FaultPlan.of(
        FaultEvent(at_ns=100_000.0, kind="vif-freeze", target="vm1.eth0", duration_ns=150_000.0),
        FaultEvent(at_ns=400_000.0, kind="vnf-crash", target="vm1", duration_ns=100_000.0),
    )
    injector = FaultInjector(tb, plan)
    injector.arm()
    watchdog = InvariantWatchdog(tb, interval_ns=25_000.0, strict=True)
    watchdog.start()
    tb.sim.run_until(700_000.0)  # strict: any violation raises
    report = watchdog.finalize()
    assert report["violations"] == []
    assert len(injector.spans) == 2
