"""Unit tests for traffic profiles (size mixes and flow structures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.units import line_rate_pps
from repro.traffic.profiles import (
    DATACENTER,
    IMIX,
    PROFILES,
    SINGLE_FLOW,
    FlowProfile,
    SizeProfile,
    fixed,
)


class TestSizeProfile:
    def test_fixed_profile(self):
        profile = fixed(256)
        assert profile.mean_size == 256
        assert profile.line_rate_pps() == pytest.approx(line_rate_pps(256))

    def test_imix_mean(self):
        # 7*64 + 4*594 + 1*1518 over 12 packets.
        expected = (7 * 64 + 4 * 594 + 1 * 1518) / 12
        assert IMIX.mean_size == pytest.approx(expected)

    def test_datacenter_mean_near_cited_850b(self):
        # The paper cites an ~850 B average for data centres (Sec. 5.2).
        assert 700 < DATACENTER.mean_size < 900

    def test_probabilities_sum_to_one(self):
        for profile in PROFILES.values():
            assert profile.probabilities.sum() == pytest.approx(1.0)

    def test_sample_respects_support(self):
        rng = np.random.default_rng(0)
        draws = IMIX.sample(rng, 1000)
        assert set(np.unique(draws)) <= set(IMIX.sizes)

    def test_sample_frequencies_match_weights(self):
        rng = np.random.default_rng(1)
        draws = IMIX.sample(rng, 20_000)
        frac_64 = float(np.mean(draws == 64))
        assert frac_64 == pytest.approx(7 / 12, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeProfile("bad", sizes=(64,), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            SizeProfile("bad", sizes=(), weights=())
        with pytest.raises(ValueError):
            SizeProfile("bad", sizes=(32,), weights=(1.0,))
        with pytest.raises(ValueError):
            SizeProfile("bad", sizes=(64,), weights=(0.0,))

    def test_line_rate_below_min_frame_rate(self):
        # A mix's pps saturation sits between its extremes'.
        assert line_rate_pps(1518) < IMIX.line_rate_pps() < line_rate_pps(64)


class TestFlowProfile:
    def test_single_flow(self):
        rng = np.random.default_rng(0)
        assert set(SINGLE_FLOW.sample(rng, 100)) == {0}

    def test_uniform_flows_cover_range(self):
        rng = np.random.default_rng(0)
        profile = FlowProfile("u", flow_count=8)
        draws = profile.sample(rng, 5000)
        assert set(np.unique(draws)) == set(range(8))

    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(0)
        profile = FlowProfile("z", flow_count=100, zipf_alpha=1.2)
        draws = profile.sample(rng, 20_000)
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > 5 * counts[50]

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowProfile("bad", flow_count=0)
        with pytest.raises(ValueError):
            FlowProfile("bad", flow_count=1, zipf_alpha=-1)


class TestGeneratorIntegration:
    def test_paced_source_with_size_profile(self, sim):
        from repro.traffic.generator import PacedSource

        class Recorder(PacedSource):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.emitted = []

            def _emit(self, batch):
                self.emitted.extend(batch)

        src = Recorder(sim, rate_pps=10e6, frame_size=64, size_profile=IMIX)
        src.start(0.0)
        sim.run_until(100_000)
        sizes = {p.size for p in src.emitted}
        assert sizes <= set(IMIX.sizes)
        assert len(sizes) > 1

    def test_paced_source_with_flow_profile(self, sim):
        from repro.traffic.generator import PacedSource

        class Recorder(PacedSource):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.emitted = []

            def _emit(self, batch):
                self.emitted.extend(batch)

        profile = FlowProfile("u", flow_count=16)
        src = Recorder(sim, rate_pps=10e6, frame_size=64, flow_profile=profile)
        src.start(0.0)
        sim.run_until(100_000)
        assert len({p.flow_id for p in src.emitted}) > 4
