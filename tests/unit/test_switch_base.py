"""Unit tests for the switch framework (base class mechanisms)."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.cpu.cores import Core
from repro.nic.port import NicPort
from repro.switches.base import SoftwareSwitch
from repro.switches.params import SwitchParams
from repro.vif.vhost_user import make_vhost_user_interface


def make_params(**overrides):
    return SwitchParams(name="testsw", display_name="TestSW", **overrides)


def wire_p2p(sim, params):
    """A minimal p2p testbed around a bare SoftwareSwitch."""
    switch = SoftwareSwitch(sim, params)
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    gen0.connect(sut0)
    gen1.connect(sut1)
    a0 = switch.attach_phy(sut0)
    a1 = switch.attach_phy(sut1)
    switch.add_path(a0, a1)
    core = Core(sim, "sut")
    switch.bind_core(core)
    return switch, gen0, gen1, sut0, core


def test_attach_phy_applies_ring_provisioning(sim):
    params = make_params(nic_rx_slots=4096, nic_tx_slots=2048)
    switch = SoftwareSwitch(sim, params)
    port = NicPort(sim, "p")
    switch.attach_phy(port)
    assert port.rx_ring.capacity == 4096
    assert port.tx_slots == 2048


def test_attach_phy_sets_moderation_for_interrupt_switches(sim):
    params = make_params(interrupt_driven=True, rx_moderation_ns=30_000.0)
    switch = SoftwareSwitch(sim, params)
    port = NicPort(sim, "p")
    switch.attach_phy(port)
    assert port.rx_moderation_ns == 30_000.0


def test_forwarding_end_to_end(sim):
    switch, gen0, gen1, _, _ = wire_p2p(sim, make_params(jitter_sigma=0.0))
    received = []
    gen1.sink = received.extend
    gen0.send_batch([Packet() for _ in range(10)])
    sim.run_until(1_000_000)
    assert len(received) == 10
    assert switch.total_forwarded == 10
    assert all(p.hops == 1 for p in received)


def test_processing_delays_output(sim):
    # per-packet cost of 2600 cycles == 1 us at 2.6 GHz
    params = make_params(proc=type(make_params().proc)(per_batch=0, per_packet=2600.0), jitter_sigma=0.0)
    switch, gen0, gen1, _, _ = wire_p2p(sim, params)
    arrival = []
    gen1.sink = lambda pkts: arrival.append(sim.now)
    gen0.send_batch([Packet()])
    sim.run_until(1_000_000)
    # wire + pcie + >=1us processing + wire
    assert arrival[0] > 1_000.0


def test_bidirectional_paths_detected(sim):
    switch = SoftwareSwitch(sim, make_params())
    v1 = switch.attach_vif(make_vhost_user_interface("v1"))
    v2 = switch.attach_vif(make_vhost_user_interface("v2"))
    forward = switch.add_path(v1, v2)
    assert not forward.bidir_vif
    reverse = switch.add_path(v2, v1)
    assert forward.bidir_vif and reverse.bidir_vif


def test_unrelated_paths_not_marked_bidirectional(sim):
    switch = SoftwareSwitch(sim, make_params())
    v1 = switch.attach_vif(make_vhost_user_interface("v1"))
    v2 = switch.attach_vif(make_vhost_user_interface("v2"))
    v3 = switch.attach_vif(make_vhost_user_interface("v3"))
    p1 = switch.add_path(v1, v2)
    p2 = switch.add_path(v2, v3)
    assert not p1.bidir_vif and not p2.bidir_vif


def test_jitter_sigma_adds_vif_component(sim):
    params = make_params(jitter_sigma=0.1, jitter_sigma_vif=0.4)
    switch = SoftwareSwitch(sim, params)
    phy = switch.attach_phy(NicPort(sim, "p"))
    vif = switch.attach_vif(make_vhost_user_interface("v"))
    phy2 = switch.attach_phy(NicPort(sim, "p2"))
    vif_path = switch.add_path(phy, vif)
    phy_path = switch.add_path(phy2, phy)
    assert vif_path.jitter.sigma == pytest.approx(0.5)
    assert phy_path.jitter.sigma == pytest.approx(0.1)


def test_vif_jitter_period_override(sim):
    params = make_params(jitter_period_ns=50_000.0, jitter_period_vif_ns=400_000.0)
    switch = SoftwareSwitch(sim, params)
    phy = switch.attach_phy(NicPort(sim, "p"))
    vif = switch.attach_vif(make_vhost_user_interface("v"))
    assert switch.add_path(phy, vif).jitter.period_ns == 400_000.0
    assert switch.add_path(phy, phy).jitter.period_ns == 50_000.0


def test_batch_wait_holds_partial_batches(sim):
    params = make_params(batch_wait_ns=20_000.0, batch_size=32, jitter_sigma=0.0)
    switch, gen0, gen1, _, _ = wire_p2p(sim, params)
    arrivals = []
    gen1.sink = lambda pkts: arrivals.append((sim.now, len(pkts)))
    gen0.send_batch([Packet() for _ in range(4)])
    sim.run_until(500_000)
    assert len(arrivals) == 1
    # Released only after the batch-wait timeout expired.
    assert arrivals[0][0] >= 20_000.0


def test_batch_wait_skipped_for_full_batches(sim):
    params = make_params(batch_wait_ns=20_000.0, batch_size=8, jitter_sigma=0.0)
    switch, gen0, gen1, _, _ = wire_p2p(sim, params)
    arrivals = []
    gen1.sink = lambda pkts: arrivals.append(sim.now)
    gen0.send_batch([Packet() for _ in range(8)])
    sim.run_until(500_000)
    assert arrivals and arrivals[0] < 10_000.0


def test_tx_drain_buffers_vif_output(sim):
    params = make_params(tx_drain_ns=30_000.0, tx_drain_burst=16, jitter_sigma=0.0)
    switch = SoftwareSwitch(sim, params)
    gen = NicPort(sim, "g")
    sut = NicPort(sim, "s")
    gen.connect(sut)
    vif = make_vhost_user_interface("v")
    phy = switch.attach_phy(sut)
    virt = switch.attach_vif(vif)
    switch.add_path(phy, virt)
    switch.bind_core(Core(sim, "sut"))
    gen.send_batch([Packet() for _ in range(4)])
    sim.run_until(15_000)
    assert len(vif.to_guest) == 0  # buffered below drain burst
    sim.run_until(200_000)
    assert len(vif.to_guest) == 4  # flushed on timeout


def test_tx_drain_flushes_on_burst(sim):
    params = make_params(tx_drain_ns=1_000_000.0, tx_drain_burst=8, batch_size=8, jitter_sigma=0.0)
    switch = SoftwareSwitch(sim, params)
    gen = NicPort(sim, "g")
    sut = NicPort(sim, "s")
    gen.connect(sut)
    vif = make_vhost_user_interface("v")
    switch.add_path(switch.attach_phy(sut), switch.attach_vif(vif))
    switch.bind_core(Core(sim, "sut"))
    gen.send_batch([Packet() for _ in range(8)])
    sim.run_until(100_000)
    assert len(vif.to_guest) == 8  # burst reached, no timeout needed


def test_tx_drain_does_not_apply_to_phy_output(sim):
    params = make_params(tx_drain_ns=1_000_000.0, tx_drain_burst=32, jitter_sigma=0.0)
    switch, gen0, gen1, _, _ = wire_p2p(sim, params)
    received = []
    gen1.sink = received.extend
    gen0.send_batch([Packet()])
    sim.run_until(100_000)
    assert len(received) == 1  # NIC outputs are never drain-buffered


def test_pipeline_staging_adds_one_breath(sim):
    params = make_params(pipeline=True, jitter_sigma=0.0)
    switch, gen0, gen1, _, _ = wire_p2p(sim, params)
    received = []
    gen1.sink = received.extend
    gen0.send_batch([Packet() for _ in range(4)])
    sim.run_until(1_000_000)
    assert len(received) == 4
    assert switch.paths[0].forwarded == 4


def test_overload_factor_kicks_in_at_threshold(sim):
    params = make_params(thrash_attachments=3, thrash_factor=4.0)
    switch = SoftwareSwitch(sim, params)
    switch.attach_phy(NicPort(sim, "p1"))
    switch.attach_phy(NicPort(sim, "p2"))
    assert switch._overload_factor() == 1.0
    switch.attach_vif(make_vhost_user_interface("v"))
    assert switch._overload_factor() == 4.0


def test_interrupt_switch_wakes_on_rx(sim):
    params = make_params(interrupt_driven=True, interrupt_latency_ns=2_000.0, jitter_sigma=0.0)
    switch, gen0, gen1, sut0, core = wire_p2p(sim, params)
    received = []
    gen1.sink = received.extend
    sim.run_until(200_000)
    assert core.sleeping
    gen0.send_batch([Packet()])
    sim.run_until(400_000)
    assert len(received) == 1  # the wake actually happened


def test_forwarded_counters_per_path(sim):
    switch, gen0, gen1, _, _ = wire_p2p(sim, make_params(jitter_sigma=0.0))
    gen1.sink = lambda pkts: None
    gen0.send_batch([Packet() for _ in range(6)])
    sim.run_until(100_000)
    assert switch.paths[0].forwarded == 6
