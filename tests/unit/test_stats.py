"""Unit tests for statistics accumulators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.stats import LatencySample, RateMeter, RunningStats
from repro.core.units import line_rate_pps


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_matches_numpy(self):
        values = [3.0, 1.5, 4.25, -2.0, 9.0, 0.0]
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values, ddof=1))
        assert stats.min == min(values)
        assert stats.max == max(values)


class TestLatencySample:
    def test_mean_std_in_microseconds(self):
        sample = LatencySample()
        for rtt_ns in (1000.0, 3000.0, 5000.0):
            sample.add(rtt_ns)
        assert sample.mean_us == pytest.approx(3.0)
        assert sample.std_us == pytest.approx(2.0)
        assert sample.min_us == pytest.approx(1.0)
        assert sample.max_us == pytest.approx(5.0)

    def test_percentiles_match_numpy(self):
        sample = LatencySample()
        values = [float(v) for v in range(1, 101)]
        for value in values:
            sample.add(value)
        for q in (0, 25, 50, 90, 99, 100):
            assert sample.percentile_us(q) == pytest.approx(
                np.percentile(values, q) / 1e3
            )

    def test_percentile_bounds(self):
        sample = LatencySample()
        sample.add(1.0)
        with pytest.raises(ValueError):
            sample.percentile_us(101)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(LatencySample().percentile_us(50))

    def test_len(self):
        sample = LatencySample()
        sample.add(1.0)
        sample.add(2.0)
        assert len(sample) == 2


class TestRateMeter:
    def test_warmup_packets_excluded(self):
        meter = RateMeter(frame_size_hint=64)
        meter.open_window(1000.0)
        meter.close_window(2000.0)
        meter.record(500.0, 64)    # warm-up
        meter.record(1500.0, 64)   # measured
        meter.record(2500.0, 64)   # after close
        assert meter.packets == 1
        assert meter.warmup_packets == 2

    def test_pps_and_gbps(self):
        meter = RateMeter(frame_size_hint=64)
        meter.open_window(0.0)
        meter.close_window(1_000_000.0)  # 1 ms
        for i in range(1000):
            meter.record(i * 1000.0, 64)
        assert meter.pps == pytest.approx(1e6)
        assert meter.gbps() == pytest.approx(1e6 * 84 * 8 / 1e9)

    def test_line_rate_normalises_to_10gbps(self):
        meter = RateMeter(frame_size_hint=64)
        meter.open_window(0.0)
        duration = 1_000_000.0
        meter.close_window(duration)
        n = int(line_rate_pps(64) * duration / 1e9)
        for i in range(n):
            meter.record(i * duration / n, 64)
        assert meter.gbps() == pytest.approx(10.0, rel=1e-3)

    def test_gbps_requires_frame_size(self):
        meter = RateMeter()
        meter.open_window(0.0)
        meter.close_window(1000.0)
        with pytest.raises(ValueError):
            meter.gbps()

    def test_no_window_means_nan(self):
        meter = RateMeter(frame_size_hint=64)
        assert math.isnan(meter.pps)
        assert math.isnan(meter.duration_ns)
