"""Unit tests for the measurement runner's result records."""

from __future__ import annotations

import pytest

from repro.core.stats import LatencySample
from repro.measure.runner import RunResult


def test_aggregate_gbps_sums_directions():
    result = RunResult(
        scenario="p2p",
        switch="vpp",
        frame_size=64,
        bidirectional=True,
        duration_ns=1e6,
        per_direction_gbps=[5.0, 4.5],
        per_direction_mpps=[7.4, 6.7],
    )
    assert result.gbps == pytest.approx(9.5)
    assert result.mpps == pytest.approx(14.1)


def test_unidirectional_single_entry():
    result = RunResult(
        scenario="p2v",
        switch="vale",
        frame_size=256,
        bidirectional=False,
        duration_ns=1e6,
        per_direction_gbps=[9.9],
        per_direction_mpps=[4.4],
    )
    assert result.gbps == pytest.approx(9.9)


def test_empty_directions_zero():
    result = RunResult(
        scenario="x", switch="y", frame_size=64, bidirectional=False, duration_ns=1.0
    )
    assert result.gbps == 0.0
    assert result.mpps == 0.0


def test_latency_field_defaults_none():
    result = RunResult(
        scenario="x", switch="y", frame_size=64, bidirectional=False, duration_ns=1.0
    )
    assert result.latency is None


def test_drive_rejects_negative_warmup_with_specific_message():
    from repro.measure.runner import drive

    with pytest.raises(ValueError, match="warmup_ns must be non-negative"):
        drive(object(), warmup_ns=-1.0, measure_ns=1e6)


def test_drive_rejects_nonpositive_measure_with_specific_message():
    from repro.measure.runner import drive

    with pytest.raises(ValueError, match="measure_ns must be positive"):
        drive(object(), warmup_ns=0.0, measure_ns=0.0)
    with pytest.raises(ValueError, match="measure_ns must be positive"):
        drive(object(), warmup_ns=1e5, measure_ns=-5.0)


def test_drive_accepts_zero_warmup():
    """warmup_ns=0 is a legal window (measure from t=0)."""
    from repro.measure.runner import drive
    from repro.scenarios import p2p

    result = drive(p2p.build("bess"), warmup_ns=0.0, measure_ns=200_000.0)
    assert result.gbps >= 0.0


def test_latency_sample_attachable():
    sample = LatencySample()
    sample.add(5_000.0)
    result = RunResult(
        scenario="x", switch="y", frame_size=64, bidirectional=False,
        duration_ns=1.0, latency=sample,
    )
    assert result.latency.mean_us == pytest.approx(5.0)
