"""Unit tests for the CPU core model."""

from __future__ import annotations

import pytest

from repro.cpu.cores import Core


class FixedWorkTask:
    """Consumes a fixed number of cycles for a limited number of polls."""

    def __init__(self, cycles, times):
        self.cycles = cycles
        self.remaining = times
        self.polls = 0

    def poll(self, core):
        self.polls += 1
        if self.remaining <= 0:
            return 0.0
        self.remaining -= 1
        return self.cycles


def test_busy_time_accumulates(sim):
    core = Core(sim, "c0", freq_hz=1e9)  # 1 cycle == 1 ns
    task = FixedWorkTask(cycles=100, times=3)
    core.attach(task)
    core.start()
    sim.run_until(10_000)
    assert core.busy_ns == pytest.approx(300.0)


def test_poll_mode_core_keeps_polling_when_idle(sim):
    core = Core(sim, "c0", freq_hz=1e9, idle_loop_cycles=50)
    task = FixedWorkTask(cycles=0, times=0)
    core.attach(task)
    core.start()
    sim.run_until(1_000)
    # ~1000ns / 50ns per idle loop
    assert task.polls >= 15


def test_interrupt_core_sleeps_after_idle_streak(sim):
    core = Core(sim, "c0", freq_hz=1e9, interrupt_driven=True, idle_polls_before_sleep=4)
    task = FixedWorkTask(cycles=0, times=0)
    core.attach(task)
    core.start()
    sim.run_until(100_000)
    assert core.sleeping
    polls_when_asleep = task.polls
    sim.run_until(200_000)
    assert task.polls == polls_when_asleep  # no polling while asleep


def test_wake_resumes_after_interrupt_latency(sim):
    core = Core(
        sim, "c0", freq_hz=1e9, interrupt_driven=True,
        idle_polls_before_sleep=2, interrupt_latency_ns=500.0,
    )
    task = FixedWorkTask(cycles=0, times=0)
    core.attach(task)
    core.start()
    sim.run_until(10_000)
    assert core.sleeping
    polls_before = task.polls
    core.wake()
    assert not core.sleeping
    sim.run_until(10_000 + 499)
    assert task.polls == polls_before  # latency not yet elapsed
    sim.run_until(10_000 + 50_000)
    assert task.polls > polls_before


def test_wake_is_noop_when_awake(sim):
    core = Core(sim, "c0", interrupt_driven=True)
    core.attach(FixedWorkTask(cycles=10, times=1000))
    core.start()
    sim.run_until(100)
    pending_before = sim.pending()
    core.wake()  # not sleeping: should not schedule anything
    assert sim.pending() == pending_before


def test_round_robin_shares_one_core(sim):
    core = Core(sim, "c0", freq_hz=1e9)
    a = FixedWorkTask(cycles=100, times=10**9)
    b = FixedWorkTask(cycles=100, times=10**9)
    core.attach(a)
    core.attach(b)
    core.start()
    sim.run_until(100_000)
    # Both tasks run, each gets ~half the iterations' service time.
    assert a.polls == b.polls
    assert a.polls == pytest.approx(100_000 / 200, rel=0.05)


def test_utilization(sim):
    core = Core(sim, "c0", freq_hz=1e9)
    core.attach(FixedWorkTask(cycles=100, times=5))
    core.start()
    sim.run_until(1_000)
    assert core.utilization(1_000) == pytest.approx(0.5)
    assert core.utilization(0) == 0.0


def test_start_is_idempotent(sim):
    core = Core(sim, "c0")
    task = FixedWorkTask(cycles=0, times=0)
    core.attach(task)
    core.start()
    core.start()
    sim.run_until(100)
    # A double start must not run two interleaved poll loops.
    assert sim.events_executed <= 100 / (80 / 2.6) + 2


def test_cycles_to_ns_uses_core_frequency(sim):
    core = Core(sim, "c0", freq_hz=2.6e9)
    assert core.cycles_to_ns(2600) == pytest.approx(1000.0)
