"""Unit tests for the chain turbo (tier-1 exact fast-forward).

The heavyweight bit-identity sweep lives in ``tools/warp_check.py`` and
the property suite; these tests pin the engage/decline contract and the
report plumbing on small windows.
"""

from __future__ import annotations

import pytest

from repro.core.turbo import turbo_drive
from repro.core.warp import state_fingerprint
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v

FAST = dict(warmup_ns=2e5, measure_ns=3e6)

#: (builder, build kwargs, sub-capacity rate) for every turbo-eligible
#: shape beyond clean unidirectional p2p (which the replay warp takes).
MULTI_HOP = [
    (p2p.build, {"bidirectional": True}, 2_000_000.0),
    (p2v.build, {}, 1_000_000.0),
    (v2v.build, {}, 800_000.0),
    (loopback.build, {"n_vnfs": 2}, 500_000.0),
]


@pytest.mark.parametrize("build,kwargs,rate", MULTI_HOP)
def test_turbo_engages_bit_identically_on_multi_hop_shapes(build, kwargs, rate):
    bidir = kwargs.get("bidirectional", False)
    tb_off = build("vpp", frame_size=64, rate_pps=rate, seed=1, **kwargs)
    r_off = drive(tb_off, bidirectional=bidir, warp=False, **FAST)
    tb_on = build("vpp", frame_size=64, rate_pps=rate, seed=1, **kwargs)
    r_on = drive(tb_on, bidirectional=bidir, warp=True, **FAST)
    assert r_on.warp is not None and r_on.warp.engaged
    assert r_on.warp.mode == "turbo"
    assert r_on.warp.describe().startswith("engaged[turbo]:")
    assert state_fingerprint(tb_off) == state_fingerprint(tb_on)
    assert [repr(v) for v in r_off.per_direction_gbps] == [
        repr(v) for v in r_on.per_direction_gbps
    ]
    assert r_off.events == r_on.events


def test_turbo_skips_simulated_time_in_bulk():
    tb = p2p.build("vpp", frame_size=64, rate_pps=1e6, seed=1, bidirectional=True)
    result = drive(tb, bidirectional=True, warp=True, **FAST)
    report = result.warp
    assert report.engaged and report.warped_ns > 0
    assert report.events_replayed > 0
    assert report.verify_ns > 0  # shadow verification actually ran


def test_declines_on_pipeline_switch():
    tb = p2v.build("snabb", frame_size=64, seed=1)
    report = turbo_drive(tb, 1e6)
    assert not report.engaged
    assert report.reason == "pipeline-switch"
    assert report.mode == "turbo"


def test_declines_on_interrupt_driven_switch():
    tb = v2v.build("vale", frame_size=64, seed=1)
    report = turbo_drive(tb, 1e6)
    assert not report.engaged
    assert report.reason == "interrupt-driven"


def test_declines_under_watchdog():
    tb = p2p.build("vpp", frame_size=64, seed=1)
    report = turbo_drive(tb, 1e6, watchdog_active=True)
    assert not report.engaged
    assert report.reason == "watchdog-active"


def test_declines_on_unknown_scenario():
    tb = p2p.build("vpp", frame_size=64, seed=1)
    tb.scenario = "weird-shape"
    report = turbo_drive(tb, 1e6)
    assert not report.engaged
    assert report.reason == "scenario:weird-shape"


def test_resilience_between_fault_warp_is_bit_identical():
    """Timeline, recovery metrics and end state match event-exact runs."""
    from repro.faults.plan import FaultEvent, FaultPlan
    from repro.measure.resilience import measure_resilience

    def run(warp):
        plan = FaultPlan.of(
            FaultEvent.from_dict(
                {"kind": "nic-link-flap", "target": "sut-nic.p1",
                 "at_ns": 1.2e6, "duration_ns": 4e5}
            )
        )
        return measure_resilience(
            p2p.build, "vpp", 64, plan,
            warmup_ns=6e5, measure_ns=5e6, rate_pps=1e6, warp=warp,
        )

    res_off, rep_off, _ = run(False)
    res_on, rep_on, _ = run(True)
    assert res_on.warp is not None and res_on.warp.engaged
    assert rep_off.to_dict() == rep_on.to_dict()
    assert repr(res_off.gbps) == repr(res_on.gbps)
    assert res_off.events == res_on.events
