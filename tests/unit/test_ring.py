"""Unit tests for descriptor rings."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.core.ring import Ring


def _pkts(n):
    return [Packet() for _ in range(n)]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Ring(0)


def test_fifo_order():
    ring = Ring(10)
    packets = _pkts(5)
    ring.push_batch(packets)
    assert ring.pop_batch(5) == packets


def test_drop_on_overflow():
    ring = Ring(3)
    accepted = ring.push_batch(_pkts(5))
    assert accepted == 3
    assert ring.dropped == 2
    assert len(ring) == 3


def test_enqueued_counts_only_accepted():
    ring = Ring(2)
    ring.push_batch(_pkts(5))
    assert ring.enqueued == 2


def test_pop_more_than_available():
    ring = Ring(10)
    ring.push_batch(_pkts(3))
    assert len(ring.pop_batch(100)) == 3
    assert len(ring) == 0


def test_pop_from_empty():
    assert Ring(4).pop_batch(8) == []


def test_free_slots():
    ring = Ring(4)
    ring.push(Packet())
    assert ring.free == 3


def test_on_push_fires_only_on_empty_to_nonempty():
    wakes = []
    ring = Ring(8, on_push=lambda: wakes.append(True))
    ring.push(Packet())      # empty -> nonempty: interrupt
    ring.push(Packet())      # already nonempty: coalesced
    assert len(wakes) == 1
    ring.pop_batch(2)
    ring.push(Packet())      # empty again: new interrupt
    assert len(wakes) == 2


def test_on_push_not_fired_for_dropped_packet():
    wakes = []
    ring = Ring(1, on_push=lambda: wakes.append(True))
    ring.push(Packet())
    ring.push(Packet())  # dropped
    assert len(wakes) == 1


def test_peek_len_does_not_dequeue():
    ring = Ring(4)
    ring.push_batch(_pkts(2))
    assert ring.peek_len() == 2
    assert len(ring) == 2


def test_clear():
    ring = Ring(4)
    ring.push_batch(_pkts(4))
    ring.clear()
    assert len(ring) == 0
    # counters survive a clear (they are cumulative statistics)
    assert ring.enqueued == 4


def test_capacity_enforced_after_drain():
    ring = Ring(2)
    ring.push_batch(_pkts(2))
    ring.pop_batch(2)
    assert ring.push(Packet())
    assert ring.dropped == 0


# -- flyweight blocks: frame-granular capacity, truncation, splitting -------


def test_block_occupancy_counts_frames_not_objects():
    from repro.core.packet import make_block

    ring = Ring(64)
    ring.push(make_block(32, 64, 0.0))
    assert len(ring) == 32
    assert ring.free == 32


def test_overflowing_block_is_truncated_at_the_free_boundary():
    from repro.core.packet import make_block

    ring = Ring(10)
    block = make_block(16, 64, 0.0)
    assert ring.push(block)
    assert len(ring) == 10
    assert ring.dropped == 6
    assert ring.enqueued == 10
    assert block.count == 10


def test_block_into_full_ring_drops_every_frame():
    from repro.core.packet import make_block

    ring = Ring(4)
    ring.push(make_block(4, 64, 0.0))
    assert not ring.push(make_block(8, 64, 0.0))
    assert ring.dropped == 8


def test_pop_batch_splits_a_straddling_block():
    from repro.core.packet import make_block

    ring = Ring(64)
    block = make_block(8, 64, 0.0)
    seq0 = block.seq0
    ring.push(block)
    front = ring.pop_batch(3)
    assert len(front) == 1
    assert (front[0].count, front[0].seq0) == (3, seq0)
    assert len(ring) == 5
    rest = ring.pop_batch(100)
    assert (rest[0].count, rest[0].seq0) == (5, seq0 + 3)
    assert len(ring) == 0
