"""Physical NIC substrate: ports, wires, timestamping."""

from repro.nic.port import DEFAULT_RX_SLOTS, DEFAULT_TX_SLOTS, PCIE_LATENCY_NS, NicPort, dual_port_nic
from repro.nic.timestamp import HardwareTimestamper, SoftwareTimestamper

__all__ = [
    "DEFAULT_RX_SLOTS",
    "DEFAULT_TX_SLOTS",
    "HardwareTimestamper",
    "NicPort",
    "PCIE_LATENCY_NS",
    "SoftwareTimestamper",
    "dual_port_nic",
]
