"""Timestamping engines.

The paper measures latency two ways (Sec. 5.3):

* **hardware timestamping** -- the Intel 82599 stamps PTP frames in the
  MAC, giving sub-microsecond precision; usable only on physical ports
  (p2p and loopback latency tests);
* **software timestamping** -- MoonGen stamps in software inside the VM
  for the v2v test; "less accurate than hardware time-stamping" but
  comparable across SUTs under the same setup.

Both are modelled here so the measurement error structure (fixed offset +
jitter for software stamps) is explicit and testable.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import Packet

#: 82599 PTP timestamp resolution is tens of nanoseconds; negligible at
#: the microsecond RTTs being measured, but modelled for completeness.
HW_TIMESTAMP_JITTER_NS = 25.0

#: Software timestamps ride on rdtsc reads plus the generator's own run
#: loop; MoonGen documents microsecond-scale accuracy for this mode.
SW_TIMESTAMP_OVERHEAD_NS = 1_300.0
SW_TIMESTAMP_JITTER_NS = 1_400.0


class HardwareTimestamper:
    """NIC MAC-level PTP timestamping (stamps applied at wire time)."""

    def __init__(self, rng: np.random.Generator, jitter_ns: float = HW_TIMESTAMP_JITTER_NS):
        self._rng = rng
        self.jitter_ns = jitter_ns

    def stamp_tx(self, packet: Packet, wire_start_ns: float) -> None:
        packet.tx_timestamp = wire_start_ns + self._noise()

    def stamp_rx(self, packet: Packet, wire_arrival_ns: float) -> None:
        packet.rx_timestamp = wire_arrival_ns + self._noise()

    def _noise(self) -> float:
        return float(self._rng.uniform(0.0, self.jitter_ns))


class SoftwareTimestamper:
    """MoonGen's software timestamping mode (v2v latency test).

    Stamps are taken by the generator thread, so they include a fixed
    per-stamp overhead plus scheduling jitter; this inflates both the mean
    and the spread, exactly the caveat the paper raises about the v2v
    numbers.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        overhead_ns: float = SW_TIMESTAMP_OVERHEAD_NS,
        jitter_ns: float = SW_TIMESTAMP_JITTER_NS,
    ) -> None:
        self._rng = rng
        self.overhead_ns = overhead_ns
        self.jitter_ns = jitter_ns

    def stamp_tx(self, packet: Packet, now_ns: float) -> None:
        # TX stamp is taken *before* the frame is handed to the driver, so
        # the overhead lengthens the measured RTT.
        packet.tx_timestamp = now_ns - self._noise()

    def stamp_rx(self, packet: Packet, now_ns: float) -> None:
        packet.rx_timestamp = now_ns + self._noise()

    def _noise(self) -> float:
        return self.overhead_ns + float(self._rng.exponential(self.jitter_ns))
