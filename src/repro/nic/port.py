"""Physical NIC ports and point-to-point wires.

Models the testbed's Intel 82599 dual-port 10 GbE NICs: a port serialises
frames onto the wire at line rate (framing overhead included, so 64 B
frames peak at 14.88 Mpps), keeps a bounded transmit backlog (the tx
descriptor ring), and lands received frames in a bounded rx descriptor
ring that the attached data plane drains by polling (DPDK PMD) or upon
interrupt (netmap).

The 10 Gbps wire is "the theoretical bottleneck" for every scenario that
touches a physical NIC (Sec. 5.1) -- it is enforced here and nowhere else.

Traffic arrives as a mix of exact :class:`Packet` objects (probes) and
:class:`PacketBlock` flyweights (bulk frames).  Serialisation walks every
*frame* either way -- the per-frame backlog check and the deterministic
driver-hiccup hash are frame-level semantics -- but the block path hoists
everything loop-invariant (wire time, backlog bound, the hash prefix over
the port name and the block's uniform fields) so the inner loop is a few
integer operations per frame instead of an object allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.packet import Packet, PacketBlock, release_block, select_flows
from repro.core.ring import Ring
from repro.core.units import LINE_RATE_BPS, wire_time_ns

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: Default descriptor ring sizes (DPDK ixgbe defaults).  FastClick's rings
#: are enlarged to 4096 by the paper's tuning (Table 2).
DEFAULT_RX_SLOTS = 512
DEFAULT_TX_SLOTS = 512

#: Fixed per-traversal latency of the path between the wire and host
#: memory: descriptor write-back moderation, DMA completion, PCIe round
#: trip.  Calibrated so an empty DPDK forwarder floor lands at the 4-5 us
#: RTTs of Table 3.
PCIE_LATENCY_NS = 2_400.0

#: Probability of a sporadic driver-level drop per transmitted frame
#: (mbuf allocation hiccup, descriptor race).  Real rigs see roughly one
#: such drop per multi-second RFC 2544 trial; our millisecond windows
#: carry ~10^4 frames, so the per-frame probability is scaled to keep
#: the *per-trial* drop count realistic (~O(1)).  This is the
#: "non-deterministic packet loss caused at the driver level" that makes
#: strict NDR searches unreliable (paper footnote 3); its effect on
#: throughput measurements is a negligible ~0.01%.
DRIVER_DROP_PROB = 1e-4

# FNV-1a over stable per-run quantities: the drop decision replays
# bit-identically regardless of what ran earlier in the process.
_FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211
_MASK64 = 0xFFFFFFFFFFFFFFFF
_DENOM53 = float(1 << 53)

_name_hashes: dict[str, int] = {}


def _name_hash(port_name: str) -> int:
    """FNV-1a fold of the port name (cached; the loop-invariant prefix)."""
    value = _name_hashes.get(port_name)
    if value is None:
        value = _FNV_OFFSET
        for byte in port_name.encode():
            value = ((value ^ byte) * _FNV_PRIME) & _MASK64
        _name_hashes[port_name] = value
    return value


def _hiccup_base(name_hash: int, t_created_int: int, size: int, flow_id: int, hops: int) -> int:
    """Fold the per-frame-invariant fields; only the burst index remains."""
    value = ((name_hash ^ (t_created_int & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
    value = ((value ^ (size & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
    value = ((value ^ (flow_id & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
    return ((value ^ (hops & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64


def _driver_hiccup(port_name: str, packet: Packet, index: int, prob: float) -> bool:
    """Deterministic pseudo-random drop decision (reproducible runs).

    Hashes stable per-run quantities (port name, creation time, position
    in the burst) rather than any global counter, so results replay
    bit-identically regardless of what ran earlier in the process.
    """
    if prob <= 0.0:
        return False
    base = _hiccup_base(
        _name_hash(port_name), int(packet.t_created), packet.size, packet.flow_id, packet.hops
    )
    value = ((base ^ (index & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
    return (value >> 11) / _DENOM53 < prob


class NicPort:
    """One port of a physical NIC.

    A port is connected to exactly one peer port by :meth:`connect`
    (back-to-back cabling, as in the testbed where each NUMA node's NIC is
    "directly connected to the other NUMA node's NIC", Fig. 3).

    Receive side: frames arriving from the wire are pushed into
    ``rx_ring`` after the PCIe/DMA latency; if the ring is full they are
    dropped (counted in ``rx_ring.dropped``).  A ``sink`` callback may
    replace the ring for pure monitors (MoonGen RX) that count frames at
    wire arrival.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        rate_bps: int = LINE_RATE_BPS,
        rx_slots: int = DEFAULT_RX_SLOTS,
        tx_slots: int = DEFAULT_TX_SLOTS,
        timestamp_tx: bool = False,
        timestamp_rx: bool = False,
        pcie_latency_ns: float = PCIE_LATENCY_NS,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.rx_ring = Ring(rx_slots, name=f"{name}.rx")
        self.tx_slots = tx_slots
        self.timestamp_tx = timestamp_tx
        self.timestamp_rx = timestamp_rx
        self.pcie_latency_ns = pcie_latency_ns
        self.sink: Callable[[list[Packet | PacketBlock]], None] | None = None
        self.peer: "NicPort | None" = None
        #: Interrupt moderation (ixgbe ITR): when set, received frames are
        #: released to the host rx ring only on period boundaries, adding a
        #: mean latency of half the period.  Poll-mode drivers leave this
        #: None; netmap's interrupt-driven path sets it (VALE).
        self.rx_moderation_ns: float | None = None

        self._tx_busy_until_ns = 0.0
        self._name_hash = _name_hash(name)
        self._pcie_stall_base: float | None = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_dropped = 0
        self.driver_drops = 0
        self.driver_drop_prob = DRIVER_DROP_PROB
        self.rx_packets = 0
        #: Optional per-flow accounting (:class:`repro.obs.flowstats.FlowStats`);
        #: None unless flow telemetry is enabled -- the un-accounted cost is
        #: one attribute load per send_batch call.
        self.flowstats = None

    def connect(self, peer: "NicPort") -> None:
        """Cable this port to ``peer`` (full duplex, both directions)."""
        self.peer = peer
        peer.peer = self

    def set_hiccup_salt(self, salt: int) -> None:
        """Perturb the driver-hiccup hash for a soundness trial.

        XORs ``salt`` into the port-name prefix of the FNV fold, so a
        trial replica sees a different (but equally deterministic)
        realisation of the sporadic driver drops.  Salt 0 restores the
        base run's hash exactly.
        """
        self._name_hash = _name_hash(self.name) ^ (salt & _MASK64)

    def send_batch(self, items: Sequence[Packet | PacketBlock]) -> int:
        """Serialise the batch's frames onto the wire towards the peer.

        Returns the number of frames actually transmitted; frames that
        would exceed the tx descriptor backlog are dropped (no
        backpressure in a poll-mode data plane).
        """
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        now = self.sim.now
        busy = max(now, self._tx_busy_until_ns)
        rate = self.rate_bps
        prob = self.driver_drop_prob
        name_hash = self._name_hash
        tx_slots = self.tx_slots
        flowstats = self.flowstats
        arrivals: list[tuple[Packet | PacketBlock, float]] = []
        sent_frames = 0
        sent_bytes = 0
        index = 0  # frame position within the burst (hiccup hash input)
        for item in items:
            size = item.size
            wire = wire_time_ns(size, rate)
            max_backlog_ns = tx_slots * wire
            if item.__class__ is PacketBlock:
                count = item.count
                if item.flows is not None:
                    # Multi-flow block: same frame-level semantics, but the
                    # surviving frames' run-length summary must be
                    # re-encoded when drops puncture the block.
                    base = (
                        _hiccup_base(name_hash, int(item.t_created), size, item.flow_id, item.hops)
                        if prob > 0.0
                        else 0
                    )
                    kept: list[int] = []
                    offset = 0
                    for i in range(index, index + count):
                        if prob > 0.0:
                            value = ((base ^ (i & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                            if (value >> 11) / _DENOM53 < prob:
                                self.driver_drops += 1
                                offset += 1
                                continue
                        if busy - now > max_backlog_ns:
                            self.tx_dropped += 1
                            offset += 1
                            continue
                        busy = busy + wire
                        kept.append(offset)
                        offset += 1
                    index += count
                    accepted = len(kept)
                    if flowstats is not None:
                        # Attribute survivors and punctures before the
                        # block's run summary is re-encoded below.
                        flowstats.wire_split_runs(item.flows, kept, size)
                    if accepted:
                        if accepted != count:
                            runs = item.flows
                            item.count = accepted
                            item.flows = select_flows(runs, kept)
                            if item.flows is None:
                                # Survivors collapsed to one flow; re-anchor
                                # the template on it.
                                mac_base = item.src_mac - item.flow_id
                                end = 0
                                for flow, run in runs:
                                    end += run
                                    if kept[0] < end:
                                        item.flow_id = flow
                                        item.src_mac = mac_base + flow
                                        break
                        arrivals.append((item, busy))
                        sent_frames += accepted
                        sent_bytes += size * accepted
                    else:
                        release_block(item)
                    continue
                base = (
                    _hiccup_base(name_hash, int(item.t_created), size, item.flow_id, item.hops)
                    if prob > 0.0
                    else 0
                )
                accepted = 0
                for i in range(index, index + count):
                    if prob > 0.0:
                        value = ((base ^ (i & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                        if (value >> 11) / _DENOM53 < prob:
                            self.driver_drops += 1
                            continue
                    # Descriptor-count backlog limit: a full tx ring of
                    # frames of this size corresponds to this much
                    # serialization backlog.
                    if busy - now > max_backlog_ns:
                        self.tx_dropped += 1
                        continue
                    busy = busy + wire
                    accepted += 1
                index += count
                if flowstats is not None:
                    flow = item.flow_id
                    if accepted:
                        flowstats.wire_runs(((flow, accepted),), size)
                    if accepted != count:
                        flowstats.drop_runs(((flow, count - accepted),), size)
                if accepted:
                    if accepted != count:
                        item.count = accepted
                    arrivals.append((item, busy))
                    sent_frames += accepted
                    sent_bytes += size * accepted
                else:
                    release_block(item)
                continue
            packet = item
            if prob > 0.0:
                # Same fold as _driver_hiccup, but through the port's
                # (possibly trial-salted) cached name hash.
                base = _hiccup_base(
                    name_hash, int(packet.t_created), size, packet.flow_id, packet.hops
                )
                value = ((base ^ (index & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                if (value >> 11) / _DENOM53 < prob:
                    self.driver_drops += 1
                    if flowstats is not None:
                        flowstats.drop_runs(((packet.flow_id, 1),), size)
                    index += 1
                    continue
            if busy - now > max_backlog_ns:
                self.tx_dropped += 1
                if flowstats is not None:
                    flowstats.drop_runs(((packet.flow_id, 1),), size)
                index += 1
                continue
            start = busy
            busy = start + wire
            if self.timestamp_tx and packet.is_probe and packet.tx_timestamp is None:
                # 82599 hardware timestamping: stamp at start of transmission.
                packet.tx_timestamp = start
            if flowstats is not None:
                flowstats.wire_runs(((packet.flow_id, 1),), size)
            arrivals.append((packet, busy))
            sent_frames += 1
            sent_bytes += size
            index += 1
        self._tx_busy_until_ns = busy
        if arrivals:
            self.tx_packets += sent_frames
            self.tx_bytes += sent_bytes
            peer = self.peer
            self.sim.at(arrivals[-1][1], lambda: peer._receive(arrivals))
        return sent_frames

    def _receive(self, arrivals: list[tuple[Packet | PacketBlock, float]]) -> None:
        """Wire delivery: stamp, then hand to sink or rx descriptor ring."""
        packets: list[Packet | PacketBlock] = []
        frames = 0
        stamp_rx = self.timestamp_rx
        for item, arrival_ns in arrivals:
            if stamp_rx and item.is_probe:
                item.rx_timestamp = arrival_ns
            packets.append(item)
            frames += item.count
        self.rx_packets += frames
        if self.sink is not None:
            self.sink(packets)
            return
        # DMA into host memory after the PCIe latency; under interrupt
        # moderation the host only learns of the frames at the next ITR
        # boundary.
        ring = self.rx_ring
        delay = self.pcie_latency_ns
        if self.rx_moderation_ns is not None:
            ready = self.sim.now + delay
            period = self.rx_moderation_ns
            boundary = -(-ready // period) * period  # ceil to next ITR tick
            delay = boundary - self.sim.now
        self.sim.after(delay, lambda: ring.push_batch(packets))

    # -- fault hooks (repro.faults) ----------------------------------------

    @property
    def link_up(self) -> bool:
        return "send_batch" not in self.__dict__

    def link_down(self) -> None:
        """Carrier loss: frames handed to this port during the flap vanish.

        Implemented as an instance-level ``send_batch`` override (all call
        sites resolve the method dynamically), so a port whose link never
        flaps executes exactly the class method with no extra branch.
        Frames already serialised onto the wire still arrive at the peer.
        """
        if "send_batch" in self.__dict__:
            return

        def _no_carrier(items: Sequence[Packet | PacketBlock]) -> int:
            frames = 0
            for item in items:
                frames += item.count
                if self.flowstats is not None:
                    self.flowstats.drop_item(item)
                if item.__class__ is PacketBlock:
                    release_block(item)
            self.tx_dropped += frames
            return 0

        self.send_batch = _no_carrier

    def restore_link(self) -> None:
        """Carrier back: the class ``send_batch`` resumes transmitting."""
        self.__dict__.pop("send_batch", None)

    def stall_pcie(self, extra_ns: float) -> None:
        """PCIe/driver stall: DMA completion latency inflates by ``extra_ns``."""
        if self._pcie_stall_base is not None:
            return
        self._pcie_stall_base = self.pcie_latency_ns
        self.pcie_latency_ns += extra_ns

    def unstall_pcie(self) -> None:
        if self._pcie_stall_base is None:
            return
        self.pcie_latency_ns = self._pcie_stall_base
        self._pcie_stall_base = None


def dual_port_nic(sim: "Simulator", name: str, **kwargs) -> tuple[NicPort, NicPort]:
    """Create the two ports of a dual-port NIC (Intel 82599ES)."""
    return NicPort(sim, f"{name}.p0", **kwargs), NicPort(sim, f"{name}.p1", **kwargs)
