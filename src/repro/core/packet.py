"""Packet model: exact frames and flyweight blocks.

Packets are deliberately lightweight: the simulation is about *where time
goes*, not about parsing bytes, so a packet carries the fields the paper's
measurement tools actually use -- frame size, flow identity, MAC addresses
(t4p4s forwards on destination MAC; VALE learns source MACs), creation and
timestamping metadata for latency probes.

The paper's workloads are saturating streams of *identical* frames (one
flow, fixed MACs -- Sec. 5.2), so bulk traffic does not need one Python
object per frame: a :class:`PacketBlock` is a template plus a count, and
the whole data path (rings, NIC wires, switch servicing, meters) operates
on blocks.  Frames whose identity matters -- PTP probes, anything a test
materialises -- stay exact :class:`Packet` objects; both types expose the
same template attributes (``size``, ``flow_id``, ``src_mac``, ``dst_mac``,
``t_created``, ``hops``, ``count``, ``is_probe``) so hot loops never
branch on the representation.

A free list (:func:`acquire_block` / :func:`release_block`) recycles
blocks so steady-state traffic allocates nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.units import MIN_FRAME

DEFAULT_SRC_MAC = 0x02_00_00_00_00_01
DEFAULT_DST_MAC = 0x02_00_00_00_00_02

# -- sequence numbers -------------------------------------------------------
#
# Frame sequence numbers are scoped to a run: `Simulator.__init__` calls
# `reset_seq()`, so two identical runs hand out identical seqs no matter
# how many runs preceded them in the process (the seed drew from a
# module-global `itertools.count` that was never reset).

_next_seq = 0


def _take_seq() -> int:
    global _next_seq
    seq = _next_seq
    _next_seq = seq + 1
    return seq


def take_seq_range(count: int) -> int:
    """Reserve ``count`` consecutive seqs; returns the first.

    A block draws its whole range up front, so materialising packet ``i``
    of a block yields exactly the seq the per-packet path would have
    assigned to the same frame.
    """
    global _next_seq
    first = _next_seq
    _next_seq = first + count
    return first


def reset_seq() -> None:
    """Rewind the per-run frame sequence counter (one run == one Simulator)."""
    global _next_seq
    _next_seq = 0


@dataclass(slots=True)
class Packet:
    """A simulated Ethernet frame.

    Attributes
    ----------
    size:
        Frame size in bytes (64 for the paper's minimum-size workload).
    flow_id:
        Flow identity.  The paper's synthetic traffic is a *single* flow of
        identical packets, which is why OvS-DPDK's flow cache "does not
        help"; multi-flow profiles exercise cache behaviour.
    src_mac / dst_mac:
        Integer-encoded MAC addresses used by L2 forwarding logic.
    t_created:
        Simulated time (ns) at which the traffic generator emitted the frame.
    is_probe:
        True for PTP latency probes injected by MoonGen.
    tx_timestamp / rx_timestamp:
        Hardware or software timestamps (ns) recorded by the timestamping
        engines; ``None`` until stamped.
    hops:
        Number of forwarding hops traversed so far (debug/verification aid).
    """

    #: A Packet is a batch item of one frame (PacketBlock carries many).
    count: ClassVar[int] = 1
    #: Per-frame flow summary is a block concept; a Packet *is* its flow.
    flows: ClassVar[None] = None

    size: int = MIN_FRAME
    flow_id: int = 0
    src_mac: int = DEFAULT_SRC_MAC
    dst_mac: int = DEFAULT_DST_MAC
    t_created: float = 0.0
    is_probe: bool = False
    seq: int = field(default_factory=_take_seq)
    tx_timestamp: float | None = None
    rx_timestamp: float | None = None
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size < MIN_FRAME:
            raise ValueError(f"frame size {self.size} below minimum {MIN_FRAME}")

    @property
    def latency_ns(self) -> float | None:
        """RTT as observed by the timestamping tool, or None if unstamped."""
        if self.tx_timestamp is None or self.rx_timestamp is None:
            return None
        return self.rx_timestamp - self.tx_timestamp


class PacketBlock:
    """A run of ``count`` identical frames, stored once (flyweight).

    The block carries the same template fields as :class:`Packet` plus a
    ``count``; ``hops`` is block-level (every frame of a block has made
    the same journey).  ``seq0`` is the seq of the first frame -- the
    block owns the contiguous range ``[seq0, seq0 + count)``, so exact
    packets materialised out of a block get the very seqs the per-packet
    representation would have assigned.

    Blocks are never probes and never timestamped; a probe is split out
    of the stream as a real :class:`Packet` before emission.

    Multi-flow traffic (``repro.flows``) keeps the flyweight: ``flows`` is
    an optional run-length summary ``((flow, count), ...)`` covering the
    block's frames in emission order, with ``flow_id``/``src_mac`` holding
    the *first* run's template.  ``flows is None`` means the whole block is
    one flow -- the seed's single-flow hot paths never even look at it.
    Per-frame src MACs are derived, not stored: frame ``i`` of run ``f``
    has ``src_mac == (block.src_mac - block.flow_id) + f``.
    """

    __slots__ = (
        "size", "flow_id", "src_mac", "dst_mac", "t_created", "count", "hops", "seq0", "flows",
    )

    is_probe: ClassVar[bool] = False
    tx_timestamp: ClassVar[None] = None
    rx_timestamp: ClassVar[None] = None
    latency_ns: ClassVar[None] = None

    def __init__(
        self,
        size: int = MIN_FRAME,
        flow_id: int = 0,
        src_mac: int = DEFAULT_SRC_MAC,
        dst_mac: int = DEFAULT_DST_MAC,
        t_created: float = 0.0,
        count: int = 1,
        hops: int = 0,
        seq0: int | None = None,
        flows: tuple | None = None,
    ) -> None:
        if size < MIN_FRAME:
            raise ValueError(f"frame size {size} below minimum {MIN_FRAME}")
        if count < 1:
            raise ValueError(f"block count must be >= 1, got {count}")
        self.size = size
        self.flow_id = flow_id
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.t_created = t_created
        self.count = count
        self.hops = hops
        self.seq0 = take_seq_range(count) if seq0 is None else seq0
        self.flows = flows

    @property
    def seq(self) -> int:
        """Seq of the block's first frame (template view)."""
        return self.seq0

    def split(self, front_count: int) -> "PacketBlock":
        """Detach the first ``front_count`` frames as a new block.

        FIFO semantics: the front block takes the oldest frames and their
        (lowest) seqs; ``self`` keeps the tail.
        """
        if not 0 < front_count < self.count:
            raise ValueError(
                f"cannot split {front_count} frames off a block of {self.count}"
            )
        front = acquire_block(
            self.size,
            self.flow_id,
            self.src_mac,
            self.dst_mac,
            self.t_created,
            front_count,
            hops=self.hops,
            seq0=self.seq0,
        )
        self.count -= front_count
        self.seq0 += front_count
        if self.flows is not None:
            front_runs, tail_runs = _runs_split(self.flows, front_count)
            front.flows = front_runs if len(front_runs) > 1 else None
            self.flows = tail_runs if len(tail_runs) > 1 else None
            # Re-anchor the tail's template on its (new) first run; the
            # src-MAC derivation base (src_mac - flow_id) is invariant.
            mac_base = self.src_mac - self.flow_id
            self.flow_id = tail_runs[0][0]
            self.src_mac = mac_base + self.flow_id
        return front

    def merge(self, other: "PacketBlock") -> bool:
        """Absorb ``other`` if it is the seq-contiguous same-template tail.

        Returns True (and recycles ``other``) on success; used to coalesce
        blocks that a probe boundary or a ring split fragmented.
        """
        if (
            other.seq0 == self.seq0 + self.count
            and other.size == self.size
            and other.flow_id == self.flow_id
            and other.src_mac == self.src_mac
            and other.dst_mac == self.dst_mac
            and other.t_created == self.t_created
            and other.hops == self.hops
            and other.flows is None
            and self.flows is None
        ):
            self.count += other.count
            release_block(other)
            return True
        return False

    def materialize(self) -> list[Packet]:
        """Expand to exact packets (tests, sampled lifecycle inspection)."""
        if self.flows is None:
            return [
                Packet(
                    size=self.size,
                    flow_id=self.flow_id,
                    src_mac=self.src_mac,
                    dst_mac=self.dst_mac,
                    t_created=self.t_created,
                    seq=self.seq0 + i,
                    hops=self.hops,
                )
                for i in range(self.count)
            ]
        mac_base = self.src_mac - self.flow_id
        out: list[Packet] = []
        seq = self.seq0
        for flow, run in self.flows:
            for _ in range(run):
                out.append(
                    Packet(
                        size=self.size,
                        flow_id=flow,
                        src_mac=mac_base + flow,
                        dst_mac=self.dst_mac,
                        t_created=self.t_created,
                        seq=seq,
                        hops=self.hops,
                    )
                )
                seq += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        runs = "" if self.flows is None else f", runs={len(self.flows)}"
        return (
            f"PacketBlock(count={self.count}, size={self.size}, flow={self.flow_id}, "
            f"seq0={self.seq0}, hops={self.hops}{runs})"
        )


# -- flow run-length helpers -------------------------------------------------
#
# A ``flows`` summary is a tuple of ``(flow, count)`` runs covering a
# block's frames in order.  These helpers keep it consistent across the
# places a block can lose frames: ring truncation (tail dropped), ring
# pops (front split off) and NIC driver drops (arbitrary offsets lost).


def _runs_split(runs: tuple, front_count: int) -> tuple[tuple, tuple]:
    """Partition runs at frame offset ``front_count`` -> (front, tail)."""
    front: list = []
    taken = 0
    for index, (flow, count) in enumerate(runs):
        if taken + count < front_count:
            front.append((flow, count))
            taken += count
        elif taken + count == front_count:
            front.append((flow, count))
            return tuple(front), runs[index + 1:]
        else:
            keep = front_count - taken
            front.append((flow, keep))
            return tuple(front), ((flow, count - keep),) + runs[index + 1:]
    raise ValueError(f"front_count {front_count} exceeds runs {runs}")


def flows_front(runs: tuple, keep: int) -> tuple | None:
    """Truncate a runs summary to its first ``keep`` frames.

    Returns ``None`` when the kept prefix is a single run (normalised
    single-flow representation).
    """
    front, _tail = _runs_split(runs, keep)
    return front if len(front) > 1 else None


def select_flows(runs: tuple, kept_offsets: list) -> tuple | None:
    """Re-encode the runs summary for a subset of kept frame offsets.

    ``kept_offsets`` must be sorted ascending (they are produced by a
    forward scan).  Returns ``None`` when the survivors are one run.
    """
    bounds: list = []  # (end_offset_exclusive, flow)
    end = 0
    for flow, count in runs:
        end += count
        bounds.append((end, flow))
    out: list = []
    run_index = 0
    for offset in kept_offsets:
        while offset >= bounds[run_index][0]:
            run_index += 1
        flow = bounds[run_index][1]
        if out and out[-1][0] == flow:
            out[-1][1] += 1
        else:
            out.append([flow, 1])
    if len(out) <= 1:
        return None
    return tuple((flow, count) for flow, count in out)


# -- block free list --------------------------------------------------------

_POOL: list[PacketBlock] = []
#: Upper bound on retained blocks; enough for every ring in the largest
#: chain scenario, small enough to be irrelevant memory-wise.
POOL_MAX = 4096


def acquire_block(
    size: int,
    flow_id: int,
    src_mac: int,
    dst_mac: int,
    t_created: float,
    count: int,
    hops: int = 0,
    seq0: int | None = None,
    flows: tuple | None = None,
) -> PacketBlock:
    """Pooled block constructor: reuses a released block when available."""
    if _POOL:
        block = _POOL.pop()
        if size < MIN_FRAME:
            raise ValueError(f"frame size {size} below minimum {MIN_FRAME}")
        if count < 1:
            raise ValueError(f"block count must be >= 1, got {count}")
        block.size = size
        block.flow_id = flow_id
        block.src_mac = src_mac
        block.dst_mac = dst_mac
        block.t_created = t_created
        block.count = count
        block.hops = hops
        block.seq0 = take_seq_range(count) if seq0 is None else seq0
        block.flows = flows
        return block
    return PacketBlock(size, flow_id, src_mac, dst_mac, t_created, count, hops, seq0, flows)


def release_block(block: PacketBlock) -> None:
    """Return a dead block to the free list (caller must drop its reference)."""
    if len(_POOL) < POOL_MAX:
        _POOL.append(block)


def release_batch(batch: list) -> None:
    """Recycle every block in a consumed batch (Packets pass through GC)."""
    pool = _POOL
    for item in batch:
        if item.__class__ is PacketBlock and len(pool) < POOL_MAX:
            pool.append(item)


def pool_size() -> int:
    """Current free-list occupancy (introspection for tests/benchmarks)."""
    return len(_POOL)


# -- emission mode ----------------------------------------------------------
#
# Traffic generators emit blocks whenever the stream is uniform.  Tests
# that verify representation-independence flip to per-packet emission and
# assert the run's stats are bit-identical.

_block_emission = True


def blocks_enabled() -> bool:
    return _block_emission


def set_block_emission(enabled: bool) -> None:
    global _block_emission
    _block_emission = bool(enabled)


@contextmanager
def per_packet_emission():
    """Force seed-style one-object-per-frame emission (golden tests)."""
    global _block_emission
    previous = _block_emission
    _block_emission = False
    try:
        yield
    finally:
        _block_emission = previous


# -- batch helpers ----------------------------------------------------------


def batch_stats(batch: list) -> tuple[int, int]:
    """(frame count, total bytes) of a mixed Packet/PacketBlock batch."""
    n = 0
    total_bytes = 0
    for item in batch:
        c = item.count
        n += c
        total_bytes += item.size * c
    return n, total_bytes


def batch_count(batch: list) -> int:
    """Total frames in a mixed Packet/PacketBlock batch."""
    n = 0
    for item in batch:
        n += item.count
    return n


def make_batch(
    count: int,
    size: int,
    t_created: float,
    flow_id: int = 0,
    dst_mac: int = DEFAULT_DST_MAC,
) -> list[Packet]:
    """Create ``count`` identical synthetic frames (one flow, like MoonGen)."""
    return [
        Packet(size=size, flow_id=flow_id, t_created=t_created, dst_mac=dst_mac)
        for _ in range(count)
    ]


def make_block(
    count: int,
    size: int,
    t_created: float,
    flow_id: int = 0,
    dst_mac: int = DEFAULT_DST_MAC,
) -> PacketBlock:
    """The flyweight equivalent of :func:`make_batch`: one object."""
    return acquire_block(size, flow_id, DEFAULT_SRC_MAC, dst_mac, t_created, count)
