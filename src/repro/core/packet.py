"""Packet model.

Packets are deliberately lightweight: the simulation is about *where time
goes*, not about parsing bytes, so a packet carries the fields the paper's
measurement tools actually use -- frame size, flow identity, MAC addresses
(t4p4s forwards on destination MAC; VALE learns source MACs), creation and
timestamping metadata for latency probes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.units import MIN_FRAME

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A simulated Ethernet frame.

    Attributes
    ----------
    size:
        Frame size in bytes (64 for the paper's minimum-size workload).
    flow_id:
        Flow identity.  The paper's synthetic traffic is a *single* flow of
        identical packets, which is why OvS-DPDK's flow cache "does not
        help"; multi-flow profiles exercise cache behaviour.
    src_mac / dst_mac:
        Integer-encoded MAC addresses used by L2 forwarding logic.
    t_created:
        Simulated time (ns) at which the traffic generator emitted the frame.
    is_probe:
        True for PTP latency probes injected by MoonGen.
    tx_timestamp / rx_timestamp:
        Hardware or software timestamps (ns) recorded by the timestamping
        engines; ``None`` until stamped.
    hops:
        Number of forwarding hops traversed so far (debug/verification aid).
    """

    size: int = MIN_FRAME
    flow_id: int = 0
    src_mac: int = 0x02_00_00_00_00_01
    dst_mac: int = 0x02_00_00_00_00_02
    t_created: float = 0.0
    is_probe: bool = False
    seq: int = field(default_factory=lambda: next(_packet_ids))
    tx_timestamp: float | None = None
    rx_timestamp: float | None = None
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size < MIN_FRAME:
            raise ValueError(f"frame size {self.size} below minimum {MIN_FRAME}")

    @property
    def latency_ns(self) -> float | None:
        """RTT as observed by the timestamping tool, or None if unstamped."""
        if self.tx_timestamp is None or self.rx_timestamp is None:
            return None
        return self.rx_timestamp - self.tx_timestamp


def make_batch(
    count: int,
    size: int,
    t_created: float,
    flow_id: int = 0,
    dst_mac: int = 0x02_00_00_00_00_02,
) -> list[Packet]:
    """Create ``count`` identical synthetic frames (one flow, like MoonGen)."""
    return [
        Packet(size=size, flow_id=flow_id, t_created=t_created, dst_mac=dst_mac)
        for _ in range(count)
    ]
