"""Simulation core: event engine, packets, rings, units, statistics."""

from repro.core.engine import SimulationError, Simulator
from repro.core.packet import Packet, make_batch
from repro.core.ring import Ring
from repro.core.rng import RngRegistry
from repro.core.stats import LatencySample, RateMeter, RunningStats
from repro.core.trace import Series, Telemetry

__all__ = [
    "LatencySample",
    "Packet",
    "RateMeter",
    "Ring",
    "RngRegistry",
    "RunningStats",
    "Series",
    "Telemetry",
    "SimulationError",
    "Simulator",
    "make_batch",
]
