"""Discrete-event simulation engine.

A tiny, fast event scheduler with an integer-nanosecond clock.  All testbed
components (cores, NIC wires, traffic generators, interrupt controllers)
schedule callbacks on a shared :class:`Simulator`.

Design notes
------------
* Time is ``float`` nanoseconds internally (sub-ns fractions arise from
  cycle-to-ns conversion at 2.6 GHz); events are ordered by ``(time, seq)``
  so simultaneous events fire in FIFO order, which keeps runs deterministic.
* Callbacks take no arguments; closures capture whatever context they need.
  Hot re-arming loops (cores, paced sources) pass *bound methods*, so the
  steady state allocates no closures.
* There are no "processes"; polling loops re-arm themselves by scheduling
  their next iteration.  This keeps the hot path to a single ``heappush`` /
  ``heappop`` pair per event.
* ``run`` and ``run_until`` share one dispatch loop (:meth:`_drain`); the
  observer hook keeps its own branch of that loop so an idle hook adds
  zero per-event work to unobserved runs.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Protocol

from repro.core.packet import reset_seq


class SimObserverProtocol(Protocol):
    """Dispatch hook contract (see :class:`repro.obs.tracing.SimObserver`)."""

    def on_event(self, time_ns: float, callback: Callable[[], None]) -> None:
        ...


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Simulator:
    """Event-driven simulator with a nanosecond clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self._observer: "SimObserverProtocol | None" = None
        # One run == one Simulator: frame seqs restart so identical runs
        # hand out identical seqs regardless of process history.
        reset_seq()

    def set_observer(self, observer: "SimObserverProtocol | None") -> None:
        """Install (or clear) a dispatch observer.

        The observer's ``on_event(time_ns, callback)`` is invoked after
        every executed event.  When no observer is set the dispatch loop
        below takes its un-instrumented branch, so an idle hook costs
        nothing per event.
        """
        self._observer = observer

    @property
    def observer(self) -> "SimObserverProtocol | None":
        return self._observer

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    def at(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; clock already at {self._now} ns"
            )
        heappush(self._queue, (time_ns, self._seq, callback))
        self._seq += 1

    def after(self, delay_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns} ns")
        heappush(self._queue, (self._now + delay_ns, self._seq, callback))
        self._seq += 1

    def _drain(self, t_end_ns: float) -> None:
        """Execute queued events with ``time <= t_end_ns`` in order.

        The single dispatch loop behind both :meth:`run` and
        :meth:`run_until`; heap ops and the queue are cached in locals, and
        the unobserved branch carries no observer test per event.
        """
        if self._running:
            raise SimulationError("dispatch is not reentrant")
        self._running = True
        try:
            queue = self._queue
            pop = heappop
            observer = self._observer
            if observer is None:
                while queue and queue[0][0] <= t_end_ns:
                    time_ns, _, callback = pop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
            else:
                on_event = observer.on_event
                while queue and queue[0][0] <= t_end_ns:
                    time_ns, _, callback = pop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
                    on_event(time_ns, callback)
        finally:
            self._running = False

    def run_until(self, t_end_ns: float) -> None:
        """Execute events in order until the clock reaches ``t_end_ns``.

        The first event strictly after ``t_end_ns`` is left in the queue and
        the clock is advanced exactly to ``t_end_ns``.
        """
        self._drain(t_end_ns)
        self._now = max(self._now, t_end_ns)

    def run(self) -> None:
        """Run until the event queue drains completely."""
        self._drain(math.inf)

    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    def replace_pending(
        self,
        entries: list[tuple[float, int, Callable[[], None]]],
        *,
        now: float,
        seq: int,
        events: int,
    ) -> None:
        """Atomically install a reconstructed scheduler state.

        Used by :mod:`repro.core.warp` to commit a fast-forwarded run:
        ``entries`` must be ``(time, seq, callback)`` tuples sorted by
        ``(time, seq)`` (a sorted list is a valid heap), ``now``/``seq``/
        ``events`` the clock, next event seq and executed-event count the
        replaced state corresponds to.  Refuses to run mid-dispatch.
        """
        if self._running:
            raise SimulationError("cannot replace pending events mid-dispatch")
        if now < self._now:
            raise SimulationError(
                f"cannot rewind clock to {now} ns; already at {self._now} ns"
            )
        self._queue = list(entries)
        self._now = now
        self._seq = seq
        self.events_executed = events
