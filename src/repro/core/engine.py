"""Discrete-event simulation engine.

A tiny, fast event scheduler with an integer-nanosecond clock.  All testbed
components (cores, NIC wires, traffic generators, interrupt controllers)
schedule callbacks on a shared :class:`Simulator`.

Design notes
------------
* Time is ``float`` nanoseconds internally (sub-ns fractions arise from
  cycle-to-ns conversion at 2.6 GHz); events are ordered by ``(time, seq)``
  so simultaneous events fire in FIFO order, which keeps runs deterministic.
* Callbacks take no arguments; closures capture whatever context they need.
* There are no "processes"; polling loops re-arm themselves by scheduling
  their next iteration.  This keeps the hot path to a single ``heappush`` /
  ``heappop`` pair per event.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol


class SimObserverProtocol(Protocol):
    """Dispatch hook contract (see :class:`repro.obs.tracing.SimObserver`)."""

    def on_event(self, time_ns: float, callback: Callable[[], None]) -> None:
        ...


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Simulator:
    """Event-driven simulator with a nanosecond clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self._observer: "SimObserverProtocol | None" = None

    def set_observer(self, observer: "SimObserverProtocol | None") -> None:
        """Install (or clear) a dispatch observer.

        The observer's ``on_event(time_ns, callback)`` is invoked after
        every executed event.  When no observer is set the dispatch loops
        below take their un-instrumented branch, so an idle hook costs
        nothing per event.
        """
        self._observer = observer

    @property
    def observer(self) -> "SimObserverProtocol | None":
        return self._observer

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    def at(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; clock already at {self._now} ns"
            )
        heapq.heappush(self._queue, (time_ns, self._seq, callback))
        self._seq += 1

    def after(self, delay_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns} ns")
        self.at(self._now + delay_ns, callback)

    def run_until(self, t_end_ns: float) -> None:
        """Execute events in order until the clock reaches ``t_end_ns``.

        The first event strictly after ``t_end_ns`` is left in the queue and
        the clock is advanced exactly to ``t_end_ns``.
        """
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        try:
            queue = self._queue
            observer = self._observer
            if observer is None:
                while queue and queue[0][0] <= t_end_ns:
                    time_ns, _, callback = heapq.heappop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
            else:
                on_event = observer.on_event
                while queue and queue[0][0] <= t_end_ns:
                    time_ns, _, callback = heapq.heappop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
                    on_event(time_ns, callback)
            self._now = max(self._now, t_end_ns)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue drains completely."""
        if self._running:
            raise SimulationError("run is not reentrant")
        self._running = True
        try:
            queue = self._queue
            observer = self._observer
            if observer is None:
                while queue:
                    time_ns, _, callback = heapq.heappop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
            else:
                on_event = observer.on_event
                while queue:
                    time_ns, _, callback = heapq.heappop(queue)
                    self._now = time_ns
                    callback()
                    self.events_executed += 1
                    on_event(time_ns, callback)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)
