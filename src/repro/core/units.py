"""Unit conversions and Ethernet framing arithmetic.

Throughout the library, simulated time is kept in integer *nanoseconds*,
CPU work in *cycles*, link speeds in *bits per second* and packet sizes in
*bytes of Ethernet frame* (as reported by traffic generators, i.e. from the
first byte of the destination MAC to the last byte of the payload, CRC
included in ``ETHERNET_CRC``).

The paper reports throughput in Gbps normalised to the 10 Gbps line rate:
64 B packets at full line rate are "10 Gbps (about 14.88 Mpps)".  That
normalisation counts the full on-wire footprint of a frame -- preamble,
start-of-frame delimiter and inter-frame gap included -- so this module is
the single place where that accounting lives.
"""

from __future__ import annotations

# --- Ethernet framing constants (bytes) ------------------------------------
ETHERNET_PREAMBLE = 7
ETHERNET_SFD = 1
ETHERNET_IFG = 12
ETHERNET_CRC = 4
#: Per-frame overhead on the wire that is *not* part of the frame size the
#: traffic generator reports: preamble + SFD + inter-frame gap.
WIRE_OVERHEAD = ETHERNET_PREAMBLE + ETHERNET_SFD + ETHERNET_IFG  # 20 bytes

#: Minimum and maximum legal Ethernet frame sizes (without wire overhead).
MIN_FRAME = 64
MAX_FRAME = 1518

#: The paper's packet-size sweep.
PAPER_FRAME_SIZES = (64, 256, 1024)

#: Physical link speed of the testbed's Intel 82599 ports.
LINE_RATE_BPS = 10_000_000_000

NS_PER_S = 1_000_000_000
US_PER_S = 1_000_000


def wire_bytes(frame_size: int) -> int:
    """Total bytes a frame occupies on the wire, framing overhead included."""
    if frame_size < MIN_FRAME:
        raise ValueError(f"frame size {frame_size} below Ethernet minimum {MIN_FRAME}")
    return frame_size + WIRE_OVERHEAD


def wire_time_ns(frame_size: int, rate_bps: int = LINE_RATE_BPS) -> float:
    """Serialization delay of one frame on a link of ``rate_bps``."""
    return wire_bytes(frame_size) * 8 * NS_PER_S / rate_bps


def line_rate_pps(frame_size: int, rate_bps: int = LINE_RATE_BPS) -> float:
    """Maximum packet rate of a link for a fixed frame size.

    >>> round(line_rate_pps(64) / 1e6, 2)
    14.88
    """
    return rate_bps / (wire_bytes(frame_size) * 8)


def pps_to_gbps(pps: float, frame_size: int) -> float:
    """Convert a packet rate to the paper's normalised Gbps (wire footprint).

    14.88 Mpps of 64 B frames maps back to 10 Gbps exactly.
    """
    return pps * wire_bytes(frame_size) * 8 / 1e9


def gbps_to_pps(gbps: float, frame_size: int) -> float:
    """Inverse of :func:`pps_to_gbps`."""
    return gbps * 1e9 / (wire_bytes(frame_size) * 8)


def cycles_to_ns(cycles: float, freq_hz: float) -> float:
    """CPU cycles to nanoseconds at a given core frequency."""
    return cycles * NS_PER_S / freq_hz


def ns_to_cycles(ns: float, freq_hz: float) -> float:
    """Nanoseconds to CPU cycles at a given core frequency."""
    return ns * freq_hz / NS_PER_S


def mpps(pps: float) -> float:
    """Packets per second to millions of packets per second."""
    return pps / 1e6
