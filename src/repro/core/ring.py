"""Bounded descriptor rings.

Every queue in the testbed -- NIC rx/tx descriptor rings, virtio vrings,
netmap/ptnet rings, Snabb inter-app links -- is a :class:`Ring`: a bounded
FIFO that drops on overflow and counts what it drops.  Drop-on-overflow is
the semantics of a poll-mode data plane: there is no backpressure to the
wire, excess packets are simply lost, which is exactly the effect the
paper's saturating-load methodology measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.core.packet import Packet


class Ring:
    """A bounded FIFO packet queue with drop accounting.

    Parameters
    ----------
    capacity:
        Maximum number of packets (descriptors) the ring holds.  The paper
        tunes FastClick's NIC rings to 4096 descriptors (Table 2); DPDK
        defaults are typically 512-1024.
    name:
        Diagnostic label used in error messages and stats dumps.
    on_push:
        Optional callback invoked after a successful push while the ring was
        previously empty.  Interrupt-driven consumers (VALE/netmap) use this
        as their "interrupt line": a packet landing in an empty ring raises
        an interrupt, whereas poll-mode consumers ignore it.
    """

    __slots__ = ("capacity", "name", "_queue", "enqueued", "dropped", "on_push")

    def __init__(
        self,
        capacity: int,
        name: str = "ring",
        on_push: Callable[[], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._queue: deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.on_push = on_push

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def free(self) -> int:
        """Remaining descriptor slots."""
        return self.capacity - len(self._queue)

    def push(self, packet: Packet) -> bool:
        """Enqueue one packet; returns False (and counts a drop) if full."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        was_empty = not self._queue
        self._queue.append(packet)
        self.enqueued += 1
        if was_empty and self.on_push is not None:
            self.on_push()
        return True

    def push_batch(self, packets: Iterable[Packet]) -> int:
        """Enqueue a batch; returns how many packets were accepted."""
        accepted = 0
        for packet in packets:
            if self.push(packet):
                accepted += 1
        return accepted

    def pop_batch(self, max_count: int) -> list[Packet]:
        """Dequeue up to ``max_count`` packets in FIFO order."""
        queue = self._queue
        count = min(max_count, len(queue))
        return [queue.popleft() for _ in range(count)]

    def peek_len(self) -> int:
        """Occupancy without dequeuing (poll-mode 'ring not empty?' check)."""
        return len(self._queue)

    def clear(self) -> None:
        """Discard contents (used when a test tears a scenario down)."""
        self._queue.clear()
