"""Bounded descriptor rings.

Every queue in the testbed -- NIC rx/tx descriptor rings, virtio vrings,
netmap/ptnet rings, Snabb inter-app links -- is a :class:`Ring`: a bounded
FIFO that drops on overflow and counts what it drops.  Drop-on-overflow is
the semantics of a poll-mode data plane: there is no backpressure to the
wire, excess packets are simply lost, which is exactly the effect the
paper's saturating-load methodology measures.

Capacity, occupancy, drop and enqueue accounting are all in *frames*
(descriptors), not Python objects: a ring holds a FIFO of items that are
either exact :class:`~repro.core.packet.Packet` objects (``count == 1``)
or :class:`~repro.core.packet.PacketBlock` flyweights (``count >= 1``).
A block that does not fully fit is split at the free-slot boundary --
the accepted prefix keeps FIFO order and the overflowing tail is dropped,
frame for frame what the seed's per-packet loop did.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.core.packet import Packet, PacketBlock, _runs_split, flows_front, release_block


class Ring:
    """A bounded FIFO packet queue with drop accounting.

    Parameters
    ----------
    capacity:
        Maximum number of frames (descriptors) the ring holds.  The paper
        tunes FastClick's NIC rings to 4096 descriptors (Table 2); DPDK
        defaults are typically 512-1024.
    name:
        Diagnostic label used in error messages and stats dumps.
    on_push:
        Optional callback invoked after a successful push while the ring was
        previously empty.  Interrupt-driven consumers (VALE/netmap) use this
        as their "interrupt line": a packet landing in an empty ring raises
        an interrupt, whereas poll-mode consumers ignore it.
    """

    __slots__ = (
        "capacity", "name", "_queue", "_frames", "enqueued", "dropped", "on_push",
        "flowstats",
    )

    def __init__(
        self,
        capacity: int,
        name: str = "ring",
        on_push: Callable[[], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._queue: deque[Packet | PacketBlock] = deque()
        self._frames = 0
        self.enqueued = 0
        self.dropped = 0
        self.on_push = on_push
        #: Optional per-flow accounting (:class:`repro.obs.flowstats.FlowStats`);
        #: None unless flow telemetry is enabled, so unobserved pushes pay
        #: a single attribute test per drop event (nothing on clean pushes).
        self.flowstats = None

    def __len__(self) -> int:
        """Occupancy in frames (a block of 32 fills 32 descriptors)."""
        return self._frames

    @property
    def free(self) -> int:
        """Remaining descriptor slots."""
        return self.capacity - self._frames

    def push(self, item: Packet | PacketBlock) -> bool:
        """Enqueue one item; returns True if at least one frame landed.

        A block larger than the free space is truncated to fit: the
        overflowing tail frames are dropped (and recounted), exactly as if
        they had been pushed one by one into the full ring.
        """
        count = item.count
        free = self.capacity - self._frames
        if free <= 0:
            self.dropped += count
            if self.flowstats is not None:
                self.flowstats.drop_item(item)
            if item.__class__ is PacketBlock:
                release_block(item)
            return False
        if count > free:
            self.dropped += count - free
            if self.flowstats is not None:
                runs = item.flows
                tail = (
                    _runs_split(runs, free)[1]
                    if runs is not None
                    else ((item.flow_id, count - free),)
                )
                self.flowstats.drop_runs(tail, item.size)
            item.count = free  # blocks only: Packet.count == 1 always fits
            if item.flows is not None:
                item.flows = flows_front(item.flows, free)
            count = free
        was_empty = self._frames == 0
        self._queue.append(item)
        self._frames += count
        self.enqueued += count
        if was_empty and self.on_push is not None:
            self.on_push()
        return True

    def push_batch(self, items: Iterable[Packet | PacketBlock]) -> int:
        """Enqueue a batch; returns how many frames were accepted."""
        before = self.enqueued
        push = self.push
        for item in items:
            push(item)
        return self.enqueued - before

    def pop_batch(self, max_count: int) -> list[Packet | PacketBlock]:
        """Dequeue up to ``max_count`` frames in FIFO order.

        A block straddling the boundary is split: the popped prefix keeps
        the oldest frames, the remainder stays at the head of the ring.
        """
        queue = self._queue
        if not queue or max_count <= 0:
            return []
        out: list[Packet | PacketBlock] = []
        remaining = max_count
        popped = 0
        while queue and remaining > 0:
            head = queue[0]
            count = head.count
            if count <= remaining:
                out.append(queue.popleft())
                remaining -= count
                popped += count
            else:
                out.append(head.split(remaining))
                popped += remaining
                remaining = 0
        self._frames -= popped
        return out

    def peek_len(self) -> int:
        """Occupancy without dequeuing (poll-mode 'ring not empty?' check)."""
        return self._frames

    def clear(self) -> int:
        """Discard contents (teardown, or a fault losing in-flight frames).

        Returns the number of frames discarded so fault accounting can
        attribute the loss.
        """
        lost = self._frames
        for item in self._queue:
            if item.__class__ is PacketBlock:
                release_block(item)
        self._queue.clear()
        self._frames = 0
        return lost


# -- fault states -----------------------------------------------------------
#
# ``repro.faults`` puts a live ring into a fault state by swapping its
# *class* (both subclasses add no slots, so the instance layout is
# identical and every cached reference keeps working).  Normal rings pay
# nothing for this capability: no flag, no branch, no extra attribute on
# the hot push/pop paths.


class FrozenRing(Ring):
    """A vring whose consumer side has stopped processing descriptors.

    Producers still see free slots and fill them (overflow drops once the
    ring is full -- exactly what a stalled vring looks like from the
    producer side); the consumer finds nothing to reap until the ring is
    thawed, at which point the preserved contents drain normally.
    """

    __slots__ = ()

    def pop_batch(self, max_count: int) -> list[Packet | PacketBlock]:
        return []


class DisconnectedRing(Ring):
    """A ring whose backing channel is gone (vhost-user backend died).

    Every push is dropped and counted; there is nothing to pop.  The
    in-flight contents are discarded by :func:`disconnect_ring` (shared
    memory is unmapped when the backend disappears).
    """

    __slots__ = ()

    def push(self, item: Packet | PacketBlock) -> bool:
        self.dropped += item.count
        if self.flowstats is not None:
            self.flowstats.drop_item(item)
        if item.__class__ is PacketBlock:
            release_block(item)
        return False

    def pop_batch(self, max_count: int) -> list[Packet | PacketBlock]:
        return []


def freeze_ring(ring: Ring) -> None:
    """Stop the ring's consumer side (virtio ring freeze); contents keep."""
    if ring.__class__ is not Ring:
        raise ValueError(f"ring {ring.name!r} is already in fault state {ring.__class__.__name__}")
    ring.__class__ = FrozenRing


def disconnect_ring(ring: Ring) -> int:
    """Detach the ring's backing channel; returns in-flight frames lost."""
    if ring.__class__ is not Ring:
        raise ValueError(f"ring {ring.name!r} is already in fault state {ring.__class__.__name__}")
    lost = ring.clear()
    ring.__class__ = DisconnectedRing
    return lost


def restore_ring(ring: Ring) -> None:
    """Leave any fault state (thaw / reconnect); a plain ring is a no-op."""
    if ring.__class__ is not Ring:
        ring.__class__ = Ring
