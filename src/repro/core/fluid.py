"""Fluid tier: rate-based counter extrapolation for long steady horizons.

The exact tiers (:mod:`repro.core.warp`, :mod:`repro.core.turbo`) are
bit-identical and always safe, but their cost still grows with the
number of *busy* events -- a saturating NDR probe over an hour-scale
horizon executes billions of switch breaths no matter how cleverly the
idle gaps are skipped.  The fluid tier trades bit-identity for a bounded
relative error: it runs the testbed exactly through warm-up plus a short
**calibration slice** of the measurement window, checks that the slice
is rate-stable (two halves agree within tolerance), then evolves every
meter's counters piecewise-linearly to the window edge and discards the
remaining events.  Flow-table effects (EMC/MAC/flow-table hit rates)
need no special casing: the calibration slice executes them exactly, so
their folded cost is already inside the measured rate.

Fluid mode is **opt-in** (``REPRO_FLUID=1`` or ``--fluid``) and carries
its own validation tier: ``tools/fluid_check.py`` A/B-compares fluid
against exact mode on a switch grid and CI gates the relative error at
the declared tolerance (``REPRO_FLUID_TOLERANCE``, default 5%).  When
enabled it joins the campaign cache fingerprint (via
:func:`repro.core.warp.engine_features`) so fluid rows can never collide
with exact rows.  Probes and transients stay exact: latency samples come
from the calibration slice, and runs with fault plans, churn, telemetry
sessions or per-packet tracing decline to the exact tiers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.scenarios.base import Testbed

#: Fluid algorithm revision; joins the campaign cache fingerprint
#: whenever fluid mode is enabled.
FLUID_VERSION = 1

#: Fraction of the measurement window executed exactly for calibration,
#: and its clamps.  The cap is what buys hour-scale speedups: a 1-hour
#: window calibrates for 8 ms of simulated time (~450000x less event
#: work), a short CI window still calibrates over at least 1 ms.
CAL_FRACTION = 0.02
CAL_FLOOR_NS = 1_000_000.0
CAL_CAP_NS = 8_000_000.0

#: Half-vs-half packet-count slack that absorbs burst quantisation at
#: low rates (sources emit up to 32-frame bursts).
QUANT_SLACK_PACKETS = 64


def fluid_enabled(default: bool = False) -> bool:
    """Whether the environment enables fluid mode (``REPRO_FLUID``)."""
    value = os.environ.get("REPRO_FLUID", "").strip().lower()
    if value in ("0", "false", "off", "no"):
        return False
    if value in ("1", "true", "on", "yes"):
        return True
    return default


def fluid_tolerance(default: float = 0.05) -> float:
    """Declared max relative error vs exact mode (``REPRO_FLUID_TOLERANCE``)."""
    value = os.environ.get("REPRO_FLUID_TOLERANCE", "").strip()
    if not value:
        return default
    try:
        tolerance = float(value)
    except ValueError:
        return default
    return tolerance if tolerance > 0 else default


@dataclass
class FluidReport:
    """What the fluid tier did (or why it declined) for one driven run."""

    engaged: bool
    reason: str = ""
    #: Simulated time covered by extrapolation instead of events.
    fluid_ns: float = 0.0
    #: Simulated time of the exact calibration slice.
    calibration_ns: float = 0.0
    tolerance: float = 0.05
    #: Whether the attempt already advanced the clock past the window
    #: open (a mid-window decline); the replay warp must then be skipped
    #: because its pre-scan assumes a pre-window heap.
    advanced: bool = False

    def describe(self) -> str:
        if self.engaged:
            return (
                f"engaged[fluid]: extrapolated {self.fluid_ns / 1e6:.3f} ms from a "
                f"{self.calibration_ns / 1e6:.3f} ms calibration slice "
                f"(tolerance {self.tolerance:.1%})"
            )
        return f"declined[fluid]: {self.reason}"


class _FluidDecline(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _eligibility(tb: "Testbed", watchdog_active: bool) -> None:
    if watchdog_active:
        # The watchdog scans live state on a period; a cleared heap would
        # silently stop its invariant coverage mid-window.
        raise _FluidDecline("watchdog-active")
    if tb.sim._observer is not None or tb.switch.obs is not None:
        raise _FluidDecline("per-packet-tracing")
    if tb.extras.get("fault_injector") is not None:
        # Faults are exactly the transients fluid cannot extrapolate
        # across; resilience runs stay on the exact tiers.
        raise _FluidDecline("fault-plan-active")
    population = tb.extras.get("flow_population")
    if population is not None and population.churn_fps:
        raise _FluidDecline("flow-churn")
    if tb.switch.flowstats is not None or tb.extras.get("flowstats") is not None:
        # Per-flow telemetry counts events; extrapolated counters would
        # leave it silently truncated at the calibration edge.
        raise _FluidDecline("flow-telemetry")


def try_fluid(
    tb: "Testbed", t_open: float, t_close: float, watchdog_active: bool = False
) -> FluidReport:
    """Attempt the fluid fast-forward for the window ``[t_open, t_close]``.

    On engagement the meters hold extrapolated window counts, the event
    heap is empty, and the caller's ``run_until(t_close)`` merely clamps
    the clock.  On a pre-window decline the simulator is untouched; on a
    mid-window decline (``unstable-rate``) the run has simply executed
    exactly up to the calibration edge and ``advanced`` is set.
    """
    tolerance = fluid_tolerance()
    try:
        _eligibility(tb, watchdog_active)
    except _FluidDecline as decline:
        return FluidReport(engaged=False, reason=decline.reason, tolerance=tolerance)

    span = t_close - t_open
    cal_ns = min(CAL_CAP_NS, max(CAL_FLOOR_NS, CAL_FRACTION * span))
    if span < 2.0 * cal_ns:
        return FluidReport(engaged=False, reason="span-too-short", tolerance=tolerance)

    sim = tb.sim
    meters = list(tb.meters)
    sim.run_until(t_open)
    base = [(meter.packets, meter.bytes) for meter in meters]
    t_cal = t_open + cal_ns
    sim.run_until(t_open + cal_ns / 2.0)
    mid = [meter.packets for meter in meters]
    sim.run_until(t_cal)
    cal = [(meter.packets, meter.bytes) for meter in meters]

    for (packets0, _), packets_mid, (packets1, _) in zip(base, mid, cal):
        first = packets_mid - packets0
        second = packets1 - packets_mid
        peak = max(first, second)
        if not peak:
            continue
        drift = abs(first - second)
        if drift / peak > tolerance and drift > QUANT_SLACK_PACKETS:
            return FluidReport(
                engaged=False,
                reason="unstable-rate",
                calibration_ns=cal_ns,
                tolerance=tolerance,
                advanced=True,
            )

    remaining = t_close - t_cal
    for meter, (packets0, bytes0), (packets1, bytes1) in zip(meters, base, cal):
        add_packets = int(round((packets1 - packets0) * remaining / cal_ns))
        add_bytes = int(round((bytes1 - bytes0) * remaining / cal_ns))
        meter.set_counts(
            packets1 + add_packets, bytes1 + add_bytes, meter.warmup_packets
        )
    sim._queue.clear()
    return FluidReport(
        engaged=True,
        fluid_ns=remaining,
        calibration_ns=cal_ns,
        tolerance=tolerance,
    )
