"""Seeded random-number streams.

Every stochastic component (service-time jitter, LuaJIT stall process,
probe spacing dither) draws from its own named substream derived from the
experiment seed, so that adding a component never perturbs the draws of
another and whole experiments replay bit-identically.
"""

from __future__ import annotations

import numpy as np


class RngRegistry:
    """Hands out independent, reproducible numpy Generators by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        generator = self._streams.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(name),))
            generator = np.random.default_rng(seed_seq)
            self._streams[name] = generator
        return generator


def _stable_hash(name: str) -> int:
    """Deterministic 63-bit hash of a string (Python's hash() is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode():
        value ^= byte
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
