"""Chain-turbo: generalized exact fast-forward for multi-hop testbeds.

The p2p monolith in :mod:`repro.core.warp` fast-forwards by *mirroring*
the whole steady-state event cycle analytically.  That approach does not
extend to multi-hop chains (p2v/v2v vring hops, loopback VNF chains,
bidirectional p2p): the cycle spans guest apps, virtio notify delays and
memory-bus state whose exact mirror would duplicate half the simulator.

The turbo takes the complementary route: **every datapath event stays on
real dispatch** -- generator ticks, wire arrivals, PCIe pushes, switch
breaths that move packets, vring notifies, fault flips -- so multi-hop
runs are bit-identical *by construction*.  What it accelerates is the
one event class that dominates long sub-capacity horizons: the idle poll.
A poll-mode core whose every task is provably idle (all watched rings
empty, no pending TX-drain buffers, no strict-batch timeout armed)
executes a poll iteration whose complete effect is::

    sim._now = t            # the event's own time
    events_executed += 1
    core._idle_streak += 1
    re-arm at (t + idle_delay, seq++)   # exact repeated float addition

Nothing else in the simulation can change until the next *non-poll* heap
event, because every ring fill and state flip arrives via the heap.  The
turbo therefore bulk-advances idle-poll chains -- replaying exactly those
register updates, including the repeated float addition and the global
``(time, seq)`` ordering across several concurrent chains (loopback runs
one chain per VNF vCPU) -- and stops strictly before the next non-poll
event.  Fault events, timeline-sampler ticks and probe batches are plain
heap events, so the *between-fault* segments of resilience runs warp
automatically and faulted intervals (frozen vrings, preempted cores)
fall back to real dispatch through the same per-span eligibility checks.

Verification mirrors the monolith's shadow-replay contract: the first
spans of a run are *predicted* and then dispatched for real, and every
register the bulk path would have written (clock, seq, event count, idle
streaks, core busy time, per-task idle state, re-arm heap entries) is
compared.  A mismatch permanently disables bulk advance for the run --
real dispatch has already produced the correct state, so a failed
verification costs speed, never correctness.  After any unrecognized
event (fault injections in particular) the next span is re-verified.
"""

from __future__ import annotations

import types
from heapq import heapify, heappop, heappush
from math import inf
from typing import TYPE_CHECKING, Callable

from repro.core.engine import SimulationError
from repro.core.warp import (
    WarpReport,
    _ARRIVE_CODES,
    _DELIVER_CODES,
    _Decline,
    _PUSH_CODES,
)
from repro.cpu.cores import Core
from repro.switches.base import PhyAttachment, SoftwareSwitch, VifAttachment, _Worker
from repro.traffic.generator import PacedSource
from repro.vm.apps import GuestL2Fwd, GuestValeBridge, GuestValeXConnect

if TYPE_CHECKING:
    from repro.scenarios.base import Testbed

#: Turbo algorithm revision (documentation / report surface only: results
#: are bit-identical to event-by-event execution, so it deliberately does
#: not participate in campaign cache fingerprints).
TURBO_VERSION = 1

#: Spans verified by full real dispatch before bulk advance is trusted.
VERIFY_SPANS = 2

#: Minimum idle polls a span must promise before the bulk path engages;
#: shorter gaps dispatch for real (the span setup would cost more than
#: the handful of events it skips).
MIN_SPAN_POLLS = 8

_ITERATE = Core._iterate
_MethodType = types.MethodType

#: Scenario families whose wiring has been vetted for the turbo.  The
#: per-span checks are what guarantee correctness; this gate exists so
#: unknown scenario shapes decline with the same stable reason string the
#: monolith uses.
_SCENARIOS = ("p2p", "p2v", "v2v", "v2v-latency")
_SCENARIO_PREFIXES = ("loopback-",)


def _lambda_codes(func: Callable) -> tuple:
    return tuple(
        const
        for const in func.__code__.co_consts
        if isinstance(const, types.CodeType) and const.co_name == "<lambda>"
    )


def _benign_codes() -> set:
    """Code objects of event callbacks that cannot change poll semantics.

    Any dispatched event whose callback is *not* recognized here (fault
    start/stop closures, watchdog scans, anything new) forces the next
    bulk span through a fresh verification pass.
    """
    from repro.nic.port import NicPort

    codes = {PacedSource._tick.__code__}
    for owner in (
        NicPort.send_batch,
        NicPort._receive,
        PhyAttachment.deliver,
        VifAttachment.deliver,
        SoftwareSwitch._serve_pipeline_rx,
        GuestL2Fwd.poll,
        GuestValeXConnect.poll,
        GuestValeBridge.poll,
    ):
        codes.update(_lambda_codes(owner))
    codes.update(_ARRIVE_CODES)
    codes.update(_PUSH_CODES)
    codes.update(_DELIVER_CODES)
    return codes


_BENIGN = _benign_codes()
_benign_extras_added = False


def _add_lazy_benign() -> None:
    """Register benign callbacks from modules that import the runner.

    The resilience timeline sampler only *reads* cumulative counters on a
    bin grid, so its ticks must not trigger re-verification (they fire in
    every bin of every resilience run).  Imported lazily to avoid a cycle
    (measure.resilience -> measure.runner -> core.turbo).
    """
    global _benign_extras_added
    if _benign_extras_added:
        return
    _benign_extras_added = True
    try:
        from repro.measure.resilience import _TimelineSampler

        _BENIGN.add(_TimelineSampler._tick.__code__)
    except Exception:  # pragma: no cover - sampler is optional surface
        pass


# -- per-core idle predicates -------------------------------------------------
#
# A check returns the absolute sim time before which the task's polls are
# pure no-ops: ``-inf`` means the very next poll does work, ``inf`` means
# idle until an external event intervenes, and a finite value is a known
# self-imposed deadline (l2fwd's TX drain timer: polls are no-ops while
# frames sit buffered below the burst threshold, until the drain interval
# elapses and a poll flushes).  Deadlines are stable within a span --
# they only move when a poll does work, which ends the span.


def _switch_check(switch: SoftwareSwitch, paths) -> Callable[[], float] | None:
    params = switch.params
    if params.pipeline or switch._stalls is not None:
        return None  # stalls/pipeline links carry time-based obligations
    if params.interrupt_driven or switch.obs is not None:
        return None

    def check(paths=tuple(paths)) -> float:
        for path in paths:
            if (
                path.input.input_ring._frames
                or path.wait_started_ns is not None
                or path.tx_buffer
            ):
                return -inf
        return inf

    return check


def _l2fwd_check(task: GuestL2Fwd) -> Callable[[], float]:
    ring = task.rx_vif.to_guest

    def check(task=task, ring=ring) -> float:
        if ring._frames:
            return -inf
        if not task._tx_buffer:
            return inf
        if task._tx_frames >= task.burst:
            return -inf
        # Buffered below the burst threshold: polls no-op until the
        # drain timer fires (poll at t flushes iff t >= last + drain).
        return task._last_flush_ns + task.drain_ns

    return check


def _rings_check(rings) -> Callable[[], float]:
    def check(rings=tuple(rings)) -> float:
        for ring in rings:
            if ring._frames:
                return -inf
        return inf

    return check


def _task_check(task) -> Callable[[], float] | None:
    """Build the no-op-deadline predicate for one task, or None."""
    kind = type(task)
    if isinstance(task, SoftwareSwitch):
        return _switch_check(task, task.paths)
    if kind is _Worker:
        return _switch_check(task.switch, task.paths)
    if kind is GuestL2Fwd:
        return _l2fwd_check(task)
    if kind is GuestValeXConnect:
        return _rings_check((task.vif_a.to_guest, task.vif_b.to_guest))
    if kind is GuestValeBridge:
        return _rings_check((task.gen_to_bridge, task.vif.to_guest))
    rings = getattr(task, "park_rings", None)
    if rings is not None:
        # Pure-reactive drainers (guest monitors, FloWatcher): idle iff
        # every watched ring is empty.  (A monitor-only core parks itself
        # and never reaches the bulk path; this covers mixed cores.)
        return _rings_check(rings)
    return None


class _Profile:
    """Bulk-advance profile of one core: its task deadline predicates."""

    __slots__ = ("core", "checks")

    def __init__(self, core: Core, checks) -> None:
        self.core = core
        self.checks = checks

    def deadline(self) -> float:
        """Polls strictly before this time are no-ops; -inf means busy."""
        core = self.core
        if core._sleeping or not core._started:
            return -inf
        deadline = inf
        for check in self.checks:
            value = check()
            if value < deadline:
                deadline = value
                if deadline == -inf:
                    break
        return deadline


def _core_profile(core: Core) -> _Profile | None:
    if (
        core.interrupt_driven
        or core._park_rings is not None
        or core.obs is not None
        or not core.tasks
    ):
        return None
    checks = []
    for task in core.tasks:
        check = _task_check(task)
        if check is None:
            return None
        checks.append(check)
    return _Profile(core, checks)


def _chain_delay(core: Core) -> float:
    """The idle re-arm delay, via the same memo ``Core._iterate`` keeps."""
    idle_cycles, delay = core._idle_cache
    if idle_cycles != core.idle_loop_cycles:
        idle_cycles = core.idle_loop_cycles
        delay = core.cycles_to_ns(idle_cycles)
        core._idle_cache = (idle_cycles, delay)
    return delay


# -- eligibility --------------------------------------------------------------


def _eligibility(tb: "Testbed", watchdog_active: bool) -> None:
    if watchdog_active:
        raise _Decline("watchdog-active")
    if tb.sim._observer is not None:
        raise _Decline("per-packet-tracing")
    scenario = tb.scenario
    if scenario not in _SCENARIOS and not scenario.startswith(_SCENARIO_PREFIXES):
        raise _Decline(f"scenario:{scenario}")
    population = tb.extras.get("flow_population")
    if population is not None:
        # Same contract as the replay tier: flow-diverse load keeps the
        # stateful caches (EMC, MAC table, flow table) churning, so the
        # cores rarely idle long enough for bulk spans to pay off — and
        # callers rely on the stable PR 6 decline reasons.
        raise _Decline("flow-churn" if population.churn_fps else "multi-flow-traffic")
    if tb.extras.get("flowstats") is not None:
        raise _Decline("flow-telemetry")
    sw = tb.switch
    if sw.params.pipeline or sw._stalls is not None:
        raise _Decline("pipeline-switch")
    if sw.params.interrupt_driven:
        raise _Decline("interrupt-driven")
    if sw.obs is not None:
        raise _Decline("per-packet-tracing")


# -- the drive loop -----------------------------------------------------------


class _LoopState:
    __slots__ = (
        "verified", "reverify", "dead", "dead_reason",
        "bulk_events", "bulk_ns", "verify_ns", "spans",
    )

    def __init__(self) -> None:
        self.verified = 0
        self.reverify = False
        self.dead = False
        self.dead_reason = ""
        self.bulk_events = 0
        self.bulk_ns = 0.0
        self.verify_ns = 0.0
        self.spans = 0


def _advance(chains, bound_t, bound_s, t_end, seq):
    """Merged k-way idle-chain advance (pure computation on ``chains``).

    ``chains`` rows are ``[t, seq, cb, core, delay, fired, deadline]``;
    rows mutate in place.  Returns ``(total_fired, last_time, next_seq)``.
    Ordering matches the heap exactly: the earliest ``(time, seq)`` chain
    head fires, takes the next global seq for its re-arm, and steps by
    its own delay; everything stops strictly before the first non-chain
    event and before the first poll that reaches its chain's no-op
    deadline (that poll does real work, so it bounds every chain).
    """
    if len(chains) == 1:
        # Single chain (p2p/p2v/v2v spans): a pure float-accumulation
        # loop.  After the first fire the chain's re-arm seqs exceed
        # every pending heap seq, so a time tie with the bound always
        # resolves to the bound and the seq test collapses away.
        chain = chains[0]
        t = chain[0]
        if (
            t > t_end
            or t > bound_t
            or (t == bound_t and chain[1] > bound_s)
            or t >= chain[6]
        ):
            return 0, None, seq
        delay = chain[4]
        stop = bound_t if bound_t < chain[6] else chain[6]
        total = 0
        last_t = t
        while True:
            total += 1
            last_t = t
            t += delay
            if t >= stop or t > t_end:
                break
        chain[0] = t
        chain[1] = seq + total - 1
        chain[5] += total
        return total, last_t, seq + total
    total = 0
    last_t = None
    while True:
        best = None
        bt = bs = None
        for chain in chains:
            ct = chain[0]
            if best is None or ct < bt or (ct == bt and chain[1] < bs):
                best = chain
                bt = ct
                bs = chain[1]
        if bt > t_end or bt > bound_t or (bt == bound_t and bs > bound_s):
            break
        if bt >= best[6]:
            break
        total += 1
        best[5] += 1
        last_t = bt
        best[1] = seq
        seq += 1
        best[0] = bt + best[4]
    return total, last_t, seq


def _scan_horizon(queue, profiles) -> float:
    """Earliest pending event that is not an eligible idle chain poll."""
    horizon = inf
    for entry in queue:
        ecb = entry[2]
        if ecb.__class__ is _MethodType and ecb.__func__ is _ITERATE:
            ecore = ecb.__self__
            key = id(ecore)
            eprofile = profiles.get(key, False)
            if eprofile is False:
                eprofile = _core_profile(ecore)
                profiles[key] = eprofile
            if eprofile is not None and eprofile.deadline() > entry[0]:
                continue
        if entry[0] < horizon:
            horizon = entry[0]
    return horizon


def turbo_drive(tb: "Testbed", t_end: float, watchdog_active: bool = False) -> WarpReport:
    """Run ``tb`` to ``t_end`` with bulk idle-poll advance; exact always.

    Replaces the caller's dispatch loop (the caller's ``run_until(t_end)``
    afterwards only clamps the clock).  Returns a :class:`WarpReport` with
    ``mode="turbo"``; on decline the simulator has not been touched.
    """
    try:
        _eligibility(tb, watchdog_active)
    except _Decline as decline:
        return WarpReport(engaged=False, reason=decline.reason, mode="turbo")
    _add_lazy_benign()

    sim = tb.sim
    if sim._running:
        raise SimulationError("dispatch is not reentrant")
    st = _LoopState()
    # Profile every core upfront (the core set and the profile inputs are
    # fixed for the duration of a drive -- the per-drive cache below
    # already relies on that).  Knowing there is exactly one eligible
    # chain core lets the solo fast path skip its per-span queue scan.
    profiles: dict[int, _Profile | None] = {}
    n_eligible = 0
    for node in tb.machine.nodes:
        for candidate in node.cores:
            candidate_profile = _core_profile(candidate)
            profiles[id(candidate)] = candidate_profile
            if candidate_profile is not None:
                n_eligible += 1
    solo_core = n_eligible == 1
    # Cached time of the earliest pending event that is *not* an idle
    # chain poll.  Only dispatched callbacks can schedule new events, so
    # the cache stays valid until a non-chain callback (or a busy poll)
    # runs; it lets the hot loop skip span setup for the short idle gaps
    # that pepper saturated stretches.
    horizon_t = None
    sim._running = True
    try:
        queue = sim._queue
        while queue and queue[0][0] <= t_end:
            t, s, cb = heappop(queue)
            if cb.__class__ is _MethodType and cb.__func__ is _ITERATE:
                core = cb.__self__
                key = id(core)
                profile = profiles.get(key, False)
                if profile is False:
                    profile = _core_profile(core)
                    profiles[key] = profile
                if profile is not None and not st.dead:
                    delay = core._idle_cache[1] or _chain_delay(core)
                    if horizon_t is None:
                        horizon_t = _scan_horizon(queue, profiles)
                    deadline = profile.deadline()
                    limit = horizon_t if horizon_t < deadline else deadline
                    if limit - t >= delay * MIN_SPAN_POLLS:
                        if st.verified >= VERIFY_SPANS and not st.reverify:
                            # Solo-chain fast path: when no *other*
                            # eligible idle chain is pending (the common
                            # p2p/p2v shape -- one run-to-completion
                            # core), the k-way merge in _bulk_span
                            # degenerates to a single float-accumulation
                            # loop, so run it inline: no chain rows, no
                            # queue rebuild, no heapify.  The float ops,
                            # stop rule and seq assignment are exactly
                            # _advance's single-chain case.
                            solo = solo_core
                            if not solo:
                                solo = True
                                for entry in queue:
                                    ecb = entry[2]
                                    if (
                                        ecb.__class__ is _MethodType
                                        and ecb.__func__ is _ITERATE
                                    ):
                                        eid = id(ecb.__self__)
                                        eprofile = profiles.get(eid, False)
                                        if eprofile is False:
                                            eprofile = _core_profile(ecb.__self__)
                                            profiles[eid] = eprofile
                                        if eprofile is not None:
                                            solo = False
                                            break
                            if solo:
                                delay = _chain_delay(core)
                                bound_t = queue[0][0] if queue else inf
                                stop = bound_t if bound_t < deadline else deadline
                                total = 0
                                last_t = tt = t
                                while True:
                                    total += 1
                                    last_t = tt
                                    tt += delay
                                    if tt >= stop or tt > t_end:
                                        break
                                seq = sim._seq
                                sim._seq = seq + total
                                sim.events_executed += total
                                sim._now = last_t
                                core._idle_streak += total
                                heappush(queue, (tt, seq + total - 1, cb))
                                st.spans += 1
                                st.bulk_events += total
                                st.bulk_ns += last_t - t
                                continue
                        _bulk_span(sim, queue, t, s, cb, core, deadline,
                                   _chain_delay(core), profiles, t_end, st)
                        if st.verified <= VERIFY_SPANS:
                            horizon_t = None
                        continue
                    # Short gap: dispatch for real.  An idle poll only
                    # re-arms itself, so the horizon survives unless the
                    # poll turns out busy (it then schedules deliveries).
                    busy0 = core.busy_ns
                    sim._now = t
                    cb()
                    sim.events_executed += 1
                    if core.busy_ns != busy0:
                        horizon_t = None
                    continue
                sim._now = t
                cb()
                sim.events_executed += 1
                horizon_t = None
                continue
            if not st.dead and getattr(cb, "__code__", None) not in _BENIGN:
                st.reverify = True
            sim._now = t
            cb()
            sim.events_executed += 1
            horizon_t = None
    finally:
        sim._running = False

    if st.dead:
        return WarpReport(
            engaged=False, reason=st.dead_reason, mode="turbo",
            verify_ns=st.verify_ns,
        )
    return WarpReport(
        engaged=True,
        mode="turbo",
        warped_ns=st.bulk_ns,
        events_replayed=st.bulk_events,
        verify_ns=st.verify_ns,
    )


def _bulk_span(sim, queue, t0, s0, cb0, core0, deadline0, delay0, profiles, t_end, st):
    """Advance every currently-idle chain from ``t0`` to the next event."""
    chains = [[t0, s0, cb0, core0, delay0, 0, deadline0]]
    if queue:
        kept = []
        moved = False
        for entry in queue:
            ecb = entry[2]
            if ecb.__class__ is _MethodType and ecb.__func__ is _ITERATE:
                ecore = ecb.__self__
                key = id(ecore)
                eprofile = profiles.get(key, False)
                if eprofile is False:
                    eprofile = _core_profile(ecore)
                    profiles[key] = eprofile
                if eprofile is not None:
                    edeadline = eprofile.deadline()
                    if edeadline > entry[0]:
                        chains.append(
                            [entry[0], entry[1], ecb, ecore,
                             _chain_delay(ecore), 0, edeadline]
                        )
                        moved = True
                        continue
            kept.append(entry)
        if moved:
            queue[:] = kept
            heapify(queue)
    if queue:
        bound_t, bound_s = queue[0][0], queue[0][1]
    else:
        bound_t, bound_s = inf, 0

    st.spans += 1
    if st.verified >= VERIFY_SPANS and not st.reverify:
        total, last_t, seq = _advance(chains, bound_t, bound_s, t_end, sim._seq)
        sim._seq = seq
        sim.events_executed += total
        sim._now = last_t
        for t, s, cb, core, _delay, fired, _deadline in chains:
            if fired:
                core._idle_streak += fired
            heappush(queue, (t, s, cb))
        st.bulk_events += total
        st.bulk_ns += last_t - t0
        return

    # Verification span: predict, then dispatch for real and compare.
    predicted = [list(chain) for chain in chains]
    p_total, p_last_t, p_seq = _advance(predicted, bound_t, bound_s, t_end, sim._seq)
    before = [
        (chain[3].busy_ns, chain[3]._idle_streak) for chain in chains
    ]
    # Each re-arm builds a fresh bound method, so identify chain entries
    # by the core they are bound to, never by callback object identity.
    core_index = {}
    for index, chain in enumerate(chains):
        core_index[id(chain[3])] = index
        heappush(queue, (chain[0], chain[1], chain[2]))

    fired = 0
    while queue and queue[0][0] <= t_end and fired <= p_total:
        ft, fs, fcb = queue[0]
        if not (
            fcb.__class__ is _MethodType
            and fcb.__func__ is _ITERATE
            and id(fcb.__self__) in core_index
        ):
            break
        if ft > bound_t or (ft == bound_t and fs > bound_s):
            break
        if ft >= chains[core_index[id(fcb.__self__)]][6]:
            break  # this poll reaches its no-op deadline: real work ahead
        heappop(queue)
        sim._now = ft
        fcb()
        sim.events_executed += 1
        fired += 1

    ok = (
        fired == p_total
        and sim._seq == p_seq
        and sim._now == p_last_t
    )
    if ok:
        rearms = {}
        for entry in queue:
            ecb = entry[2]
            if not (ecb.__class__ is _MethodType and ecb.__func__ is _ITERATE):
                continue
            index = core_index.get(id(ecb.__self__))
            if index is not None:
                rearms[index] = (entry[0], entry[1], rearms.get(index, (None, None, 0))[2] + 1)
        for index, chain in enumerate(chains):
            busy0, streak0 = before[index]
            pred = predicted[index]
            core = chain[3]
            rearm = rearms.get(index)
            if (
                core.busy_ns != busy0
                or core._idle_streak != streak0 + pred[5]
                or rearm is None
                or rearm[2] != 1
                or rearm[0] != pred[0]
                or rearm[1] != pred[1]
            ):
                ok = False
                break
    if ok:
        st.verified += 1
        st.reverify = False
        st.verify_ns += (p_last_t - t0) if p_last_t is not None else 0.0
    else:
        st.dead = True
        st.dead_reason = "verify-mismatch"
