"""Steady-state fast-forward: replay-based time warp for saturating runs.

Long measurement windows spend almost all wall-clock re-executing the
same poll/burst machinery: the generator's pacing chain, wire
serialisation, the PCIe push, and the switch's poll loop form a small,
closed set of event shapes whose future evolution is fully determined by
a handful of floats and counters.  :func:`try_warp` detects that regime,
*verifies* it by shadow-replaying a slice of the window against real
dispatch, and then replays the remainder of the window with specialised
handlers that perform **the same floating-point operations in the same
order** as event-by-event execution -- bypassing only the generic heap
dispatch, closure allocation, and layered call overhead.  Every counter,
timestamp accumulation, RNG draw, and pending-event seq is reconstructed
exactly; the result is bit-identical to the un-warped run.

Safety model
------------
* **Eligibility** is conservative: only the p2p unidirectional scenario
  on run-to-completion switches (BESS, FastClick, OvS-DPDK, VPP, t4p4s)
  engages.  Pipeline (Snabb) and interrupt-driven (VALE) switches, VM
  scenarios, probe/latency traffic, attached observers, fault plans and
  watchdogs all *decline* with a reason string and fall back to normal
  dispatch, untouched.
* **Poll-synchronous jitter is replayed, not skipped**: the replay calls
  the real :class:`~repro.switches.jitter.CostJitter` (or a bit-exact
  clone during verification) at exactly the poll instants real dispatch
  would, so the RNG stream advances identically.
* **Two-pass verification**: before committing anything, the first slice
  of the window is executed *both* ways -- real dispatch on the real
  testbed, replay on cloned state -- and every counter, float, ring
  entry, RNG state and pending event is compared bitwise.  On any
  mismatch the warp declines; the real run was only ever advanced by
  real dispatch, so nothing can be corrupted.

The driver-hiccup hash (:func:`repro.nic.port._hiccup_base`) makes rare
per-frame drops data-dependent; the replay prescans the whole span's
burst timestamps with a vectorised FNV-1a fold and routes the few
flagged bursts through the exact per-frame loop.
"""

from __future__ import annotations

import copy
import math
import os
import types
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.packet import DEFAULT_DST_MAC, DEFAULT_SRC_MAC, PacketBlock
from repro.core.ring import Ring
from repro.core.units import wire_time_ns
from repro.cpu.cores import Core
from repro.nic.port import _DENOM53, _FNV_PRIME, NicPort, _name_hash
from repro.switches.base import PhyAttachment, SoftwareSwitch
from repro.traffic.generator import PacedSource

if TYPE_CHECKING:
    from repro.scenarios.base import Testbed

#: Fast-forward algorithm revision; part of the campaign cache
#: fingerprint so cached rows from different engine modes never mix.
WARP_VERSION = 1

#: Smallest shadow-verification slice.  Must cover several jitter
#: resample periods so the RNG-clone replay is actually exercised.
MIN_VERIFY_NS = 250_000.0

_M32 = 0xFFFFFFFF


def warp_enabled(default: bool = True) -> bool:
    """Whether the environment enables the warp (``REPRO_WARP``)."""
    value = os.environ.get("REPRO_WARP", "").strip().lower()
    if value in ("0", "false", "off", "no"):
        return False
    if value in ("1", "true", "on", "yes"):
        return True
    return default


def engine_features() -> dict[str, Any]:
    """Engine feature flags that must invalidate cached campaign rows.

    The exact tiers (replay warp, chain turbo) are bit-identical to
    event-by-event execution, so they share one fingerprint.  Fluid mode
    approximates, so its participation -- and its tolerance -- become
    extra fingerprint keys, but only when enabled: rows cached before
    fluid mode existed stay valid for exact runs.
    """
    features: dict[str, Any] = {"warp": warp_enabled(), "warp_version": WARP_VERSION}
    from repro.core.fluid import FLUID_VERSION, fluid_enabled, fluid_tolerance

    if fluid_enabled():
        features["fluid"] = True
        features["fluid_version"] = FLUID_VERSION
        features["fluid_tolerance"] = fluid_tolerance()
    return features


@dataclass
class WarpReport:
    """What the fast-forward engine did (or why it declined) for one run.

    ``mode`` names the tier that produced the report: ``"replay"`` for
    the p2p steady-state mirror, ``"turbo"`` for the multi-hop chain
    turbo, ``"fluid"`` for the rate-based approximation tier.
    """

    engaged: bool
    reason: str = ""
    warped_ns: float = 0.0
    events_replayed: int = 0
    verify_ns: float = 0.0
    mode: str = "replay"

    def describe(self) -> str:
        if self.engaged:
            return (
                f"engaged[{self.mode}]: replayed {self.events_replayed} events over "
                f"{self.warped_ns / 1e6:.3f} ms (verified {self.verify_ns / 1e3:.0f} us)"
            )
        return f"declined[{self.mode}]: {self.reason}"


class _Decline(Exception):
    """Raised anywhere during engagement; aborts cleanly to real dispatch."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# -- pending-event recognition ---------------------------------------------
#
# The engine's heap stores raw callbacks.  The three in-flight closure
# shapes (wire arrival, PCIe push, switch deliver) are recognised by
# their code objects; warp-reconstructed closures (created by the makers
# below, with the same free-variable names) behave identically and are
# registered under the same kinds so a committed heap re-parses cleanly.

TICK, ARR0, PUSH, POLL, DLV, ARR1 = range(6)


def _cb_arrive(peer: NicPort, arrivals: list) -> Callable[[], None]:
    return lambda: peer._receive(arrivals)


def _cb_push(ring: Ring, packets: list) -> Callable[[], None]:
    return lambda: ring.push_batch(packets)


def _cb_deliver(port: NicPort, packets: list) -> Callable[[], None]:
    return lambda: port.send_batch(packets)


def _inner_lambda(func: Callable) -> types.CodeType:
    codes = [
        const
        for const in func.__code__.co_consts
        if isinstance(const, types.CodeType) and const.co_name == "<lambda>"
    ]
    if len(codes) != 1:  # pragma: no cover - structural invariant
        raise RuntimeError(f"expected exactly one lambda in {func!r}")
    return codes[0]


_ARRIVE_CODES = (_inner_lambda(NicPort.send_batch), _inner_lambda(_cb_arrive))
_PUSH_CODES = (_inner_lambda(NicPort._receive), _inner_lambda(_cb_push))
_DELIVER_CODES = (_inner_lambda(PhyAttachment.deliver), _inner_lambda(_cb_deliver))


def _closure_cells(cb: Callable) -> dict[str, Any]:
    return {
        name: cell.cell_contents
        for name, cell in zip(cb.__code__.co_freevars, cb.__closure__)
    }


# -- eligibility ------------------------------------------------------------


class _Ctx:
    """Resolved testbed objects + loop-invariant constants for one warp."""

    __slots__ = (
        "tb", "sim", "sw", "path", "core", "ring", "src", "meter",
        "gen0", "gen1", "sut0", "sut1",
        "frame_size", "flow_id", "burst", "gap",
        "wire0", "wire1", "maxb0", "maxb1", "prob0", "prob1",
        "nh0", "nh1", "pcie", "freq", "idle_loop_cycles",
        "batch_size", "batch_wait", "cap",
        "rx_cost", "tx_cost", "flags0", "flags1",
    )


def _eligibility(tb: "Testbed", watchdog_active: bool) -> _Ctx:
    """Resolve the p2p steady-state structure or raise :class:`_Decline`."""
    from repro.core.packet import blocks_enabled
    from repro.switches.bess import Bess
    from repro.switches.fastclick import FastClick
    from repro.switches.ovs_dpdk import OvsDpdk
    from repro.switches.t4p4s import T4P4S
    from repro.switches.vpp import Vpp
    from repro.traffic.moongen import MoonGenRx, MoonGenTx

    if watchdog_active:
        raise _Decline("watchdog-active")
    if tb.scenario != "p2p":
        raise _Decline(f"scenario:{tb.scenario}")
    population = tb.extras.get("flow_population")
    if population is not None:
        # Flow-diverse offered load drives stateful cache dynamics (EMC
        # thrash, eviction storms) the steady-state replay does not model.
        # Checked before the observability gates so --profile surfaces the
        # traffic-shape reason rather than its own tracing decline.
        raise _Decline("flow-churn" if population.churn_fps else "multi-flow-traffic")
    if tb.extras.get("flowstats") is not None:
        # Per-flow accounting reads every drop/send/forward event; the
        # replayed fast-path skips those call sites, so warping would
        # silently under-count the telemetry.
        raise _Decline("flow-telemetry")
    if tb.sim._observer is not None:
        raise _Decline("per-packet-tracing")
    if not blocks_enabled():
        raise _Decline("per-packet-emission")
    if tb.extras.get("fault_injector") is not None:
        raise _Decline("fault-plan-active")
    txs = tb.extras.get("tx")
    rxs = tb.extras.get("rx")
    if not txs or not rxs:
        raise _Decline("unrecognized-testbed")
    if len(txs) != 1 or len(rxs) != 1 or len(tb.meters) != 1:
        raise _Decline("bidirectional")

    sw = tb.switch
    params = sw.params
    if type(sw) not in (Bess, FastClick, OvsDpdk, Vpp, T4P4S):
        if params.pipeline:
            raise _Decline("pipeline-switch")
        if params.interrupt_driven:
            raise _Decline("interrupt-driven")
        raise _Decline(f"unsupported-switch:{params.name}")
    if params.pipeline or sw._stalls is not None:
        raise _Decline("pipeline-switch")
    if params.interrupt_driven:
        raise _Decline("interrupt-driven")
    if sw.obs is not None:
        raise _Decline("per-packet-tracing")
    if sw.flowstats is not None:
        # Belt-and-braces for a switch wired directly (wire_flowstats
        # normally also registers the session in tb.extras).
        raise _Decline("flow-telemetry")
    if sw._overload_factor() != 1.0:
        raise _Decline("overloaded-switch")
    if type(sw) is OvsDpdk and len(sw.flow_table):
        raise _Decline("openflow-rules")
    if len(sw.paths) != 1:
        raise _Decline("bidirectional")
    path = sw.paths[0]
    if type(path.input) is not PhyAttachment or type(path.output) is not PhyAttachment:
        raise _Decline("vif-path")
    if path.bidir_vif:
        raise _Decline("bidirectional")

    src = txs[0]
    rx = rxs[0]
    if type(src) is not MoonGenTx or type(rx) is not MoonGenRx:
        raise _Decline("unrecognized-generator")
    if src.probe_interval_ns is not None:
        raise _Decline("probes-active")
    population = getattr(src, "flow_population", None)
    if population is not None:
        # Belt-and-braces for a source handed a population directly,
        # without apply_flow_axis registering it in tb.extras.
        raise _Decline("flow-churn" if population.churn_fps else "multi-flow-traffic")
    if not src._uniform:
        raise _Decline("non-uniform-traffic")
    if src._halted or src._stop_at is not None:
        raise _Decline("source-halted")
    if src.frame_size != tb.frame_size:
        raise _Decline("non-uniform-traffic")

    sut0 = path.input.port
    sut1 = path.output.port
    gen0 = sut0.peer
    gen1 = sut1.peer
    if gen0 is None or gen1 is None or src.port is not gen0:
        raise _Decline("unrecognized-testbed")
    if rx.port is not gen1 or gen1.sink != rx._on_packets:
        raise _Decline("unrecognized-testbed")
    if rx.meter is not tb.meters[0]:
        raise _Decline("unrecognized-testbed")
    for port in (gen0, gen1, sut0, sut1):
        if "send_batch" in port.__dict__:
            raise _Decline("link-down")
        if port._pcie_stall_base is not None:
            raise _Decline("fault-plan-active")
        if port.rx_moderation_ns is not None:
            raise _Decline("rx-moderation")
    if gen0.sink is not None or sut0.sink is not None or sut1.sink is not None:
        raise _Decline("unrecognized-testbed")
    ring = sut0.rx_ring
    if type(ring) is not Ring or type(sut1.rx_ring) is not Ring:
        raise _Decline("ring-faulted")
    if ring.on_push is not None:
        raise _Decline("ring-faulted")

    core = tb.sut_core
    if sw.core is not core or core.tasks != [sw]:
        raise _Decline("unrecognized-testbed")
    if core.obs is not None:
        raise _Decline("per-packet-tracing")
    if core._sleeping or core._park_rings is not None or not core._started:
        raise _Decline("core-state")

    ctx = _Ctx()
    ctx.tb = tb
    ctx.sim = tb.sim
    ctx.sw = sw
    ctx.path = path
    ctx.core = core
    ctx.ring = ring
    ctx.src = src
    ctx.meter = rx.meter
    ctx.gen0, ctx.gen1, ctx.sut0, ctx.sut1 = gen0, gen1, sut0, sut1
    ctx.frame_size = tb.frame_size
    ctx.flow_id = src.flow_id
    ctx.burst = src.burst
    ctx.gap = src.burst * 1e9 / src.rate_pps
    ctx.wire0 = wire_time_ns(ctx.frame_size, gen0.rate_bps)
    ctx.wire1 = wire_time_ns(ctx.frame_size, sut1.rate_bps)
    ctx.maxb0 = gen0.tx_slots * ctx.wire0
    ctx.maxb1 = sut1.tx_slots * ctx.wire1
    ctx.prob0 = gen0.driver_drop_prob
    ctx.prob1 = sut1.driver_drop_prob
    ctx.nh0 = _name_hash(gen0.name)
    ctx.nh1 = _name_hash(sut1.name)
    ctx.pcie = sut0.pcie_latency_ns
    ctx.freq = core.freq_hz
    ctx.idle_loop_cycles = core.idle_loop_cycles
    ctx.batch_size = params.batch_size
    ctx.batch_wait = params.batch_wait_ns
    ctx.cap = ring.capacity
    ctx.rx_cost = path.input.rx_cost(params)
    ctx.tx_cost = path.output.tx_cost(params)
    ctx.flags0 = {}
    ctx.flags1 = {}
    return ctx


# -- snapshot ---------------------------------------------------------------


class _Snap:
    """Light mirror of every piece of state the replay evolves."""

    __slots__ = (
        "now", "seq", "events", "pkt_seq",
        "busy0", "txp0", "txb0", "txd0", "dd0", "rx_sut0",
        "busy1", "txp1", "txb1", "txd1", "dd1", "rx_gen1",
        "ringq", "frames", "enq", "drop",
        "busy_ns", "idle_streak", "idle_cc", "idle_cd",
        "forwarded", "total_fwd", "wait_started",
        "m_pkts", "m_bytes", "m_warm", "packets_sent",
        "heap",
    )


def _mirror_block(ctx: _Ctx, item: Any, hops: int) -> PacketBlock:
    if item.__class__ is not PacketBlock:
        raise _Decline("probes-active")
    if item.flows is not None:
        raise _Decline("multi-flow-traffic")
    if item.size != ctx.frame_size or item.flow_id != ctx.flow_id:
        raise _Decline("non-uniform-traffic")
    if item.hops != hops:
        raise _Decline("unrecognized-event")
    return PacketBlock(
        item.size, item.flow_id, item.src_mac, item.dst_mac,
        item.t_created, item.count, item.hops, item.seq0,
    )


def _snapshot(ctx: _Ctx) -> _Snap:
    """Parse the live heap + counters into a replayable mirror."""
    import repro.core.packet as packet_mod

    sim = ctx.sim
    st = _Snap()
    st.now = sim._now
    st.seq = sim._seq
    st.events = sim.events_executed
    st.pkt_seq = packet_mod._next_seq
    gen0, gen1, sut0, sut1 = ctx.gen0, ctx.gen1, ctx.sut0, ctx.sut1
    st.busy0 = gen0._tx_busy_until_ns
    st.txp0, st.txb0 = gen0.tx_packets, gen0.tx_bytes
    st.txd0, st.dd0 = gen0.tx_dropped, gen0.driver_drops
    st.rx_sut0 = sut0.rx_packets
    st.busy1 = sut1._tx_busy_until_ns
    st.txp1, st.txb1 = sut1.tx_packets, sut1.tx_bytes
    st.txd1, st.dd1 = sut1.tx_dropped, sut1.driver_drops
    st.rx_gen1 = gen1.rx_packets
    ring = ctx.ring
    st.ringq = deque(_mirror_block(ctx, b, 0) for b in ring._queue)
    st.frames = ring._frames
    st.enq = ring.enqueued
    st.drop = ring.dropped
    core = ctx.core
    st.busy_ns = core.busy_ns
    st.idle_streak = core._idle_streak
    st.idle_cc, st.idle_cd = core._idle_cache
    st.forwarded = ctx.path.forwarded
    st.total_fwd = ctx.sw.total_forwarded
    st.wait_started = ctx.path.wait_started_ns
    meter = ctx.meter
    st.m_pkts, st.m_bytes, st.m_warm = meter.packets, meter.bytes, meter.warmup_packets
    st.packets_sent = ctx.src.packets_sent

    heap: list = []
    ticks = polls = 0
    for time, seq, cb in sim._queue:
        func = getattr(cb, "__func__", None)
        if func is not None:
            owner = cb.__self__
            if func is PacedSource._tick and owner is ctx.src:
                heap.append((time, seq, TICK, None))
                ticks += 1
                continue
            if func is Core._iterate and owner is core:
                heap.append((time, seq, POLL, None))
                polls += 1
                continue
            raise _Decline("unrecognized-event")
        code = getattr(cb, "__code__", None)
        if code in _ARRIVE_CODES:
            cells = _closure_cells(cb)
            peer, arrivals = cells["peer"], cells["arrivals"]
            if peer is sut0:
                heap.append(
                    (time, seq, ARR0,
                     [(_mirror_block(ctx, b, 0), busy) for b, busy in arrivals])
                )
            elif peer is gen1:
                heap.append(
                    (time, seq, ARR1,
                     [(_mirror_block(ctx, b, 1), busy) for b, busy in arrivals])
                )
            else:
                raise _Decline("unrecognized-event")
            continue
        if code in _PUSH_CODES:
            cells = _closure_cells(cb)
            if cells["ring"] is not ring:
                raise _Decline("unrecognized-event")
            heap.append(
                (time, seq, PUSH, [_mirror_block(ctx, b, 0) for b in cells["packets"]])
            )
            continue
        if code in _DELIVER_CODES:
            cells = _closure_cells(cb)
            if cells["port"] is not sut1:
                raise _Decline("unrecognized-event")
            heap.append(
                (time, seq, DLV, [_mirror_block(ctx, b, 1) for b in cells["packets"]])
            )
            continue
        raise _Decline("unrecognized-event")
    if ticks != 1 or polls != 1:
        raise _Decline("unrecognized-event")
    heap.sort(key=lambda entry: (entry[0], entry[1]))
    st.heap = heap
    return st


# -- driver-hiccup prescan --------------------------------------------------


def _prescan(ctx: _Ctx, st: _Snap, t_end: float) -> None:
    """Vectorised FNV-1a sweep flagging (burst timestamp, frame index)
    pairs the per-frame hiccup hash will drop.

    Burst timestamps are fully predetermined: the pacing chain advances
    by the same repeated float addition the replay performs, and every
    block already in flight carries its ``t_created``.  The integer
    arithmetic matches the scalar path bit for bit, so there are no
    false negatives; a flagged timestamp merely routes that burst
    through the exact per-frame loop.
    """
    ctx.flags0 = {}
    ctx.flags1 = {}
    t_ints: set[int] = set()
    tick_time = None
    for time, _seq, kind, payload in st.heap:
        if kind in (ARR0, ARR1):
            for block, _busy in payload:
                t_ints.add(int(block.t_created))
        elif kind in (PUSH, DLV):
            for block in payload:
                t_ints.add(int(block.t_created))
        elif kind == TICK:
            tick_time = time
    for block in st.ringq:
        t_ints.add(int(block.t_created))
    # Pending tick chain: exact float accumulation, as the replay performs.
    t = tick_time
    gap = ctx.gap
    while t <= t_end:
        t_ints.add(int(t))
        t += gap

    if not t_ints:
        return
    arr = np.fromiter(t_ints, dtype=np.uint64, count=len(t_ints))
    prime = np.uint64(_FNV_PRIME)
    mask32 = np.uint64(_M32)
    size = np.uint64(ctx.frame_size & _M32)
    flow = np.uint64(ctx.flow_id & _M32)
    for name_hash, hops, max_index, prob, flags in (
        (ctx.nh0, 0, ctx.burst, ctx.prob0, ctx.flags0),
        (ctx.nh1, 1, ctx.batch_size, ctx.prob1, ctx.flags1),
    ):
        if prob <= 0.0:
            continue
        base = (np.uint64(name_hash) ^ (arr & mask32)) * prime
        base = (base ^ size) * prime
        base = (base ^ flow) * prime
        base = (base ^ np.uint64(hops & _M32)) * prime
        idx = np.arange(max_index, dtype=np.uint64)
        # ``(v >> 11) / 2**53 < prob`` compared in integers: ``v >> 11``
        # is < 2**53 (exact as float64), division by a power of two is
        # exact, and ``prob * 2**53`` only shifts the exponent -- so the
        # float comparison is equivalent to an integer one against its
        # floor (strict when the product is itself an integer).
        cut = prob * _DENOM53
        floor_cut = math.floor(cut)
        threshold = np.uint64(floor_cut if cut != floor_cut else floor_cut - 1)
        # Chunk the (timestamps x frame-index) matrix to bound memory on
        # long horizons (300 ms x 256-frame batches would be ~300 MB flat).
        step = max(1, (1 << 22) // max_index)
        for lo in range(0, len(base), step):
            chunk = base[lo:lo + step]
            values = (chunk[:, None] ^ idx[None, :]) * prime
            hit = (values >> np.uint64(11)) <= threshold
            for row, col in zip(*np.nonzero(hit)):
                flags.setdefault(int(arr[lo + int(row)]), []).append(int(col))


# -- switch backends --------------------------------------------------------


def _clone_generator(rng: np.random.Generator) -> np.random.Generator:
    bit_gen = type(rng.bit_generator)()
    bit_gen.state = rng.bit_generator.state
    return np.random.Generator(bit_gen)


class _JitterMirror:
    """Bit-exact clone of :class:`CostJitter` over a cloned RNG stream."""

    __slots__ = ("sigma", "period_ns", "mult", "next_resample", "rng")

    def __init__(self, jitter) -> None:
        self.sigma = jitter.sigma
        self.period_ns = jitter.period_ns
        self.mult = jitter._multiplier
        self.next_resample = jitter._next_resample_ns
        self.rng = _clone_generator(jitter._rng)

    def multiplier(self, now_ns: float) -> float:
        if self.sigma == 0.0:
            return 1.0
        if now_ns >= self.next_resample:
            mu = 0.5 * self.sigma * self.sigma
            self.mult = float(math.exp(self.rng.normal(mu, self.sigma)))
            self.next_resample = now_ns + self.period_ns
        return self.mult


def _clone_switch(sw: SoftwareSwitch) -> SoftwareSwitch:
    """Shallow clone whose hook-mutable state is copied, everything else
    shared (paths are shared on purpose: BESS keys pipelines by path id)."""
    from repro.switches.bess import Bess
    from repro.switches.ovs_dpdk import OvsDpdk
    from repro.switches.t4p4s import T4P4S
    from repro.switches.vpp import NodeRuntime, Vpp

    clone = copy.copy(sw)
    if type(sw) is OvsDpdk:
        clone._emc = dict(sw._emc)
        clone._megaflows = set(sw._megaflows)
        clone.megaflow_entries = list(sw.megaflow_entries)
    elif type(sw) is Vpp:
        clone.node_runtime = {
            name: NodeRuntime(calls=rt.calls, vectors=rt.vectors)
            for name, rt in sw.node_runtime.items()
        }
    elif type(sw) is Bess:
        clone.module_counters = dict(sw.module_counters)
    elif type(sw) is T4P4S:
        clone.stage_cycles = dict(sw.stage_cycles)
        clone.table = copy.copy(sw.table)
    return clone


class _Backend:
    """Switch-hook + jitter delegation target for one replay pass."""

    __slots__ = ("sw", "path", "jitter")

    def __init__(self, sw: SoftwareSwitch, path, jitter) -> None:
        self.sw = sw
        self.path = path
        self.jitter = jitter


def _real_backend(ctx: _Ctx) -> _Backend:
    return _Backend(ctx.sw, ctx.path, ctx.path.jitter)


def _clone_backend(ctx: _Ctx) -> _Backend:
    return _Backend(_clone_switch(ctx.sw), ctx.path, _JitterMirror(ctx.path.jitter))


# -- the replay loop --------------------------------------------------------


def _replay(ctx: _Ctx, st: _Snap, backend: _Backend, t_end: float) -> int:
    """Evolve the mirror through every event with ``time <= t_end``.

    Performs the identical float operations in the identical order as
    real dispatch; returns the number of events replayed.
    """
    heap = st.heap
    # Loop-invariant locals (hot path).
    fs = ctx.frame_size
    flow = ctx.flow_id
    burst = ctx.burst
    gap = ctx.gap
    wire0, wire1 = ctx.wire0, ctx.wire1
    maxb0, maxb1 = ctx.maxb0, ctx.maxb1
    pcie = ctx.pcie
    freq = ctx.freq
    idle_loop_cycles = ctx.idle_loop_cycles
    batch_size = ctx.batch_size
    batch_wait = ctx.batch_wait
    cap = ctx.cap
    rx_cost, tx_cost = ctx.rx_cost, ctx.tx_cost
    rx_pb, rx_pp, rx_pby = rx_cost.per_batch, rx_cost.per_packet, rx_cost.per_byte
    tx_pb, tx_pp, tx_pby = tx_cost.per_batch, tx_cost.per_packet, tx_cost.per_byte
    flags0_get = ctx.flags0.get
    flags1_get = ctx.flags1.get
    sw_proc = backend.sw._proc_cycles
    sw_forward = backend.sw._on_forward
    path = backend.path
    jit_mult = backend.jitter.multiplier
    cost_cache: dict[int, tuple[float, float]] = {}
    block_cls = PacketBlock
    pop = heappop
    push = heappush

    # Mirror registers.
    now = st.now
    seq = st.seq
    events0 = st.events
    events = events0
    pkt_seq = st.pkt_seq
    busy0, busy1 = st.busy0, st.busy1
    txp0, txb0, txd0, dd0 = st.txp0, st.txb0, st.txd0, st.dd0
    txp1, txb1, txd1, dd1 = st.txp1, st.txb1, st.txd1, st.dd1
    rx_sut0, rx_gen1 = st.rx_sut0, st.rx_gen1
    ringq = st.ringq
    ring_frames, enq, drop = st.frames, st.enq, st.drop
    busy_ns, idle_streak = st.busy_ns, st.idle_streak
    idle_cc, idle_cd = st.idle_cc, st.idle_cd
    forwarded, total_fwd = st.forwarded, st.total_fwd
    wait_started = st.wait_started
    m_pkts, m_bytes, m_warm = st.m_pkts, st.m_bytes, st.m_warm
    packets_sent = st.packets_sent
    meter = ctx.meter
    win_start = meter.window_start_ns
    win_end = meter.window_end_ns

    while heap and heap[0][0] <= t_end:
        entry = pop(heap)
        t = entry[0]
        kind = entry[2]
        events += 1
        now = t
        if kind == POLL:
            # Core._iterate -> switch poll -> _take_batch, mirrored.
            serve = False
            if ring_frames == 0:
                wait_started = None
            elif batch_wait is not None and ring_frames < batch_size:
                if wait_started is None:
                    wait_started = t
                elif t - wait_started >= batch_wait:
                    wait_started = None
                    serve = True
            else:
                wait_started = None
                serve = True
            if not serve:
                # Idle (or batch-wait) poll: zero cycles reported.
                idle_streak += 1
                if idle_cc != idle_loop_cycles:
                    idle_cc = idle_loop_cycles
                    idle_cd = idle_cc * 1e9 / freq
                if ring_frames == 0 and heap:
                    # Bulk-advance the idle grid to the next pending event
                    # with the exact repeated float addition real re-arms
                    # perform.  Stops before any tie so heap ordering
                    # decides, exactly as dispatch would.
                    bound = heap[0][0]
                    d = idle_cd
                    tn = t + d
                    rearm_seq = seq
                    seq += 1
                    while tn < bound and tn <= t_end:
                        events += 1
                        idle_streak += 1
                        now = tn
                        rearm_seq = seq
                        seq += 1
                        tn = tn + d
                    push(heap, (tn, rearm_seq, POLL, None))
                else:
                    push(heap, (t + idle_cd, seq, POLL, None))
                    seq += 1
                continue
            # Ring.pop_batch(batch_size), mirrored (FIFO + boundary split).
            out = []
            remaining = batch_size
            popped = 0
            while ringq and remaining > 0:
                head = ringq[0]
                c = head.count
                if c <= remaining:
                    out.append(ringq.popleft())
                    remaining -= c
                    popped += c
                else:
                    front = block_cls(
                        head.size, head.flow_id, head.src_mac, head.dst_mac,
                        head.t_created, remaining, head.hops, head.seq0,
                    )
                    head.count = c - remaining
                    head.seq0 += remaining
                    out.append(front)
                    popped += remaining
                    remaining = 0
            ring_frames -= popped
            n = popped
            nb = n * fs
            costs = cost_cache.get(n)
            if costs is None:
                rx_c = rx_pb + rx_pp * n + rx_pby * nb
                tx_c = tx_pb + tx_pp * n + tx_pby * nb
                costs = (rx_c, tx_c)
                cost_cache[n] = costs
            rx_c, tx_c = costs
            proc_c = sw_proc(out, path, n, nb)
            raw = rx_c + proc_c + tx_c
            cycles = raw * jit_mult(t)
            delay_ns = cycles * 1e9 / freq
            for b in out:
                b.hops += 1
            sw_forward(out, path)
            push(heap, (t + delay_ns, seq, DLV, out))
            seq += 1
            forwarded += n
            total_fwd += n
            # _iterate busy branch + inlined re-arm.
            idle_streak = 0
            busy_ns += delay_ns
            push(heap, (t + delay_ns, seq, POLL, None))
            seq += 1
        elif kind == TICK:
            # PacedSource._tick -> acquire_block -> gen0.send_batch.
            blk_seq0 = pkt_seq
            pkt_seq += burst
            busy = t if t >= busy0 else busy0
            ti = int(t)
            if flags0_get(ti) is None and (busy - t) + burst * wire0 <= maxb0:
                for _ in range(burst):
                    busy += wire0
                block = block_cls(
                    fs, flow, DEFAULT_SRC_MAC, DEFAULT_DST_MAC, t, burst, 0, blk_seq0
                )
                push(heap, (busy, seq, ARR0, [(block, busy)]))
                seq += 1
                txp0 += burst
                txb0 += fs * burst
            else:
                # Slow path: the prescan's flag list IS the exact set of
                # hash-hit indices, so per-frame hashing is unnecessary;
                # once the wire backlog rejects, it rejects the whole
                # un-flagged tail (busy no longer advances).
                flagged = flags0_get(ti)
                accepted = 0
                i = 0
                while i < burst:
                    if flagged is not None and i in flagged:
                        dd0 += 1
                        i += 1
                        continue
                    if busy - t > maxb0:
                        if flagged is None:
                            txd0 += burst - i
                            break
                        txd0 += 1
                        i += 1
                        continue
                    busy = busy + wire0
                    accepted += 1
                    i += 1
                if accepted:
                    block = block_cls(
                        fs, flow, DEFAULT_SRC_MAC, DEFAULT_DST_MAC, t, accepted, 0, blk_seq0
                    )
                    push(heap, (busy, seq, ARR0, [(block, busy)]))
                    seq += 1
                    txp0 += accepted
                    txb0 += fs * accepted
            busy0 = busy
            packets_sent += burst
            push(heap, (t + gap, seq, TICK, None))
            seq += 1
        elif kind == ARR0:
            # sut0._receive: count frames, DMA into the rx ring after PCIe.
            payload = entry[3]
            frames = 0
            blocks = []
            for b, _busy in payload:
                blocks.append(b)
                frames += b.count
            rx_sut0 += frames
            push(heap, (t + pcie, seq, PUSH, blocks))
            seq += 1
        elif kind == PUSH:
            # Ring.push_batch, mirrored (truncate-on-full semantics).
            for b in entry[3]:
                c = b.count
                free = cap - ring_frames
                if free <= 0:
                    drop += c
                    continue
                if c > free:
                    drop += c - free
                    b.count = free
                    c = free
                ringq.append(b)
                ring_frames += c
                enq += c
        elif kind == DLV:
            # sut1.send_batch: serialise the forwarded batch onto the wire.
            batch = entry[3]
            busy = t if t >= busy1 else busy1
            index = 0
            sent_f = 0
            arrivals = []
            for b in batch:
                c = b.count
                ti = int(b.t_created)
                flagged = flags1_get(ti)
                fast = flagged is None
                if not fast:
                    iend = index + c
                    fast = True
                    for i in flagged:
                        if index <= i < iend:
                            fast = False
                            break
                if fast and (busy - t) + c * wire1 <= maxb1:
                    for _ in range(c):
                        busy += wire1
                    accepted = c
                else:
                    accepted = 0
                    i = index
                    iend = index + c
                    while i < iend:
                        if flagged is not None and i in flagged:
                            dd1 += 1
                            i += 1
                            continue
                        if busy - t > maxb1:
                            if flagged is None:
                                txd1 += iend - i
                                break
                            txd1 += 1
                            i += 1
                            continue
                        busy = busy + wire1
                        accepted += 1
                        i += 1
                index += c
                if accepted:
                    if accepted != c:
                        b.count = accepted
                    arrivals.append((b, busy))
                    sent_f += accepted
            busy1 = busy
            if arrivals:
                txp1 += sent_f
                txb1 += fs * sent_f
                push(heap, (arrivals[-1][1], seq, ARR1, arrivals))
                seq += 1
        else:
            # ARR1: wire arrival at the MoonGen monitor; sink counts frames.
            in_window = (
                win_start is not None
                and t >= win_start
                and (win_end is None or t <= win_end)
            )
            for b, _busy in entry[3]:
                c = b.count
                rx_gen1 += c
                if in_window:
                    m_pkts += c
                    m_bytes += fs * c
                else:
                    m_warm += c

    # Write the registers back.
    st.now = now
    st.seq = seq
    st.events = events
    st.pkt_seq = pkt_seq
    st.busy0, st.busy1 = busy0, busy1
    st.txp0, st.txb0, st.txd0, st.dd0 = txp0, txb0, txd0, dd0
    st.txp1, st.txb1, st.txd1, st.dd1 = txp1, txb1, txd1, dd1
    st.rx_sut0, st.rx_gen1 = rx_sut0, rx_gen1
    st.frames, st.enq, st.drop = ring_frames, enq, drop
    st.busy_ns, st.idle_streak = busy_ns, idle_streak
    st.idle_cc, st.idle_cd = idle_cc, idle_cd
    st.forwarded, st.total_fwd = forwarded, total_fwd
    st.wait_started = wait_started
    st.m_pkts, st.m_bytes, st.m_warm = m_pkts, m_bytes, m_warm
    st.packets_sent = packets_sent
    return events - events0


# -- verification -----------------------------------------------------------


def _canon_blocks(blocks) -> tuple:
    return tuple(
        (b.size, b.flow_id, b.src_mac, b.dst_mac,
         repr(b.t_created), b.count, b.hops, b.seq0)
        for b in blocks
    )


def _switch_view(sw: SoftwareSwitch, jitter) -> tuple:
    """Canonical view of hook-mutable switch state + jitter/RNG state."""
    from repro.switches.bess import Bess
    from repro.switches.ovs_dpdk import OvsDpdk
    from repro.switches.t4p4s import T4P4S
    from repro.switches.vpp import Vpp

    if isinstance(jitter, _JitterMirror):
        mult, next_rs, rng = jitter.mult, jitter.next_resample, jitter.rng
    else:
        mult, next_rs, rng = jitter._multiplier, jitter._next_resample_ns, jitter._rng
    jit_view = (repr(mult), repr(next_rs), repr(rng.bit_generator.state))
    if type(sw) is OvsDpdk:
        detail = (
            sw.emc_hits, sw.emc_misses, sw.upcalls,
            tuple(sw._emc.items()), tuple(sorted(sw._megaflows)),
            len(sw.megaflow_entries),
        )
    elif type(sw) is Vpp:
        detail = tuple((k, rt.calls, rt.vectors) for k, rt in sw.node_runtime.items())
    elif type(sw) is Bess:
        detail = tuple(sw.module_counters.items())
    elif type(sw) is T4P4S:
        detail = (
            tuple((k, repr(v)) for k, v in sw.stage_cycles.items()),
            sw.table.hits, sw.table.misses,
        )
    else:
        detail = ()
    return (jit_view, detail)


def _canon_heap(heap_entries) -> tuple:
    out = []
    for time, seq, kind, payload in heap_entries:
        if kind in (ARR0, ARR1):
            body = tuple((_canon_blocks([b])[0], repr(busy)) for b, busy in payload)
        elif kind in (PUSH, DLV):
            body = _canon_blocks(payload)
        else:
            body = ()
        out.append((repr(time), seq, kind, body))
    out.sort()
    return tuple(out)


def _state_view(st: _Snap, sw: SoftwareSwitch, jitter) -> tuple:
    return (
        repr(st.now), st.seq, st.events, st.pkt_seq,
        (repr(st.busy0), st.txp0, st.txb0, st.txd0, st.dd0, st.rx_sut0),
        (repr(st.busy1), st.txp1, st.txb1, st.txd1, st.dd1, st.rx_gen1),
        (_canon_blocks(st.ringq), st.frames, st.enq, st.drop),
        (repr(st.busy_ns), st.idle_streak, st.idle_cc, repr(st.idle_cd)),
        (st.forwarded, st.total_fwd, repr(st.wait_started)),
        (st.m_pkts, st.m_bytes, st.m_warm),
        st.packets_sent,
        _switch_view(sw, jitter),
        _canon_heap(st.heap),
    )


def _predicted_view(ctx: _Ctx, st: _Snap, backend: _Backend) -> tuple:
    return _state_view(st, backend.sw, backend.jitter)


def _actual_view(ctx: _Ctx) -> tuple:
    """The live testbed rendered through the same canonicaliser."""
    st = _snapshot(ctx)  # re-parses the live heap; raises _Decline on surprises
    return _state_view(st, ctx.sw, ctx.path.jitter)


# -- commit -----------------------------------------------------------------


def _commit(ctx: _Ctx, st: _Snap) -> None:
    """Write the replayed mirror back into the live testbed."""
    import repro.core.packet as packet_mod
    from repro.core.packet import release_block

    entries = []
    for time, seq, kind, payload in st.heap:
        if kind == TICK:
            cb = ctx.src._tick
        elif kind == POLL:
            cb = ctx.core._iterate
        elif kind == ARR0:
            cb = _cb_arrive(ctx.sut0, payload)
        elif kind == ARR1:
            cb = _cb_arrive(ctx.gen1, payload)
        elif kind == PUSH:
            cb = _cb_push(ctx.ring, payload)
        else:
            cb = _cb_deliver(ctx.sut1, payload)
        entries.append((time, seq, cb))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    ctx.sim.replace_pending(entries, now=st.now, seq=st.seq, events=st.events)

    gen0, gen1, sut0, sut1 = ctx.gen0, ctx.gen1, ctx.sut0, ctx.sut1
    gen0._tx_busy_until_ns = st.busy0
    gen0.tx_packets, gen0.tx_bytes = st.txp0, st.txb0
    gen0.tx_dropped, gen0.driver_drops = st.txd0, st.dd0
    sut0.rx_packets = st.rx_sut0
    sut1._tx_busy_until_ns = st.busy1
    sut1.tx_packets, sut1.tx_bytes = st.txp1, st.txb1
    sut1.tx_dropped, sut1.driver_drops = st.txd1, st.dd1
    gen1.rx_packets = st.rx_gen1

    ring = ctx.ring
    for block in ring._queue:
        release_block(block)
    ring._queue.clear()
    ring._queue.extend(st.ringq)
    ring._frames = st.frames
    ring.enqueued = st.enq
    ring.dropped = st.drop

    core = ctx.core
    core.busy_ns = st.busy_ns
    core._idle_streak = st.idle_streak
    core._idle_cache = (st.idle_cc, st.idle_cd)

    ctx.path.forwarded = st.forwarded
    ctx.sw.total_forwarded = st.total_fwd
    ctx.path.wait_started_ns = st.wait_started
    ctx.src.packets_sent = st.packets_sent
    ctx.meter.set_counts(st.m_pkts, st.m_bytes, st.m_warm)
    packet_mod._next_seq = st.pkt_seq


# -- entry point ------------------------------------------------------------


def try_warp(
    tb: "Testbed",
    t_open: float,
    t_close: float,
    watchdog_active: bool = False,
) -> WarpReport:
    """Attempt to fast-forward ``tb`` across the measurement window.

    Called by :func:`repro.measure.runner.drive` before its final
    ``run_until(t_close)``.  On engagement the simulator is left at the
    exact state event-by-event execution would have produced after the
    last event at or before ``t_close`` (the caller's ``run_until`` then
    just advances the clock).  On decline the simulator has only been
    advanced by real dispatch (possibly not at all) and the caller's
    ``run_until`` finishes the run normally.
    """
    try:
        ctx = _eligibility(tb, watchdog_active)
    except _Decline as decline:
        return WarpReport(engaged=False, reason=decline.reason)

    verify_ns = max(MIN_VERIFY_NS, 2.5 * tb.switch.params.jitter_period_ns)
    t_verify = t_open + verify_ns
    if t_close - t_verify < verify_ns:
        return WarpReport(engaged=False, reason="span-too-short")

    sim = tb.sim
    sim.run_until(t_open)
    try:
        st0 = _snapshot(ctx)
        _prescan(ctx, st0, t_verify)
        shadow = _clone_backend(ctx)
        _replay(ctx, st0, shadow, t_verify)
    except _Decline as decline:
        return WarpReport(engaged=False, reason=decline.reason)
    # run_until clamps the clock to its horizon; mirror that before diffing.
    if st0.now < t_verify:
        st0.now = t_verify
    predicted = _predicted_view(ctx, st0, shadow)

    sim.run_until(t_verify)
    try:
        actual = _actual_view(ctx)
    except _Decline as decline:
        return WarpReport(engaged=False, reason=decline.reason)
    if predicted != actual:
        return WarpReport(engaged=False, reason="verify-mismatch", verify_ns=verify_ns)

    try:
        st1 = _snapshot(ctx)
        _prescan(ctx, st1, t_close)
        replayed = _replay(ctx, st1, _real_backend(ctx), t_close)
    except _Decline as decline:  # pragma: no cover - structure just verified
        return WarpReport(engaged=False, reason=decline.reason)
    _commit(ctx, st1)
    return WarpReport(
        engaged=True,
        warped_ns=t_close - t_verify,
        events_replayed=replayed,
        verify_ns=verify_ns,
    )


# -- generic state fingerprint (property tests) ------------------------------


def state_fingerprint(tb: "Testbed") -> tuple:
    """Deep canonical fingerprint of a driven testbed's observable state.

    Covers everything a measurement can observe: engine clock/seq/event
    counters, per-port counters and wire backlog, ring contents and
    accounting, core accounting, source/meter counters, switch-specific
    hook state and jitter RNG streams.  Floats are rendered via ``repr``
    so comparison is bitwise.  The property tests use it to assert that
    warp-on and warp-off runs are indistinguishable.
    """

    def canon(value, depth=0):
        if depth > 6:
            return "<deep>"
        if isinstance(value, float):
            return repr(value)
        if isinstance(value, (int, str, bool, type(None))):
            return value
        if isinstance(value, np.random.Generator):
            return repr(value.bit_generator.state)
        if isinstance(value, PacketBlock):
            return ("block",) + _canon_blocks([value])
        if isinstance(value, (list, tuple, deque)):
            return tuple(canon(v, depth + 1) for v in value)
        if isinstance(value, set):
            return tuple(sorted(canon(v, depth + 1) for v in value))
        if isinstance(value, dict):
            return tuple(
                (canon(k, depth + 1), canon(v, depth + 1))
                for k, v in value.items()
            )
        return f"<{type(value).__name__}>"

    def ring_view(ring) -> tuple:
        return (
            ring.name, ring._frames, ring.enqueued, ring.dropped,
            tuple(canon(b, 1) for b in ring._queue),
        )

    def port_view(port: NicPort) -> tuple:
        return (
            port.name, port.tx_packets, port.tx_bytes, port.tx_dropped,
            port.driver_drops, port.rx_packets, repr(port._tx_busy_until_ns),
            ring_view(port.rx_ring),
        )

    def meter_view(meter) -> tuple:
        return (
            meter.packets, meter.bytes, meter.warmup_packets,
            tuple(repr(s) for s in meter.latency.samples_ns),
        )

    def vif_view(vif) -> tuple:
        return (vif.name, ring_view(vif.to_guest), ring_view(vif.to_host))

    def app_view(task) -> tuple:
        # Guest apps share a small mutable surface: forwarded counters,
        # buffered tx frames and the drain-timer origin.  Unknown task
        # types degrade to their counter-ish public attributes.
        view = [type(task).__name__]
        for attr in ("forwarded", "_tx_frames"):
            if hasattr(task, attr):
                view.append((attr, getattr(task, attr)))
        if hasattr(task, "_last_flush_ns"):
            view.append(("_last_flush_ns", repr(task._last_flush_ns)))
        buf = getattr(task, "_tx_buffer", None)
        if buf is not None:
            view.append(("_tx_buffer", tuple(canon(b, 1) for b in buf)))
        for attr in ("gen_to_bridge", "bridge_to_monitor"):
            ring = getattr(task, attr, None)
            if ring is not None:
                view.append((attr, ring_view(ring)))
        return tuple(view)

    sw = tb.switch
    sim = tb.sim
    ports = []
    for attachment in sw.attachments:
        if isinstance(attachment, PhyAttachment):
            ports.append(port_view(attachment.port))
            if attachment.port.peer is not None:
                ports.append(port_view(attachment.port.peer))
    vif_views = []
    core_views = []
    app_views = []
    for vm in tb.vms:
        for vif in vm.interfaces:
            vif_views.append(vif_view(vif))
        for core in vm.cores:
            core_views.append(
                (core.name, repr(core.busy_ns), core._idle_streak)
            )
            for task in core.tasks:
                app_views.append(app_view(task))
    path_views = tuple(
        (
            path.forwarded, repr(path.wait_started_ns),
            repr(path.jitter._multiplier), repr(path.jitter._next_resample_ns),
            canon(path.jitter._rng),
        )
        for path in sw.paths
    )
    # Switch hook state: everything mutable except object-graph
    # back-references (pipelines are id-keyed; covered via path_views).
    skip = {
        "sim", "rngs", "obs", "flowstats", "params", "bus", "core",
        "attachments", "paths", "pipelines", "_stalls",
    }
    sw_view = tuple(
        (name, canon(value, 1))
        for name, value in sorted(vars(sw).items())
        if name not in skip and not callable(value)
    )
    return (
        repr(sim._now), sim._seq, sim.events_executed,
        tuple(ports),
        path_views,
        sw_view,
        (repr(tb.sut_core.busy_ns), tb.sut_core._idle_streak),
        tuple(vif_views),
        tuple(core_views),
        tuple(app_views),
        tuple(meter_view(m) for m in tb.meters),
        tuple(sorted(
            (src.name, src.packets_sent, src.probes_sent)
            for src in _tx_sources(tb)
        )),
    )


def _tx_sources(tb: "Testbed") -> list:
    """Every traffic source wired into a testbed (p2v stores a scalar)."""
    tx = tb.extras.get("tx", [])
    return [tx] if not isinstance(tx, (list, tuple)) else list(tx)
