"""Telemetry: periodic sampling of testbed internals during a run.

The paper identifies bottlenecks by reasoning about where time goes; the
simulated testbed can simply *show* it.  A :class:`Telemetry` instance
samples registered probes (ring occupancy, core utilisation, counters)
on a fixed period and keeps the time series for post-run analysis --
used by the bottleneck-hunting example and by tests that assert queue
dynamics (e.g. queues grow at 0.99 R+ but not at 0.50 R+).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.ring import Ring
from repro.cpu.cores import Core

if TYPE_CHECKING:
    from repro.core.engine import Simulator


@dataclass
class Series:
    """One sampled time series."""

    name: str
    times_ns: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t_ns: float, value: float) -> None:
        self.times_ns.append(t_ns)
        self.values.append(value)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the sampled values, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class Telemetry:
    """Samples registered probes every ``period_ns`` until stopped."""

    def __init__(self, sim: "Simulator", period_ns: float = 50_000.0) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.period_ns = period_ns
        self._probes: list[tuple[Series, Callable[[], float]]] = []
        self.series: dict[str, Series] = {}
        self._running = False
        self._stop_at: float | None = None
        #: Bumped on every start/stop; a scheduled ``_sample`` from an
        #: earlier generation is stale and dies silently, so stop() and
        #: restarts never leave a phantom sampler in the event queue.
        self._generation = 0

    def watch(self, name: str, probe: Callable[[], float]) -> Series:
        """Register an arbitrary probe function."""
        if name in self.series:
            raise ValueError(f"probe {name!r} already registered")
        series = Series(name)
        self.series[name] = series
        self._probes.append((series, probe))
        return series

    def watch_ring(self, name: str, ring: Ring) -> Series:
        """Sample a ring's occupancy."""
        return self.watch(name, ring.peek_len)

    def watch_ring_drops(self, name: str, ring: Ring) -> Series:
        """Sample a ring's cumulative drop counter."""
        return self.watch(name, lambda: float(ring.dropped))

    def watch_core_busy(self, name: str, core: Core) -> Series:
        """Sample a core's cumulative busy time (ns)."""
        return self.watch(name, lambda: core.busy_ns)

    @property
    def running(self) -> bool:
        return self._running

    def start(self, stop_at_ns: float | None = None) -> None:
        """Begin (or resume) sampling; restarting after a ``stop_at_ns``
        expiry or an explicit :meth:`stop` appends to the same series."""
        if self._running:
            return
        self._running = True
        self._stop_at = stop_at_ns
        self._generation += 1
        generation = self._generation
        self.sim.after(0, lambda: self._sample(generation))

    def stop(self) -> None:
        """Halt sampling immediately; the pending sample event is voided."""
        self._running = False
        self._generation += 1

    def _sample(self, generation: int) -> None:
        if generation != self._generation or not self._running:
            return
        now = self.sim.now
        if self._stop_at is not None and now > self._stop_at:
            self._running = False
            return
        for series, probe in self._probes:
            series.add(now, float(probe()))
        self.sim.after(self.period_ns, lambda: self._sample(generation))

    def utilization(self, core_series_name: str) -> float:
        """Mean utilisation derived from a cumulative busy-time series."""
        try:
            series = self.series[core_series_name]
        except KeyError:
            known = ", ".join(sorted(self.series)) or "<none>"
            raise KeyError(
                f"no series named {core_series_name!r}; known series: {known}"
            ) from None
        if len(series.values) < 2:
            return 0.0
        dt = series.times_ns[-1] - series.times_ns[0]
        if dt <= 0:
            return 0.0
        return (series.values[-1] - series.values[0]) / dt
