"""Measurement statistics.

The paper reports: throughput in Gbps (normalised to wire footprint),
packet rate in Mpps, and RTT latency mean / standard deviation (Fig. 1)
plus per-load averages (Tables 3 and 4).  This module provides the
accumulators those measurements are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.units import pps_to_gbps


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0 if self.count else math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan


class LatencySample:
    """Collects individual RTT samples (ns) and summarises them.

    Stores raw samples -- probe counts are small (MoonGen injects PTP
    probes sparsely into the background traffic), so a full reservoir is
    affordable and lets us compute exact percentiles.
    """

    def __init__(self) -> None:
        self.samples_ns: list[float] = []
        self._running = RunningStats()

    def add(self, rtt_ns: float) -> None:
        self.samples_ns.append(rtt_ns)
        self._running.add(rtt_ns)

    def __len__(self) -> int:
        return len(self.samples_ns)

    @property
    def mean_us(self) -> float:
        return self._running.mean / 1e3

    @property
    def std_us(self) -> float:
        return self._running.std / 1e3

    @property
    def min_us(self) -> float:
        return self._running.min / 1e3 if self.samples_ns else math.nan

    @property
    def max_us(self) -> float:
        return self._running.max / 1e3 if self.samples_ns else math.nan

    def percentile_us(self, q: float) -> float:
        """Exact percentile (q in [0, 100]) by sorting the reservoir."""
        if not self.samples_ns:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range [0, 100]")
        ordered = sorted(self.samples_ns)
        # Nearest-rank with linear interpolation, matching numpy's default.
        rank = (len(ordered) - 1) * q / 100
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low] / 1e3
        frac = rank - low
        return (ordered[low] * (1 - frac) + ordered[high] * frac) / 1e3


@dataclass
class RateMeter:
    """Counts packets/bytes received inside a measurement window.

    ``open_window`` is called once warm-up ends; packets before that are
    counted separately (so conservation checks can still add up) but do not
    influence the reported throughput.
    """

    frame_size_hint: int | None = None
    window_start_ns: float | None = None
    window_end_ns: float | None = None
    packets: int = 0
    bytes: int = 0
    warmup_packets: int = 0
    latency: LatencySample = field(default_factory=LatencySample)

    def open_window(self, now_ns: float) -> None:
        self.window_start_ns = now_ns

    def close_window(self, now_ns: float) -> None:
        self.window_end_ns = now_ns

    def set_counts(self, packets: int, bytes_: int, warmup_packets: int) -> None:
        """Install externally reconstructed counts (warp fast-forward)."""
        self.packets = packets
        self.bytes = bytes_
        self.warmup_packets = warmup_packets

    def record(self, now_ns: float, size: int) -> None:
        in_window = (
            self.window_start_ns is not None
            and now_ns >= self.window_start_ns
            and (self.window_end_ns is None or now_ns <= self.window_end_ns)
        )
        if in_window:
            self.packets += 1
            self.bytes += size
        else:
            self.warmup_packets += 1

    def record_block(self, now_ns: float, size: int, count: int) -> None:
        """Count ``count`` identical frames arriving together.

        Integer counters accumulate exactly as ``count`` calls to
        :meth:`record` would -- the whole block shares one arrival time,
        so the window test is made once.
        """
        in_window = (
            self.window_start_ns is not None
            and now_ns >= self.window_start_ns
            and (self.window_end_ns is None or now_ns <= self.window_end_ns)
        )
        if in_window:
            self.packets += count
            self.bytes += size * count
        else:
            self.warmup_packets += count

    @property
    def duration_ns(self) -> float:
        if self.window_start_ns is None or self.window_end_ns is None:
            return math.nan
        return self.window_end_ns - self.window_start_ns

    @property
    def pps(self) -> float:
        duration = self.duration_ns
        if not duration or duration != duration:
            return math.nan
        return self.packets * 1e9 / duration

    def gbps(self, frame_size: int | None = None) -> float:
        """Throughput in the paper's normalised Gbps (wire footprint).

        Computed from the actual byte count, so frame-size mixes (IMIX,
        data-centre profiles) normalise correctly; for fixed-size traffic
        this equals ``pps_to_gbps(pps, frame_size)`` exactly.
        """
        if frame_size is None and self.frame_size_hint is None:
            raise ValueError("frame size required to normalise throughput")
        duration = self.duration_ns
        if not duration or duration != duration:
            return math.nan
        from repro.core.units import WIRE_OVERHEAD

        wire_bits = (self.bytes + self.packets * WIRE_OVERHEAD) * 8
        return wire_bits / duration  # bits/ns == Gbps
