"""The paper's measurement platform as a configuration record (Sec. 5.1).

Kept as data so documentation, tests and benches can reference the exact
platform the calibration targets came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware/software inventory of the paper's testbed."""

    cpu: str = "2x Intel Xeon E5-2690 v3 @ 2.60GHz"
    cores_per_socket: int = 12  # 24 virtual cores with Hyperthreading
    caches: str = "32K/256K/30720K L1-3"
    nics: str = "2x Intel 82599ES dual-port 10 Gbps"
    numa_nodes: int = 2
    os: str = "Ubuntu 16.04.1, Linux 4.8.0-41-generic"
    guest_os: str = "CentOS 7"
    hypervisor: str = "QEMU 2.5.0"
    dpdk_guest: str = "DPDK 18.11"
    hugepages: str = "1GB reserved"
    governor: str = "performance, Turbo Boost disabled"
    generator: str = "MoonGen (commit 31af6e6)"


@dataclass(frozen=True)
class SwitchVersions:
    """Code versions evaluated by the paper (Sec. 5.1)."""

    versions: dict = field(
        default_factory=lambda: {
            "fastclick": "commit 8c9352e",
            "bess": "Haswell tarball",
            "ovs-dpdk": "2.11.90",
            "snabb": "commit 771b55c",
            "vale": "commit 1b5361d",
            "t4p4s": "commit b1161b2",
            "vpp": "19.04",
        }
    )


PLATFORM = PlatformSpec()
VERSIONS = SwitchVersions()
