"""Opt-in runtime invariant checking.

The :class:`InvariantWatchdog` periodically scans a built testbed for
model-corruption symptoms that would otherwise silently skew results --
especially under fault injection, where class swaps and instance
overrides could, if buggy, break ring accounting or packet conservation.

It is an *external* observer: a self-re-arming simulator event walks the
structures every ``interval_ns``.  Nothing is hooked into hot paths, so a
run without a watchdog executes exactly the same instructions as before
this module existed, and the watchdog's own cost is O(rings) per scan.

Checks per scan:

* **ring occupancy bounds** -- ``0 <= frames <= capacity``;
* **ring internal consistency** -- queued item counts sum to the frame
  counter;
* **counter monotonicity** -- ``enqueued``/``dropped`` and the derived
  cumulative pop count never decrease;
* **block seq-range integrity** -- every queued item carries a positive
  frame count and a non-negative base sequence number;
* **monotonic timestamps** -- no queued frame was created in the future;
* **per-hop conservation** -- a path never forwards more frames than its
  input ring has handed out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.packet import PacketBlock
from repro.core.ring import Ring

if TYPE_CHECKING:
    from repro.scenarios.base import Testbed


@dataclass
class Violation:
    """One invariant breach, with enough context to debug it."""

    check: str
    subject: str
    message: str
    t_ns: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "t_ns": self.t_ns,
        }


class WatchdogError(RuntimeError):
    """Raised in strict mode when a scan finds violations."""

    def __init__(self, violations: list[Violation]) -> None:
        lines = "\n".join(
            f"  [{v.check}] {v.subject}: {v.message} (t={v.t_ns:.0f}ns)"
            for v in violations
        )
        super().__init__(f"invariant watchdog found {len(violations)} violation(s):\n{lines}")
        self.violations = violations


@dataclass
class _RingState:
    """Last-seen counters for monotonicity checks."""

    enqueued: int = 0
    dropped: int = 0
    popped: int = 0


class InvariantWatchdog:
    """Periodic invariant scanner over a testbed's rings and paths."""

    def __init__(
        self,
        tb: "Testbed",
        interval_ns: float = 100_000.0,
        strict: bool = False,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"watchdog interval must be positive, got {interval_ns}")
        self.tb = tb
        self.interval_ns = interval_ns
        self.strict = strict
        self.violations: list[Violation] = []
        self.scans = 0
        self.checks_run = 0
        self._running = False
        self._rings = self._collect_rings()
        self._states = {id(ring): _RingState() for _, ring in self._rings}

    def _collect_rings(self) -> list[tuple[str, Ring]]:
        """Every ring the testbed owns, labelled for diagnostics."""
        rings: dict[int, tuple[str, Ring]] = {}

        def add(ring: Ring) -> None:
            rings.setdefault(id(ring), (ring.name, ring))

        switch = self.tb.switch
        for attachment in switch.attachments:
            add(attachment.input_ring)
        for path in switch.paths:
            add(path.link)
        for vm in self.tb.vms:
            for vif in vm.interfaces:
                add(vif.to_guest)
                add(vif.to_host)
        for vif in self.tb.extras.get("vifs", ()):
            add(vif.to_guest)
            add(vif.to_host)
        for key in ("gen_ports", "sut_ports"):
            for port in self.tb.extras.get(key, ()):
                add(port.rx_ring)
        return list(rings.values())

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin scanning; re-arms itself every ``interval_ns``."""
        if self._running:
            return
        self._running = True
        self.tb.sim.after(self.interval_ns, self._scan)

    def stop(self) -> None:
        self._running = False

    def _scan(self) -> None:
        if not self._running:
            return
        self.scan_once()
        self.tb.sim.after(self.interval_ns, self._scan)

    # -- the checks --------------------------------------------------------

    def scan_once(self) -> list[Violation]:
        """Run every check once; returns (and records) new violations."""
        now = self.tb.sim.now
        found: list[Violation] = []

        def flag(check: str, subject: str, message: str) -> None:
            found.append(Violation(check=check, subject=subject, message=message, t_ns=now))

        for name, ring in self._rings:
            state = self._states[id(ring)]
            frames = ring._frames
            self.checks_run += 6
            if not 0 <= frames <= ring.capacity:
                flag(
                    "ring-occupancy",
                    name,
                    f"occupancy {frames} outside [0, {ring.capacity}]",
                )
            queued = 0
            for item in ring._queue:
                count = item.count
                if count < 1:
                    flag("block-integrity", name, f"queued item with count {count}")
                if item.__class__ is PacketBlock and item.seq0 < 0:
                    flag("block-integrity", name, f"queued block with seq0 {item.seq0}")
                if item.t_created > now:
                    flag(
                        "timestamp-monotonic",
                        name,
                        f"queued frame created at {item.t_created:.0f}ns > now",
                    )
                queued += count
            if queued != frames:
                flag(
                    "ring-consistency",
                    name,
                    f"queued frames {queued} != occupancy counter {frames}",
                )
            if ring.enqueued < state.enqueued:
                flag(
                    "counter-monotonic",
                    name,
                    f"enqueued went backwards ({state.enqueued} -> {ring.enqueued})",
                )
            if ring.dropped < state.dropped:
                flag(
                    "counter-monotonic",
                    name,
                    f"dropped went backwards ({state.dropped} -> {ring.dropped})",
                )
            popped = ring.enqueued - frames
            if popped < state.popped:
                flag(
                    "counter-monotonic",
                    name,
                    f"cumulative pops went backwards ({state.popped} -> {popped})",
                )
            state.enqueued = ring.enqueued
            state.dropped = ring.dropped
            state.popped = max(state.popped, popped)

        for path in self.tb.switch.paths:
            self.checks_run += 1
            in_ring = path.input.input_ring
            handed_out = in_ring.enqueued - in_ring._frames
            if path.forwarded > handed_out:
                flag(
                    "conservation",
                    f"{path.input.name}->{path.output.name}",
                    f"forwarded {path.forwarded} frames but input ring only "
                    f"handed out {handed_out}",
                )

        self.scans += 1
        if found:
            self.violations.extend(found)
            if self.strict:
                raise WatchdogError(found)
        return found

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict[str, Any]:
        return {
            "scans": self.scans,
            "checks_run": self.checks_run,
            "rings_watched": len(self._rings),
            "interval_ns": self.interval_ns,
            "violations": [v.to_dict() for v in self.violations],
        }

    def finalize(self) -> dict[str, Any]:
        """Run one last scan (end-of-run state) and return the report."""
        self._running = False
        self.scan_once()
        return self.report()

    def append_report(self, path: str, label: str = "") -> None:
        """Append the report as one JSONL row (CI artifact format)."""
        row = self.report()
        if label:
            row["label"] = label
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
