"""Arming fault plans against a built testbed.

The :class:`FaultInjector` resolves each :class:`~repro.faults.plan.FaultEvent`
target to a live component by name, validates the whole plan *before* the
simulation starts (misspelled targets fail fast with the available names
listed), then schedules start/stop events that flip the per-layer fault
hooks (``Ring`` class swaps, instance-level ``send_batch``/``poll``
overrides, control-plane flushes...).

Everything is deterministic: start/stop times come straight from the
plan, and any stochastic behaviour (memory-contention burst placement)
draws from the fault's *own* named RNG stream
(``fault.{kind}@{target}#{seed}``), so arming one fault never shifts the
draws seen by jitter processes, stalls or other faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.faults.plan import INSTANT_KINDS, FaultEvent, FaultPlan
from repro.switches.base import PhyAttachment, VifAttachment
from repro.traffic.generator import PacedSource

if TYPE_CHECKING:
    from repro.scenarios.base import Testbed


class FaultTargetError(ValueError):
    """A plan names a target the built testbed does not have."""

    def __init__(self, event: FaultEvent, available: list[str]) -> None:
        names = ", ".join(sorted(available)) if available else "<none>"
        super().__init__(
            f"fault {event.label!r}: no such target {event.target!r} for kind "
            f"{event.kind!r}; available targets: {names}"
        )
        self.event = event
        self.available = sorted(available)


@dataclass
class FaultSpan:
    """One executed fault window, for reports and Chrome-trace export."""

    kind: str
    target: str
    start_ns: float
    end_ns: float
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "detail": dict(sorted(self.detail.items())),
        }


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s events onto a testbed's simulator."""

    def __init__(self, tb: "Testbed", plan: FaultPlan) -> None:
        self.tb = tb
        self.plan = plan
        #: completed fault windows, in completion order.
        self.spans: list[FaultSpan] = []
        self._ports = self._resolve_ports()
        self._vifs = self._resolve_vifs()
        self._cores = {core.name: core for node in tb.machine.nodes for core in node.cores}
        for vm in tb.vms:
            for core in vm.cores:
                self._cores.setdefault(core.name, core)
        self._vms = {vm.name: vm for vm in tb.vms}
        self._buses = {f"numa{node.index}": node.bus for node in tb.machine.nodes}
        self._switches = {"switch": tb.switch, tb.switch.params.name: tb.switch}
        self._generators = self._resolve_generators()
        self._armed = False
        for event in plan:
            self._resolve(event)  # fail fast on bad targets / unsupported kinds

    # -- target discovery --------------------------------------------------

    def _resolve_ports(self) -> dict[str, Any]:
        ports: dict[str, Any] = {}
        for attachment in self.tb.switch.attachments:
            if isinstance(attachment, PhyAttachment):
                ports[attachment.port.name] = attachment.port
        for key in ("gen_ports", "sut_ports"):
            for port in self.tb.extras.get(key, ()):  # type: ignore[union-attr]
                ports[port.name] = port
        return ports

    def _resolve_vifs(self) -> dict[str, Any]:
        vifs: dict[str, Any] = {}
        for attachment in self.tb.switch.attachments:
            if isinstance(attachment, VifAttachment):
                vifs[attachment.vif.name] = attachment.vif
        for vif in self.tb.extras.get("vifs", ()):
            vifs[vif.name] = vif
        for vm in self.tb.vms:
            for vif in vm.interfaces:
                vifs.setdefault(vif.name, vif)
        return vifs

    def _resolve_generators(self) -> list[PacedSource]:
        """Every paced source in the scenario (host MoonGen, guest tools)."""
        found: list[PacedSource] = []
        seen: set[int] = set()
        stack = list(self.tb.extras.values())
        while stack:
            value = stack.pop()
            if isinstance(value, (list, tuple)):
                stack.extend(value)
            elif isinstance(value, PacedSource) and id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        return found

    def _guest_generators(self, vm) -> list[PacedSource]:
        vifs = set(map(id, vm.interfaces))
        return [
            gen
            for gen in self._generators
            if id(getattr(gen, "vif", None)) in vifs
        ]

    def _resolve(self, event: FaultEvent) -> Any:
        kind = event.kind
        if kind in ("nic-link-flap", "nic-pcie-stall"):
            pool: dict[str, Any] = self._ports
        elif kind in ("vif-disconnect", "vif-freeze"):
            pool = self._vifs
        elif kind == "vnf-crash":
            pool = self._vms
        elif kind in ("core-preempt", "core-throttle"):
            pool = self._cores
        elif kind == "mem-contention":
            pool = self._buses
        else:  # switch control-plane kinds
            pool = self._switches
            target = pool.get(event.target)
            if target is None:
                raise FaultTargetError(event, list(pool))
            method = {
                "switch-mac-flush": "flush_mac_table",
                "switch-emc-flush": "flush_emc",
                "switch-flow-reinstall": "begin_flow_reinstall",
            }[kind]
            if not hasattr(target, method):
                raise FaultTargetError(
                    event,
                    [
                        name
                        for name, sw in pool.items()
                        if hasattr(sw, method)
                    ],
                )
            return target
        target = pool.get(event.target)
        if target is None:
            raise FaultTargetError(event, list(pool))
        return target

    # -- scheduling --------------------------------------------------------

    def arm(self) -> None:
        """Schedule every plan event; idempotent."""
        if self._armed:
            return
        self._armed = True
        # Mark the testbed so replay-safety checks (core.warp) see the plan.
        self.tb.extras["fault_injector"] = self
        for event in self.plan:
            self.tb.sim.at(event.at_ns, lambda e=event: self._start(e))

    def _stream(self, event: FaultEvent):
        """The fault's private RNG stream (created only when drawn from)."""
        return self.tb.rngs.stream(f"fault.{event.label}#{event.seed}")

    def _finish(self, event: FaultEvent, detail: dict[str, Any]) -> None:
        self.spans.append(
            FaultSpan(
                kind=event.kind,
                target=event.target,
                start_ns=event.at_ns,
                end_ns=event.end_ns,
                detail=detail,
            )
        )

    def _start(self, event: FaultEvent) -> None:
        target = self._resolve(event)
        detail: dict[str, Any] = {}
        kind = event.kind
        if kind == "nic-link-flap":
            # Carrier loss is full duplex: both ends of the cable go down.
            detail["_dropped_base"] = target.tx_dropped + (
                target.peer.tx_dropped if target.peer is not None else 0
            )
            target.link_down()
            if target.peer is not None:
                target.peer.link_down()
        elif kind == "nic-pcie-stall":
            target.stall_pcie(event.arg("extra_ns"))
        elif kind == "vif-disconnect":
            detail["_dropped_base"] = target.to_guest.dropped + target.to_host.dropped
            detail["frames_lost"] = target.disconnect()
        elif kind == "vif-freeze":
            target.freeze()
        elif kind == "vnf-crash":
            detail["frames_lost"] = target.crash()
            for gen in self._guest_generators(target):
                gen.halt()
        elif kind == "core-preempt":
            target.preempt()
        elif kind == "core-throttle":
            detail["_base_freq_hz"] = target.freq_hz
            detail["factor"] = event.arg("factor")
            target.set_frequency(target.freq_hz * event.arg("factor"))
        elif kind == "mem-contention":
            target.throttle(event.arg("factor"))
            bursts = int(event.arg("bursts"))
            burst_bytes = int(event.arg("burst_bytes"))
            if bursts > 0 and burst_bytes > 0:
                # Stochastic co-runner traffic: burst instants drawn from
                # this fault's private stream, reserved on the bus as real
                # copy traffic would be.
                rng = self._stream(event)
                offsets = rng.uniform(0.0, event.duration_ns, size=bursts)
                offsets.sort()
                for offset in offsets:
                    self.tb.sim.at(
                        event.at_ns + float(offset),
                        lambda b=target, n=burst_bytes: b.reserve(n, self.tb.sim.now),
                    )
                detail["bursts"] = bursts
        elif kind == "switch-mac-flush":
            detail["entries_flushed"] = target.flush_mac_table()
            self._finish(event, detail)
            return
        elif kind == "switch-emc-flush":
            detail["entries_flushed"] = target.flush_emc()
            self._finish(event, detail)
            return
        elif kind == "switch-flow-reinstall":
            rules = target.begin_flow_reinstall()
            detail["rules"] = len(rules)
            self.tb.sim.at(
                event.end_ns,
                lambda e=event, t=target, r=rules, d=detail: self._stop(e, t, d, rules=r),
            )
            return
        self.tb.sim.at(
            event.end_ns, lambda e=event, t=target, d=detail: self._stop(e, t, d)
        )

    def _stop(
        self,
        event: FaultEvent,
        target: Any,
        detail: dict[str, Any],
        rules: list | None = None,
    ) -> None:
        kind = event.kind
        if kind == "nic-link-flap":
            target.restore_link()
            if target.peer is not None:
                target.peer.restore_link()
            dropped = target.tx_dropped + (
                target.peer.tx_dropped if target.peer is not None else 0
            )
            detail["frames_dropped"] = dropped - detail.pop("_dropped_base")
        elif kind == "nic-pcie-stall":
            target.unstall_pcie()
        elif kind == "vif-disconnect":
            dropped = target.to_guest.dropped + target.to_host.dropped
            detail["frames_dropped"] = dropped - detail.pop("_dropped_base")
            target.reconnect()
        elif kind == "vif-freeze":
            target.thaw()
        elif kind == "vnf-crash":
            detail["frames_drained"] = target.restart()
            for gen in self._guest_generators(target):
                gen.resume()
        elif kind == "core-preempt":
            target.resume_from_preemption()
        elif kind == "core-throttle":
            target.set_frequency(detail.pop("_base_freq_hz"))
        elif kind == "mem-contention":
            target.unthrottle()
        elif kind == "switch-flow-reinstall":
            target.finish_flow_reinstall(rules or [])
        self._finish(event, detail)

    # -- reporting ---------------------------------------------------------

    def export(self, observation) -> None:
        """Emit executed fault windows into an obs session (Chrome-trace
        spans on per-target ``fault/...`` tracks + a counter)."""
        counter = (
            observation.registry.counter("faults_injected_total")
            if observation.registry is not None
            else None
        )
        for span in self.spans:
            if counter is not None:
                counter.inc()
            if observation.tracer is not None:
                observation.tracer.span(
                    span.kind,
                    span.start_ns,
                    max(span.end_ns - span.start_ns, 1.0),
                    tid=f"fault/{span.target}",
                    cat="fault",
                    args=span.detail,
                )
