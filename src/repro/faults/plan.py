"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent` records:
*what* breaks (``kind``), *where* (``target``, a testbed component name),
*when* (``at_ns``) and *for how long* (``duration_ns``; instant kinds such
as a MAC-table flush have none).  Plans are plain frozen data so they
hash, compare, serialise into campaign cache keys / JSONL stores, and
round-trip through worker processes byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

#: Every supported fault kind, by faulted layer.
FAULT_KINDS = (
    # repro.nic.port
    "nic-link-flap",
    "nic-pcie-stall",
    # repro.vif
    "vif-disconnect",
    "vif-freeze",
    # repro.vm / repro.traffic.guest
    "vnf-crash",
    # repro.cpu.cores
    "core-preempt",
    "core-throttle",
    # repro.cpu.numa
    "mem-contention",
    # repro.switches control planes
    "switch-mac-flush",
    "switch-emc-flush",
    "switch-flow-reinstall",
)

#: Kinds that fire once and complete immediately (graceful re-convergence
#: happens through normal data-plane operation, not a stop event).
INSTANT_KINDS = frozenset({"switch-mac-flush", "switch-emc-flush"})

#: Optional per-kind arguments (name -> default), used for validation and
#: the CLI grammar.
KIND_ARGS: dict[str, dict[str, float]] = {
    "nic-pcie-stall": {"extra_ns": 20_000.0},
    "core-throttle": {"factor": 0.5},
    "mem-contention": {"factor": 0.5, "burst_bytes": 0.0, "bursts": 0.0},
}


def _unknown_kind_error(kind: str) -> ValueError:
    return ValueError(
        f"unknown fault kind {kind!r}; valid kinds: {', '.join(FAULT_KINDS)}"
    )


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: kind + target + window (+ seed + kind args)."""

    at_ns: float
    kind: str
    target: str
    duration_ns: float = 0.0
    #: per-fault RNG salt: the injector derives the stream
    #: ``fault.{kind}@{target}#{seed}`` for any stochastic behaviour, so
    #: two faults never share draws and unrelated streams never shift.
    seed: int = 0
    #: canonical (sorted) extra arguments, e.g. (("factor", 0.5),).
    args: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise _unknown_kind_error(self.kind)
        if not self.target:
            raise ValueError(f"fault {self.kind!r} needs a non-empty target")
        if self.at_ns < 0:
            raise ValueError(f"fault at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns < 0:
            raise ValueError(
                f"fault duration_ns must be >= 0, got {self.duration_ns}"
            )
        if self.duration_ns == 0 and self.kind not in INSTANT_KINDS:
            raise ValueError(
                f"fault kind {self.kind!r} needs a positive duration_ns "
                f"(only {', '.join(sorted(INSTANT_KINDS))} are instantaneous)"
            )
        allowed = KIND_ARGS.get(self.kind, {})
        canonical = tuple(sorted((str(k), float(v)) for k, v in self.args))
        for name, _ in canonical:
            if name not in allowed:
                raise ValueError(
                    f"fault kind {self.kind!r} does not take argument {name!r}"
                    + (
                        f"; valid arguments: {', '.join(sorted(allowed))}"
                        if allowed
                        else " (it takes none)"
                    )
                )
        object.__setattr__(self, "args", canonical)

    @property
    def end_ns(self) -> float:
        return self.at_ns + self.duration_ns

    @property
    def label(self) -> str:
        return f"{self.kind}@{self.target}"

    def arg(self, name: str) -> float:
        """Look up a kind argument, falling back to its default."""
        for key, value in self.args:
            if key == name:
                return value
        return KIND_ARGS[self.kind][name]

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "target": self.target,
            "at_ns": self.at_ns,
        }
        if self.duration_ns:
            payload["duration_ns"] = self.duration_ns
        if self.seed:
            payload["seed"] = self.seed
        if self.args:
            payload["args"] = {k: v for k, v in self.args}
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            at_ns=float(payload["at_ns"]),
            kind=str(payload["kind"]),
            target=str(payload["target"]),
            duration_ns=float(payload.get("duration_ns", 0.0)),
            seed=int(payload.get("seed", 0)),
            args=tuple(sorted(dict(payload.get("args", {})).items())),
        )

    def to_key(self) -> tuple:
        """Canonical hashable form for embedding in frozen RunSpecs."""
        return (self.at_ns, self.kind, self.target, self.duration_ns, self.seed, self.args)

    @classmethod
    def from_key(cls, key) -> "FaultEvent":
        at_ns, kind, target, duration_ns, seed, args = key
        return cls(
            at_ns=float(at_ns),
            kind=str(kind),
            target=str(target),
            duration_ns=float(duration_ns),
            seed=int(seed),
            args=tuple((str(k), float(v)) for k, v in args),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, canonically ordered schedule of faults."""

    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        return cls(events=tuple(events))

    @classmethod
    def from_items(cls, items: Iterable[Mapping[str, Any]]) -> "FaultPlan":
        return cls(events=tuple(FaultEvent.from_dict(item) for item in items))

    def to_items(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_keys(cls, keys: Iterable[tuple]) -> "FaultPlan":
        return cls(events=tuple(FaultEvent.from_key(key) for key in keys))

    def to_keys(self) -> tuple[tuple, ...]:
        return tuple(event.to_key() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def first_at_ns(self) -> float:
        """Start of the earliest fault (inf for an empty plan)."""
        return self.events[0].at_ns if self.events else float("inf")

    @property
    def last_end_ns(self) -> float:
        """End of the latest fault window (0 for an empty plan)."""
        return max((event.end_ns for event in self.events), default=0.0)


def parse_fault(text: str) -> FaultEvent:
    """Parse the CLI fault grammar: ``kind@target:at_ns=...[,key=value...]``.

    Examples::

        vif-disconnect@vm1.eth0:at_ns=1000000,duration_ns=300000
        core-throttle@numa0/sut:at_ns=1e6,duration_ns=5e5,factor=0.4
        switch-mac-flush@switch:at_ns=1500000
    """
    head, sep, tail = text.partition(":")
    if not sep:
        raise ValueError(
            f"malformed fault {text!r}: expected "
            "'kind@target:at_ns=...[,duration_ns=...,key=value...]'"
        )
    kind, sep, target = head.partition("@")
    if not sep or not kind or not target:
        raise ValueError(
            f"malformed fault {text!r}: expected 'kind@target' before ':', "
            f"got {head!r}"
        )
    if kind not in FAULT_KINDS:
        raise _unknown_kind_error(kind)
    fields: dict[str, float] = {}
    for part in tail.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, raw = part.partition("=")
        if not sep:
            raise ValueError(
                f"malformed fault parameter {part!r} in {text!r}: expected key=value"
            )
        try:
            fields[name.strip()] = float(raw)
        except ValueError:
            raise ValueError(
                f"fault parameter {name.strip()!r} in {text!r} is not a number: {raw!r}"
            ) from None
    if "at_ns" not in fields:
        raise ValueError(f"fault {text!r} needs at_ns=<time>")
    at_ns = fields.pop("at_ns")
    duration_ns = fields.pop("duration_ns", 0.0)
    seed = int(fields.pop("seed", 0))
    return FaultEvent(
        at_ns=at_ns,
        kind=kind,
        target=target,
        duration_ns=duration_ns,
        seed=seed,
        args=tuple(sorted(fields.items())),
    )
