"""Deterministic fault injection for the simulated testbed.

The paper benchmarks switches in steady state; this package perturbs the
*modelled testbed itself* -- NIC links, PCIe, vhost-user backends, guest
apps, cores, the memory bus and switch control planes -- on a declarative,
seeded schedule, so every existing scenario composes with every fault
kind and replays bit-identically.

Three pieces:

* :mod:`repro.faults.plan` -- :class:`FaultEvent`/:class:`FaultPlan`, the
  declarative schedule (``kind``, ``target``, ``at_ns``, ``duration_ns``,
  per-fault ``seed``) plus the CLI grammar (:func:`parse_fault`);
* :mod:`repro.faults.injector` -- :class:`FaultInjector` resolves plan
  targets against a built :class:`~repro.scenarios.base.Testbed` and arms
  simulator events that flip the per-layer fault hooks;
* :mod:`repro.faults.watchdog` -- :class:`InvariantWatchdog`, an opt-in
  periodic checker that turns silent model corruption into structured
  diagnostics.

Determinism contract: a run with no :class:`FaultPlan` constructs none of
this machinery -- no extra heap events, no RNG draws, bit-identical
results (``tools/golden_stats.py`` pins it).  Each armed fault draws only
from its own named RNG stream, so adding one fault never shifts the
randomness seen by anything else.
"""

from repro.faults.injector import FaultInjector, FaultSpan, FaultTargetError
from repro.faults.plan import (
    FAULT_KINDS,
    INSTANT_KINDS,
    FaultEvent,
    FaultPlan,
    parse_fault,
)
from repro.faults.watchdog import InvariantWatchdog, Violation, WatchdogError

__all__ = [
    "FAULT_KINDS",
    "INSTANT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpan",
    "FaultTargetError",
    "InvariantWatchdog",
    "Violation",
    "WatchdogError",
    "parse_fault",
]
