"""Container-hosted VNFs (the paper's stated future work, Sec. 6).

"The same tests can be repeated for other virtualization techniques such
as containers, and we leave this for future work" (Sec. 1).  This module
provides that repetition: a :class:`Container` hosts the same guest apps
as a :class:`~repro.vm.machine.VirtualMachine` but without a hypervisor
in the way --

* the data plane still crosses a vhost-user/virtio-user boundary (DPDK
  containers attach with the virtio-user PMD), so the *host-side* copy
  costs are unchanged;
* the *guest-side* driver path is cheaper: no VM-exit-avoidance
  machinery, no paravirtual indirection (modelled as a cost factor on
  the guest-side vif costs);
* notification ("kick") latency drops: eventfd between host processes
  instead of irqfd through KVM;
* there is no QEMU, hence no QEMU compatibility limit -- BESS can host
  chains longer than 3 (footnote 5 does not apply).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vm.machine import VirtualMachine

if TYPE_CHECKING:
    from repro.core.engine import Simulator
    from repro.cpu.numa import NumaNode

#: Guest-side virtio cost scaling inside a container (virtio-user PMD vs
#: a paravirtualised guest driver).
CONTAINER_GUEST_COST_FACTOR = 0.65

#: Host<->container notification latency (eventfd between processes).
CONTAINER_NOTIFY_NS = 600.0

#: Containers are lighter: one pinned core per VNF is the common
#: deployment (vs 4 vCPUs per QEMU guest).
CORES_PER_CONTAINER = 2


class Container(VirtualMachine):
    """A container-hosted VNF: same apps, lighter virtualisation."""

    def __init__(self, sim: "Simulator", node: "NumaNode", name: str, cores: int = CORES_PER_CONTAINER):
        super().__init__(sim, node, name, vcpus=cores)


class ContainerRuntime:
    """Spawns containers; no hypervisor, no QEMU compatibility limits."""

    def __init__(self, sim: "Simulator", node: "NumaNode"):
        self.sim = sim
        self.node = node
        self.containers: list[Container] = []

    def spawn(self, name: str, cores: int = CORES_PER_CONTAINER) -> Container:
        container = Container(self.sim, self.node, name, cores=cores)
        self.containers.append(container)
        return container

    # Duck-typed compatibility with Hypervisor for the scenario builders.
    @property
    def vms(self) -> list[Container]:
        return self.containers
