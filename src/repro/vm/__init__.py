"""Virtualisation substrate: VMs, hypervisor, guest VNF applications."""

from repro.vm.apps import (
    GUEST_VALE_BRIDGE_PROC,
    GUEST_VALE_PROC,
    L2FWD_BURST,
    L2FWD_DRAIN_NS,
    L2FWD_PROC,
    GuestL2Fwd,
    GuestValeBridge,
    GuestValeXConnect,
)
from repro.vm.container import Container, ContainerRuntime
from repro.vm.machine import (
    VCPUS_PER_VM,
    Hypervisor,
    QemuCompatibilityError,
    VirtualMachine,
)

__all__ = [
    "Container",
    "ContainerRuntime",
    "GUEST_VALE_BRIDGE_PROC",
    "GUEST_VALE_PROC",
    "GuestL2Fwd",
    "GuestValeBridge",
    "GuestValeXConnect",
    "Hypervisor",
    "L2FWD_BURST",
    "L2FWD_DRAIN_NS",
    "L2FWD_PROC",
    "QemuCompatibilityError",
    "VCPUS_PER_VM",
    "VirtualMachine",
]
