"""Virtual machines.

Each VNF runs inside a QEMU/KVM guest with four vCPUs (Sec. 5.1: "Each VM
is allocated with four cores through the QEMU -smp option") and one or two
virtual interfaces.  Guest vCPUs are ordinary :class:`~repro.cpu.cores.Core`
instances living on NUMA node 0 next to the switch; they never contend
with the switch core (the testbed isolates cores with isolcpus).

The BESS/QEMU incompatibility the paper hits (footnote 5: "BESS exhibits
QEMU compatibility issues that prevent the instantiation of more than 3
VMs") is modelled by :class:`Hypervisor` honouring a per-switch VM limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packet import PacketBlock, release_block
from repro.cpu.cores import Core
from repro.vif.virtio import VirtualInterface

if TYPE_CHECKING:
    from repro.core.engine import Simulator
    from repro.cpu.numa import NumaNode

#: QEMU -smp allocation used throughout the paper's evaluation.
VCPUS_PER_VM = 4


class QemuCompatibilityError(RuntimeError):
    """Raised when a switch cannot drive the requested number of VMs."""


class VirtualMachine:
    """A guest: vCPU cores plus virtual interfaces, hosting one app."""

    def __init__(self, sim: "Simulator", node: "NumaNode", name: str, vcpus: int = VCPUS_PER_VM):
        self.sim = sim
        self.name = name
        self.cores: list[Core] = [
            node.add_core(f"{name}/vcpu{i}") for i in range(vcpus)
        ]
        self.interfaces: list[VirtualInterface] = []
        self.crashed = False

    def plug(self, vif: VirtualInterface) -> VirtualInterface:
        """Attach a virtual interface (virtio or ptnet device) to the guest."""
        self.interfaces.append(vif)
        return vif

    def run(self, app, vcpu: int = 0) -> None:
        """Pin a guest application to one vCPU and start it."""
        core = self.cores[vcpu]
        core.attach(app)
        core.start()

    # -- fault hooks (repro.faults) ----------------------------------------

    def crash(self) -> int:
        """Kill the guest app(s): polls become no-ops, buffered tx is lost.

        Each pinned task gets an instance-level ``poll`` that shadows the
        class method (``Core._iterate`` looks ``poll`` up dynamically every
        iteration, so no core-side change is needed).  Returns the number
        of frames discarded from app transmit buffers.
        """
        if self.crashed:
            return 0
        self.crashed = True
        lost = 0
        for core in self.cores:
            for task in core.tasks:
                task.poll = _dead_poll
                buf = getattr(task, "_tx_buffer", None)
                if buf:
                    for item in buf:
                        lost += item.count
                        if item.__class__ is PacketBlock:
                            release_block(item)
                    buf.clear()
                    task._tx_frames = 0
        return lost

    def restart(self) -> int:
        """Bring the guest app(s) back after a crash.

        The restarting virtio drivers reset their vrings, so frames that
        accumulated in the guest-facing rings while the app was dead are
        drained and dropped (returned as the lost-frame count).  Drain
        timers restart from the current instant.
        """
        if not self.crashed:
            return 0
        self.crashed = False
        now = self.sim.now
        for core in self.cores:
            for task in core.tasks:
                task.__dict__.pop("poll", None)
                if hasattr(task, "_last_flush_ns"):
                    task._last_flush_ns = now
        lost = 0
        for vif in self.interfaces:
            lost += vif.to_guest.clear()
            lost += vif.to_host.clear()
        return lost


def _dead_poll(core: Core) -> float:
    """Poll body of a crashed guest app: consumes nothing, does nothing."""
    return 0.0


class Hypervisor:
    """Instantiates VMs, enforcing per-switch compatibility limits."""

    def __init__(self, sim: "Simulator", node: "NumaNode", max_vms: int | None = None):
        self.sim = sim
        self.node = node
        self.max_vms = max_vms
        self.vms: list[VirtualMachine] = []

    def spawn(self, name: str, vcpus: int = VCPUS_PER_VM) -> VirtualMachine:
        if self.max_vms is not None and len(self.vms) >= self.max_vms:
            raise QemuCompatibilityError(
                f"hypervisor limited to {self.max_vms} VMs "
                f"(BESS/QEMU incompatibility, paper footnote 5)"
            )
        vm = VirtualMachine(self.sim, self.node, name, vcpus=vcpus)
        self.vms.append(vm)
        return vm
