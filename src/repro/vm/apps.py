"""Guest VNF applications.

The paper runs, inside the guests:

* the DPDK ``l2fwd`` sample app as the VNF of loopback chains -- it
  "cross-connects interfaces, updates the MAC addresses, and forwards
  packets in batches" with a strict TX-drain policy, which is exactly why
  latency *rises* at 0.10 R+ (Sec. 5.3: "the strict batch processing of
  DPDK l2fwd");
* a VALE instance as the VNF in VALE chains, cross-connecting two ptnet
  ports with adaptive batching (no low-load penalty);
* the in-VM VALE *bridge* used to attach two pkt-gen instances to a
  single ptnet port for VALE's bidirectional tests (Sec. 5.2 explains
  the workaround and that it costs an extra forwarding hop).

The in-guest measurement tools live in :mod:`repro.traffic.guest`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packet import Packet, batch_stats
from repro.core.ring import Ring
from repro.cpu.cores import Core
from repro.cpu.costmodel import Cost
from repro.vif.virtio import VirtualInterface

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: DPDK l2fwd TX drain interval (BURST_TX_DRAIN_US is 100 us in the DPDK
#: sample app; a buffered packet waits at most this long).
L2FWD_DRAIN_NS = 100_000.0
L2FWD_BURST = 32

#: MAC-rewrite plus forwarding-table work of the l2fwd sample app.
L2FWD_PROC = Cost(per_batch=40.0, per_packet=45.0)

#: The VALE-instance VNF cross-connecting two ptnet ports inside a guest:
#: one packet copy between VALE ports plus lookup, no syscall on the ptnet
#: fast path.
GUEST_VALE_PROC = Cost(per_batch=80.0, per_packet=90.0, per_byte=0.55)

#: The pkt-gen attachment bridge (netmap vif -> VALE instance -> ptnet
#: port): crosses two guest-kernel rings, i.e. roughly twice the copies of
#: the plain VNF cross-connect.
GUEST_VALE_BRIDGE_PROC = Cost(per_batch=160.0, per_packet=180.0, per_byte=1.1)


class GuestL2Fwd:
    """DPDK l2fwd: poll rx, rewrite MACs, buffer TX, drain on burst/timeout."""

    def __init__(
        self,
        sim: "Simulator",
        rx_vif: VirtualInterface,
        tx_vif: VirtualInterface,
        burst: int = L2FWD_BURST,
        drain_ns: float = L2FWD_DRAIN_NS,
        proc: Cost = L2FWD_PROC,
        dst_mac: int = 0x02_00_00_00_00_02,
    ) -> None:
        self.sim = sim
        self.rx_vif = rx_vif
        self.tx_vif = tx_vif
        self.burst = burst
        self.drain_ns = drain_ns
        self.proc = proc
        self.dst_mac = dst_mac
        self._tx_buffer: list[Packet] = []
        self._tx_frames = 0
        self._last_flush_ns = 0.0
        self.forwarded = 0

    def poll(self, core: Core) -> float:
        rx_ring = self.rx_vif.to_guest
        if not rx_ring._frames and not self._tx_buffer:
            return 0.0  # idle: nothing to receive, nothing pending drain
        cycles = 0.0
        batch = rx_ring.pop_batch(self.burst)
        if batch:
            n, total_bytes = batch_stats(batch)
            cycles += self.rx_vif.costs.guest_rx.cycles(n, total_bytes)
            cycles += self.proc.cycles(n, total_bytes)
            for item in batch:
                # Template rewrite covers every frame the item carries.
                item.dst_mac = self.dst_mac
                item.hops += 1
            self._tx_buffer.extend(batch)
            self._tx_frames += n
        now = self.sim.now
        should_flush = self._tx_buffer and (
            self._tx_frames >= self.burst
            or now - self._last_flush_ns >= self.drain_ns
        )
        if should_flush:
            out = self._tx_buffer
            out_frames = self._tx_frames
            self._tx_buffer = []
            self._tx_frames = 0
            self._last_flush_ns = now
            _, total_bytes = batch_stats(out)
            cycles += self.tx_vif.costs.guest_tx.cycles(out_frames, total_bytes)
            ring = self.tx_vif.to_host
            delay = core.cycles_to_ns(cycles) + self.tx_vif.notify_ns
            self.sim.after(delay, lambda: ring.push_batch(out))
            self.forwarded += out_frames
        return cycles


class GuestValeXConnect:
    """A VALE instance inside the guest cross-connecting two ptnet ports.

    Adaptive batching: every poll forwards *everything* available, in both
    directions -- VALE "dynamically adjusts the batch size" (Sec. 5.3), so
    there is no TX-drain delay at low load.
    """

    MAX_BATCH = 512

    def __init__(
        self,
        sim: "Simulator",
        vif_a: VirtualInterface,
        vif_b: VirtualInterface,
        proc: Cost = GUEST_VALE_PROC,
    ) -> None:
        self.sim = sim
        self.vif_a = vif_a
        self.vif_b = vif_b
        self.proc = proc
        self.forwarded = 0

    def poll(self, core: Core) -> float:
        cycles = 0.0
        for rx, tx in ((self.vif_a, self.vif_b), (self.vif_b, self.vif_a)):
            batch = rx.to_guest.pop_batch(self.MAX_BATCH)
            if not batch:
                continue
            n, total_bytes = batch_stats(batch)
            step = rx.costs.guest_rx.cycles(n, total_bytes)
            step += self.proc.cycles(n, total_bytes)
            step += tx.costs.guest_tx.cycles(n, total_bytes)
            for item in batch:
                item.hops += 1
            ring = tx.to_host
            delay = core.cycles_to_ns(cycles + step)
            self.sim.after(delay, lambda ring=ring, batch=batch: ring.push_batch(batch))
            self.forwarded += n
            cycles += step
        return cycles


class GuestValeBridge:
    """The in-VM VALE instance that multiplexes pkt-gen onto one ptnet port.

    The paper attaches the two pkt-gen instances "to a netmap virtual
    interface, which is in turn attached to the ptnet port through a VALE
    instance", noting this "imposes an extra hop of packet forwarding" and
    that VALE's bidirectional p2v/v2v results are therefore lower bounds.
    """

    MAX_BATCH = 256

    def __init__(
        self,
        sim: "Simulator",
        vif: VirtualInterface,
        proc: Cost = GUEST_VALE_BRIDGE_PROC,
        ring_slots: int = 1024,
    ) -> None:
        self.sim = sim
        self.vif = vif
        self.proc = proc
        #: netmap vif rings between pkt-gen and the bridge.
        self.gen_to_bridge = Ring(ring_slots, name="bridge.in")
        self.bridge_to_monitor = Ring(ring_slots, name="bridge.out")
        self.forwarded = 0

    def poll(self, core: Core) -> float:
        cycles = 0.0
        # pkt-gen TX -> ptnet port (towards the host SUT).
        outbound = self.gen_to_bridge.pop_batch(self.MAX_BATCH)
        if outbound:
            n, total_bytes = batch_stats(outbound)
            step = self.proc.cycles(n, total_bytes)
            step += self.vif.costs.guest_tx.cycles(n, total_bytes)
            ring = self.vif.to_host
            self.sim.after(core.cycles_to_ns(step), lambda: ring.push_batch(outbound))
            self.forwarded += n
            cycles += step
        # ptnet port -> pkt-gen RX (from the host SUT).
        inbound = self.vif.to_guest.pop_batch(self.MAX_BATCH)
        if inbound:
            n, total_bytes = batch_stats(inbound)
            step = self.vif.costs.guest_rx.cycles(n, total_bytes)
            step += self.proc.cycles(n, total_bytes)
            ring = self.bridge_to_monitor
            delay = core.cycles_to_ns(cycles + step)
            self.sim.after(delay, lambda: ring.push_batch(inbound))
            self.forwarded += n
            cycles += step
        return cycles
