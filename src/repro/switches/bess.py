"""BESS (Berkeley Extensible Software Switch).

Modular architecture: built-in modules composed into a dataflow graph and
executed by the ``bessd`` daemon, which also schedules traffic classes.
The paper's configurations are minimal -- ``PMDPort`` ports with
``QueueInc -> QueueOut`` chains (Appendix A.1) -- so BESS "only performs
very simple tasks like collecting statistics" and posts the best p2p
numbers (16 Gbps bidirectional at 64 B).

Modelled specifics:

* cheapest processing cost of the seven (see params);
* a module graph mirroring the paper's scripts, kept per path so tests
  and examples can introspect the pipeline the way ``bessctl`` would;
* the QEMU compatibility limit (max 3 VMs, footnote 5) surfaces through
  ``params.max_vms`` and the Hypervisor.
"""

from __future__ import annotations

from repro.core.packet import Packet, batch_count
from repro.switches.base import ForwardingPath, SoftwareSwitch
from repro.switches.params import BESS_PARAMS


class Bess(SoftwareSwitch):
    """BESS behavioural model."""

    def __init__(self, sim, rngs=None, bus=None, params=BESS_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        #: per-path module chains, as bessctl would show them.
        self.pipelines: dict[int, list[str]] = {}
        #: per-module packet counters (the "statistics collection" BESS does).
        self.module_counters: dict[str, int] = {}

    def add_path(self, inp, out) -> ForwardingPath:
        path = super().add_path(inp, out)
        in_module = "QueueInc" if not inp.is_vif else "PortInc"
        out_module = "QueueOut" if not out.is_vif else "PortOut"
        chain = [f"{in_module}({inp.name})", f"{out_module}({out.name})"]
        self.pipelines[id(path)] = chain
        for module in chain:
            self.module_counters.setdefault(module, 0)
        return path

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        frames = batch_count(batch)
        for module in self.pipelines[id(path)]:
            self.module_counters[module] += frames
