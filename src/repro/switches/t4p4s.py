"""t4p4s: the DPDK-backed P4 software switch.

Match/action paradigm compiled from P4: every packet traverses a
*parse* stage, the match/action tables, and a *deparse* stage, with a
hardware abstraction layer between the generated core and DPDK
(Sec. 3.2).  That multi-stage pipeline is the costliest data path of the
seven and the least stable one (Table 3: 174 us at 0.99 R+ in p2p,
7275 us in the 4-VNF chain).

Paper-applied configuration (Table 2 / Appendix A):

* the source-MAC learning phase is *removed* (``mac_learning=False``);
* the l2fwd P4 program matches on destination MAC and emits on the
  matched port; generators must therefore address their frames, and the
  loopback VNFs rewrite destination MACs (Appendix A.4).

The exact-match table here is a real table: tests populate it, look up
keys and exercise the default action, and the stage cycle split is
exposed for the ablation bench.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.cpu.costmodel import Cost
from repro.switches.base import Attachment, ForwardingPath, SoftwareSwitch
from repro.switches.params import (
    T4P4S_FLOW_LOOKUP,
    T4P4S_FLOW_MISS_EXTRA,
    T4P4S_FLOW_TABLE_ENTRIES,
    T4P4S_PARAMS,
    T4P4S_STAGES,
)


class P4Table:
    """An exact-match P4 table ("dstmac" -> forward(port))."""

    def __init__(self, name: str = "dmac") -> None:
        self.name = name
        self._entries: dict[int, Attachment] = {}
        self.hits = 0
        self.misses = 0

    def add_entry(self, dst_mac: int, port: Attachment) -> None:
        self._entries[dst_mac] = port

    def lookup(self, dst_mac: int) -> Attachment | None:
        entry = self._entries.get(dst_mac)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)


class T4P4S(SoftwareSwitch):
    """t4p4s behavioural model (parse / match-action / deparse).

    By default the switch runs the paper's l2fwd P4 program; passing a
    different :class:`~repro.switches.p4.P4Program` recompiles the data
    path with stage costs derived from that program's structure.
    """

    def __init__(
        self,
        sim,
        rngs=None,
        bus=None,
        params=T4P4S_PARAMS,
        mac_learning: bool = False,
        program=None,
    ):
        if program is not None:
            from dataclasses import replace

            from repro.switches.p4 import compile_program

            compiled = compile_program(program)
            params = replace(
                params,
                proc=Cost(per_batch=params.proc.per_batch)
                + compiled.proc,
            )
            self.pipeline_spec = compiled
        else:
            self.pipeline_spec = None
        super().__init__(sim, params, rngs=rngs, bus=bus)
        #: Table 2 tuning: learning removed for the paper's runs.
        self.mac_learning = mac_learning
        self.table = P4Table()
        self.stage_cycles = {stage: 0.0 for stage in T4P4S_STAGES}
        # Capacity-bounded per-flow exact-match table, enabled only when a
        # non-trivial flow population is offered (on_flow_population) so
        # single-flow runs keep the original lookup path bit-for-bit.
        self.flow_table_enabled = False
        self.flow_table_entries = T4P4S_FLOW_TABLE_ENTRIES
        self._flow_keys: dict[int, int] = {}
        self.flow_hits = 0
        self.flow_misses = 0
        self.flow_evictions = 0

    def add_path(self, inp, out) -> ForwardingPath:
        path = super().add_path(inp, out)
        # The paper's generators set destination MACs that the predefined
        # flow table maps to the intended output port; mirror that by
        # installing an entry per path.
        self.table.add_entry(0x02_00_00_00_00_02 + len(self.paths) - 1, out)
        return path

    def _proc_cycles(self, batch: list[Packet], path: ForwardingPath, n: int, total_bytes: int) -> float:
        cycles = self.params.proc.cycles(n, total_bytes)
        if self.mac_learning:
            # The un-tuned switch also learns source MACs (Table 2 notes
            # the paper removed this; keep it togglable for the ablation).
            cycles += 35.0 * n
        # Stage accounting for introspection (costs already in params.proc).
        for stage, cost in T4P4S_STAGES.items():
            self.stage_cycles[stage] += cost.cycles(n, total_bytes)
        if self.flow_table_enabled:
            cycles += self._flow_table_cycles(batch)
        return cycles

    def _flow_table_cycles(self, batch: list[Packet]) -> float:
        """Occupancy-dependent flow-table lookups over the batch's runs.

        The generated exact-match table probes a bounded ``rte_hash``: the
        per-frame cost rises linearly with occupancy (bucket chains), a
        miss pays the default-action/digest path and inserts the key,
        FIFO-evicting when the table is full.
        """
        keys = self._flow_keys
        capacity = self.flow_table_entries
        lookup = T4P4S_FLOW_LOOKUP.per_packet
        flowstats = self.flowstats
        cycles = 0.0
        for item in batch:
            runs = item.flows if item.flows is not None else ((item.flow_id, item.count),)
            for flow, count in runs:
                cycles += lookup * (1.0 + len(keys) / capacity) * count
                if flow in keys:
                    self.flow_hits += count
                    if flowstats is not None:
                        flowstats.cache(flow, count, 0)
                    continue
                self.flow_misses += 1
                if flowstats is not None:
                    flowstats.cache(flow, count - 1, 1)
                cycles += T4P4S_FLOW_MISS_EXTRA.per_packet
                if len(keys) >= capacity:
                    keys.pop(next(iter(keys)))
                    self.flow_evictions += 1
                keys[flow] = 1
                if count > 1:
                    self.flow_hits += count - 1
        return cycles

    def on_flow_population(self, population) -> None:
        """Arm the capacity-bounded flow table for a multi-flow offered load."""
        self.flow_table_enabled = True

    def cache_stats(self) -> dict:
        """Flow-table occupancy counters for obs gauges and campaigns."""
        if not self.flow_table_enabled:
            return {}
        hits, misses = self.flow_hits, self.flow_misses
        total = hits + misses
        return {
            "flow_entries": len(self._flow_keys),
            "flow_capacity": self.flow_table_entries,
            "flow_hits": hits,
            "flow_misses": misses,
            "flow_evictions": self.flow_evictions,
            "flow_hit_rate": hits / total if total else 1.0,
        }

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        table = self.table
        for item in batch:
            # One lookup decides for the whole block (identical dst MACs
            # against a table that this loop does not mutate); the other
            # count-1 frames repeat the same hit or miss.
            entry = table.lookup(item.dst_mac)
            extra = item.count - 1
            if extra:
                if entry is None:
                    table.misses += extra
                else:
                    table.hits += extra
