"""Control-plane front-ends: configure switches the way the paper does.

Appendix A of the paper gives, for each switch, the configuration snippet
that realises each scenario -- a BESS script, a Click one-liner, VPP
l2patch CLI commands, ovs-vsctl/ovs-ofctl invocations, vale-ctl commands,
a Snabb config object.  This module implements a miniature version of
each of those control planes, translating the paper's exact syntax into
``attach_*``/``add_path`` calls on a switch model.

These front-ends are how the *examples* and *tests* reproduce Appendix A
verbatim; the scenario builders call the model API directly for speed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nic.port import NicPort
from repro.switches.base import Attachment, SoftwareSwitch
from repro.vif.virtio import VirtualInterface

Device = NicPort | VirtualInterface


def _attach(switch: SoftwareSwitch, device: Device) -> Attachment:
    """Attach a NIC or vif, reusing an existing attachment if present."""
    for attachment in switch.attachments:
        if getattr(attachment, "port", None) is device:
            return attachment
        if getattr(attachment, "vif", None) is device:
            return attachment
    if isinstance(device, NicPort):
        return switch.attach_phy(device)
    return switch.attach_vif(device)


class ConfigError(ValueError):
    """Raised for malformed or unresolvable configuration input."""


# ---------------------------------------------------------------------------
# BESS: the Appendix A.1/A.2 script pidgin.
#
#   inport::PMDPort(port_id=0)
#   outport::PMDPort(port_id=1)
#   in0::QueueInc(port=inport, qid=0)
#   out0::QueueOut(port=outport, qid=0)
#   in0 -> out0
#   v1::PMDPort(vdev="name,iface=path")
#   in0 -> PortOut(port=v1.name)
# ---------------------------------------------------------------------------

_BESS_DECL = re.compile(r"^(?P<name>\w+)::(?P<module>\w+)\((?P<args>.*)\)$")
_BESS_EDGE = re.compile(r"^(?P<src>\w+)\s*->\s*(?P<dst>\w+(\(.*\))?)$")


class BessScript:
    """Interprets the paper's BESS configuration scripts."""

    def __init__(
        self,
        switch: SoftwareSwitch,
        ports: dict[int, NicPort] | None = None,
        vdevs: dict[str, VirtualInterface] | None = None,
    ) -> None:
        self.switch = switch
        self.ports = ports or {}
        self.vdevs = vdevs or {}
        #: declared module name -> backing device (PMDPort) or upstream
        #: queue's device (QueueInc/QueueOut).
        self._modules: dict[str, tuple[str, Device]] = {}

    def run(self, script: str) -> None:
        for raw in script.strip().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "::" in line:
                self._declare(line)
            elif "->" in line:
                self._link(line)
            else:
                raise ConfigError(f"cannot parse BESS line {line!r}")

    def _declare(self, line: str) -> None:
        match = _BESS_DECL.match(line)
        if match is None:
            raise ConfigError(f"bad declaration {line!r}")
        name, module, args = match.group("name", "module", "args")
        if module == "PMDPort":
            self._modules[name] = ("PMDPort", self._resolve_pmd(args, line))
        elif module in ("QueueInc", "QueueOut"):
            port_ref = self._kwarg(args, "port")
            if port_ref not in self._modules:
                raise ConfigError(f"unknown port module {port_ref!r} in {line!r}")
            self._modules[name] = (module, self._modules[port_ref][1])
        else:
            raise ConfigError(f"unsupported BESS module {module!r}")

    def _resolve_pmd(self, args: str, line: str) -> Device:
        port_id = self._kwarg(args, "port_id", optional=True)
        if port_id is not None:
            try:
                return self.ports[int(port_id)]
            except (KeyError, ValueError):
                raise ConfigError(f"unknown port_id {port_id!r} in {line!r}") from None
        vdev = self._kwarg(args, "vdev", optional=True)
        if vdev is not None:
            key = vdev.strip("\"'").split(",")[0]
            if key not in self.vdevs:
                raise ConfigError(f"unknown vdev {key!r} in {line!r}")
            return self.vdevs[key]
        raise ConfigError(f"PMDPort needs port_id or vdev: {line!r}")

    @staticmethod
    def _kwarg(args: str, key: str, optional: bool = False) -> str | None:
        for part in args.split(","):
            part = part.strip()
            if part.startswith(f"{key}="):
                return part[len(key) + 1 :].strip()
        if optional:
            return None
        raise ConfigError(f"missing {key}= in {args!r}")

    def _link(self, line: str) -> None:
        match = _BESS_EDGE.match(line)
        if match is None:
            raise ConfigError(f"bad edge {line!r}")
        src, dst = match.group("src", "dst")
        src_device = self._device_of(src)
        if dst.startswith("PortOut("):
            ref = self._kwarg(dst[len("PortOut(") : -1], "port")
            name = ref.split(".")[0]
            dst_device = self._device_of(name)
        else:
            dst_device = self._device_of(dst)
        self.switch.add_path(_attach(self.switch, src_device), _attach(self.switch, dst_device))

    def _device_of(self, name: str) -> Device:
        if name not in self._modules:
            raise ConfigError(f"unknown module {name!r}")
        return self._modules[name][1]


# ---------------------------------------------------------------------------
# VPP: the l2patch CLI of Appendix A.1.
#
#   test l2patch rx port0 tx port1
# ---------------------------------------------------------------------------

_L2PATCH = re.compile(r"^test\s+l2patch\s+rx\s+(?P<rx>\S+)\s+tx\s+(?P<tx>\S+)$")


class VppCli:
    """Interprets the subset of vppctl used by the paper."""

    def __init__(self, switch: SoftwareSwitch, interfaces: dict[str, Device]):
        self.switch = switch
        self.interfaces = interfaces

    def exec(self, command: str) -> None:
        command = command.strip()
        match = _L2PATCH.match(command)
        if match is None:
            raise ConfigError(f"unsupported vppctl command {command!r}")
        rx, tx = match.group("rx", "tx")
        for name in (rx, tx):
            if name not in self.interfaces:
                raise ConfigError(f"unknown interface {name!r}")
        self.switch.add_path(
            _attach(self.switch, self.interfaces[rx]),
            _attach(self.switch, self.interfaces[tx]),
        )

    def exec_script(self, script: str) -> None:
        for line in script.strip().splitlines():
            if line.strip():
                self.exec(line)


# ---------------------------------------------------------------------------
# OvS: ovs-vsctl bridge/port management + ovs-ofctl flow rules.
#
#   ovs-vsctl add-br br0
#   ovs-vsctl add-port br0 p1
#   ovs-ofctl add-flow br0 in_port=1,actions=output:2
# ---------------------------------------------------------------------------


@dataclass
class _OvsBridge:
    name: str
    ports: list[str] = field(default_factory=list)
    flows: list[tuple[int, int]] = field(default_factory=list)


class OvsCtl:
    """Interprets the ovs-vsctl / ovs-ofctl subset of Appendix A.1."""

    _FLOW = re.compile(r"^in_port=(?P<inp>\d+),actions=output:(?P<out>\d+)$")

    def __init__(self, switch: SoftwareSwitch, devices: dict[str, Device]):
        self.switch = switch
        self.devices = devices
        self.bridges: dict[str, _OvsBridge] = {}

    def vsctl(self, command: str) -> None:
        tokens = command.split()
        if tokens[:1] == ["add-br"] and len(tokens) == 2:
            bridge = tokens[1]
            if bridge in self.bridges:
                raise ConfigError(f"bridge {bridge!r} exists")
            self.bridges[bridge] = _OvsBridge(bridge)
        elif tokens[:1] == ["add-port"] and len(tokens) == 3:
            bridge, port = tokens[1], tokens[2]
            if bridge not in self.bridges:
                raise ConfigError(f"no bridge {bridge!r}")
            if port not in self.devices:
                raise ConfigError(f"unknown device {port!r}")
            self.bridges[bridge].ports.append(port)
        else:
            raise ConfigError(f"unsupported ovs-vsctl command {command!r}")

    def ofctl_add_flow(self, bridge: str, flow: str) -> None:
        match = self._FLOW.match(flow.replace(" ", ""))
        if match is None:
            raise ConfigError(f"unsupported flow {flow!r}")
        if bridge not in self.bridges:
            raise ConfigError(f"no bridge {bridge!r}")
        br = self.bridges[bridge]
        in_port = int(match.group("inp"))
        out_port = int(match.group("out"))
        for ofport in (in_port, out_port):
            if not 1 <= ofport <= len(br.ports):
                raise ConfigError(f"ofport {ofport} out of range for {bridge!r}")
        br.flows.append((in_port, out_port))
        src = self.devices[br.ports[in_port - 1]]
        dst = self.devices[br.ports[out_port - 1]]
        self.switch.add_path(_attach(self.switch, src), _attach(self.switch, dst))
        # Populate the ofproto rule table when the model carries one (the
        # OvS-DPDK model does); upcalls will consult and account it.
        flow_table = getattr(self.switch, "flow_table", None)
        if flow_table is not None:
            from repro.switches.openflow import FlowMatch, FlowRule

            flow_table.add_rule(
                FlowRule(match=FlowMatch(in_port=in_port - 1), action=f"output:{out_port - 1}")
            )


# ---------------------------------------------------------------------------
# VALE: vale-ctl of Appendix A.1/A.2.
#
#   vale-ctl -a vale0:p1     (attach port p1 to bridge vale0)
#   vale-ctl -n v0           (create virtual interface v0)
# ---------------------------------------------------------------------------


class ValeCtl:
    """Interprets the vale-ctl subset used by the paper.

    VALE is an L2 learning switch: attaching ports to the same bridge
    creates full-mesh bidirectional forwarding between them.
    """

    def __init__(self, switch: SoftwareSwitch, devices: dict[str, Device]):
        self.switch = switch
        self.devices = devices
        self.bridges: dict[str, list[str]] = {}

    def exec(self, command: str) -> None:
        tokens = command.split()
        if tokens[:2] == ["vale-ctl", "-a"] and len(tokens) == 3:
            bridge_port = tokens[2]
            if ":" not in bridge_port:
                raise ConfigError(f"expected bridge:port, got {bridge_port!r}")
            bridge, port = bridge_port.split(":", 1)
            if port not in self.devices:
                raise ConfigError(f"unknown device {port!r}")
            members = self.bridges.setdefault(bridge, [])
            new_att = _attach(self.switch, self.devices[port])
            for existing in members:
                old_att = _attach(self.switch, self.devices[existing])
                self.switch.add_path(old_att, new_att)
                self.switch.add_path(new_att, old_att)
            members.append(port)
        elif tokens[:2] == ["vale-ctl", "-n"] and len(tokens) == 3:
            # Interface creation: the caller provides the actual vif in
            # ``devices``; -n just validates the name is known.
            if tokens[2] not in self.devices:
                raise ConfigError(f"-n names an unknown interface {tokens[2]!r}")
        else:
            raise ConfigError(f"unsupported vale-ctl command {command!r}")


# ---------------------------------------------------------------------------
# Snabb: the config object of Appendix A.1.
#
#   local c = config.new()
#   config.app(c, "nic1", ..., {pciaddr = pci1})
#   config.link(c, "nic1.tx -> nic2.rx")
# ---------------------------------------------------------------------------


class SnabbConfig:
    """The config.new()/config.app()/config.link() workflow."""

    _LINK = re.compile(r"^(?P<src>\w+)\.tx\s*->\s*(?P<dst>\w+)\.rx$")

    def __init__(self, switch: SoftwareSwitch):
        self.switch = switch
        self._apps: dict[str, Device] = {}

    def app(self, name: str, device: Device) -> None:
        if name in self._apps:
            raise ConfigError(f"app {name!r} already defined")
        self._apps[name] = device

    def link(self, spec: str) -> None:
        match = self._LINK.match(spec.strip())
        if match is None:
            raise ConfigError(f"bad link spec {spec!r}")
        src, dst = match.group("src", "dst")
        for name in (src, dst):
            if name not in self._apps:
                raise ConfigError(f"unknown app {name!r}")
        self.switch.add_path(
            _attach(self.switch, self._apps[src]),
            _attach(self.switch, self._apps[dst]),
        )


# ---------------------------------------------------------------------------
# FastClick: wire the parsed Click graph (Appendix A.1 one-liners).
# ---------------------------------------------------------------------------


def apply_click_config(switch: SoftwareSwitch, config: str, devices: dict[str, Device]) -> None:
    """Instantiate a Click configuration against real devices.

    Devices are referenced by the element argument, e.g.
    ``FromDPDKDevice(0) -> ToDPDKDevice(1)`` with ``devices={"0": nic0,
    "1": nic1}``.
    """
    from repro.switches.fastclick import parse_click_config

    for chain in parse_click_config(config):
        if len(chain) != 2:
            raise ConfigError(f"only 2-element chains supported, got {chain}")
        (from_el, from_arg), (to_el, to_arg) = chain
        if from_el != "FromDPDKDevice" or to_el != "ToDPDKDevice":
            raise ConfigError(f"unsupported elements {from_el}->{to_el}")
        for arg in (from_arg, to_arg):
            if arg not in devices:
                raise ConfigError(f"unknown device {arg!r}")
        switch.add_path(
            _attach(switch, devices[from_arg]),
            _attach(switch, devices[to_arg]),
        )
