"""Switch registry: name -> model factory.

The measurement runner, scenario builders, benches and examples all look
switches up here, with the same short names the paper uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.switches.base import SoftwareSwitch
from repro.switches.bess import Bess
from repro.switches.fastclick import FastClick
from repro.switches.ovs_dpdk import OvsDpdk
from repro.switches.params import ALL_PARAMS, SwitchParams
from repro.switches.snabb import Snabb
from repro.switches.t4p4s import T4P4S
from repro.switches.vale import Vale
from repro.switches.vpp import Vpp

if TYPE_CHECKING:
    from repro.core.engine import Simulator
    from repro.core.rng import RngRegistry
    from repro.cpu.numa import MemoryBus

SwitchFactory = Callable[..., SoftwareSwitch]

_FACTORIES: dict[str, SwitchFactory] = {
    "bess": Bess,
    "fastclick": FastClick,
    "ovs-dpdk": OvsDpdk,
    "snabb": Snabb,
    "t4p4s": T4P4S,
    "vale": Vale,
    "vpp": Vpp,
}

#: Paper ordering (alphabetical, as in Table 3).
ALL_SWITCHES = ("bess", "fastclick", "ovs-dpdk", "snabb", "vpp", "vale", "t4p4s")


def switch_names() -> tuple[str, ...]:
    """All registered switch names."""
    return ALL_SWITCHES


def params_for(name: str) -> SwitchParams:
    """Calibrated parameters for a switch name."""
    try:
        return ALL_PARAMS[name]
    except KeyError:
        raise KeyError(f"unknown switch {name!r}; known: {sorted(_FACTORIES)}") from None


def create_switch(
    name: str,
    sim: "Simulator",
    rngs: "RngRegistry | None" = None,
    bus: "MemoryBus | None" = None,
    params: SwitchParams | None = None,
) -> SoftwareSwitch:
    """Instantiate a switch model by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown switch {name!r}; known: {sorted(_FACTORIES)}") from None
    if params is None:
        return factory(sim, rngs=rngs, bus=bus)
    return factory(sim, rngs=rngs, bus=bus, params=params)


def register_switch(name: str, factory: SwitchFactory, params: SwitchParams) -> None:
    """Register a custom switch model (extension point for new designs)."""
    if name in _FACTORIES:
        raise ValueError(f"switch {name!r} already registered")
    _FACTORIES[name] = factory
    ALL_PARAMS[name] = params
