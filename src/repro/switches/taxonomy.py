"""Design-space taxonomy (Tables 1, 2 and 5 of the paper, as data).

The paper's qualitative analysis is part of its contribution; keeping it
as structured data lets tests assert internal consistency (e.g. every
switch the registry knows has a taxonomy row; interrupt-driven models are
the ones the taxonomy says use ptnet) and lets the benches render the
tables alongside the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Architecture(Enum):
    SELF_CONTAINED = "self-contained"
    MODULAR = "modular"


class Paradigm(Enum):
    STRUCTURED = "structured"
    MATCH_ACTION = "match/action"


class ProcessingModel(Enum):
    RTC = "run-to-completion"
    PIPELINE = "pipeline"
    BOTH = "RTC or pipeline"


class Reprogrammability(Enum):
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class TaxonomyRow:
    """One row of Table 1."""

    name: str
    architecture: Architecture
    paradigm: Paradigm
    processing_model: ProcessingModel
    virtual_interface: str
    reprogrammability: Reprogrammability
    languages: tuple[str, ...]
    main_purpose: str


#: Table 1: Taxonomy of State-of-the-Art High-Performance Software Switches.
TAXONOMY: dict[str, TaxonomyRow] = {
    row.name: row
    for row in (
        TaxonomyRow(
            "bess",
            Architecture.MODULAR,
            Paradigm.STRUCTURED,
            ProcessingModel.BOTH,
            "vhost-user",
            Reprogrammability.HIGH,
            ("C", "Python"),
            "Programmable NIC",
        ),
        TaxonomyRow(
            "snabb",
            Architecture.MODULAR,
            Paradigm.STRUCTURED,
            ProcessingModel.PIPELINE,
            "vhost-user",
            Reprogrammability.HIGH,
            ("Lua", "C"),
            "VM-to-VM",
        ),
        TaxonomyRow(
            "ovs-dpdk",
            Architecture.SELF_CONTAINED,
            Paradigm.MATCH_ACTION,
            ProcessingModel.RTC,
            "vhost-user",
            Reprogrammability.MEDIUM,
            ("C",),
            "SDN switch",
        ),
        TaxonomyRow(
            "fastclick",
            Architecture.MODULAR,
            Paradigm.STRUCTURED,
            ProcessingModel.RTC,
            "vhost-user",
            Reprogrammability.LOW,
            ("C++",),
            "Modular router",
        ),
        TaxonomyRow(
            "vpp",
            Architecture.SELF_CONTAINED,
            Paradigm.STRUCTURED,
            ProcessingModel.RTC,
            "vhost-user",
            Reprogrammability.MEDIUM,
            ("C",),
            "Full router",
        ),
        TaxonomyRow(
            "vale",
            Architecture.SELF_CONTAINED,
            Paradigm.STRUCTURED,
            ProcessingModel.RTC,
            "ptnet",
            Reprogrammability.LOW,
            ("C",),
            "Virtual L2 Ethernet",
        ),
        TaxonomyRow(
            "t4p4s",
            Architecture.SELF_CONTAINED,
            Paradigm.MATCH_ACTION,
            ProcessingModel.RTC,
            "vhost-user",
            Reprogrammability.MEDIUM,
            ("C", "Python"),
            "P4 switch",
        ),
    )
}

#: Table 2: Software Switches Parameter Tuning applied by the paper.
TUNINGS: dict[str, str] = {
    "fastclick": "Increase descriptor ring size to 4096",
    "t4p4s": "Remove source MAC learning phase",
    "vale": "Disable flow control for NIC interfaces",
}

#: Table 5: Software Switches Use Cases Summary.
USE_CASES: dict[str, tuple[str, str]] = {
    "bess": (
        "Forwarding between physical NICs",
        "Incompatible with newer versions of QEMU",
    ),
    "snabb": (
        "Fast deployment, runtime optimization",
        "Bottlenecked with multiple VNFs",
    ),
    "ovs-dpdk": ("Stateless SDN deployments", "Supports OpenFlow protocol"),
    "fastclick": (
        "VNF chaining",
        "Supports live migration, high latency at low workload",
    ),
    "vpp": ("VNF chaining", "Supports live migration"),
    "vale": (
        "VNF chaining with high workload",
        "Limited traffic classification and live migration capability",
    ),
    "t4p4s": ("Stateful SDN deployments", "Supports P4 language"),
}

#: Table 1 again, as note (Sec. 3.4): Snabb is the only pure-pipeline
#: design; this drives ``SwitchParams.pipeline`` and is asserted in tests.
PIPELINE_SWITCHES = frozenset(
    name
    for name, row in TAXONOMY.items()
    if row.processing_model is ProcessingModel.PIPELINE
)
