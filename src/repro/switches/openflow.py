"""A miniature OpenFlow table for the OvS-DPDK model.

OvS-DPDK "can be used as a static switch with predefined rules, or as a
fully functional SDN switch in conjunction with an external control
plane" (Sec. 3.8).  This module provides the rule machinery behind both:
priority-ordered wildcard rules, lookup, per-rule statistics, and
*megaflow derivation* -- the mechanism by which the ofproto slow path
installs a collapsed entry into the datapath classifier after an upcall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.packet import Packet


@dataclass(frozen=True)
class FlowMatch:
    """Wildcardable match over the fields the simulation models.

    ``None`` means wildcard.  (A real OvS match has dozens of fields;
    these are the ones packets carry here.)
    """

    in_port: int | None = None
    dst_mac: int | None = None
    src_mac: int | None = None
    flow_id: int | None = None

    def matches(self, packet: Packet, in_port: int) -> bool:
        if self.in_port is not None and self.in_port != in_port:
            return False
        if self.dst_mac is not None and self.dst_mac != packet.dst_mac:
            return False
        if self.src_mac is not None and self.src_mac != packet.src_mac:
            return False
        if self.flow_id is not None and self.flow_id != packet.flow_id:
            return False
        return True

    @property
    def wildcard_count(self) -> int:
        return sum(
            1
            for value in (self.in_port, self.dst_mac, self.src_mac, self.flow_id)
            if value is None
        )


@dataclass
class FlowRule:
    """One OpenFlow rule: priority + match + action."""

    match: FlowMatch
    action: str  # "output:N" or "drop"
    priority: int = 0
    n_packets: int = 0
    n_bytes: int = 0

    def __post_init__(self) -> None:
        if not (self.action == "drop" or self.action.startswith("output:")):
            raise ValueError(f"unsupported action {self.action!r}")

    @property
    def output_port(self) -> int | None:
        if self.action.startswith("output:"):
            return int(self.action.split(":", 1)[1])
        return None


class OpenFlowTable:
    """Priority-ordered rule table with per-rule statistics."""

    def __init__(self) -> None:
        self._rules: list[FlowRule] = []
        self.lookups = 0
        self.misses = 0

    def add_rule(self, rule: FlowRule) -> None:
        self._rules.append(rule)
        # Highest priority first; insertion order breaks ties (OvS keeps
        # an unspecified order among equal priorities; stable is kindest).
        self._rules.sort(key=lambda r: -r.priority)

    def lookup(self, packet: Packet, in_port: int) -> FlowRule | None:
        """Find the highest-priority matching rule and update its stats."""
        self.lookups += 1
        for rule in self._rules:
            if rule.match.matches(packet, in_port):
                rule.n_packets += 1
                rule.n_bytes += packet.size
                return rule
        self.misses += 1
        return None

    def derive_megaflow(self, packet: Packet, in_port: int, rule: FlowRule) -> FlowMatch:
        """Collapse an upcall result into a datapath megaflow entry.

        The megaflow un-wildcards exactly the fields the slow-path lookup
        had to inspect to disambiguate ``rule`` from other rules -- here,
        conservatively, every field any rule constrains.
        """
        need_in_port = any(r.match.in_port is not None for r in self._rules)
        need_dst = any(r.match.dst_mac is not None for r in self._rules)
        need_src = any(r.match.src_mac is not None for r in self._rules)
        need_flow = any(r.match.flow_id is not None for r in self._rules)
        return FlowMatch(
            in_port=in_port if need_in_port else None,
            dst_mac=packet.dst_mac if need_dst else None,
            src_mac=packet.src_mac if need_src else None,
            flow_id=packet.flow_id if need_flow else None,
        )

    def dump_flows(self) -> list[str]:
        """ovs-ofctl dump-flows style listing."""
        return [
            f"priority={rule.priority},"
            + ",".join(
                f"{name}={value}"
                for name, value in (
                    ("in_port", rule.match.in_port),
                    ("dl_dst", rule.match.dst_mac),
                    ("dl_src", rule.match.src_mac),
                    ("flow", rule.match.flow_id),
                )
                if value is not None
            )
            + f" actions={rule.action} n_packets={rule.n_packets}"
            for rule in self._rules
        ]

    def __len__(self) -> int:
        return len(self._rules)
