"""The seven switch models, their parameters, registry and taxonomy."""

from repro.switches.base import (
    Attachment,
    ForwardingPath,
    PhyAttachment,
    SoftwareSwitch,
    VifAttachment,
)
from repro.switches.bess import Bess
from repro.switches.control import (
    BessScript,
    ConfigError,
    OvsCtl,
    SnabbConfig,
    ValeCtl,
    VppCli,
    apply_click_config,
)
from repro.switches.fastclick import FastClick, parse_click_config
from repro.switches.jitter import CostJitter, StallProcess
from repro.switches.openflow import FlowMatch, FlowRule, OpenFlowTable
from repro.switches.ovs_dpdk import OvsDpdk
from repro.switches.p4 import (
    L2FWD_PROGRAM,
    L3FWD_PROGRAM,
    CompiledPipeline,
    MatchKind,
    P4Program,
    P4TableSpec,
    compile_program,
)
from repro.switches.params import ALL_PARAMS, SwitchParams
from repro.switches.registry import (
    ALL_SWITCHES,
    create_switch,
    params_for,
    register_switch,
    switch_names,
)
from repro.switches.snabb import Snabb
from repro.switches.t4p4s import T4P4S, P4Table
from repro.switches.taxonomy import TAXONOMY, TUNINGS, USE_CASES, TaxonomyRow
from repro.switches.vale import Vale
from repro.switches.vpp import NodeRuntime, Vpp

__all__ = [
    "ALL_PARAMS",
    "ALL_SWITCHES",
    "Attachment",
    "Bess",
    "BessScript",
    "CompiledPipeline",
    "ConfigError",
    "FlowMatch",
    "FlowRule",
    "L2FWD_PROGRAM",
    "L3FWD_PROGRAM",
    "MatchKind",
    "OpenFlowTable",
    "OvsCtl",
    "P4Program",
    "P4TableSpec",
    "SnabbConfig",
    "ValeCtl",
    "VppCli",
    "apply_click_config",
    "compile_program",
    "CostJitter",
    "FastClick",
    "ForwardingPath",
    "NodeRuntime",
    "OvsDpdk",
    "P4Table",
    "PhyAttachment",
    "Snabb",
    "SoftwareSwitch",
    "StallProcess",
    "SwitchParams",
    "T4P4S",
    "TAXONOMY",
    "TUNINGS",
    "TaxonomyRow",
    "USE_CASES",
    "Vale",
    "VifAttachment",
    "Vpp",
    "create_switch",
    "params_for",
    "parse_click_config",
    "register_switch",
    "switch_names",
]
