"""Click element graphs, compiled to the FastClick cost model.

FastClick "consists of a set of nodes that can be arranged using a
Click-specific configuration language" (Sec. 3.2).  Like the mini-P4
compiler for t4p4s, this module derives a processing cost from the
*structure* of a Click configuration: each element class carries a
per-packet (and sometimes per-byte) cycle weight, and a chain's cost is
the sum over its interior elements.

The paper's evaluated configuration is the bare
``FromDPDKDevice(0) -> ToDPDKDevice(1)`` one-liner (Appendix A.1); its
compiled cost equals the calibrated ``FASTCLICK_PARAMS.proc`` exactly.
Richer graphs (classifiers, counters, strips) let users model custom
FastClick VNFs and measure them with the same methodology -- the
"re-arrange its rich set of internal elements" flexibility of Sec. 3.8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costmodel import Cost
from repro.switches.fastclick import parse_click_config

#: Per-element cycle weights.  I/O endpoints carry the header
#: extract/update work the paper attributes to FastClick's data path;
#: interior elements are taken from Click's own microbenchmark lore
#: (classification is a tree walk, counters are a cache line, strips are
#: pointer arithmetic).
ELEMENT_COSTS: dict[str, Cost] = {
    "FromDPDKDevice": Cost(per_packet=46.0),
    "ToDPDKDevice": Cost(per_packet=44.0),
    "Classifier": Cost(per_packet=38.0),
    "IPClassifier": Cost(per_packet=64.0),
    "Counter": Cost(per_packet=12.0),
    "Strip": Cost(per_packet=8.0),
    "Unstrip": Cost(per_packet=8.0),
    "EtherMirror": Cost(per_packet=18.0),
    "SetIPChecksum": Cost(per_packet=30.0, per_byte=0.08),
    "Queue": Cost(per_packet=22.0),
    "Paint": Cost(per_packet=6.0),
}


class UnknownElementError(ValueError):
    """A configuration references an element without a cost model."""


@dataclass(frozen=True)
class CompiledChain:
    """A Click chain with its derived processing cost."""

    elements: tuple[str, ...]
    proc: Cost

    @property
    def depth(self) -> int:
        return len(self.elements)


def compile_chain(elements: list[tuple[str, str]]) -> CompiledChain:
    """Sum element costs along one chain."""
    total = Cost()
    names = []
    for element, _args in elements:
        cost = ELEMENT_COSTS.get(element)
        if cost is None:
            raise UnknownElementError(
                f"no cost model for Click element {element!r}; known: {sorted(ELEMENT_COSTS)}"
            )
        total = total + cost
        names.append(element)
    return CompiledChain(elements=tuple(names), proc=total)


def compile_config(config: str) -> list[CompiledChain]:
    """Parse and compile a full Click configuration (one chain per line)."""
    return [compile_chain(chain) for chain in parse_click_config(config)]


def proc_cost_for(config: str, per_batch: float = 80.0) -> Cost:
    """The switch-model ``proc`` cost for a configuration.

    Uses the *most expensive* chain (the worst-case path a packet takes)
    and keeps FastClick's calibrated per-batch scheduling overhead.
    """
    chains = compile_config(config)
    if not chains:
        raise ValueError("empty configuration")
    worst = max(chains, key=lambda chain: chain.proc.per_packet)
    return Cost(per_batch=per_batch) + worst.proc


#: The paper's Appendix A.1 configuration.
PAPER_P2P_CONFIG = "FromDPDKDevice(0) -> ToDPDKDevice(1)"
