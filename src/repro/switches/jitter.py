"""Service-time variability.

The paper's latency analysis hinges on *stability*: "R+ is only the
average throughput and the actual forwarding rate of each software switch
fluctuates around it.  Consequently, an unstable software switch might
fail to sustain 0.99R+ in a specific time period, causing data path
congestion and packet loss" (Sec. 5.3).  t4p4s and OvS-DPDK show this
dramatically (Table 3); BESS/VPP/FastClick barely at all.

We model the fluctuation as a piecewise-constant multiplicative
modulation of processing cost: every ``period_ns`` the multiplier is
redrawn from a lognormal with unit mean, so the *average* rate (R+) is
unchanged while slow episodes build queues whose drain time shows up as
latency.  A second sigma applies on paths that traverse a virtual
interface, where OvS and t4p4s are disproportionately unstable.
"""

from __future__ import annotations

import math

import numpy as np


class CostJitter:
    """Piecewise-constant lognormal service-cost modulation (unit mean)."""

    def __init__(self, rng: np.random.Generator, sigma: float, period_ns: float = 50_000.0):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._rng = rng
        self.sigma = sigma
        self.period_ns = period_ns
        self._multiplier = 1.0
        self._next_resample_ns = 0.0

    def multiplier(self, now_ns: float) -> float:
        """Current cost multiplier; resampled on period boundaries."""
        if self.sigma == 0.0:
            return 1.0
        if now_ns >= self._next_resample_ns:
            # Throughput under sustained backlog averages the *service
            # rate*, i.e. E[1/multiplier]; pick mu so that expectation is
            # exactly 1 and jitter redistributes capacity over time without
            # creating any (R+ is unchanged, queues are not).
            mu = 0.5 * self.sigma * self.sigma
            self._multiplier = float(math.exp(self._rng.normal(mu, self.sigma)))
            self._next_resample_ns = now_ns + self.period_ns
        return self._multiplier


class StallProcess:
    """Occasional long stalls (Snabb's LuaJIT trace compilation).

    Snabb "keeps evaluating its execution time in performing online code
    optimizations" (Sec. 5.3); when the JIT recompiles a trace the data
    plane pauses for tens of microseconds.  Stalls arrive as a Poisson
    process and add a fixed cycle penalty to the breath in which they hit.
    """

    def __init__(self, rng: np.random.Generator, mean_period_ns: float, stall_cycles: float):
        if mean_period_ns <= 0:
            raise ValueError("stall period must be positive")
        self._rng = rng
        self.mean_period_ns = mean_period_ns
        self.stall_cycles = stall_cycles
        self._next_stall_ns = float(rng.exponential(mean_period_ns))
        self.stalls = 0

    def cycles_due(self, now_ns: float) -> float:
        """Stall cycles to charge at ``now_ns`` (0 if no stall due)."""
        if now_ns < self._next_stall_ns:
            return 0.0
        self._next_stall_ns = now_ns + float(self._rng.exponential(self.mean_period_ns))
        self.stalls += 1
        return self.stall_cycles
