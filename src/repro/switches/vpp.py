"""VPP (FD.io Vector Packet Processing).

Self-contained full router: packets flow through a graph of nodes
(``dpdk-input -> l2-patch -> interface-output`` in the paper's l2patch
configuration, Appendix A.1) in *vectors* of up to 256.  Vector
processing amortises graph-node dispatch and keeps the I-cache warm, so
per-batch cost is high but per-packet cost low -- VPP saturates 10 Gbps
unidirectional and exceeds 10 Gbps bidirectional at 64 B.

The paper's reversed-path experiment (Sec. 5.2) isolates a vhost-user
*receive* penalty: forwarding NIC->VM runs at 6.9 Gbps but VM->NIC only
at 5.59 Gbps.  That asymmetry lives in ``VPP_PARAMS.vif_costs``
(host_rx > host_tx).

The graph-node trace kept here mirrors ``vppctl show runtime``: vectors
and calls per node, from which tests verify the vectors/call ratio that
vector processing is all about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packet import Packet, batch_count
from repro.switches.base import ForwardingPath, SoftwareSwitch
from repro.switches.params import VPP_PARAMS


@dataclass
class NodeRuntime:
    """Per-graph-node counters (vppctl 'show runtime' equivalent)."""

    calls: int = 0
    vectors: int = 0

    @property
    def vectors_per_call(self) -> float:
        return self.vectors / self.calls if self.calls else 0.0


class Vpp(SoftwareSwitch):
    """VPP behavioural model with graph-node runtime accounting."""

    def __init__(self, sim, rngs=None, bus=None, params=VPP_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        self.node_runtime: dict[str, NodeRuntime] = {}

    def _graph_nodes(self, path: ForwardingPath) -> tuple[str, str, str]:
        rx_node = "vhost-user-input" if path.input.is_vif else "dpdk-input"
        tx_node = "vhost-user-output" if path.output.is_vif else "interface-output"
        return rx_node, "l2-patch", tx_node

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        vector = batch_count(batch)
        for node in self._graph_nodes(path):
            runtime = self.node_runtime.setdefault(node, NodeRuntime())
            runtime.calls += 1
            runtime.vectors += vector
