"""OvS-DPDK (Open vSwitch with the DPDK datapath).

Match/action paradigm: every packet is classified against flow tables.
The userspace datapath has a three-level lookup hierarchy:

1. **EMC** (exact match cache, 8k entries): cheapest, still a hash +
   compare per packet;
2. **dpcls** (megaflow classifier): tuple-space search, several times
   costlier, populated from OpenFlow rules;
3. **upcall** (ofproto slow path): first packet of a flow, very costly.

The paper's synthetic traffic is a single flow of identical packets, so
after the first packet everything hits the EMC -- and *still* only
reaches 8.05 Gbps at 64 B "due to the overhead imposed by its
match/action pipeline.  As the synthetic traffic consists of identical
packets ... OvS-DPDK's flow cache does not help" (Sec. 5.2).  Multi-flow
workloads (flow_count > EMC capacity) exercise the dpcls path; the
ablation bench sweeps this.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.switches.base import ForwardingPath, SoftwareSwitch
from repro.switches.openflow import FlowMatch, OpenFlowTable
from repro.switches.params import (
    OVS_EMC_ENTRIES,
    OVS_EMC_MISS_EXTRA,
    OVS_PARAMS,
    OVS_UPCALL_EXTRA,
)


class OvsDpdk(SoftwareSwitch):
    """OvS-DPDK behavioural model with a three-level flow cache."""

    def __init__(self, sim, rngs=None, bus=None, params=OVS_PARAMS, emc_entries: int = OVS_EMC_ENTRIES):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        self.emc_entries = emc_entries
        self._emc: dict[int, int] = {}
        self._megaflows: set[int] = set()
        #: the ofproto rule table an external controller would populate
        #: (OvsCtl.ofctl_add_flow feeds it); consulted on upcalls.
        self.flow_table = OpenFlowTable()
        #: megaflow entries the slow path has installed.
        self.megaflow_entries: list[FlowMatch] = []
        self.emc_hits = 0
        self.emc_misses = 0
        self.emc_evictions = 0
        self.upcalls = 0

    def _proc_cycles(self, batch: list[Packet], path: ForwardingPath, n: int, total_bytes: int) -> float:
        cycles = self.params.proc.cycles(n, total_bytes)  # EMC-hit baseline
        flowstats = self.flowstats
        for item in batch:
            runs = item.flows
            if runs is None:
                cycles += self._classify_run(item.flow_id, item.count, item, flowstats)
            else:
                # Multi-flow block: fold the classifier over the run-length
                # summary -- per-run semantics identical to the per-packet
                # path without materialising any headers.
                for flow, count in runs:
                    cycles += self._classify_run(flow, count, item, flowstats)
        return cycles

    def _classify_run(self, flow: int, count: int, item, flowstats=None) -> float:
        """Classify ``count`` consecutive frames of one flow; extra cycles."""
        if flow in self._emc:
            self.emc_hits += count
            if flowstats is not None:
                flowstats.cache(flow, count, 0)
            return 0.0
        # A run's frames share one flow: the first frame misses and
        # installs the EMC entry, the remaining count-1 frames hit it.
        self.emc_misses += 1
        if flowstats is not None:
            flowstats.cache(flow, count - 1, 1)
        cycles = OVS_EMC_MISS_EXTRA.per_packet
        if flow not in self._megaflows:
            # ofproto upcall: consult the OpenFlow rules (when an SDN
            # controller installed any) and collapse the result into a
            # datapath megaflow.
            self.upcalls += 1
            cycles += OVS_UPCALL_EXTRA.per_packet
            if len(self.flow_table):
                rule = self.flow_table.lookup(item, in_port=0)
                if rule is not None:
                    self.megaflow_entries.append(
                        self.flow_table.derive_megaflow(item, 0, rule)
                    )
            self._megaflows.add(flow)
        self._insert_emc(flow)
        if count > 1:
            self.emc_hits += count - 1
        return cycles

    def _insert_emc(self, flow: int) -> None:
        if len(self._emc) >= self.emc_entries:
            # EMC eviction is hash-indexed; dropping the oldest entry is a
            # fair stand-in for the occupancy behaviour we need.
            self._emc.pop(next(iter(self._emc)))
            self.emc_evictions += 1
        self._emc[flow] = 1

    def cache_stats(self) -> dict:
        """EMC occupancy/traffic counters for obs gauges and campaigns."""
        hits, misses = self.emc_hits, self.emc_misses
        total = hits + misses
        return {
            "emc_entries": len(self._emc),
            "emc_capacity": self.emc_entries,
            "emc_hits": hits,
            "emc_misses": misses,
            "emc_evictions": self.emc_evictions,
            "emc_hit_rate": hits / total if total else 1.0,
            "upcalls": self.upcalls,
            "megaflows": len(self._megaflows),
        }

    # -- fault hooks (repro.faults) ----------------------------------------

    def flush_emc(self) -> int:
        """Flush the exact-match cache (``ovs-appctl dpctl/flush-conntrack``
        style churn): every active flow re-misses into the megaflow
        classifier on its next packet.  Returns entries flushed.
        """
        flushed = len(self._emc)
        self._emc.clear()
        return flushed

    def begin_flow_reinstall(self) -> list:
        """Controller restart: all three lookup levels are wiped.

        Until :meth:`finish_flow_reinstall` puts the OpenFlow rules back,
        every flow's first packet takes the full upcall slow path -- the
        slow-path storm of a control-plane reset.  Returns the stashed
        rules to hand back to ``finish_flow_reinstall``.
        """
        rules = list(self.flow_table._rules)
        self.flow_table._rules.clear()
        self._emc.clear()
        self._megaflows.clear()
        self.megaflow_entries.clear()
        return rules

    def finish_flow_reinstall(self, rules: list) -> None:
        """Re-converge: the controller reinstalls its OpenFlow rules."""
        for rule in rules:
            self.flow_table.add_rule(rule)
