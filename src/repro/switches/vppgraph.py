"""VPP graph paths, compiled to the VPP cost model.

VPP "consists of a forwarding graph with hundreds of functions"
(Sec. 3.2); a packet vector is dispatched through a sequence of graph
nodes, paying a fixed dispatch cost per node per vector plus per-packet
work inside each node.  This module mirrors that: a registry of node
weights and a compiler from a node path to the switch-model cost.

The paper's configuration is the *l2patch* path (Appendix A.1), whose
compiled cost equals the calibrated ``VPP_PARAMS.proc``; richer paths
(the IPv4 router, an ACL'd router) model what running VPP as the
"full-fledged software network function" of Sec. 5.4 would cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costmodel import Cost

#: Graph-node dispatch overhead per vector (function call, vector
#: prefetch, next-node demux) -- the cost that 256-packet vectors exist
#: to amortise.
DISPATCH_PER_NODE = 200.0

#: Per-packet work inside each node.  I/O nodes' packet work lives in
#: the NIC/vif cost parameters, so they carry zero here.
NODE_COSTS: dict[str, float] = {
    "dpdk-input": 0.0,
    "vhost-user-input": 0.0,
    "interface-output": 0.0,
    "vhost-user-output": 0.0,
    "l2-patch": 95.0,
    "ethernet-input": 35.0,
    "l2-learn": 48.0,
    "l2-fwd": 52.0,
    "ip4-input": 45.0,
    "ip4-lookup": 110.0,
    "ip4-rewrite": 65.0,
    "acl-plugin": 140.0,
    "nat44-in2out": 165.0,
}


class UnknownNodeError(ValueError):
    """A path references a graph node without a cost model."""


@dataclass(frozen=True)
class CompiledPath:
    """A VPP graph path with its derived processing cost."""

    nodes: tuple[str, ...]
    proc: Cost

    @property
    def depth(self) -> int:
        return len(self.nodes)


def compile_path(nodes: list[str] | tuple[str, ...]) -> CompiledPath:
    """Derive the proc cost of dispatching a vector through ``nodes``."""
    if not nodes:
        raise ValueError("a graph path needs at least one node")
    per_packet = 0.0
    for node in nodes:
        if node not in NODE_COSTS:
            raise UnknownNodeError(
                f"no cost model for VPP node {node!r}; known: {sorted(NODE_COSTS)}"
            )
        per_packet += NODE_COSTS[node]
    return CompiledPath(
        nodes=tuple(nodes),
        proc=Cost(per_batch=DISPATCH_PER_NODE * len(nodes), per_packet=per_packet),
    )


#: The paper's l2patch configuration: "test l2patch rx port0 tx port1".
L2PATCH_PATH = ("dpdk-input", "l2-patch", "interface-output")

#: VPP as an L2 learning bridge.
L2_BRIDGE_PATH = ("dpdk-input", "ethernet-input", "l2-learn", "l2-fwd", "interface-output")

#: VPP as the full IPv4 router it ships as.
IP4_ROUTER_PATH = (
    "dpdk-input",
    "ethernet-input",
    "ip4-input",
    "ip4-lookup",
    "ip4-rewrite",
    "interface-output",
)

#: The router with the ACL plugin enabled (a "security appliance").
IP4_ACL_ROUTER_PATH = (
    "dpdk-input",
    "ethernet-input",
    "ip4-input",
    "acl-plugin",
    "ip4-lookup",
    "ip4-rewrite",
    "interface-output",
)
