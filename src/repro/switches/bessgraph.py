"""BESS module graphs, compiled to the BESS cost model.

BESS composes "a set of built-in modules used to compose network
services" (Sec. 2.1).  Like the Click and VPP compilers, this derives a
processing cost from a module pipeline's structure; the paper's minimal
``QueueInc -> QueueOut`` configuration compiles to the calibrated
``BESS_PARAMS.proc`` exactly, and richer pipelines (match tables, load
balancers, rate limiters -- the "custom policies, resource sharing, and
traffic shaping" of Sec. 3.8) model heavier BESS deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costmodel import Cost
from repro.switches.params import BESS_PARAMS

#: Per-module cycle weights.  The queue pair carries BESS's whole
#: minimal data path ("only performs very simple tasks like collecting
#: statistics"); richer modules follow BESS's own benchmark ordering.
MODULE_COSTS: dict[str, Cost] = {
    "QueueInc": Cost(per_packet=26.0),
    "QueueOut": Cost(per_packet=22.0),
    "PortInc": Cost(per_packet=30.0),
    "PortOut": Cost(per_packet=26.0),
    "ExactMatch": Cost(per_packet=64.0),
    "WildcardMatch": Cost(per_packet=120.0),
    "HashLB": Cost(per_packet=34.0),
    "RandomSplit": Cost(per_packet=14.0),
    "Measure": Cost(per_packet=20.0),
    "TokenBucket": Cost(per_packet=28.0),
    "VLANPush": Cost(per_packet=16.0),
    "IPChecksum": Cost(per_packet=26.0, per_byte=0.08),
}

#: The bessd scheduler's per-batch cost (traffic-class arbitration), kept
#: from the calibrated parameters.
SCHEDULER_PER_BATCH = BESS_PARAMS.proc.per_batch


class UnknownModuleError(ValueError):
    """A pipeline references a module without a cost model."""


@dataclass(frozen=True)
class CompiledBessPipeline:
    """A BESS module pipeline with its derived processing cost."""

    modules: tuple[str, ...]
    proc: Cost

    @property
    def depth(self) -> int:
        return len(self.modules)


def compile_pipeline(modules: list[str] | tuple[str, ...]) -> CompiledBessPipeline:
    """Sum module costs along a pipeline, plus the scheduler's batch cost."""
    if not modules:
        raise ValueError("a pipeline needs at least one module")
    per_packet = 0.0
    per_byte = 0.0
    for module in modules:
        cost = MODULE_COSTS.get(module)
        if cost is None:
            raise UnknownModuleError(
                f"no cost model for BESS module {module!r}; known: {sorted(MODULE_COSTS)}"
            )
        per_packet += cost.per_packet
        per_byte += cost.per_byte
    return CompiledBessPipeline(
        modules=tuple(modules),
        proc=Cost(per_batch=SCHEDULER_PER_BATCH, per_packet=per_packet, per_byte=per_byte),
    )


#: The paper's Appendix A.1 configuration.
PAPER_P2P_PIPELINE = ("QueueInc", "QueueOut")

#: A BESS deployment doing real classification + shaping (Sec. 3.8's
#: "custom policies, resource sharing, and traffic shaping").
SHAPER_PIPELINE = ("QueueInc", "ExactMatch", "TokenBucket", "Measure", "QueueOut")
