"""FastClick: the accelerated Click modular router.

Click elements arranged by a configuration language; FastClick moved the
original pipeline design "to a full run-to-completion approach"
(Sec. 3.4) on top of DPDK, with zero-copy, batching and multi-queueing.
The paper's configurations are one-liners like
``FromDPDKDevice(0) -> ToDPDKDevice(1)`` (Appendix A.1).

Modelled specifics:

* RTC with per-packet header read/write work ("additionally extracts and
  updates packet header fields", Sec. 5.2) -- proc cost between BESS and
  OvS;
* NIC descriptor rings enlarged to 4096 (Table 2 tuning; see params);
* internal TX batching on vif outputs -- FastClick rebuilds batches
  before pushing to vhost, so its low-load loopback latency balloons
  ("the ratio between 0.10 and 0.50 R+ is more than 9 for FastClick with
  4 VNFs", Sec. 5.3);
* a Click element graph kept per configuration for introspection, parsed
  from the same arrow syntax the paper's appendix uses.
"""

from __future__ import annotations

import re

from repro.switches.base import ForwardingPath, SoftwareSwitch
from repro.switches.params import FASTCLICK_PARAMS

_ELEMENT_RE = re.compile(r"^\s*(?P<cls>\w+)\s*\((?P<args>[^)]*)\)\s*$")


def parse_click_config(config: str) -> list[list[tuple[str, str]]]:
    """Parse minimal Click arrow syntax into chains of (element, args).

    >>> parse_click_config("FromDPDKDevice(0)->ToDPDKDevice(1)")
    [[('FromDPDKDevice', '0'), ('ToDPDKDevice', '1')]]
    """
    chains = []
    for line in config.strip().splitlines():
        line = line.strip().rstrip(";")
        if not line:
            continue
        chain = []
        for element in line.split("->"):
            match = _ELEMENT_RE.match(element)
            if match is None:
                raise ValueError(f"cannot parse Click element {element!r}")
            chain.append((match.group("cls"), match.group("args").strip()))
        chains.append(chain)
    return chains


class FastClick(SoftwareSwitch):
    """FastClick behavioural model."""

    def __init__(self, sim, rngs=None, bus=None, params=FASTCLICK_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        self.element_graph: list[list[tuple[str, str]]] = []

    def add_path(self, inp, out) -> ForwardingPath:
        path = super().add_path(inp, out)
        from_el = "FromDPDKDevice" if not inp.is_vif else "FromDPDKDevice"  # vdev ports use the same element
        to_el = "ToDPDKDevice"
        self.element_graph.append([(from_el, inp.name), (to_el, out.name)])
        return path

    def load_config(self, config: str) -> None:
        """Record a Click configuration (introspection/teaching aid)."""
        self.element_graph = parse_click_config(config)
