"""Software switch framework.

A :class:`SoftwareSwitch` is a :class:`~repro.cpu.cores.Task` pinned to the
single SUT core (Sec. 5.1).  Scenario builders attach *ports* -- physical
NICs or virtual interfaces -- and declare *forwarding paths* between them
(the l2patch / port-mirror / cross-connect configurations of Appendix A).
Each poll-loop iteration ("breath", in Snabb terms) services every path:
pop a batch from the input, pay the receive + processing + transmit cycle
costs (modulated by the switch's stability process), and deliver the
batch to the output once that time has elapsed.

Mechanisms expressed here, switch models toggle them via params:

* run-to-completion vs pipeline servicing (``params.pipeline``);
* poll-mode vs interrupt I/O (``params.interrupt_driven`` plus NIC
  interrupt moderation);
* strict batch constitution with a timeout (t4p4s);
* TX drain buffering on vif outputs (FastClick);
* per-path service-cost jitter and Poisson stalls;
* memory-bus accounting for vhost-user copies (binds in v2v);
* per-switch processing hooks (OvS flow cache, VALE MAC learning, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packet import Packet, batch_stats
from repro.core.ring import Ring
from repro.core.rng import RngRegistry
from repro.cpu.cores import Core
from repro.cpu.costmodel import Cost
from repro.nic.port import NicPort
from repro.switches.jitter import CostJitter, StallProcess
from repro.switches.params import SwitchParams
from repro.vif.virtio import VirtualInterface

if TYPE_CHECKING:
    from repro.core.engine import Simulator
    from repro.cpu.numa import MemoryBus


class Attachment:
    """A switch-side port: common interface over NICs and vifs."""

    is_vif = False

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def input_ring(self) -> Ring:
        raise NotImplementedError

    def deliver(self, sim: "Simulator", packets: list[Packet], delay_ns: float) -> None:
        raise NotImplementedError

    def rx_cost(self, params: SwitchParams) -> Cost:
        raise NotImplementedError

    def tx_cost(self, params: SwitchParams) -> Cost:
        raise NotImplementedError


class PhyAttachment(Attachment):
    """A physical NIC port bound to the switch (DPDK PMD or netmap)."""

    def __init__(self, port: NicPort) -> None:
        super().__init__(port.name)
        self.port = port

    @property
    def input_ring(self) -> Ring:
        return self.port.rx_ring

    def deliver(self, sim: "Simulator", packets: list[Packet], delay_ns: float) -> None:
        port = self.port
        sim.after(delay_ns, lambda: port.send_batch(packets))

    def rx_cost(self, params: SwitchParams) -> Cost:
        return params.nic_rx

    def tx_cost(self, params: SwitchParams) -> Cost:
        return params.nic_tx


class VifAttachment(Attachment):
    """A guest-facing virtual interface (vhost-user or ptnet)."""

    is_vif = True

    def __init__(self, vif: VirtualInterface) -> None:
        super().__init__(vif.name)
        self.vif = vif

    @property
    def input_ring(self) -> Ring:
        return self.vif.to_host

    def deliver(self, sim: "Simulator", packets: list[Packet], delay_ns: float) -> None:
        ring = self.vif.to_guest
        sim.after(delay_ns + self.vif.notify_ns, lambda: ring.push_batch(packets))

    def rx_cost(self, params: SwitchParams) -> Cost:
        return params.vif_costs.host_rx

    def tx_cost(self, params: SwitchParams) -> Cost:
        return params.vif_costs.host_tx


class ForwardingPath:
    """One direction of traffic through the switch: input -> output."""

    def __init__(self, inp: Attachment, out: Attachment, jitter: CostJitter, link_slots: int):
        self.input = inp
        self.output = out
        self.jitter = jitter
        self.forwarded = 0
        self.bidir_vif = False  # set when the reverse path also exists
        # t4p4s strict batching state.
        self.wait_started_ns: float | None = None
        # FastClick vif TX drain buffer state (frame count tracked
        # separately: a buffered block fills many descriptor slots).
        self.tx_buffer: list[Packet] = []
        self.tx_buffer_frames = 0
        self.tx_buffer_since_ns = 0.0
        # Snabb pipeline staging link (used only when params.pipeline).
        self.link = Ring(link_slots, name=f"{inp.name}->{out.name}.link")


class SoftwareSwitch:
    """Base class for the seven switch models (a Task on the SUT core)."""

    def __init__(
        self,
        sim: "Simulator",
        params: SwitchParams,
        rngs: RngRegistry | None = None,
        bus: "MemoryBus | None" = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.rngs = rngs if rngs is not None else RngRegistry()
        self.bus = bus
        self.attachments: list[Attachment] = []
        self.paths: list[ForwardingPath] = []
        self.core: Core | None = None
        self.total_forwarded = 0
        #: Optional per-batch probe (:class:`repro.obs.session.SwitchProbe`);
        #: None unless an observation session is attached, so the only
        #: un-observed cost is one attribute test per serviced batch.
        self.obs = None
        #: Optional per-flow accounting (:class:`repro.obs.flowstats.FlowStats`),
        #: same disabled-by-default contract as ``obs``.
        self.flowstats = None
        self._stalls = (
            StallProcess(
                self.rngs.stream(f"{params.name}.stall"),
                params.stall_period_ns,
                params.stall_cycles,
            )
            if params.stall_period_ns is not None
            else None
        )

    # -- wiring ----------------------------------------------------------

    def attach_phy(self, port: NicPort) -> PhyAttachment:
        """Bind a physical port (applies the switch's ring provisioning)."""
        port.rx_ring.capacity = self.params.nic_rx_slots
        port.tx_slots = self.params.nic_tx_slots
        if self.params.rx_moderation_ns is not None:
            port.rx_moderation_ns = self.params.rx_moderation_ns
        attachment = PhyAttachment(port)
        self.attachments.append(attachment)
        return attachment

    def attach_vif(self, vif: VirtualInterface) -> VifAttachment:
        attachment = VifAttachment(vif)
        self.attachments.append(attachment)
        return attachment

    def add_path(self, inp: Attachment, out: Attachment) -> ForwardingPath:
        """Declare a forwarding direction from ``inp`` to ``out``."""
        sigma = self.params.jitter_sigma
        period = self.params.jitter_period_ns
        if inp.is_vif or out.is_vif:
            sigma += self.params.jitter_sigma_vif
            if self.params.jitter_period_vif_ns is not None:
                period = self.params.jitter_period_vif_ns
        jitter = CostJitter(
            self.rngs.stream(f"{self.params.name}.jitter.{len(self.paths)}"),
            sigma=sigma,
            period_ns=period,
        )
        path = ForwardingPath(inp, out, jitter, link_slots=self.params.vring_slots)
        # Detect bidirectional use of the same vif endpoints (vring
        # cache-line bouncing surcharge).
        for other in self.paths:
            if other.input is out and other.output is inp:
                path.bidir_vif = other.bidir_vif = True
        self.paths.append(path)
        return path

    def bind_core(self, core: Core) -> None:
        """Pin the switch to its (single) SUT core and start polling.

        This is the paper's methodology ("Software switches are always
        deployed on a single core", Sec. 5.1); :meth:`bind_cores` adds the
        multi-core deployment the paper leaves to future work.
        """
        self.core = core
        self._configure_core(core)
        core.attach(self)
        if self.params.interrupt_driven:
            for path in self.paths:
                path.input.input_ring.on_push = core.wake
        core.start()

    def bind_cores(self, cores: list[Core]) -> None:
        """Distribute forwarding paths across several worker cores.

        Multi-core scaling (the paper's future work, Sec. 6): paths are
        assigned round-robin, the way multi-queue data planes pin one
        worker thread per queue.  One core degenerates to :meth:`bind_core`.
        """
        if not cores:
            raise ValueError("need at least one core")
        if len(cores) == 1:
            self.bind_core(cores[0])
            return
        self.core = cores[0]
        assignments: list[list[ForwardingPath]] = [[] for _ in cores]
        for index, path in enumerate(self.paths):
            assignments[index % len(cores)].append(path)
        for core, paths in zip(cores, assignments):
            self._configure_core(core)
            core.attach(_Worker(self, paths))
            if self.params.interrupt_driven:
                for path in paths:
                    path.input.input_ring.on_push = core.wake
            core.start()

    def _configure_core(self, core: Core) -> None:
        core.interrupt_driven = self.params.interrupt_driven
        core.interrupt_latency_ns = self.params.interrupt_latency_ns
        if self.params.idle_poll_cycles is not None:
            core.idle_loop_cycles = self.params.idle_poll_cycles

    # -- the poll loop -----------------------------------------------------

    def poll(self, core: Core) -> float:
        return self._poll_paths(core, self.paths)

    def _poll_paths(self, core: Core, paths: list[ForwardingPath]) -> float:
        cycles = 0.0
        if self._stalls is not None:
            cycles += self._stalls.cycles_due(self.sim.now)
            if cycles and self.obs is not None:
                self.obs.on_global_overhead("stall", cycles)
        if self.params.pipeline:
            worked = 0.0
            # TX stages first so staged packets leave one breath after
            # arriving (classic pipeline timing).
            for path in paths:
                worked += self._serve_pipeline_tx(path, core, cycles + worked)
            for path in paths:
                worked += self._serve_pipeline_rx(path, core, cycles + worked)
            if worked:
                app = self.params.app_overhead_cycles * max(1, len(self.attachments))
                worked += app
                if self.obs is not None:
                    self.obs.on_global_overhead("app", app)
            cycles += worked
        else:
            for path in paths:
                cycles += self._serve_path(path, core, cycles)
        return cycles

    # -- run-to-completion servicing -----------------------------------------

    def _serve_path(self, path: ForwardingPath, core: Core, carried_cycles: float) -> float:
        now = self.sim.now
        batch = self._take_batch(path, now)
        if not batch:
            return self._flush_drain(path, core, carried_cycles, now)
        n, total_bytes = batch_stats(batch)
        rx_c, proc_c, tx_c = self._batch_cycle_parts(path, batch, n, total_bytes)
        raw = rx_c + proc_c + tx_c
        cycles = raw * path.jitter.multiplier(now) * self._overload_factor()
        delay_ns = core.cycles_to_ns(carried_cycles + cycles)
        delay_ns = max(delay_ns, self._bus_delay(path, total_bytes, now))
        for packet in batch:
            packet.hops += 1
        self._on_forward(batch, path)
        if self.obs is not None:
            self.obs.on_batch(
                path, now, rx_c, proc_c, tx_c, cycles - raw, n, batch, delay_ns
            )
        if self.flowstats is not None:
            self.flowstats.fwd_batch(batch)
        if self.params.tx_drain_ns is not None and path.output.is_vif:
            self._buffer_tx(path, batch, core, carried_cycles + cycles, now)
        else:
            path.output.deliver(self.sim, batch, delay_ns)
        path.forwarded += n
        self.total_forwarded += n
        return cycles

    def _take_batch(self, path: ForwardingPath, now: float) -> list[Packet]:
        ring = path.input.input_ring
        occupancy = ring._frames
        if occupancy == 0:
            path.wait_started_ns = None
            return []
        wait = self.params.batch_wait_ns
        if wait is not None and occupancy < self.params.batch_size:
            if path.wait_started_ns is None:
                path.wait_started_ns = now
                return []
            if now - path.wait_started_ns < wait:
                return []
        path.wait_started_ns = None
        return ring.pop_batch(self.params.batch_size)

    def _batch_cycles(self, path: ForwardingPath, batch: list[Packet], n: int, total_bytes: int) -> float:
        rx, proc, tx = self._batch_cycle_parts(path, batch, n, total_bytes)
        return rx + proc + tx

    def _batch_cycle_parts(
        self, path: ForwardingPath, batch: list[Packet], n: int, total_bytes: int
    ) -> tuple[float, float, float]:
        """(rx, proc, tx) cycle components of one serviced batch.

        Kept separate so the observability layer can attribute cycles to
        stages; :meth:`_batch_cycles` is their sum.
        """
        rx = path.input.rx_cost(self.params).cycles(n, total_bytes)
        tx = path.output.tx_cost(self.params).cycles(n, total_bytes)
        if path.bidir_vif:
            penalty = self.params.bidir_vif_penalty
            if path.input.is_vif:
                rx *= penalty
            if path.output.is_vif:
                tx *= penalty
        return rx, self._proc_cycles(batch, path, n, total_bytes), tx

    def _proc_cycles(self, batch: list[Packet], path: ForwardingPath, n: int, total_bytes: int) -> float:
        """Core switching logic cost; subclasses specialise (flow caches...)."""
        return self.params.proc.cycles(n, total_bytes)

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        """State-update hook (MAC learning, flow tables); cost via _proc_cycles."""

    # -- flow-cache introspection (repro.flows) ---------------------------

    def on_flow_population(self, population) -> None:
        """Notification that a non-trivial flow population will be offered.

        Most switches need nothing: their caches exist unconditionally.
        t4p4s enables its capacity-bounded flow table here so single-flow
        runs keep their original (cheaper, golden-pinned) lookup path.
        """

    def cache_stats(self) -> dict:
        """Flow-cache occupancy and hit/miss counters, if the switch has
        a capacity-bounded cache (empty dict otherwise)."""
        return {}

    def _overload_factor(self) -> float:
        """Snabb's thrash cliff; 1.0 for everyone else."""
        threshold = self.params.thrash_attachments
        if threshold is not None and len(self.attachments) >= threshold:
            return self.params.thrash_factor
        return 1.0

    def _bus_delay(self, path: ForwardingPath, total_bytes: int, now: float) -> float:
        if self.bus is None:
            return 0.0
        copy_bytes = 0
        if path.input.is_vif:
            copy_bytes += path.input.vif.host_copy_bytes(total_bytes)  # type: ignore[attr-defined]
        if path.output.is_vif:
            copy_bytes += path.output.vif.host_copy_bytes(total_bytes)  # type: ignore[attr-defined]
        if copy_bytes <= 0:
            return 0.0
        return self.bus.reserve(copy_bytes, now)

    # -- FastClick TX drain -----------------------------------------------

    def _buffer_tx(
        self,
        path: ForwardingPath,
        batch: list[Packet],
        core: Core,
        cycles_so_far: float,
        now: float,
    ) -> None:
        if not path.tx_buffer:
            path.tx_buffer_since_ns = now
        path.tx_buffer.extend(batch)
        for item in batch:
            path.tx_buffer_frames += item.count
        if path.tx_buffer_frames >= self.params.tx_drain_burst:
            self._deliver_buffered(path, core, cycles_so_far)

    def _flush_drain(self, path: ForwardingPath, core: Core, carried: float, now: float) -> float:
        if (
            self.params.tx_drain_ns is not None
            and path.tx_buffer
            and now - path.tx_buffer_since_ns >= self.params.tx_drain_ns
        ):
            self._deliver_buffered(path, core, carried)
            return 1.0  # drain bookkeeping is not free
        return 0.0

    def _deliver_buffered(self, path: ForwardingPath, core: Core, cycles_so_far: float) -> None:
        buffered = path.tx_buffer
        path.tx_buffer = []
        path.tx_buffer_frames = 0
        path.output.deliver(self.sim, buffered, core.cycles_to_ns(cycles_so_far))

    # -- Snabb pipeline servicing ---------------------------------------------

    def _serve_pipeline_rx(self, path: ForwardingPath, core: Core, carried: float) -> float:
        """Input app: NIC/vif receive + processing, stage into the link."""
        now = self.sim.now
        batch = path.input.input_ring.pop_batch(self.params.batch_size)
        if not batch:
            return 0.0
        n, total_bytes = batch_stats(batch)
        rx_c = path.input.rx_cost(self.params).cycles(n, total_bytes)
        proc_c = self._proc_cycles(batch, path, n, total_bytes)
        raw = rx_c + proc_c
        cycles = raw * path.jitter.multiplier(now) * self._overload_factor()
        for packet in batch:
            packet.hops += 1
        self._on_forward(batch, path)
        if self.obs is not None:
            self.obs.on_batch(
                path, now, rx_c, proc_c, 0.0, cycles - raw, 0, batch,
                core.cycles_to_ns(carried + cycles),
            )
        link = path.link
        self.sim.after(core.cycles_to_ns(carried + cycles), lambda: link.push_batch(batch))
        return cycles

    def _serve_pipeline_tx(self, path: ForwardingPath, core: Core, carried: float) -> float:
        """Output app: drain the link into the NIC/vif."""
        now = self.sim.now
        batch = path.link.pop_batch(self.params.batch_size)
        if not batch:
            return self._flush_drain(path, core, carried, now)
        n, total_bytes = batch_stats(batch)
        tx_c = path.output.tx_cost(self.params).cycles(n, total_bytes)
        cycles = tx_c * path.jitter.multiplier(now) * self._overload_factor()
        delay_ns = core.cycles_to_ns(carried + cycles)
        delay_ns = max(delay_ns, self._bus_delay(path, total_bytes, now))
        if self.obs is not None:
            self.obs.on_batch(
                path, now, 0.0, 0.0, tx_c, cycles - tx_c, n, batch, delay_ns
            )
        if self.flowstats is not None:
            self.flowstats.fwd_batch(batch)
        if self.params.tx_drain_ns is not None and path.output.is_vif:
            self._buffer_tx(path, batch, core, carried + cycles, now)
        else:
            path.output.deliver(self.sim, batch, delay_ns)
        path.forwarded += n
        self.total_forwarded += n
        return cycles


class _Worker:
    """A per-core slice of a multi-core switch (a subset of its paths)."""

    def __init__(self, switch: SoftwareSwitch, paths: list[ForwardingPath]):
        self.switch = switch
        self.paths = paths

    def poll(self, core: Core) -> float:
        return self.switch._poll_paths(core, self.paths)
