"""A miniature P4 pipeline, compiled to the t4p4s cost model.

t4p4s is "a platform-independent software switch specifically designed
for P4.  A compiler is implemented to generate switching code from P4
programs" (Sec. 2.1).  This module provides the corresponding miniature:
a declarative pipeline description (headers to parse, match/action
tables, deparsed headers) plus a *compiler* that derives the t4p4s stage
costs from the program structure -- more headers to parse means a more
expensive parse stage, bigger/wider tables mean costlier lookups.

The L2FWD program the paper evaluates (destination-MAC forwarding,
Appendix A.1) is provided as :data:`L2FWD_PROGRAM`, and compiling it
yields exactly the calibrated ``T4P4S_STAGES`` costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cpu.costmodel import Cost


class MatchKind(Enum):
    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"


#: Header fields the mini-P4 dialect knows, with their parse cost weight
#: (cycles per packet to extract and validate).
KNOWN_HEADERS: dict[str, float] = {
    "ethernet": 24.0,
    "ipv4": 30.0,
    "ipv6": 36.0,
    "udp": 16.0,
    "tcp": 22.0,
    "vlan": 12.0,
}

#: Base cycle costs of the t4p4s HAL per stage (platform-independence
#: indirection the paper calls out as the performance trade-off).
HAL_PARSE_OVERHEAD = 32.0
HAL_DEPARSE_OVERHEAD = 32.0
HAL_TABLE_OVERHEAD = 40.0

#: Per-lookup extra cost by match kind (hash vs trie vs TCAM emulation).
MATCH_COST = {MatchKind.EXACT: 72.0, MatchKind.LPM: 118.0, MatchKind.TERNARY: 185.0}

#: Parse/deparse touch the header bytes; t4p4s additionally copies
#: through its HAL buffers (the calibrated per-byte term).
PARSE_PER_BYTE = 0.26
DEPARSE_PER_BYTE = 0.24


@dataclass(frozen=True)
class P4TableSpec:
    """One match/action table declaration."""

    name: str
    match_field: str
    match_kind: MatchKind = MatchKind.EXACT
    max_entries: int = 1024
    actions: tuple[str, ...] = ("forward", "drop")

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("table needs at least one entry slot")
        if not self.actions:
            raise ValueError("table needs at least one action")


@dataclass(frozen=True)
class P4Program:
    """A mini-P4 program: parse -> tables -> deparse."""

    name: str
    headers: tuple[str, ...]
    tables: tuple[P4TableSpec, ...]
    deparsed_headers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for header in (*self.headers, *self.deparsed_headers):
            if header not in KNOWN_HEADERS:
                raise ValueError(f"unknown header {header!r}; known: {sorted(KNOWN_HEADERS)}")
        if not self.headers:
            raise ValueError("program must parse at least one header")
        if not self.tables:
            raise ValueError("program needs at least one table")

    @property
    def effective_deparsed(self) -> tuple[str, ...]:
        return self.deparsed_headers if self.deparsed_headers else self.headers


@dataclass(frozen=True)
class CompiledPipeline:
    """Output of the mini-compiler: per-stage cycle costs."""

    program: P4Program
    parse: Cost
    match_action: Cost
    deparse: Cost

    @property
    def proc(self) -> Cost:
        """The switch-model processing cost (sum of stages)."""
        return self.parse + self.match_action + self.deparse

    def stage_table(self) -> dict[str, Cost]:
        return {"parse": self.parse, "match_action": self.match_action, "deparse": self.deparse}


def compile_program(program: P4Program) -> CompiledPipeline:
    """Derive stage costs from program structure (the t4p4s compiler).

    * parse: HAL overhead + one extraction per declared header;
    * match/action: HAL overhead + one lookup per table, weighted by the
      match kind, plus a size term (log-ish growth for exact tables);
    * deparse: HAL overhead + re-emission of the deparsed headers.
    """
    parse_cycles = HAL_PARSE_OVERHEAD + sum(KNOWN_HEADERS[h] for h in program.headers)
    parse = Cost(per_packet=parse_cycles, per_byte=PARSE_PER_BYTE)

    lookup_cycles = HAL_TABLE_OVERHEAD
    for table in program.tables:
        lookup_cycles += MATCH_COST[table.match_kind]
        # hash-table probing cost grows gently with capacity
        size_factor = max(0, table.max_entries.bit_length() - 10)  # free under 1k
        lookup_cycles += 4.0 * size_factor
    match_action = Cost(per_packet=lookup_cycles)

    deparse_cycles = HAL_DEPARSE_OVERHEAD + sum(
        KNOWN_HEADERS[h] for h in program.effective_deparsed
    )
    deparse = Cost(per_packet=deparse_cycles, per_byte=DEPARSE_PER_BYTE)
    return CompiledPipeline(program, parse, match_action, deparse)


#: The paper's l2fwd application: parse Ethernet, match on destination
#: MAC, forward to a port (Appendix A.1: the table is configured with
#: "destination MAC address/output port" as match/action fields).
L2FWD_PROGRAM = P4Program(
    name="l2fwd",
    headers=("ethernet",),
    tables=(P4TableSpec(name="dmac", match_field="ethernet.dstAddr", max_entries=1024),),
)

#: A richer program for ablations: an L3 router with an LPM route table
#: and an exact-match ACL -- what "some state is required" SDN looks
#: like (Sec. 5.4 recommends t4p4s for stateful deployments).
L3FWD_PROGRAM = P4Program(
    name="l3fwd",
    headers=("ethernet", "ipv4"),
    tables=(
        P4TableSpec(name="routes", match_field="ipv4.dstAddr", match_kind=MatchKind.LPM, max_entries=16384),
        P4TableSpec(name="acl", match_field="ipv4.srcAddr", match_kind=MatchKind.TERNARY, max_entries=512),
    ),
)
