"""VALE: the netmap-based L2 learning switch.

The odd one out (Sec. 2.1): no DPDK, no busy-waiting -- "VALE is built on
top of netmap and relies on system calls and NIC interrupts for packet
I/O".  Its design trades throughput on physical ports for:

* **memory isolation**: one packet *copy* between VALE ports per forward
  (the per-byte term in ``params.proc``);
* **L2 learning**: source-MAC learning plus destination lookup on every
  frame (modelled as a real learning table so tests can exercise
  learning, flooding and table occupancy);
* **ptnet**: zero-copy VM boundary, which is why p2v *exceeds* p2p
  (5.77 vs 5.56 Gbps) and why it wins v2v and long chains;
* **adaptive batching**: forwards whatever is pending each wake-up, so
  low offered load does not inflate latency (Table 3: the only switch
  whose 0.10 R+ latency is not above its 0.50 R+ latency);
* **interrupt I/O**: the SUT core sleeps when idle and pays a wake-up,
  and the ixgbe ITR moderation floor dominates physical-port RTT.

Flow control on the NIC interfaces is disabled per the paper's tuning
(Table 2): a full ring drops instead of pausing the sender -- which is
what :class:`~repro.core.ring.Ring` does natively.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.switches.base import Attachment, ForwardingPath, SoftwareSwitch
from repro.switches.params import VALE_PARAMS

#: VALE's forwarding table capacity (netmap's default bridge table).
VALE_MAC_TABLE_ENTRIES = 1024


class Vale(SoftwareSwitch):
    """VALE behavioural model with a real source-MAC learning table."""

    def __init__(self, sim, rngs=None, bus=None, params=VALE_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        self._mac_table: dict[int, Attachment] = {}
        self.learned = 0
        self.flooded = 0

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        table = self._mac_table
        for item in batch:
            # A block's frames are identical: the first frame does any
            # learning, after which the table is stable for the rest, so
            # one pass per item covers every frame it carries.
            src = item.src_mac
            if src not in table:
                if len(table) >= VALE_MAC_TABLE_ENTRIES:
                    table.pop(next(iter(table)))
                self.learned += 1
            table[src] = path.input
            if item.dst_mac not in table:
                # Unknown destination: a real VALE floods; the measured
                # scenarios use static single-destination traffic, so we
                # only account for it.
                self.flooded += item.count

    def lookup(self, dst_mac: int) -> Attachment | None:
        """Forwarding-table lookup (exposed for tests and examples)."""
        return self._mac_table.get(dst_mac)

    # -- fault hooks (repro.faults) ----------------------------------------

    def flush_mac_table(self) -> int:
        """Control-plane reset: forget every learned MAC.

        The data plane keeps forwarding -- the next frame per source
        relearns its entry and unknown destinations flood until then,
        which is VALE's graceful re-convergence.  Returns the number of
        entries flushed.
        """
        flushed = len(self._mac_table)
        self._mac_table.clear()
        return flushed
