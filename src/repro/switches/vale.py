"""VALE: the netmap-based L2 learning switch.

The odd one out (Sec. 2.1): no DPDK, no busy-waiting -- "VALE is built on
top of netmap and relies on system calls and NIC interrupts for packet
I/O".  Its design trades throughput on physical ports for:

* **memory isolation**: one packet *copy* between VALE ports per forward
  (the per-byte term in ``params.proc``);
* **L2 learning**: source-MAC learning plus destination lookup on every
  frame (modelled as a real learning table so tests can exercise
  learning, flooding and table occupancy);
* **ptnet**: zero-copy VM boundary, which is why p2v *exceeds* p2p
  (5.77 vs 5.56 Gbps) and why it wins v2v and long chains;
* **adaptive batching**: forwards whatever is pending each wake-up, so
  low offered load does not inflate latency (Table 3: the only switch
  whose 0.10 R+ latency is not above its 0.50 R+ latency);
* **interrupt I/O**: the SUT core sleeps when idle and pays a wake-up,
  and the ixgbe ITR moderation floor dominates physical-port RTT.

Flow control on the NIC interfaces is disabled per the paper's tuning
(Table 2): a full ring drops instead of pausing the sender -- which is
what :class:`~repro.core.ring.Ring` does natively.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.switches.base import Attachment, ForwardingPath, SoftwareSwitch
from repro.switches.params import VALE_PARAMS

#: VALE's forwarding table capacity (netmap's default bridge table).
VALE_MAC_TABLE_ENTRIES = 1024


class Vale(SoftwareSwitch):
    """VALE behavioural model with a real source-MAC learning table."""

    def __init__(
        self, sim, rngs=None, bus=None, params=VALE_PARAMS,
        mac_entries: int = VALE_MAC_TABLE_ENTRIES,
    ):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        self.mac_entries = mac_entries
        self._mac_table: dict[int, Attachment] = {}
        self.learned = 0
        self.flooded = 0
        self.mac_evictions = 0

    def _on_forward(self, batch: list[Packet], path: ForwardingPath) -> None:
        table = self._mac_table
        flowstats = self.flowstats
        for item in batch:
            runs = item.flows
            if runs is None:
                # A single-flow block's frames are identical: the first
                # frame does any learning, after which the table is stable
                # for the rest, so one pass covers every frame it carries.
                if flowstats is not None:
                    known = item.src_mac in table
                    count = item.count
                    flowstats.cache(
                        item.flow_id,
                        count if known else count - 1,
                        0 if known else 1,
                    )
                self._learn_src(item.src_mac, path.input)
            else:
                # Multi-flow block: one learning step per run.  Per-run
                # source MACs are derived from the template base (see
                # PacketBlock.flows), never materialised.
                mac_base = item.src_mac - item.flow_id
                for flow, _count in runs:
                    if flowstats is not None:
                        known = (mac_base + flow) in table
                        flowstats.cache(
                            flow,
                            _count if known else _count - 1,
                            0 if known else 1,
                        )
                    self._learn_src(mac_base + flow, path.input)
            if item.dst_mac not in table:
                # Unknown destination: a real VALE floods; the measured
                # scenarios use static single-destination traffic, so we
                # only account for it.
                self.flooded += item.count

    def _learn_src(self, src: int, input_port: Attachment) -> None:
        table = self._mac_table
        if src not in table:
            if len(table) >= self.mac_entries:
                # netmap's bridge table is hash-bounded; FIFO eviction is
                # the occupancy stand-in (an eviction storm under a flow
                # population wider than the table is the regime of
                # interest, not which victim goes first).
                table.pop(next(iter(table)))
                self.mac_evictions += 1
            self.learned += 1
        table[src] = input_port

    def lookup(self, dst_mac: int) -> Attachment | None:
        """Forwarding-table lookup (exposed for tests and examples)."""
        return self._mac_table.get(dst_mac)

    def cache_stats(self) -> dict:
        """MAC-table occupancy counters for obs gauges and campaigns."""
        return {
            "mac_entries": len(self._mac_table),
            "mac_capacity": self.mac_entries,
            "mac_learned": self.learned,
            "mac_evictions": self.mac_evictions,
            "flooded": self.flooded,
        }

    # -- fault hooks (repro.faults) ----------------------------------------

    def flush_mac_table(self) -> int:
        """Control-plane reset: forget every learned MAC.

        The data plane keeps forwarding -- the next frame per source
        relearns its entry and unknown destinations flood until then,
        which is VALE's graceful re-convergence.  Returns the number of
        entries flushed.
        """
        flushed = len(self._mac_table)
        self._mac_table.clear()
        return flushed
