"""Per-switch cost parameters, calibrated against the paper's measurements.

Each :class:`SwitchParams` encodes the *mechanisms* Sec. 3 attributes to a
switch (I/O discipline, processing model, batching policy, vhost-user
implementation, instability) with cycle costs chosen so that the
simulated testbed reproduces the paper's Sec. 5 numbers.  The derivations
below work in "cycles per packet at saturation" on the 2.6 GHz SUT core:
a switch forwarding at X Mpps spends 2600/X cycles per packet.

Reference points used for calibration (all 64 B frames):

==========  =======================  ==================  ==================
switch      p2p uni (Fig. 4a)        p2v uni (Fig. 4b)   v2v uni (Fig. 4c)
==========  =======================  ==================  ==================
BESS        10 Gbps (16 bidi)        10 Gbps             < 7.4 Gbps
FastClick   10 Gbps (> 10 bidi)      ~7 Gbps             < 7.4 Gbps
VPP         10 Gbps (> 10 bidi)      6.9 (5.59 rev.)     < 7.4 Gbps
OvS-DPDK    8.05 Gbps                5-7 Gbps            < 7.4 Gbps
Snabb       8.9 Gbps                 5.97 Gbps           6.42 Gbps
VALE        5.56 Gbps                5.77 Gbps           10.5 Gbps
t4p4s       ~5.6 Gbps                4.04 Gbps           < 7.4 Gbps
==========  =======================  ==================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.costmodel import Cost
from repro.vif.ptnet import DEFAULT_PTNET_COSTS
from repro.vif.vhost_user import DEFAULT_VHOST_COSTS
from repro.vif.virtio import VifCosts


@dataclass(frozen=True)
class SwitchParams:
    """Everything that differentiates one switch model from another."""

    name: str
    display_name: str
    # --- processing costs (cycles) ---------------------------------------
    nic_rx: Cost = field(default_factory=lambda: Cost(per_batch=60.0, per_packet=28.0))
    nic_tx: Cost = field(default_factory=lambda: Cost(per_batch=60.0, per_packet=28.0))
    proc: Cost = field(default_factory=lambda: Cost(per_batch=60.0, per_packet=60.0))
    vif_costs: VifCosts = DEFAULT_VHOST_COSTS
    #: multiplicative surcharge on vif costs when a guest interface is
    #: active in both directions (avail/used index cache-line bouncing).
    bidir_vif_penalty: float = 1.0
    # --- batching ----------------------------------------------------------
    batch_size: int = 32
    #: t4p4s-style strict batching: wait up to this long for a full batch.
    batch_wait_ns: float | None = None
    #: FastClick-style TX buffering on vif outputs: flush at
    #: ``tx_drain_burst`` packets or after ``tx_drain_ns``.
    tx_drain_ns: float | None = None
    tx_drain_burst: int = 32
    # --- I/O discipline ------------------------------------------------------
    interrupt_driven: bool = False
    interrupt_latency_ns: float = 3_000.0
    #: ixgbe interrupt-moderation (ITR) period at the physical ingress of
    #: interrupt-driven switches; None = poll-mode PMD, no moderation.
    rx_moderation_ns: float | None = None
    # --- ring provisioning ----------------------------------------------------
    nic_rx_slots: int = 512
    nic_tx_slots: int = 512
    vring_slots: int = 1024
    # --- stability --------------------------------------------------------
    jitter_sigma: float = 0.08
    jitter_sigma_vif: float = 0.0
    jitter_period_ns: float = 50_000.0
    #: episode length on paths that traverse a vif (None = same as base);
    #: OvS/t4p4s instability manifests as long slow episodes on the vhost
    #: path (their loopback 0.99R+ tails in Table 3).
    jitter_period_vif_ns: float | None = None
    stall_period_ns: float | None = None
    stall_cycles: float = 0.0
    # --- pipeline (Snabb) ---------------------------------------------------
    pipeline: bool = False
    #: cycles "slept" between breaths when the engine found no work
    #: (Snabb's engine is timer-driven rather than a pure busy loop).
    idle_poll_cycles: float | None = None
    app_overhead_cycles: float = 0.0
    thrash_attachments: int | None = None
    thrash_factor: float = 1.0
    # --- hypervisor compatibility -----------------------------------------
    max_vms: int | None = None


# ---------------------------------------------------------------------------
# BESS: minimal module graph (PMDPort -> QueueInc -> QueueOut), "only
# performs very simple tasks like collecting statistics" -- the cheapest
# data path of the seven.  p2p budget ~109 cycles/pkt => 23.9 Mpps
# capacity: saturates 10 Gbps unidirectional, 16 Gbps aggregated
# bidirectional on one core (Fig. 4a).  QEMU incompatibility limits it to
# 3 VMs (footnote 5).
# ---------------------------------------------------------------------------
BESS_PARAMS = SwitchParams(
    name="bess",
    display_name="BESS",
    proc=Cost(per_batch=50.0, per_packet=48.0),
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=120.0, per_packet=70.0, per_byte=0.25),
        host_rx=Cost(per_batch=120.0, per_packet=75.0, per_byte=0.25),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    bidir_vif_penalty=1.12,
    jitter_sigma=0.09,
    jitter_sigma_vif=0.10,
    max_vms=3,
)

# ---------------------------------------------------------------------------
# FastClick: Click element graph in full run-to-completion; "additionally
# extracts and updates packet header fields" vs BESS (Fig. 4a analysis).
# Its own internal batching delays vif output at low load ("FastClick
# also suffers from its own batch processing delay", Sec. 5.3).
# NIC descriptor rings enlarged to 4096 (Table 2 tuning).
# ---------------------------------------------------------------------------
FASTCLICK_PARAMS = SwitchParams(
    name="fastclick",
    display_name="FastClick",
    proc=Cost(per_batch=80.0, per_packet=90.0),
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=150.0, per_packet=100.0, per_byte=0.15),
        host_rx=Cost(per_batch=150.0, per_packet=105.0, per_byte=0.15),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    bidir_vif_penalty=1.12,
    tx_drain_ns=60_000.0,
    tx_drain_burst=32,
    nic_rx_slots=4096,
    nic_tx_slots=4096,
    jitter_sigma=0.13,
    jitter_sigma_vif=0.10,
)

# ---------------------------------------------------------------------------
# VPP: vectorized graph processing -- large frames (vectors) of up to 256
# packets amortise graph-node dispatch, so per-batch cost is high but
# per-packet cost low.  Asymmetric vhost: "VPP suffers from a performance
# penalty in receiving packets from vhost-user ports" (Sec. 5.2, the
# reversed-path experiment: 6.9 Gbps forward vs 5.59 Gbps reversed).
# ---------------------------------------------------------------------------
VPP_PARAMS = SwitchParams(
    name="vpp",
    display_name="VPP",
    batch_size=256,
    proc=Cost(per_batch=600.0, per_packet=95.0),
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=150.0, per_packet=85.0, per_byte=0.50),
        host_rx=Cost(per_batch=150.0, per_packet=145.0, per_byte=0.50),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    bidir_vif_penalty=1.12,
    jitter_sigma=0.10,
    jitter_sigma_vif=0.08,
)

# ---------------------------------------------------------------------------
# OvS-DPDK: match/action pipeline.  Even an EMC (exact-match cache) hit
# pays classifier cost -- with the paper's single-flow synthetic traffic
# "OvS-DPDK's flow cache does not help" (Sec. 5.2): 8.05 Gbps at 64 B.
# A miss adds megaflow lookup (and possibly an upcall).  Distinctly
# unstable under load on vhost paths (514-1052 us at 0.99 R+, Table 3).
# ---------------------------------------------------------------------------
OVS_PARAMS = SwitchParams(
    name="ovs-dpdk",
    display_name="OvS-DPDK",
    proc=Cost(per_batch=100.0, per_packet=146.0),  # EMC-hit fast path
    vif_costs=DEFAULT_VHOST_COSTS,
    bidir_vif_penalty=1.12,
    vring_slots=4096,
    jitter_sigma=0.07,
    jitter_sigma_vif=0.50,
    jitter_period_ns=80_000.0,
    jitter_period_vif_ns=300_000.0,
)

#: Extra cycles for an EMC miss that hits the megaflow (dpcls) classifier.
OVS_EMC_MISS_EXTRA = Cost(per_packet=320.0)
#: Extra cycles for a full slow-path upcall (first packet of a flow).
OVS_UPCALL_EXTRA = Cost(per_packet=4_000.0)
#: EMC capacity (8k entries in OvS 2.11).
OVS_EMC_ENTRIES = 8192

# ---------------------------------------------------------------------------
# Snabb: pipeline processing model with inter-app link buffers ("staging
# packets in internal buffers imposes extra overhead", Sec. 5.2), its own
# kernel-bypass NIC driver (receive side costlier than DPDK's PMD) and
# its own vhost-user implementation (cheaper than its NIC path: v2v beats
# p2v, 6.42 vs 5.97 Gbps).  LuaJIT trace compilation appears as Poisson
# stalls; past ~8 apps the working set thrashes the JIT/cache and
# throughput collapses (the 4-VNF "plummet" of Fig. 5).
# ---------------------------------------------------------------------------
SNABB_PARAMS = SwitchParams(
    name="snabb",
    display_name="Snabb",
    batch_size=64,
    nic_rx=Cost(per_batch=80.0, per_packet=130.0),
    nic_tx=Cost(per_batch=80.0, per_packet=30.0),
    proc=Cost(per_batch=60.0, per_packet=30.0),
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=100.0, per_packet=85.0, per_byte=0.60),
        host_rx=Cost(per_batch=100.0, per_packet=85.0, per_byte=0.60),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    bidir_vif_penalty=1.12,
    tx_drain_ns=30_000.0,
    tx_drain_burst=64,
    idle_poll_cycles=11_000.0,  # ~4.2 us timer-driven idle breath
    jitter_sigma=0.12,
    jitter_sigma_vif=0.15,
    stall_period_ns=400_000.0,
    stall_cycles=30_000.0,  # ~11.5 us JIT pause
    pipeline=True,
    app_overhead_cycles=40.0,
    thrash_attachments=9,
    thrash_factor=3.5,
)

# ---------------------------------------------------------------------------
# VALE: netmap-based, interrupt I/O ("relies on system calls and NIC
# interrupts", Sec. 2.1), one packet copy between VALE ports per forward
# (memory isolation by design) plus source-MAC learning and flow-table
# lookup.  ptnet makes the VM boundary nearly free, hence v2v/loopback
# strength.  ixgbe interrupt moderation puts a ~40 us floor under its
# physical-port latency (Table 3: 32-34 us regardless of load).
# Adaptive batching: forwards whatever is pending, no drain timers.
# ---------------------------------------------------------------------------
VALE_PARAMS = SwitchParams(
    name="vale",
    display_name="VALE",
    batch_size=256,
    nic_rx=Cost(per_batch=100.0, per_packet=150.0, per_byte=0.25),  # syscall + softirq + DMA sync
    nic_tx=Cost(per_batch=100.0, per_packet=28.0, per_byte=0.10),
    proc=Cost(per_batch=80.0, per_packet=118.0, per_byte=0.16),  # copy + learn
    vif_costs=DEFAULT_PTNET_COSTS,
    interrupt_driven=True,
    interrupt_latency_ns=3_000.0,
    rx_moderation_ns=30_000.0,
    vring_slots=1024,
    jitter_sigma=0.10,
    jitter_sigma_vif=0.05,
)

# ---------------------------------------------------------------------------
# t4p4s: P4 pipeline -- parse, match/action table, deparse on every packet
# plus a hardware-abstraction-layer indirection; the costliest and least
# stable data path of the seven ("the inefficiency of the t4p4s internal
# pipeline", Sec. 5.3).  Strict batch constitution delays packets at low
# load (its 0.10 R+ latency exceeds 0.50 R+, Sec. 5.3).
# ---------------------------------------------------------------------------
T4P4S_PARAMS = SwitchParams(
    name="t4p4s",
    display_name="t4p4s",
    proc=Cost(per_batch=150.0, per_packet=228.0, per_byte=0.50),  # parse/deparse touch bytes
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=150.0, per_packet=165.0, per_byte=0.20),
        host_rx=Cost(per_batch=150.0, per_packet=165.0, per_byte=0.20),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    bidir_vif_penalty=1.12,
    batch_wait_ns=27_000.0,
    nic_rx_slots=4096,
    nic_tx_slots=4096,
    vring_slots=4096,
    jitter_sigma=0.55,
    jitter_sigma_vif=0.30,
    jitter_period_ns=120_000.0,
    jitter_period_vif_ns=250_000.0,
)

#: Stage decomposition of ``T4P4S_PARAMS.proc`` (exposed for the ablation
#: benches and the P4 pipeline model's stage accounting).
T4P4S_STAGES = {
    "parse": Cost(per_packet=56.0, per_byte=0.26),
    "match_action": Cost(per_packet=116.0),
    "deparse": Cost(per_packet=56.0, per_byte=0.24),
}

#: Capacity of the generated exact-match flow table DPDK backs with a
#: ``rte_hash`` (default entry budget of the l2fwd-style table configs).
T4P4S_FLOW_TABLE_ENTRIES = 65_536
#: Per-frame cycles of a flow-table probe at zero occupancy; the effective
#: cost scales with occupancy (hash-bucket chains lengthen as the table
#: fills): ``per_packet * (1 + occupancy/capacity)``.
T4P4S_FLOW_LOOKUP = Cost(per_packet=18.0)
#: Extra per-miss cycles: default-action path plus controller-digest work
#: when a new flow key is inserted.
T4P4S_FLOW_MISS_EXTRA = Cost(per_packet=900.0)

ALL_PARAMS = {
    params.name: params
    for params in (
        BESS_PARAMS,
        FASTCLICK_PARAMS,
        OVS_PARAMS,
        SNABB_PARAMS,
        T4P4S_PARAMS,
        VALE_PARAMS,
        VPP_PARAMS,
    )
}
