"""Snabb: the LuaJIT-based modular switch.

The only pure *pipeline* design of the seven (Table 1): packets move
between "apps" over link buffers, one engine breath at a time, so every
hop through Snabb pays an extra staging delay and buffer touch
("staging packets in internal buffers imposes extra overhead", Sec. 5.2;
"the extra delay imposed by intermediate inter-module buffers",
Sec. 5.3).  Snabb implements its *own* kernel-bypass NIC driver and its
own vhost-user backend -- the vhost path is actually cheaper than its
NIC path, which is why Snabb is the only switch whose v2v throughput
beats its p2v throughput (6.42 vs 5.97 Gbps).

LuaJIT gives Snabb two measurable quirks, both modelled via params:

* Poisson *stalls* when the tracing JIT recompiles (latency spikes:
  22 us at 0.99 R+ in p2p, Table 3);
* an overload *cliff* when the app graph grows past what one core's
  traces sustain: "when the service chain length reaches 4, Snabb
  becomes overloaded and its throughput plummets" (Sec. 5.2).

The app/link graph is recorded in the ``config.app``/``config.link``
vocabulary of the paper's Appendix A.1 snippet.
"""

from __future__ import annotations

from repro.switches.base import ForwardingPath, SoftwareSwitch
from repro.switches.params import SNABB_PARAMS


class Snabb(SoftwareSwitch):
    """Snabb behavioural model (pipeline processing)."""

    def __init__(self, sim, rngs=None, bus=None, params=SNABB_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)
        #: app name -> app class, as a Snabb config object would hold.
        self.apps: dict[str, str] = {}
        #: "appA.tx -> appB.rx" link strings.
        self.links: list[str] = []

    def add_path(self, inp, out) -> ForwardingPath:
        path = super().add_path(inp, out)
        in_app = self._app_for(inp)
        out_app = self._app_for(out)
        self.links.append(f"{in_app}.tx -> {out_app}.rx")
        return path

    def _app_for(self, attachment) -> str:
        app_class = "VhostUser" if attachment.is_vif else "Intel82599"
        name = attachment.name.replace(".", "_")
        self.apps.setdefault(name, app_class)
        return name

    @property
    def app_count(self) -> int:
        """Apps in the engine (drives the overload cliff)."""
        return len(self.apps)

    @property
    def jit_stalls(self) -> int:
        """LuaJIT trace-compilation stalls observed so far."""
        return self._stalls.stalls if self._stalls is not None else 0
