"""Named test suites, in the spirit of FD.io CSIT and OPNFV VSperf.

The paper positions its methodology against those two projects ("Our
work covers all the test scenarios defined by the two projects",
Sec. 2.2).  A :class:`TestSuite` bundles a set of experiment
specifications that can be run for any switch with one call -- the shape
a CI pipeline would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, RunResult
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.vm.machine import QemuCompatibilityError


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment in a suite."""

    name: str
    build: Callable
    frame_size: int = 64
    bidirectional: bool = False
    kwargs: tuple = ()

    def run(self, switch_name: str, warmup_ns: float, measure_ns: float, seed: int) -> RunResult | None:
        try:
            return measure_throughput(
                self.build,
                switch_name,
                self.frame_size,
                bidirectional=self.bidirectional,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                seed=seed,
                **dict(self.kwargs),
            )
        except QemuCompatibilityError:
            return None


@dataclass
class ExperimentOutcome:
    """One experiment's suite-level verdict, over its seed replicas.

    ``status`` separates the three cases a results table must not
    conflate: ``ok`` (measured), ``inapplicable`` (the configuration
    cannot exist -- e.g. BESS past 3 VMs, footnote 5) and ``failed``
    (the run errored out).
    """

    name: str
    status: str  # "ok" | "inapplicable" | "failed"
    records: list = field(default_factory=list)  # RunRecord replicas
    detail: str = ""

    @property
    def gbps(self) -> float | None:
        """Mean aggregate Gbps across seed replicas (None unless ok)."""
        if self.status != "ok" or not self.records:
            return None
        return sum(r.gbps for r in self.records) / len(self.records)

    @property
    def mpps(self) -> float | None:
        if self.status != "ok" or not self.records:
            return None
        return sum(r.mpps for r in self.records) / len(self.records)

    def _flow_summaries(self) -> list[dict]:
        if self.status != "ok":
            return []
        return [
            record.flowstats
            for record in self.records
            if getattr(record, "flowstats", None)
        ]

    @property
    def cache_hit_rate(self) -> float | None:
        """Mean flow-cache hit rate across replicas (flow telemetry runs)."""
        rates = [
            summary["totals"]["cache_hit_rate"]
            for summary in self._flow_summaries()
            if summary["totals"].get("cache_hit_rate") is not None
        ]
        return sum(rates) / len(rates) if rates else None

    @property
    def jain(self) -> float | None:
        """Mean Jain's fairness index across replicas (flow telemetry runs)."""
        values = [
            summary["fairness"]["jain"]
            for summary in self._flow_summaries()
            if summary.get("fairness", {}).get("jain") is not None
        ]
        return sum(values) / len(values) if values else None

    def trial_summary(self, policy=None):
        """:class:`~repro.measure.soundness.TrialSummary` across replicas.

        None unless the experiment is ok with at least 2 replicas --
        a single record has no variance to summarise.
        """
        if self.status != "ok" or len(self.records) < 2:
            return None
        from repro.measure.soundness import DEFAULT_POLICY, summarize_trials

        return summarize_trials(
            [r.gbps for r in self.records], policy or DEFAULT_POLICY, metric="gbps"
        )


@dataclass(frozen=True)
class TestSuite:
    """A named collection of experiments."""

    __test__ = False  # not a pytest class

    name: str
    description: str
    experiments: tuple[ExperimentSpec, ...] = field(default_factory=tuple)

    def run(
        self,
        switch_name: str,
        warmup_ns: float = DEFAULT_WARMUP_NS,
        measure_ns: float = DEFAULT_MEASURE_NS,
        seed: int = 1,
        workers: int = 1,
        cache=None,
    ):
        """Run every experiment for one switch; None marks inapplicable.

        Returns ``{experiment: RunRecord | None}``; a record mirrors
        :class:`~repro.measure.runner.RunResult` (``gbps``/``mpps``/
        ``switch``/``frame_size``).  A failed run raises -- callers that
        need failures *recorded* use :meth:`run_outcomes`.
        """
        outcomes = self.run_outcomes(
            switch_name,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            seed=seed,
            workers=workers,
            cache=cache,
        )
        results = {}
        for name, outcome in outcomes.items():
            if outcome.status == "failed":
                raise RuntimeError(f"experiment {name!r} failed: {outcome.detail}")
            results[name] = outcome.records[0] if outcome.status == "ok" else None
        return results

    def run_outcomes(
        self,
        switch_name: str,
        warmup_ns: float = DEFAULT_WARMUP_NS,
        measure_ns: float = DEFAULT_MEASURE_NS,
        seed: int = 1,
        repeat: int = 1,
        seed_policy: str | None = None,
        workers: int = 1,
        cache=None,
        progress=None,
        obs=None,
        flows: int = 1,
        flow_dist: str = "uniform",
        churn: float = 0.0,
        size_mix: str | None = None,
    ) -> dict[str, ExperimentOutcome]:
        """Run the suite through the campaign executor.

        This is the suite entry point the CLI consumes: parallelisable
        (``workers``), memoisable (``cache`` is a
        :class:`~repro.campaign.cache.ResultCache`), replicable
        (``repeat`` seed replicas per experiment) and failure-tolerant
        (a crashed experiment becomes ``status="failed"`` instead of
        sinking the suite).  ``obs`` (an
        :class:`~repro.obs.session.ObsConfig`) runs every experiment
        observed; each ok record then carries a ``metrics`` snapshot.
        ``flows``/``flow_dist``/``churn``/``size_mix`` offer every
        experiment a flow population (``repro.flows``); combined with an
        ``obs`` that enables ``flowstats``, each ok record also carries
        a per-flow telemetry summary.

        ``seed_policy`` chooses how replicas differ: ``"trial"`` runs
        soundness trials (same workload, perturbed measurement phases --
        ``repro.measure.soundness``), ``"reseed"`` (or None, the default)
        keeps the legacy consecutive-seed replicas that reseed the whole
        workload.
        """
        from dataclasses import replace

        from repro.campaign.executor import run_campaign
        from repro.campaign.spec import CampaignSpec, RunFailure, runspec_from_experiment

        if seed_policy not in (None, "trial", "reseed"):
            from repro.measure.soundness import SEED_POLICIES

            raise ValueError(
                f"unknown seed policy {seed_policy!r}; known: {SEED_POLICIES}"
            )
        use_trials = seed_policy == "trial"
        spec_map: dict[str, list] = {}
        runs = []
        for experiment in self.experiments:
            spec_map[experiment.name] = []
            for k in range(repeat):
                spec = runspec_from_experiment(
                    experiment, switch_name, warmup_ns, measure_ns,
                    seed if use_trials else seed + k,
                )
                if spec is None:
                    raise ValueError(
                        f"experiment {experiment.name!r} uses a custom builder; "
                        "run it via ExperimentSpec.run instead"
                    )
                if use_trials and k:
                    spec = replace(spec, trial=k)
                spec_map[experiment.name].append(spec)
                runs.append(spec)

        campaign = CampaignSpec(name=f"suite:{self.name}/{switch_name}", runs=tuple(runs))
        if flows != 1 or flow_dist != "uniform" or churn or size_mix is not None:
            campaign = campaign.with_flows(
                flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix
            )
        if obs is not None:
            campaign = campaign.with_obs(obs)
        if campaign.runs != tuple(runs):
            # Both transforms preserve run order; re-map each experiment's
            # specs to their transformed counterparts so outcome_for()
            # keys match.
            transformed = iter(campaign.runs)
            for name in spec_map:
                spec_map[name] = [next(transformed) for _ in spec_map[name]]
        result = run_campaign(
            campaign, workers=workers, cache=cache, progress=progress
        )

        outcomes: dict[str, ExperimentOutcome] = {}
        for experiment in self.experiments:
            replicas = [result.outcome_for(spec) for spec in spec_map[experiment.name]]
            failures = [r for r in replicas if isinstance(r, RunFailure)]
            if failures:
                outcomes[experiment.name] = ExperimentOutcome(
                    name=experiment.name,
                    status="failed",
                    detail="; ".join(f"{f.error}: {f.message}" for f in failures),
                )
            elif any(r is None or r.status == "inapplicable" for r in replicas):
                detail = next(
                    (r.detail for r in replicas if r is not None and r.status == "inapplicable"),
                    "",
                )
                outcomes[experiment.name] = ExperimentOutcome(
                    name=experiment.name, status="inapplicable", detail=detail
                )
            else:
                outcomes[experiment.name] = ExperimentOutcome(
                    name=experiment.name, status="ok", records=replicas
                )
        return outcomes


def _spec(name, build, size=64, bidi=False, **kwargs):
    return ExperimentSpec(name, build, frame_size=size, bidirectional=bidi, kwargs=tuple(kwargs.items()))


#: The paper's own grid: every scenario at every size, both directions.
PAPER_SUITE = TestSuite(
    name="paper",
    description="The CoNEXT'19 evaluation grid (Figs. 4-6)",
    experiments=tuple(
        _spec(f"{scenario}-{size}B-{'bidi' if bidi else 'uni'}", build, size, bidi)
        for scenario, build in (("p2p", p2p.build), ("p2v", p2v.build), ("v2v", v2v.build))
        for size in (64, 256, 1024)
        for bidi in (False, True)
    )
    + tuple(
        _spec(f"loopback{n}-64B-uni", loopback.build, 64, False, n_vnfs=n)
        for n in (1, 2, 3, 4, 5)
    ),
)

#: A CSIT-style smoke suite: the cheapest experiment per scenario.
SMOKE_SUITE = TestSuite(
    name="smoke",
    description="One quick experiment per scenario (CI smoke test)",
    experiments=(
        _spec("p2p-64B", p2p.build),
        _spec("p2v-64B", p2v.build),
        _spec("v2v-64B", v2v.build),
        _spec("loopback1-64B", loopback.build, n_vnfs=1),
    ),
)

#: A VSperf-style virtual-switch suite: the virtualised scenarios only.
NFV_SUITE = TestSuite(
    name="nfv",
    description="Virtualised scenarios (OPNFV VSperf focus)",
    experiments=(
        _spec("p2v-64B-uni", p2v.build),
        _spec("p2v-64B-bidi", p2v.build, bidi=True),
        _spec("v2v-64B-uni", v2v.build),
        _spec("loopback2-64B", loopback.build, n_vnfs=2),
        _spec("loopback2-1024B", loopback.build, size=1024, n_vnfs=2),
    ),
)

SUITES = {suite.name: suite for suite in (PAPER_SUITE, SMOKE_SUITE, NFV_SUITE)}
