"""Named test suites, in the spirit of FD.io CSIT and OPNFV VSperf.

The paper positions its methodology against those two projects ("Our
work covers all the test scenarios defined by the two projects",
Sec. 2.2).  A :class:`TestSuite` bundles a set of experiment
specifications that can be run for any switch with one call -- the shape
a CI pipeline would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, RunResult
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.vm.machine import QemuCompatibilityError


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment in a suite."""

    name: str
    build: Callable
    frame_size: int = 64
    bidirectional: bool = False
    kwargs: tuple = ()

    def run(self, switch_name: str, warmup_ns: float, measure_ns: float, seed: int) -> RunResult | None:
        try:
            return measure_throughput(
                self.build,
                switch_name,
                self.frame_size,
                bidirectional=self.bidirectional,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                seed=seed,
                **dict(self.kwargs),
            )
        except QemuCompatibilityError:
            return None


@dataclass(frozen=True)
class TestSuite:
    """A named collection of experiments."""

    __test__ = False  # not a pytest class

    name: str
    description: str
    experiments: tuple[ExperimentSpec, ...] = field(default_factory=tuple)

    def run(
        self,
        switch_name: str,
        warmup_ns: float = DEFAULT_WARMUP_NS,
        measure_ns: float = DEFAULT_MEASURE_NS,
        seed: int = 1,
    ) -> dict[str, RunResult | None]:
        """Run every experiment for one switch; None marks inapplicable."""
        return {
            spec.name: spec.run(switch_name, warmup_ns, measure_ns, seed)
            for spec in self.experiments
        }


def _spec(name, build, size=64, bidi=False, **kwargs):
    return ExperimentSpec(name, build, frame_size=size, bidirectional=bidi, kwargs=tuple(kwargs.items()))


#: The paper's own grid: every scenario at every size, both directions.
PAPER_SUITE = TestSuite(
    name="paper",
    description="The CoNEXT'19 evaluation grid (Figs. 4-6)",
    experiments=tuple(
        _spec(f"{scenario}-{size}B-{'bidi' if bidi else 'uni'}", build, size, bidi)
        for scenario, build in (("p2p", p2p.build), ("p2v", p2v.build), ("v2v", v2v.build))
        for size in (64, 256, 1024)
        for bidi in (False, True)
    )
    + tuple(
        _spec(f"loopback{n}-64B-uni", loopback.build, 64, False, n_vnfs=n)
        for n in (1, 2, 3, 4, 5)
    ),
)

#: A CSIT-style smoke suite: the cheapest experiment per scenario.
SMOKE_SUITE = TestSuite(
    name="smoke",
    description="One quick experiment per scenario (CI smoke test)",
    experiments=(
        _spec("p2p-64B", p2p.build),
        _spec("p2v-64B", p2v.build),
        _spec("v2v-64B", v2v.build),
        _spec("loopback1-64B", loopback.build, n_vnfs=1),
    ),
)

#: A VSperf-style virtual-switch suite: the virtualised scenarios only.
NFV_SUITE = TestSuite(
    name="nfv",
    description="Virtualised scenarios (OPNFV VSperf focus)",
    experiments=(
        _spec("p2v-64B-uni", p2v.build),
        _spec("p2v-64B-bidi", p2v.build, bidi=True),
        _spec("v2v-64B-uni", v2v.build),
        _spec("loopback2-64B", loopback.build, n_vnfs=2),
        _spec("loopback2-1024B", loopback.build, size=1024, n_vnfs=2),
    ),
)

SUITES = {suite.name: suite for suite in (PAPER_SUITE, SMOKE_SUITE, NFV_SUITE)}
