"""Experiment execution: warm-up, measurement window, result records.

Setting ``REPRO_WATCHDOG=1`` in the environment attaches an
:class:`~repro.faults.watchdog.InvariantWatchdog` to every driven
testbed (``REPRO_WATCHDOG=strict`` raises on the first violation;
``REPRO_WATCHDOG_REPORT=path.jsonl`` appends one report row per run).
The watchdog is a read-only periodic scanner, so measured numbers are
unchanged -- it exists so CI can assert model invariants across the
whole tier-1 suite without instrumenting hot paths.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.core.fluid import FluidReport, fluid_enabled, try_fluid
from repro.core.stats import LatencySample
from repro.core.turbo import turbo_drive
from repro.core.warp import WarpReport, try_warp, warp_enabled
from repro.scenarios.base import Testbed

#: Default windows.  Throughput stabilises within a few hundred
#: microseconds of simulated time; the defaults trade precision against
#: wall-clock cost and are overridable everywhere.
DEFAULT_WARMUP_NS = 600_000.0
DEFAULT_MEASURE_NS = 3_000_000.0


def _env_watchdog(tb: Testbed):
    """Attach the opt-in invariant watchdog when the environment asks."""
    mode = os.environ.get("REPRO_WATCHDOG", "")
    if mode not in ("1", "true", "strict"):
        return None
    from repro.faults.watchdog import InvariantWatchdog

    watchdog = InvariantWatchdog(tb, strict=mode == "strict")
    watchdog.start()
    return watchdog


@dataclass
class RunResult:
    """Outcome of driving one testbed for one measurement window."""

    scenario: str
    switch: str
    frame_size: int
    bidirectional: bool
    duration_ns: float
    per_direction_gbps: list[float] = field(default_factory=list)
    per_direction_mpps: list[float] = field(default_factory=list)
    latency: LatencySample | None = None
    events: int = 0
    #: What the steady-state fast-forward did (None when warp disabled).
    warp: WarpReport | None = None
    #: What the fluid tier did (None when fluid mode is off).
    fluid: FluidReport | None = None

    @property
    def gbps(self) -> float:
        """Aggregate throughput (the paper sums directions for bidi)."""
        return sum(self.per_direction_gbps)

    @property
    def mpps(self) -> float:
        return sum(self.per_direction_mpps)


def drive(
    tb: Testbed,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    bidirectional: bool | None = None,
    warp: bool | None = None,
    fluid: bool | None = None,
) -> RunResult:
    """Run a wired testbed through warm-up + measurement; collect results.

    ``warp`` controls the exact fast-forward tiers (:mod:`repro.core.warp`
    steady-state replay, then the :mod:`repro.core.turbo` chain turbo):
    ``None`` follows the ``REPRO_WARP`` environment switch (default on).
    Results are bit-identical either way -- both tiers decline
    automatically whenever the run is not provably safe.

    ``fluid`` opts into the approximate tier (:mod:`repro.core.fluid`):
    ``None`` follows ``REPRO_FLUID`` (default off).  When fluid engages
    it supersedes the exact tiers for that run; when it declines the run
    falls through to them.
    """
    if warmup_ns < 0:
        raise ValueError("warmup_ns must be non-negative")
    if measure_ns <= 0:
        raise ValueError("measure_ns must be positive")
    t_open = warmup_ns
    t_close = warmup_ns + measure_ns
    for meter in tb.meters:
        meter.open_window(t_open)
        meter.close_window(t_close)
    watchdog = _env_watchdog(tb)
    warp_report: WarpReport | None = None
    fluid_report: FluidReport | None = None
    if fluid if fluid is not None else fluid_enabled():
        fluid_report = try_fluid(tb, t_open, t_close, watchdog is not None)
    if fluid_report is not None and fluid_report.engaged:
        warp_report = WarpReport(
            engaged=True,
            mode="fluid",
            warped_ns=fluid_report.fluid_ns,
            verify_ns=fluid_report.calibration_ns,
        )
    elif warp if warp is not None else warp_enabled():
        if fluid_report is None or not fluid_report.advanced:
            warp_report = try_warp(tb, t_open, t_close, watchdog is not None)
        if warp_report is None or not warp_report.engaged:
            # The replay warp handles clean unidirectional p2p; everything
            # else falls through to the chain turbo, which dispatches the
            # run itself (bit-identically) while bulk-advancing idle spans.
            warp_report = turbo_drive(tb, t_close, watchdog is not None)
    tb.sim.run_until(t_close)
    if watchdog is not None:
        watchdog.finalize()
        report_path = os.environ.get("REPRO_WATCHDOG_REPORT")
        if report_path:
            watchdog.append_report(
                report_path,
                label=f"{tb.scenario}/{tb.switch.params.name}/{tb.frame_size}B",
            )

    per_gbps = []
    per_mpps = []
    for meter in tb.meters:
        gbps = meter.gbps()
        per_gbps.append(0.0 if math.isnan(gbps) else gbps)
        pps = meter.pps
        per_mpps.append(0.0 if math.isnan(pps) else pps / 1e6)

    latency: LatencySample | None = None
    if tb.latency_meters:
        latency = LatencySample()
        for meter in tb.latency_meters:
            for sample in meter.latency.samples_ns:
                latency.add(sample)

    return RunResult(
        scenario=tb.scenario,
        switch=tb.switch.params.name,
        frame_size=tb.frame_size,
        bidirectional=bidirectional if bidirectional is not None else len(tb.meters) > 1,
        duration_ns=measure_ns,
        per_direction_gbps=per_gbps,
        per_direction_mpps=per_mpps,
        latency=latency,
        events=tb.sim.events_executed,
        warp=warp_report,
        fluid=fluid_report,
    )
