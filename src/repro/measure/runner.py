"""Experiment execution: warm-up, measurement window, result records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.stats import LatencySample
from repro.scenarios.base import Testbed

#: Default windows.  Throughput stabilises within a few hundred
#: microseconds of simulated time; the defaults trade precision against
#: wall-clock cost and are overridable everywhere.
DEFAULT_WARMUP_NS = 600_000.0
DEFAULT_MEASURE_NS = 3_000_000.0


@dataclass
class RunResult:
    """Outcome of driving one testbed for one measurement window."""

    scenario: str
    switch: str
    frame_size: int
    bidirectional: bool
    duration_ns: float
    per_direction_gbps: list[float] = field(default_factory=list)
    per_direction_mpps: list[float] = field(default_factory=list)
    latency: LatencySample | None = None
    events: int = 0

    @property
    def gbps(self) -> float:
        """Aggregate throughput (the paper sums directions for bidi)."""
        return sum(self.per_direction_gbps)

    @property
    def mpps(self) -> float:
        return sum(self.per_direction_mpps)


def drive(
    tb: Testbed,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    bidirectional: bool | None = None,
) -> RunResult:
    """Run a wired testbed through warm-up + measurement; collect results."""
    if warmup_ns < 0:
        raise ValueError("warmup_ns must be non-negative")
    if measure_ns <= 0:
        raise ValueError("measure_ns must be positive")
    t_open = warmup_ns
    t_close = warmup_ns + measure_ns
    for meter in tb.meters:
        meter.open_window(t_open)
        meter.close_window(t_close)
    tb.sim.run_until(t_close)

    per_gbps = []
    per_mpps = []
    for meter in tb.meters:
        gbps = meter.gbps()
        per_gbps.append(0.0 if math.isnan(gbps) else gbps)
        pps = meter.pps
        per_mpps.append(0.0 if math.isnan(pps) else pps / 1e6)

    latency: LatencySample | None = None
    if tb.latency_meters:
        latency = LatencySample()
        for meter in tb.latency_meters:
            for sample in meter.latency.samples_ns:
                latency.add(sample)

    return RunResult(
        scenario=tb.scenario,
        switch=tb.switch.params.name,
        frame_size=tb.frame_size,
        bidirectional=bidirectional if bidirectional is not None else len(tb.meters) > 1,
        duration_ns=measure_ns,
        per_direction_gbps=per_gbps,
        per_direction_mpps=per_mpps,
        latency=latency,
        events=tb.sim.events_executed,
    )
