"""Latency methodology (Sec. 5.3).

RTT is measured with PTP probes injected into background traffic offered
at a *fraction* of R+: 0.10 (batch-formation effects), 0.50 (normal
load) and 0.99 (near-congestion).  R+ itself comes from the throughput
test (:func:`repro.measure.throughput.estimate_r_plus`).

Because the R+ run is exactly the unidirectional saturating-throughput
run a campaign would execute, :func:`latency_sweep` can reuse a
:class:`~repro.campaign.cache.ResultCache` entry instead of re-measuring:
pass ``cache=`` and the sweep keys the R+ run by the same
``(RunSpec, params fingerprint)`` hash the campaign machinery uses, so a
prior throughput campaign over the same grid point makes the estimate
free (and a miss populates the cache for the next caller).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.stats import LatencySample
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.measure.throughput import estimate_r_plus
from repro.scenarios.base import Testbed

if TYPE_CHECKING:
    from repro.campaign.cache import ResultCache

#: The paper's load points.
LOAD_FRACTIONS = (0.10, 0.50, 0.99)

#: Latency windows are longer than throughput windows: at 0.10 R+ the
#: probe stream needs time to accumulate samples.
DEFAULT_LATENCY_MEASURE_NS = 4_000_000.0
DEFAULT_PROBE_INTERVAL_NS = 20_000.0


@dataclass
class LatencyPoint:
    """RTT statistics at one load fraction.

    Multi-trial sweeps (``latency_sweep(trials=n)``) keep the trial-0
    sample as the point estimate and attach the per-trial mean RTTs plus
    a :class:`~repro.measure.soundness.TrialSummary` dict; single-trial
    sweeps leave both fields at their defaults.
    """

    fraction: float
    offered_pps: float
    sample: LatencySample
    #: Per-trial mean RTTs in trial order (multi-trial sweeps only).
    trial_means_us: tuple[float, ...] = ()
    #: :meth:`repro.measure.soundness.TrialSummary.to_dict` over the
    #: trial means (multi-trial sweeps only).
    trials: dict | None = None

    @property
    def mean_us(self) -> float:
        return self.sample.mean_us

    @property
    def std_us(self) -> float:
        return self.sample.std_us


def measure_latency_at(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    rate_pps: float,
    fraction: float,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_LATENCY_MEASURE_NS,
    probe_interval_ns: float = DEFAULT_PROBE_INTERVAL_NS,
    seed: int = 1,
    trial: int = 0,
    fluid: bool | None = None,
    **build_kwargs,
) -> LatencyPoint:
    """RTT at one offered load (probes woven into background traffic).

    ``fluid`` opts the run into rate-based extrapolation (``None``
    follows ``REPRO_FLUID``).  Probes stay exact by construction: every
    RTT sample comes from the exactly-executed calibration slice, only
    the steady throughput counters are extrapolated past it.
    """
    if trial:
        build_kwargs = dict(build_kwargs, trial=trial)
    tb = build(
        switch_name,
        frame_size=frame_size,
        rate_pps=rate_pps,
        probe_interval_ns=probe_interval_ns,
        seed=seed,
        **build_kwargs,
    )
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns, fluid=fluid)
    sample = result.latency if result.latency is not None else LatencySample()
    return LatencyPoint(fraction=fraction, offered_pps=rate_pps, sample=sample)


def _r_plus_spec(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    seed: int,
    build_kwargs: dict,
):
    """The R+ estimation run expressed as a campaign :class:`RunSpec`.

    Returns None when the builder is not a stock scenario module or the
    kwargs cannot be expressed declaratively -- those runs cannot share a
    cache key with campaign records, so callers fall back to measuring.
    """
    module = getattr(build, "__module__", "") or ""
    if not module.startswith("repro.scenarios."):
        return None
    from repro.campaign.spec import SCENARIOS, RunSpec

    scenario = module.rsplit(".", 1)[-1]
    if scenario not in SCENARIOS:
        return None
    kwargs = dict(build_kwargs)
    n_vnfs = kwargs.pop("n_vnfs", 1)
    try:
        return RunSpec(
            scenario=scenario,
            switch=switch_name,
            frame_size=frame_size,
            bidirectional=False,
            n_vnfs=n_vnfs,
            seed=seed,
            kind="throughput",
            warmup_ns=DEFAULT_WARMUP_NS,
            measure_ns=DEFAULT_MEASURE_NS,
            extra=tuple(sorted(kwargs.items())),
        )
    except (TypeError, ValueError):
        return None


def cached_r_plus(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    cache: "ResultCache",
    seed: int = 1,
    **build_kwargs,
) -> float:
    """R+ in pps, served from (and stored to) a campaign result cache.

    The R+ run *is* the unidirectional saturating-throughput run, so its
    cache key is the ordinary campaign key for that grid point: a prior
    throughput campaign supplies the number for free, and a miss executes
    the run through :func:`repro.campaign.spec.execute_run` (the same
    choke point campaigns use) and persists the record.
    """
    spec = _r_plus_spec(build, switch_name, frame_size, seed, build_kwargs)
    if spec is None:
        return estimate_r_plus(
            build, switch_name, frame_size, seed=seed, **build_kwargs
        )
    record = cache.get(spec)
    if record is None or not record.ok:
        from repro.campaign.spec import execute_run

        record = execute_run(spec)
        if record.ok:
            cache.put(spec, record)
    return record.mpps * 1e6


def latency_sweep(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    fractions: tuple[float, ...] = LOAD_FRACTIONS,
    r_plus_pps: float | None = None,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_LATENCY_MEASURE_NS,
    probe_interval_ns: float = DEFAULT_PROBE_INTERVAL_NS,
    seed: int = 1,
    cache: "ResultCache | None" = None,
    trials: int = 1,
    fluid: bool | None = None,
    **build_kwargs,
) -> dict[float, LatencyPoint]:
    """The Table 3 per-switch procedure: estimate R+, probe at fractions.

    ``cache`` (a :class:`~repro.campaign.cache.ResultCache`) lets the R+
    estimate reuse a cached campaign throughput record for the same grid
    point instead of re-driving the saturating run.

    ``trials > 1`` measures every load fraction once per soundness trial
    (``repro.measure.soundness``): the returned point keeps the trial-0
    sample (bit-identical to a single-trial sweep) and carries the
    per-trial mean RTTs plus their :class:`TrialSummary` dict.  R+ is
    estimated once, at trial 0 -- the load grid must be common to all
    trials or their RTTs are not comparable.

    ``fluid`` opts every probe run into rate-based extrapolation (see
    :func:`measure_latency_at`; RTT samples stay exact either way).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if r_plus_pps is None:
        if cache is not None:
            r_plus_pps = cached_r_plus(
                build, switch_name, frame_size, cache, seed=seed, **build_kwargs
            )
        else:
            r_plus_pps = estimate_r_plus(
                build, switch_name, frame_size, seed=seed, **build_kwargs
            )
    points = {}
    for fraction in fractions:
        point = measure_latency_at(
            build,
            switch_name,
            frame_size,
            rate_pps=max(1.0, fraction * r_plus_pps),
            fraction=fraction,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            probe_interval_ns=probe_interval_ns,
            seed=seed,
            fluid=fluid,
            **build_kwargs,
        )
        if trials > 1:
            from repro.measure.soundness import summarize_trials

            means = [point.mean_us]
            for k in range(1, trials):
                replica = measure_latency_at(
                    build,
                    switch_name,
                    frame_size,
                    rate_pps=max(1.0, fraction * r_plus_pps),
                    fraction=fraction,
                    warmup_ns=warmup_ns,
                    measure_ns=measure_ns,
                    probe_interval_ns=probe_interval_ns,
                    seed=seed,
                    trial=k,
                    fluid=fluid,
                    **build_kwargs,
                )
                means.append(replica.mean_us)
            point.trial_means_us = tuple(means)
            finite = [m for m in means if not math.isnan(m)]
            if finite:
                point.trials = summarize_trials(
                    finite, metric="latency_mean_us"
                ).to_dict()
        points[fraction] = point
    return points
