"""Latency methodology (Sec. 5.3).

RTT is measured with PTP probes injected into background traffic offered
at a *fraction* of R+: 0.10 (batch-formation effects), 0.50 (normal
load) and 0.99 (near-congestion).  R+ itself comes from the throughput
test (:func:`repro.measure.throughput.estimate_r_plus`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.stats import LatencySample
from repro.measure.runner import DEFAULT_WARMUP_NS, drive
from repro.measure.throughput import estimate_r_plus
from repro.scenarios.base import Testbed

#: The paper's load points.
LOAD_FRACTIONS = (0.10, 0.50, 0.99)

#: Latency windows are longer than throughput windows: at 0.10 R+ the
#: probe stream needs time to accumulate samples.
DEFAULT_LATENCY_MEASURE_NS = 4_000_000.0
DEFAULT_PROBE_INTERVAL_NS = 20_000.0


@dataclass
class LatencyPoint:
    """RTT statistics at one load fraction."""

    fraction: float
    offered_pps: float
    sample: LatencySample

    @property
    def mean_us(self) -> float:
        return self.sample.mean_us

    @property
    def std_us(self) -> float:
        return self.sample.std_us


def measure_latency_at(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    rate_pps: float,
    fraction: float,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_LATENCY_MEASURE_NS,
    probe_interval_ns: float = DEFAULT_PROBE_INTERVAL_NS,
    seed: int = 1,
    **build_kwargs,
) -> LatencyPoint:
    """RTT at one offered load (probes woven into background traffic)."""
    tb = build(
        switch_name,
        frame_size=frame_size,
        rate_pps=rate_pps,
        probe_interval_ns=probe_interval_ns,
        seed=seed,
        **build_kwargs,
    )
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns)
    sample = result.latency if result.latency is not None else LatencySample()
    return LatencyPoint(fraction=fraction, offered_pps=rate_pps, sample=sample)


def latency_sweep(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    fractions: tuple[float, ...] = LOAD_FRACTIONS,
    r_plus_pps: float | None = None,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_LATENCY_MEASURE_NS,
    probe_interval_ns: float = DEFAULT_PROBE_INTERVAL_NS,
    seed: int = 1,
    **build_kwargs,
) -> dict[float, LatencyPoint]:
    """The Table 3 per-switch procedure: estimate R+, probe at fractions."""
    if r_plus_pps is None:
        r_plus_pps = estimate_r_plus(
            build, switch_name, frame_size, seed=seed, **build_kwargs
        )
    points = {}
    for fraction in fractions:
        points[fraction] = measure_latency_at(
            build,
            switch_name,
            frame_size,
            rate_pps=max(1.0, fraction * r_plus_pps),
            fraction=fraction,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            probe_interval_ns=probe_interval_ns,
            seed=seed,
            **build_kwargs,
        )
    return points
