"""Throughput methodology (Sec. 5.2) and R+ estimation (Sec. 5.3).

Throughput: offer saturating input ("packets are sent at maximum rate
disregarding any drops" -- deliberately *not* RFC 2544 NDR, see footnote
3) and measure what arrives at the monitor.

R+ (Maximal Forwarding Rate): "rather than trying to identify the
precise R+ ... we define R+ as the average throughput achieved under
saturating input" -- i.e. run the throughput test and take its packet
rate.
"""

from __future__ import annotations

from typing import Callable

from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, RunResult, drive
from repro.scenarios.base import Testbed


def measure_throughput(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    bidirectional: bool = False,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    warp: bool | None = None,
    **build_kwargs,
) -> RunResult:
    """Saturating-input throughput for one (scenario, switch, size, dir)."""
    tb = build(
        switch_name,
        frame_size=frame_size,
        bidirectional=bidirectional,
        seed=seed,
        **build_kwargs,
    )
    return drive(
        tb,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        bidirectional=bidirectional,
        warp=warp,
    )


def estimate_r_plus(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    **build_kwargs,
) -> float:
    """R+ in pps: unidirectional average throughput under saturation."""
    result = measure_throughput(
        build,
        switch_name,
        frame_size,
        bidirectional=False,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        seed=seed,
        **build_kwargs,
    )
    return result.mpps * 1e6
