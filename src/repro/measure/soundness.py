"""Statistical soundness layer: multi-trial measurement methodology.

PASTRAMI (Brun et al., see PAPERS.md) shows software-switch throughput
is unstable enough that single-trial NDR values are unsound.  This
module supplies the machinery that turns the simulator's point estimates
into defensible statistics:

- :func:`bootstrap_ci` -- deterministic percentile-bootstrap confidence
  interval for the mean of a small trial sample;
- :func:`classify_trials` -- the instability taxonomy (``stable`` /
  ``bimodal`` / ``drifting`` / ``inconclusive``), each verdict paired
  with a stable, documented reason string;
- :class:`TrialSummary` -- the (n, mean, p5/p50/p95, CI, verdict) record
  persisted into :class:`~repro.campaign.spec.RunRecord`, CSV exports,
  BENCH_*.json and Prometheus;
- :func:`run_trial_campaign` -- the repeat scheduler: runs trials per
  grid point through the ordinary campaign executor (parallel, cached,
  resumable), early-stops a point once its CI half-width converges below
  the policy target, and quarantines points the classifier refuses to
  average.

Trials are genuine re-measurements, not reseeds: each trial ``k > 0``
perturbs the base run through dedicated ``trial.*`` RNG streams (traffic
phase, driver-hiccup hash salt, churn offset -- see
:func:`repro.scenarios.base.trial_axis`) while keeping the workload
definition identical.  Trial 0 is the unperturbed base run, bit-identical
to a single-trial measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.core.rng import _stable_hash

#: Seed policies a repeat axis may use.  ``trial`` keeps the workload
#: fixed and perturbs only measurement-irrelevant phases (sound repeats);
#: ``reseed`` re-derives every RNG stream from ``seed + k`` (the legacy
#: behaviour, which changes the workload itself).
SEED_POLICIES = ("trial", "reseed")

VERDICTS = ("stable", "bimodal", "drifting", "inconclusive")


@dataclass(frozen=True)
class TrialPolicy:
    """How many trials to run and when to stop or quarantine."""

    n_min: int = 3
    n_max: int = 10
    ci_level: float = 0.95
    #: Converged when the CI half-width is below this fraction of |mean|.
    rel_ci_target: float = 0.05
    bootstrap_resamples: int = 300
    seed_policy: str = "trial"
    #: Coefficient of variation at or below which a sample is ``stable``.
    cv_stable: float = 0.05
    #: A sorted sample splits into two clusters when the largest gap
    #: exceeds this multiple of the larger intra-cluster spread.
    bimodal_gap: float = 4.0
    #: Drifting when the fitted total drift exceeds this multiple of the
    #: residual standard deviation.
    drift_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.n_min < 1:
            raise ValueError("n_min must be >= 1")
        if self.n_max < self.n_min:
            raise ValueError("n_max must be >= n_min")
        if not 0.0 < self.ci_level < 1.0:
            raise ValueError("ci_level must be in (0, 1)")
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(
                f"unknown seed policy {self.seed_policy!r}; known: {SEED_POLICIES}"
            )


DEFAULT_POLICY = TrialPolicy()


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile (numpy's default method), pure."""
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty sample")
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * (p / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (rank - lo)


def _values_rng(tag: str, values: Sequence[float]) -> np.random.Generator:
    """Deterministic bootstrap generator keyed by the sample itself.

    Re-running the same trials yields the same interval; no global RNG
    state is consumed (bootstrap must never perturb simulation streams).
    """
    key = tag + ":" + ",".join(f"{v:.12e}" for v in values)
    return np.random.default_rng(np.random.SeedSequence(_stable_hash(key)))


def bootstrap_ci(
    values: Sequence[float],
    level: float = 0.95,
    resamples: int = 300,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Small-n friendly (no normality assumption) and deterministic: the
    resampling RNG is seeded from a stable hash of the sample, so the
    interval is a pure function of the data.  A single-value sample
    degenerates to a zero-width interval at that value.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("bootstrap_ci of an empty sample")
    if len(data) == 1 or max(data) == min(data):
        return (data[0], data[0])
    rng = _values_rng("bootstrap", data)
    arr = np.asarray(data)
    indices = rng.integers(0, len(arr), size=(resamples, len(arr)))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def classify_trials(
    values: Sequence[float], policy: TrialPolicy = DEFAULT_POLICY
) -> tuple[str, str]:
    """(verdict, reason) for a trial sample.

    Verdicts, checked in order (each reason string is stable -- tests and
    quarantine reports match on them):

    - ``inconclusive`` -- fewer than 3 trials, or any non-finite value:
      not enough evidence to call the point anything.
    - ``stable`` -- coefficient of variation <= ``cv_stable`` (or an
      exactly constant sample).  Checked *before* the structure tests:
      simulated rates are quantised to whole batches per window, so two
      adjacent quanta form textbook "clusters" with zero intra-cluster
      spread -- but when the whole sample sits within the stability
      band, averaging is sound and micro-structure is noise.
    - ``bimodal`` -- the sorted sample splits into two separated clusters
      (largest gap > ``bimodal_gap`` x the larger intra-cluster spread,
      both clusters with >= 2 members).  Averaging would report a rate
      the switch never actually sustains.
    - ``drifting`` -- a least-squares trend over the trial index explains
      more than ``drift_ratio`` x the residual spread: the point moves
      with time (warm-up leak, cache pollution), so the mean depends on
      when you stop.
    - ``inconclusive`` -- everything else: too noisy to certify stable,
      no structure to blame.
    """
    data = [float(v) for v in values]
    if len(data) < 3:
        return ("inconclusive", f"n={len(data)} < 3 trials")
    if any(not math.isfinite(v) for v in data):
        return ("inconclusive", "non-finite trial values")
    mean = sum(data) / len(data)
    var = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    std = math.sqrt(var)
    if std == 0.0:
        return ("stable", "zero variance across trials")
    cv = std / abs(mean) if mean else math.inf
    if cv <= policy.cv_stable:
        return ("stable", f"cv={cv:.4f} <= {policy.cv_stable:g}")

    # Bimodality: largest gap in the sorted sample vs intra-cluster spread.
    ordered = sorted(data)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    split = max(range(len(gaps)), key=gaps.__getitem__)
    gap = gaps[split]
    lower, upper = ordered[: split + 1], ordered[split + 1 :]
    if len(lower) >= 2 and len(upper) >= 2:
        spread = max(lower[-1] - lower[0], upper[-1] - upper[0])
        if gap > policy.bimodal_gap * max(spread, 1e-12 * abs(mean), 1e-300):
            return (
                "bimodal",
                f"two clusters separated by {gap:.4g} "
                f"({len(lower)}+{len(upper)} trials)",
            )

    # Drift: least-squares slope over trial index vs residual spread.
    n = len(data)
    xs = range(n)
    x_mean = (n - 1) / 2.0
    sxx = sum((x - x_mean) ** 2 for x in xs)
    slope = sum((x - x_mean) * (v - mean) for x, v in zip(xs, data)) / sxx
    residuals = [v - (mean + slope * (x - x_mean)) for x, v in zip(xs, data)]
    resid_std = math.sqrt(sum(r * r for r in residuals) / max(n - 2, 1))
    total_drift = abs(slope) * (n - 1)
    if total_drift > policy.drift_ratio * max(resid_std, 1e-12 * abs(mean), 1e-300):
        return (
            "drifting",
            f"monotone trend {total_drift:.4g} over {n} trials "
            f"exceeds {policy.drift_ratio:g}x residual spread",
        )

    return ("inconclusive", f"cv={cv:.4f} > {policy.cv_stable:g}, no structure")


@dataclass(frozen=True)
class TrialSummary:
    """The statistics a multi-trial point persists alongside its mean."""

    metric: str
    n: int
    mean: float
    std: float
    cv: float
    p5: float
    p50: float
    p95: float
    ci_low: float
    ci_high: float
    ci_level: float
    verdict: str
    reason: str
    values: tuple[float, ...] = ()

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def rel_half_width(self) -> float:
        """CI half-width as a fraction of |mean| (inf for a zero mean)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else math.inf
        return self.half_width / abs(self.mean)

    def converged(self, policy: TrialPolicy = DEFAULT_POLICY) -> bool:
        return self.n >= policy.n_min and self.rel_half_width <= policy.rel_ci_target

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "cv": self.cv,
            "p5": self.p5,
            "p50": self.p50,
            "p95": self.p95,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_level": self.ci_level,
            "verdict": self.verdict,
            "reason": self.reason,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSummary":
        payload = dict(data)
        payload["values"] = tuple(payload.get("values", ()))
        return cls(**payload)


def summarize_trials(
    values: Sequence[float],
    policy: TrialPolicy = DEFAULT_POLICY,
    metric: str = "gbps",
) -> TrialSummary:
    """Summarise a trial sample into a :class:`TrialSummary`."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("summarize_trials of an empty sample")
    n = len(data)
    # The true mean lies in [min, max]; float summation can round just
    # outside (e.g. sum([1.9]*3)/3 < 1.9), so clamp it back in.
    mean = min(max(sum(data) / n, min(data)), max(data))
    var = sum((v - mean) ** 2 for v in data) / (n - 1) if n > 1 else 0.0
    std = math.sqrt(var)
    cv = std / abs(mean) if mean else (0.0 if std == 0.0 else math.inf)
    ci_low, ci_high = bootstrap_ci(
        data, level=policy.ci_level, resamples=policy.bootstrap_resamples
    )
    verdict, reason = classify_trials(data, policy)
    return TrialSummary(
        metric=metric,
        n=n,
        mean=mean,
        std=std,
        cv=cv,
        p5=percentile(data, 5.0),
        p50=percentile(data, 50.0),
        p95=percentile(data, 95.0),
        ci_low=ci_low,
        ci_high=ci_high,
        ci_level=policy.ci_level,
        verdict=verdict,
        reason=reason,
        values=tuple(data),
    )


# ---------------------------------------------------------------------------
# Repeat scheduler
# ---------------------------------------------------------------------------

def trial_specs(spec, n: int, seed_policy: str = "trial") -> list:
    """The ``n`` per-trial RunSpecs for a base spec under a seed policy."""
    if seed_policy not in SEED_POLICIES:
        raise ValueError(
            f"unknown seed policy {seed_policy!r}; known: {SEED_POLICIES}"
        )
    if seed_policy == "reseed":
        return [replace(spec, seed=spec.seed + k) for k in range(n)]
    return [spec if k == 0 else replace(spec, trial=k) for k in range(n)]


def _metric_name(spec) -> str:
    return "latency_mean_us" if spec.kind == "latency" else "gbps"


def _metric_of(record, name: str) -> float:
    value = getattr(record, name)
    return math.nan if value is None else float(value)


@dataclass
class TrialPoint:
    """One grid point's multi-trial outcome."""

    spec: object  # base RunSpec (trial 0)
    status: str = "ok"  # "ok" | "quarantined" | "failed" | "inapplicable"
    records: list = field(default_factory=list)  # per-trial RunRecords, in order
    failures: list = field(default_factory=list)  # RunFailures, if any
    summary: TrialSummary | None = None
    reason: str = ""

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def quarantined(self) -> bool:
        return self.status == "quarantined"


@dataclass
class TrialCampaignResult:
    """All points of a repeat-scheduled campaign."""

    name: str
    points: list[TrialPoint] = field(default_factory=list)
    policy: TrialPolicy = DEFAULT_POLICY

    @property
    def quarantined(self) -> list[TrialPoint]:
        return [p for p in self.points if p.quarantined]

    @property
    def failures(self) -> list:
        return [f for p in self.points for f in p.failures]

    @property
    def outcomes(self) -> list:
        """(key, outcome) pairs for every trial, CSV-export ready."""
        from repro.campaign.cache import run_key

        pairs = []
        for point in self.points:
            for record in point.records:
                pairs.append((run_key(record.spec), record))
            for failure in point.failures:
                pairs.append((run_key(failure.spec), failure))
        return pairs

    def summary_dict(self) -> dict:
        """{label: trial summary + status} -- the trial-summary artifact."""
        out = {}
        for point in self.points:
            entry: dict = {"status": point.status, "reason": point.reason}
            if point.summary is not None:
                entry.update(point.summary.to_dict())
            out[point.label] = entry
        return out


class _RoundProgress:
    """Adapter handed to the inner :func:`run_campaign` calls.

    The executor clobbers ``progress.total`` and calls ``start()`` on
    every invocation; the scheduler owns the real totals (one unit per
    *potential* trial, retired on early convergence), so this proxy
    forwards only per-run ``update`` events to the outer reporter.
    """

    def __init__(self, outer) -> None:
        self._outer = outer
        self.total = 0  # written (and ignored) by run_campaign

    def start(self) -> None:
        pass

    def update(self, outcome, source: str = "executed") -> None:
        if self._outer is not None:
            self._outer.update(outcome, source=source)


def run_trial_campaign(
    runs,
    policy: TrialPolicy = DEFAULT_POLICY,
    name: str = "trials",
    workers: int = 1,
    cache=None,
    store=None,
    progress=None,
    timeout_s: float | None = None,
) -> TrialCampaignResult:
    """Run each base spec ``n_min``..``n_max`` trials with early stopping.

    Round-based: the first round runs ``n_min`` trials for every point
    through the ordinary campaign executor (so trials are embarrassingly
    parallel across the worker pool and individually result-cached per
    trial spec); each later round adds one trial to every point whose CI
    has not yet converged.  A point stops as soon as
    :meth:`TrialSummary.converged` holds -- its unused trial budget is
    retired from the progress total so the ETA shrinks -- and a point
    still unstable at ``n_max`` is quarantined with the classifier's
    reason instead of being silently averaged.

    Each point's final summary is attached to its first trial record
    (``record.trials``) and, when a ``store`` is given, re-appended so
    the JSONL log's later-lines-win rule updates the stored record in
    place.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec, RunFailure, RunRecord

    base_specs = list(runs)
    points = [TrialPoint(spec=spec) for spec in base_specs]
    if progress is not None:
        progress.total = len(points) * policy.n_max
        progress.start()
    inner_progress = _RoundProgress(progress)

    active: dict[int, int] = {i: policy.n_min for i in range(len(points))}
    done: dict[int, int] = {i: 0 for i in range(len(points))}

    def retire(index: int) -> None:
        unused = policy.n_max - done[index]
        if progress is not None and unused > 0:
            progress.retire(unused)

    while active:
        batch: list[tuple[int, object]] = []
        for index, target in active.items():
            point = points[index]
            specs = trial_specs(point.spec, target, policy.seed_policy)
            for spec in specs[done[index]:]:
                batch.append((index, spec))
        campaign = CampaignSpec(
            name=name, runs=tuple(spec for _, spec in batch)
        )
        result = run_campaign(
            campaign,
            workers=workers,
            cache=cache,
            store=store,
            progress=inner_progress,
            timeout_s=timeout_s,
        )
        for index, spec in batch:
            outcome = result.outcome_for(spec)
            point = points[index]
            done[index] += 1
            if isinstance(outcome, RunFailure) or outcome is None:
                if outcome is not None:
                    point.failures.append(outcome)
                point.status = "failed"
                point.reason = (
                    f"trial failed: {outcome.error}: {outcome.message}"
                    if outcome is not None
                    else "trial produced no outcome"
                )
            elif outcome.status == "inapplicable":
                point.records.append(outcome)
                point.status = "inapplicable"
                point.reason = outcome.detail
            else:
                point.records.append(outcome)

        next_active: dict[int, int] = {}
        for index in active:
            point = points[index]
            if point.status in ("failed", "inapplicable"):
                retire(index)
                continue
            metric = _metric_name(point.spec)
            values = [_metric_of(r, metric) for r in point.records]
            point.summary = summarize_trials(values, policy, metric=metric)
            # Early stop needs *both* a converged CI and a stable verdict:
            # a bimodal or drifting sample can have a deceptively tight
            # interval, and stopping there would launder instability
            # through the mean.
            if point.summary.converged(policy) and point.summary.verdict == "stable":
                point.status = "ok"
                retire(index)
            elif done[index] >= policy.n_max:
                verdict = point.summary.verdict
                if verdict == "stable":
                    # Stable shape but a CI wider than the target: report
                    # it, don't hide it -- the summary carries the width.
                    point.status = "ok"
                    point.reason = "stable but CI wider than target"
                else:
                    point.status = "quarantined"
                    point.reason = point.summary.reason
            else:
                next_active[index] = done[index] + 1
        active = next_active

    # Attach each point's summary to its first trial record and update
    # the store in place (JSONL later-lines-win).
    from repro.campaign.cache import run_key

    for point in points:
        if point.summary is None or not point.records:
            continue
        first = point.records[0]
        if isinstance(first, RunRecord):
            payload = point.summary.to_dict()
            payload["status"] = point.status
            if point.reason:
                payload["reason"] = point.reason
            first.trials = payload
            if store is not None:
                store.append(run_key(first.spec), first)

    return TrialCampaignResult(name=name, points=points, policy=policy)
