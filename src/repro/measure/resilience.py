"""Resilience measurement: what a fault costs and how fast it heals.

Drives a testbed with a :class:`~repro.faults.plan.FaultPlan` armed and a
read-only timeline sampler attached, then computes:

* **pre-fault baseline** ``R_pre`` -- mean delivered rate over the bins
  between warm-up end and the first fault;
* **loss during the disruption window** -- the frames the baseline says
  should have arrived but did not, plus the drop counters' delta;
* **time to recover (TTR)** -- from the end of the last fault window to
  the first timeline bin whose rate is back within ``epsilon`` of
  ``R_pre``;
* **latency-tail inflation** -- p99 of probe RTTs recorded after the
  disruption vs before it (when the scenario carries probes);
* **degradation timeline** -- delivered rate and cumulative drops per
  ``bin_ns`` bin, for plotting and for the recovery scan.

The sampler only *reads* cumulative counters on a fixed grid, so the
simulated data plane is not perturbed; faulted runs are exactly the
unfaulted simulation plus the plan's start/stop events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.stats import LatencySample
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.measure.runner import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARMUP_NS,
    RunResult,
    drive,
)
from repro.scenarios.base import Testbed

#: Default recovery tolerance: recovered == rate within 5% of R_pre.
DEFAULT_EPSILON = 0.05
#: Default timeline resolution.
DEFAULT_BIN_NS = 100_000.0


@dataclass
class ResilienceReport:
    """Recovery metrics for one faulted run (JSON-friendly)."""

    scenario: str
    switch: str
    frame_size: int
    epsilon: float
    bin_ns: float
    fault_start_ns: float
    fault_end_ns: float
    pre_fault_pps: float
    loss_during_fault_frames: float
    drops_during_fault_frames: int
    time_to_recover_ns: float | None
    recovered: bool
    latency_p99_pre_us: float | None = None
    latency_p99_post_us: float | None = None
    latency_tail_inflation: float | None = None
    timeline: list[dict[str, float]] = field(default_factory=list)
    fault_spans: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "switch": self.switch,
            "frame_size": self.frame_size,
            "epsilon": self.epsilon,
            "bin_ns": self.bin_ns,
            "fault_start_ns": self.fault_start_ns,
            "fault_end_ns": self.fault_end_ns,
            "pre_fault_pps": self.pre_fault_pps,
            "loss_during_fault_frames": self.loss_during_fault_frames,
            "drops_during_fault_frames": self.drops_during_fault_frames,
            "time_to_recover_ns": self.time_to_recover_ns,
            "recovered": self.recovered,
            "latency_p99_pre_us": self.latency_p99_pre_us,
            "latency_p99_post_us": self.latency_p99_post_us,
            "latency_tail_inflation": self.latency_tail_inflation,
            "timeline": self.timeline,
            "fault_spans": self.fault_spans,
        }


def _drop_counters(tb: Testbed) -> list[Callable[[], int]]:
    """Readers over every drop counter the testbed owns (deduplicated)."""
    readers: list[Callable[[], int]] = []
    seen: set[int] = set()

    def add_ring(ring) -> None:
        if id(ring) not in seen:
            seen.add(id(ring))
            readers.append(lambda r=ring: r.dropped)

    for attachment in tb.switch.attachments:
        add_ring(attachment.input_ring)
    for path in tb.switch.paths:
        add_ring(path.link)
    for vm in tb.vms:
        for vif in vm.interfaces:
            add_ring(vif.to_guest)
            add_ring(vif.to_host)
    for vif in tb.extras.get("vifs", ()):
        add_ring(vif.to_guest)
        add_ring(vif.to_host)
    for key in ("gen_ports", "sut_ports"):
        for port in tb.extras.get(key, ()):
            add_ring(port.rx_ring)
            if id(port) not in seen:
                seen.add(id(port))
                readers.append(lambda p=port: p.tx_dropped + p.driver_drops)
    return readers


class _TimelineSampler:
    """Snapshots cumulative delivered/dropped counters on a fixed grid."""

    def __init__(self, tb: Testbed, bin_ns: float, t_end_ns: float) -> None:
        if bin_ns <= 0:
            raise ValueError(f"bin_ns must be positive, got {bin_ns}")
        self.tb = tb
        self.bin_ns = bin_ns
        self.t_end_ns = t_end_ns
        self._drops = _drop_counters(tb)
        #: rows of (t_ns, delivered_cum, dropped_cum, latency_counts)
        self.rows: list[tuple[float, int, int, tuple[int, ...]]] = []

    def start(self) -> None:
        self._snap()
        self._arm_next()

    def _arm_next(self) -> None:
        now = self.tb.sim.now
        nxt = min(now + self.bin_ns, self.t_end_ns)
        if nxt > now:
            self.tb.sim.at(nxt, self._tick)

    def _tick(self) -> None:
        self._snap()
        self._arm_next()

    def _snap(self) -> None:
        delivered = sum(
            meter.packets + meter.warmup_packets for meter in self.tb.meters
        )
        dropped = sum(reader() for reader in self._drops)
        latency_counts = tuple(
            len(meter.latency.samples_ns) for meter in self.tb.latency_meters
        )
        self.rows.append((self.tb.sim.now, delivered, dropped, latency_counts))


def _percentile_us(samples: list[float], q: float = 99.0) -> float | None:
    if not samples:
        return None
    sample = LatencySample()
    for value in samples:
        sample.add(value)
    return sample.percentile_us(q)


def analyze(
    tb: Testbed,
    plan: FaultPlan,
    sampler: _TimelineSampler,
    injector: FaultInjector,
    warmup_ns: float,
    epsilon: float,
) -> ResilienceReport:
    """Fold sampler rows + fault spans into a :class:`ResilienceReport`."""
    rows = sampler.rows
    fault_start = plan.first_at_ns
    fault_end = plan.last_end_ns
    timeline: list[dict[str, float]] = []
    for (t0, d0, x0, _), (t1, d1, x1, _) in zip(rows, rows[1:]):
        width = t1 - t0
        pps = (d1 - d0) * 1e9 / width if width > 0 else 0.0
        timeline.append(
            {"t_ns": t1, "pps": pps, "delivered": float(d1), "drops": float(x1)}
        )

    # Baseline: bins entirely inside [warmup end, first fault start).
    pre_bins = [
        row["pps"]
        for prev, row in zip(rows, timeline)
        if prev[0] >= warmup_ns and row["t_ns"] <= fault_start
    ]
    if not pre_bins:  # fault starts inside warm-up: use any pre-fault bins
        pre_bins = [
            row["pps"] for row in timeline if row["t_ns"] <= fault_start
        ]
    r_pre = sum(pre_bins) / len(pre_bins) if pre_bins else 0.0

    def _cum_at(t: float, index: int) -> float:
        """Cumulative counter linearly interpolated onto the grid."""
        prev = rows[0]
        for row in rows:
            if row[0] >= t:
                span = row[0] - prev[0]
                if span <= 0:
                    return float(row[index])
                frac = (t - prev[0]) / span
                return prev[index] + frac * (row[index] - prev[index])
            prev = row
        return float(rows[-1][index])

    disruption_ns = max(0.0, min(fault_end, rows[-1][0]) - fault_start)
    delivered_during = _cum_at(fault_end, 1) - _cum_at(fault_start, 1)
    expected_during = r_pre * disruption_ns / 1e9
    drops_during = int(round(_cum_at(fault_end, 2) - _cum_at(fault_start, 2)))
    loss = max(0.0, expected_during - delivered_during)

    # Recovery: first bin fully after the last fault whose rate is back.
    ttr: float | None = None
    threshold = (1.0 - epsilon) * r_pre
    for prev, row in zip(rows, timeline):
        if prev[0] >= fault_end and row["pps"] >= threshold:
            ttr = row["t_ns"] - fault_end
            break
    recovered = ttr is not None

    # Latency tail: probe RTTs recorded before the first fault vs after
    # the last fault window.
    p99_pre = p99_post = inflation = None
    if tb.latency_meters:
        pre_counts = [0] * len(tb.latency_meters)
        post_counts: list[int] | None = None
        for t, _, _, counts in rows:
            if t <= fault_start:
                pre_counts = list(counts)
            if post_counts is None and t >= fault_end:
                post_counts = list(counts)
        if post_counts is None:
            post_counts = [len(m.latency.samples_ns) for m in tb.latency_meters]
        pre_samples: list[float] = []
        post_samples: list[float] = []
        for meter, n_pre, n_post in zip(tb.latency_meters, pre_counts, post_counts):
            samples = meter.latency.samples_ns
            pre_samples.extend(samples[:n_pre])
            post_samples.extend(samples[n_post:])
        p99_pre = _percentile_us(pre_samples)
        p99_post = _percentile_us(post_samples)
        if p99_pre and p99_post and p99_pre > 0:
            inflation = p99_post / p99_pre

    return ResilienceReport(
        scenario=tb.scenario,
        switch=tb.switch.params.name,
        frame_size=tb.frame_size,
        epsilon=epsilon,
        bin_ns=sampler.bin_ns,
        fault_start_ns=fault_start,
        fault_end_ns=fault_end,
        pre_fault_pps=r_pre,
        loss_during_fault_frames=loss,
        drops_during_fault_frames=drops_during,
        time_to_recover_ns=ttr,
        recovered=recovered,
        latency_p99_pre_us=p99_pre,
        latency_p99_post_us=p99_post,
        latency_tail_inflation=inflation,
        timeline=timeline,
        fault_spans=[span.to_dict() for span in injector.spans],
    )


def measure_resilience(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    plan: FaultPlan,
    bidirectional: bool = False,
    epsilon: float = DEFAULT_EPSILON,
    bin_ns: float = DEFAULT_BIN_NS,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    observe_config=None,
    warp: bool | None = None,
    **build_kwargs,
) -> tuple[RunResult, ResilienceReport, Any]:
    """Throughput run + fault plan + recovery analysis in one drive.

    Returns ``(run_result, resilience_report, observation)``;
    ``observation`` is None unless ``observe_config`` asks for an obs
    session (fault spans are then exported onto its tracer).

    ``warp`` pins the exact fast-forward tiers (``None`` follows
    ``REPRO_WARP``).  The chain turbo warps the idle stretches *between*
    fault events bit-identically -- injector callbacks force a
    re-verification, so fault transients and the recovery timeline stay
    event-exact.
    """
    if not plan:
        raise ValueError("measure_resilience needs a non-empty FaultPlan")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    tb = build(
        switch_name,
        frame_size=frame_size,
        bidirectional=bidirectional,
        seed=seed,
        **build_kwargs,
    )
    observation = None
    if observe_config is not None:
        from repro.obs import observe

        observation = observe(tb, observe_config)
    injector = FaultInjector(tb, plan)
    injector.arm()
    sampler = _TimelineSampler(tb, bin_ns, warmup_ns + measure_ns)
    sampler.start()
    result = drive(
        tb,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        bidirectional=bidirectional,
        warp=warp,
    )
    report = analyze(tb, plan, sampler, injector, warmup_ns, epsilon)
    if observation is not None:
        injector.export(observation)
        observation.finish(result)
    return result, report, observation
