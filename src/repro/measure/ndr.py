"""RFC 2544 Non-Drop-Rate search -- the methodology the paper rejects.

Footnote 3: "a binary search for the NDR is not suited for evaluating
software solutions as it may converge to unreliable points due to even a
single packet drop caused at the driver level."  This module implements
the classic binary search so that claim is testable: for jittery switches
the strict-NDR estimate sits far below the average forwarding rate R+
and varies wildly across seeds, while R+ (the paper's choice) is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.units import line_rate_pps
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.scenarios.base import Testbed


@dataclass(frozen=True)
class NdrResult:
    """Outcome of an RFC 2544 binary search."""

    switch: str
    frame_size: int
    ndr_pps: float
    loss_threshold: float
    iterations: int
    trials: tuple[tuple[float, float], ...]  # (offered_pps, loss_fraction)

    @property
    def ndr_mpps(self) -> float:
        return self.ndr_pps / 1e6


def measure_loss(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    rate_pps: float,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    **build_kwargs,
) -> float:
    """Loss fraction at one offered rate (received vs offered in-window)."""
    tb = build(switch_name, frame_size=frame_size, rate_pps=rate_pps, seed=seed, **build_kwargs)
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns)
    received = result.mpps * 1e6
    offered = rate_pps
    if offered <= 0:
        return 0.0
    return max(0.0, 1.0 - received / offered)


def ndr_search(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    loss_threshold: float = 0.0,
    tolerance_packets: float = 0.0,
    iterations: int = 10,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    **build_kwargs,
) -> NdrResult:
    """RFC 2544 binary search for the highest rate with loss <= threshold.

    ``loss_threshold`` of 0.0 is the strict RFC 2544 criterion; small
    positive thresholds (e.g. 1e-3) give the "partial drop rate" variants
    used by CSIT.  ``tolerance_packets`` forgives that many packets of
    apparent loss per trial -- with the strict default of 0, measurement
    edge effects (batches straddling the window boundary) register as
    loss, which is precisely the non-determinism the paper's footnote 3
    blames for NDR's unreliability on software testbeds.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 <= loss_threshold < 1.0:
        raise ValueError("loss threshold must be in [0, 1)")
    low = 0.0
    high = line_rate_pps(frame_size)
    best = 0.0
    trials = []
    for _ in range(iterations):
        mid = (low + high) / 2
        if mid <= 0:
            break
        loss = measure_loss(
            build, switch_name, frame_size, mid,
            warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed, **build_kwargs,
        )
        allowance = tolerance_packets / (mid * measure_ns / 1e9)
        trials.append((mid, loss))
        if loss <= loss_threshold + allowance:
            best = mid
            low = mid
        else:
            high = mid
    return NdrResult(
        switch=switch_name,
        frame_size=frame_size,
        ndr_pps=best,
        loss_threshold=loss_threshold,
        iterations=iterations,
        trials=tuple(trials),
    )
