"""RFC 2544 Non-Drop-Rate search -- the methodology the paper rejects.

Footnote 3: "a binary search for the NDR is not suited for evaluating
software solutions as it may converge to unreliable points due to even a
single packet drop caused at the driver level."  This module implements
the classic binary search so that claim is testable: for jittery switches
the strict-NDR estimate sits far below the average forwarding rate R+
and varies wildly across seeds, while R+ (the paper's choice) is stable.

``seed_from_model=True`` skips the expensive top of the search tree: the
closed-form capacity model (:func:`repro.analysis.bottleneck.estimate`)
predicts which dyadic bracket the search would land in, two trials verify
the bracket edges, and the binary search resumes *inside* it -- visiting
exactly the midpoints the unseeded search would have visited from that
depth on, so (under the monotone-loss assumption the verification trials
check) the returned ``ndr_pps`` is bit-identical with fewer trials.  A
failed verification falls back to the full unseeded search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.units import line_rate_pps
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.scenarios.base import Testbed


@dataclass(frozen=True)
class NdrResult:
    """Outcome of an RFC 2544 binary search.

    Multi-trial searches (``ndr_search(trials=n)`` with n > 1, the
    percentile-PDR mode of ``repro.measure.soundness``) additionally
    carry the per-trial loss records at every visited rate and a
    bootstrap confidence interval for the NDR itself; single-trial
    searches leave those fields at their defaults.
    """

    switch: str
    frame_size: int
    ndr_pps: float
    loss_threshold: float
    iterations: int
    trials: tuple[tuple[float, float], ...]  # (offered_pps, loss_fraction)
    #: Trials per visited rate (1 = classic single-trial search).
    trials_per_point: int = 1
    #: Which loss percentile the search criterion used (None for n=1).
    loss_percentile: float | None = None
    #: (offered_pps, per-trial losses) for every visited rate (n > 1).
    trial_records: tuple[tuple[float, tuple[float, ...]], ...] = ()
    #: Bootstrap CI for the NDR over trial resamples (n > 1).
    ci: tuple[float, float] | None = None

    @property
    def ndr_mpps(self) -> float:
        return self.ndr_pps / 1e6


def measure_loss(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    rate_pps: float,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    trial: int = 0,
    fluid: bool | None = None,
    **build_kwargs,
) -> float:
    """Loss fraction at one offered rate (received vs offered in-window).

    ``trial`` selects a soundness-trial replica; 0 never reaches the
    builder, so the single-trial path keeps the pre-soundness call
    signature exactly.  ``fluid`` opts the trial into the rate-based
    extrapolation tier (:mod:`repro.core.fluid`; ``None`` follows
    ``REPRO_FLUID``) -- hour-scale NDR probes spend their event budget
    on a calibration slice instead of the whole window.
    """
    if trial:
        build_kwargs = dict(build_kwargs, trial=trial)
    tb = build(switch_name, frame_size=frame_size, rate_pps=rate_pps, seed=seed, **build_kwargs)
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns, fluid=fluid)
    received = result.mpps * 1e6
    offered = rate_pps
    if offered <= 0:
        return 0.0
    return max(0.0, 1.0 - received / offered)


def _model_bracket(
    switch_name: str,
    scenario: str,
    frame_size: int,
    line: float,
    iterations: int,
    margin: float,
    bidirectional: bool,
) -> tuple[float, float, int]:
    """Descend the unseeded search tree toward the model's capacity estimate.

    Replays the *exact* float recurrence ``mid = (low + high) / 2`` the
    binary search performs, branching toward the closed-form prediction,
    so the returned bracket edges are bit-identical to the values the
    unseeded search would hold at that depth.  Stops descending when the
    next split point is within ``margin`` (relative) of the prediction --
    the closed form is not trusted to that precision -- or when fewer
    than two refinement steps would remain.
    """
    from repro.analysis.bottleneck import estimate

    predicted = estimate(
        switch_name, scenario, frame_size=frame_size, bidirectional=bidirectional
    ).predicted_pps
    low, high = 0.0, line
    depth = 0
    max_depth = iterations - 2
    while depth < max_depth:
        mid = (low + high) / 2
        if abs(predicted - mid) < margin * predicted:
            break
        if predicted >= mid:
            low = mid
        else:
            high = mid
        depth += 1
    return low, high, depth


def _bootstrap_ndr_ci(
    trial_records: list[tuple[float, tuple[float, ...]]],
    loss_threshold: float,
    tolerance_packets: float,
    measure_ns: float,
    loss_percentile: float,
    level: float,
    resamples: int,
) -> tuple[float, float]:
    """Bootstrap CI for a percentile-PDR NDR over trial resamples.

    Resamples trial *indices* (with replacement) and replays the carry
    decision at every visited rate: each resample's NDR is the highest
    visited rate whose resampled percentile loss stays under tolerance.
    Deterministic: the resampling RNG is seeded from a stable hash of
    the trial records themselves (see :mod:`repro.measure.soundness`).
    """
    from repro.measure.soundness import _values_rng, percentile

    n_trials = len(trial_records[0][1])
    key_values = [loss for _, losses in trial_records for loss in losses]
    rng = _values_rng("ndr-ci", key_values)
    indices = rng.integers(0, n_trials, size=(resamples, n_trials))
    ndrs = []
    for row in indices:
        best = 0.0
        for rate, losses in trial_records:
            loss = percentile([losses[i] for i in row], loss_percentile)
            allowance = tolerance_packets / (rate * measure_ns / 1e9)
            if loss <= loss_threshold + allowance and rate > best:
                best = rate
        ndrs.append(best)
    alpha = (1.0 - level) / 2.0
    return (
        percentile(ndrs, alpha * 100.0),
        percentile(ndrs, (1.0 - alpha) * 100.0),
    )


def ndr_search(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    loss_threshold: float = 0.0,
    tolerance_packets: float = 0.0,
    iterations: int = 10,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    seed_from_model: bool = False,
    scenario: str = "p2p",
    model_margin: float = 0.1,
    trials: int = 1,
    loss_percentile: float = 50.0,
    ci_level: float = 0.95,
    bootstrap_resamples: int = 200,
    fluid: bool | None = None,
    **build_kwargs,
) -> NdrResult:
    """RFC 2544 binary search for the highest rate with loss <= threshold.

    ``loss_threshold`` of 0.0 is the strict RFC 2544 criterion; small
    positive thresholds (e.g. 1e-3) give the "partial drop rate" variants
    used by CSIT.  ``tolerance_packets`` forgives that many packets of
    apparent loss per trial -- with the strict default of 0, measurement
    edge effects (batches straddling the window boundary) register as
    loss, which is precisely the non-determinism the paper's footnote 3
    blames for NDR's unreliability on software testbeds.

    With ``seed_from_model=True`` the top of the search tree is replaced
    by the closed-form capacity model: the predicted dyadic bracket is
    verified with (at most) two trials -- the lower edge must carry, the
    upper edge must drop -- and refinement continues inside it.  Loss is
    monotone in offered rate exactly when those two trials imply every
    skipped decision, so a verified bracket yields the bit-identical
    ``ndr_pps`` in fewer trials; a failed verification falls back to the
    full unseeded search (correct for jittery, non-monotone switches).

    ``trials > 1`` enables the percentile-PDR mode (PASTRAMI-style,
    ``repro.measure.soundness``): every visited rate is measured once
    per soundness trial and carries when the ``loss_percentile``-th
    percentile of its per-trial losses stays under tolerance, making the
    NDR a statement about the loss *distribution* instead of one lucky
    draw.  The model-seeded bracket works unchanged (each bracket probe
    just costs ``trials`` measurements), and the result carries per-rate
    trial records plus a bootstrap CI for the NDR.  ``trials=1`` is the
    classic search, bit-identical to the pre-soundness implementation.

    ``fluid`` opts every visited rate into the rate-based extrapolation
    tier (``None`` follows ``REPRO_FLUID``): long windows execute a
    calibration slice exactly and extrapolate the rest, making
    hour-scale NDR searches tractable at the declared tolerance.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 <= loss_threshold < 1.0:
        raise ValueError("loss threshold must be in [0, 1)")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not 0.0 <= loss_percentile <= 100.0:
        raise ValueError("loss_percentile must be in [0, 100]")
    line = line_rate_pps(frame_size)
    visited: list[tuple[float, float]] = []
    trial_records: list[tuple[float, tuple[float, ...]]] = []

    if trials == 1:

        def carries(rate: float) -> bool:
            loss = measure_loss(
                build, switch_name, frame_size, rate,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
                fluid=fluid, **build_kwargs,
            )
            allowance = tolerance_packets / (rate * measure_ns / 1e9)
            visited.append((rate, loss))
            return loss <= loss_threshold + allowance

    else:
        from repro.measure.soundness import percentile

        def carries(rate: float) -> bool:
            losses = tuple(
                measure_loss(
                    build, switch_name, frame_size, rate,
                    warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
                    trial=k, fluid=fluid, **build_kwargs,
                )
                for k in range(trials)
            )
            loss = percentile(losses, loss_percentile)
            allowance = tolerance_packets / (rate * measure_ns / 1e9)
            visited.append((rate, loss))
            trial_records.append((rate, losses))
            return loss <= loss_threshold + allowance

    def refine(low: float, high: float, best: float, steps: int) -> float:
        for _ in range(steps):
            mid = (low + high) / 2
            if mid <= 0:
                break
            if carries(mid):
                best = mid
                low = mid
            else:
                high = mid
        return best

    seeded = False
    best = 0.0
    if seed_from_model:
        try:
            s_low, s_high, depth = _model_bracket(
                switch_name, scenario, frame_size, line, iterations,
                model_margin, bool(build_kwargs.get("bidirectional", False)),
            )
        except Exception:
            depth = 0
        if depth > 0:
            verified = (s_low == 0.0 or carries(s_low)) and (
                s_high >= line or not carries(s_high)
            )
            if verified:
                seeded = True
                best = refine(s_low, s_high, s_low, iterations - depth)
    if not seeded:
        best = refine(0.0, line, 0.0, iterations)
    ci = None
    if trials > 1 and trial_records:
        ci = _bootstrap_ndr_ci(
            trial_records, loss_threshold, tolerance_packets, measure_ns,
            loss_percentile, ci_level, bootstrap_resamples,
        )
    return NdrResult(
        switch=switch_name,
        frame_size=frame_size,
        ndr_pps=best,
        loss_threshold=loss_threshold,
        iterations=iterations,
        trials=tuple(visited),
        trials_per_point=trials,
        loss_percentile=loss_percentile if trials > 1 else None,
        trial_records=tuple(trial_records),
        ci=ci,
    )
