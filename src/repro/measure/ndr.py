"""RFC 2544 Non-Drop-Rate search -- the methodology the paper rejects.

Footnote 3: "a binary search for the NDR is not suited for evaluating
software solutions as it may converge to unreliable points due to even a
single packet drop caused at the driver level."  This module implements
the classic binary search so that claim is testable: for jittery switches
the strict-NDR estimate sits far below the average forwarding rate R+
and varies wildly across seeds, while R+ (the paper's choice) is stable.

``seed_from_model=True`` skips the expensive top of the search tree: the
closed-form capacity model (:func:`repro.analysis.bottleneck.estimate`)
predicts which dyadic bracket the search would land in, two trials verify
the bracket edges, and the binary search resumes *inside* it -- visiting
exactly the midpoints the unseeded search would have visited from that
depth on, so (under the monotone-loss assumption the verification trials
check) the returned ``ndr_pps`` is bit-identical with fewer trials.  A
failed verification falls back to the full unseeded search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.units import line_rate_pps
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.scenarios.base import Testbed


@dataclass(frozen=True)
class NdrResult:
    """Outcome of an RFC 2544 binary search."""

    switch: str
    frame_size: int
    ndr_pps: float
    loss_threshold: float
    iterations: int
    trials: tuple[tuple[float, float], ...]  # (offered_pps, loss_fraction)

    @property
    def ndr_mpps(self) -> float:
        return self.ndr_pps / 1e6


def measure_loss(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int,
    rate_pps: float,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    **build_kwargs,
) -> float:
    """Loss fraction at one offered rate (received vs offered in-window)."""
    tb = build(switch_name, frame_size=frame_size, rate_pps=rate_pps, seed=seed, **build_kwargs)
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns)
    received = result.mpps * 1e6
    offered = rate_pps
    if offered <= 0:
        return 0.0
    return max(0.0, 1.0 - received / offered)


def _model_bracket(
    switch_name: str,
    scenario: str,
    frame_size: int,
    line: float,
    iterations: int,
    margin: float,
    bidirectional: bool,
) -> tuple[float, float, int]:
    """Descend the unseeded search tree toward the model's capacity estimate.

    Replays the *exact* float recurrence ``mid = (low + high) / 2`` the
    binary search performs, branching toward the closed-form prediction,
    so the returned bracket edges are bit-identical to the values the
    unseeded search would hold at that depth.  Stops descending when the
    next split point is within ``margin`` (relative) of the prediction --
    the closed form is not trusted to that precision -- or when fewer
    than two refinement steps would remain.
    """
    from repro.analysis.bottleneck import estimate

    predicted = estimate(
        switch_name, scenario, frame_size=frame_size, bidirectional=bidirectional
    ).predicted_pps
    low, high = 0.0, line
    depth = 0
    max_depth = iterations - 2
    while depth < max_depth:
        mid = (low + high) / 2
        if abs(predicted - mid) < margin * predicted:
            break
        if predicted >= mid:
            low = mid
        else:
            high = mid
        depth += 1
    return low, high, depth


def ndr_search(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    loss_threshold: float = 0.0,
    tolerance_packets: float = 0.0,
    iterations: int = 10,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    seed_from_model: bool = False,
    scenario: str = "p2p",
    model_margin: float = 0.1,
    **build_kwargs,
) -> NdrResult:
    """RFC 2544 binary search for the highest rate with loss <= threshold.

    ``loss_threshold`` of 0.0 is the strict RFC 2544 criterion; small
    positive thresholds (e.g. 1e-3) give the "partial drop rate" variants
    used by CSIT.  ``tolerance_packets`` forgives that many packets of
    apparent loss per trial -- with the strict default of 0, measurement
    edge effects (batches straddling the window boundary) register as
    loss, which is precisely the non-determinism the paper's footnote 3
    blames for NDR's unreliability on software testbeds.

    With ``seed_from_model=True`` the top of the search tree is replaced
    by the closed-form capacity model: the predicted dyadic bracket is
    verified with (at most) two trials -- the lower edge must carry, the
    upper edge must drop -- and refinement continues inside it.  Loss is
    monotone in offered rate exactly when those two trials imply every
    skipped decision, so a verified bracket yields the bit-identical
    ``ndr_pps`` in fewer trials; a failed verification falls back to the
    full unseeded search (correct for jittery, non-monotone switches).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 <= loss_threshold < 1.0:
        raise ValueError("loss threshold must be in [0, 1)")
    line = line_rate_pps(frame_size)
    trials: list[tuple[float, float]] = []

    def carries(rate: float) -> bool:
        loss = measure_loss(
            build, switch_name, frame_size, rate,
            warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed, **build_kwargs,
        )
        allowance = tolerance_packets / (rate * measure_ns / 1e9)
        trials.append((rate, loss))
        return loss <= loss_threshold + allowance

    def refine(low: float, high: float, best: float, steps: int) -> float:
        for _ in range(steps):
            mid = (low + high) / 2
            if mid <= 0:
                break
            if carries(mid):
                best = mid
                low = mid
            else:
                high = mid
        return best

    seeded = False
    best = 0.0
    if seed_from_model:
        try:
            s_low, s_high, depth = _model_bracket(
                switch_name, scenario, frame_size, line, iterations,
                model_margin, bool(build_kwargs.get("bidirectional", False)),
            )
        except Exception:
            depth = 0
        if depth > 0:
            verified = (s_low == 0.0 or carries(s_low)) and (
                s_high >= line or not carries(s_high)
            )
            if verified:
                seeded = True
                best = refine(s_low, s_high, s_low, iterations - depth)
    if not seeded:
        best = refine(0.0, line, 0.0, iterations)
    return NdrResult(
        switch=switch_name,
        frame_size=frame_size,
        ndr_pps=best,
        loss_threshold=loss_threshold,
        iterations=iterations,
        trials=tuple(trials),
    )
