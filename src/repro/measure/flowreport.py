"""Per-flow measurement report: throughput run + flow telemetry.

:func:`flow_report` is the flow-level sibling of
:func:`~repro.measure.resilience.measure_resilience` and the latency
sweep: it drives one saturating-input run with per-flow accounting
(:mod:`repro.obs.flowstats`) enabled and returns the aggregate result
together with the bounded heavy-hitter summary -- which flows carried
the traffic, which paid the drops, and how unfair the split was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, RunResult, drive
from repro.obs.flowstats import DEFAULT_TOP_K, flow_table
from repro.obs.session import ObsConfig, Observation, observe
from repro.scenarios.base import Testbed


@dataclass
class FlowReport:
    """One run's aggregate result plus its per-flow telemetry summary."""

    result: RunResult
    summary: dict
    observation: Observation = field(repr=False)

    @property
    def fairness(self) -> dict:
        return self.summary["fairness"]

    @property
    def totals(self) -> dict:
        return self.summary["totals"]

    def table(self, top: int = 10) -> str:
        """Aligned heavy-hitter table for terminal output."""
        return flow_table(self.summary, top=top)


def flow_report(
    build: Callable[..., Testbed],
    switch_name: str,
    frame_size: int = 64,
    top_k: int = DEFAULT_TOP_K,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    seed: int = 1,
    observe_config: ObsConfig | None = None,
    **build_kwargs,
) -> FlowReport:
    """Run one scenario with per-flow telemetry and report the flow story.

    ``observe_config`` overrides the whole observation config; when given
    it must have ``flowstats=True``.  Pass ``probe_interval_ns`` (for
    builders that accept it) to collect per-flow latency histograms for
    the probe-tagged flows.
    """
    config = observe_config
    if config is None:
        config = ObsConfig(flowstats=True, top_k=top_k)
    elif not config.flowstats:
        raise ValueError("flow_report needs ObsConfig.flowstats=True")
    tb = build(switch_name, frame_size=frame_size, seed=seed, **build_kwargs)
    observation = observe(tb, config)
    result = drive(tb, warmup_ns=warmup_ns, measure_ns=measure_ns)
    observation.finish(result)
    return FlowReport(
        result=result, summary=observation.flow_summary(), observation=observation
    )
