"""Measurement methodology: throughput, R+, latency sweeps, run driver."""

from repro.measure.latency import (
    DEFAULT_LATENCY_MEASURE_NS,
    LOAD_FRACTIONS,
    LatencyPoint,
    latency_sweep,
    measure_latency_at,
)
from repro.measure.runner import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARMUP_NS,
    RunResult,
    drive,
)
from repro.measure.flowreport import FlowReport, flow_report
from repro.measure.ndr import NdrResult, measure_loss, ndr_search
from repro.measure.resilience import (
    DEFAULT_BIN_NS,
    DEFAULT_EPSILON,
    ResilienceReport,
    measure_resilience,
)
from repro.measure.suites import NFV_SUITE, PAPER_SUITE, SMOKE_SUITE, SUITES, TestSuite
from repro.measure.throughput import estimate_r_plus, measure_throughput

__all__ = [
    "DEFAULT_BIN_NS",
    "DEFAULT_EPSILON",
    "DEFAULT_LATENCY_MEASURE_NS",
    "DEFAULT_MEASURE_NS",
    "DEFAULT_WARMUP_NS",
    "FlowReport",
    "LOAD_FRACTIONS",
    "LatencyPoint",
    "NFV_SUITE",
    "NdrResult",
    "PAPER_SUITE",
    "ResilienceReport",
    "RunResult",
    "SMOKE_SUITE",
    "SUITES",
    "TestSuite",
    "drive",
    "estimate_r_plus",
    "flow_report",
    "latency_sweep",
    "measure_latency_at",
    "measure_loss",
    "measure_resilience",
    "measure_throughput",
    "ndr_search",
]
