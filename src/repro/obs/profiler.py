"""Cycle-attribution profiling: where each forwarded packet's cycles go.

The switch's poll loop reports, per serviced batch, the *raw* receive /
processing / transmit cycle components plus whatever the stability
processes (jitter, stalls, thrash) inflated the total by.  The profiler
accumulates them per forwarding path and reduces to a per-stage
cycles/packet breakdown -- the observed counterpart of the closed-form
:func:`repro.analysis.bottleneck.stage_breakdown`, and the artifact the
``repro-bench trace``/``--profile`` surfaces print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical stage order (matches the closed-form breakdown).
STAGES = ("rx", "proc", "tx", "overhead")


@dataclass
class PathProfile:
    """Accumulated stage cycles for one forwarding path."""

    name: str
    packets: int = 0
    batches: int = 0
    rx_cycles: float = 0.0
    proc_cycles: float = 0.0
    tx_cycles: float = 0.0
    overhead_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.rx_cycles + self.proc_cycles + self.tx_cycles + self.overhead_cycles

    def stage_cycles(self) -> dict[str, float]:
        return {
            "rx": self.rx_cycles,
            "proc": self.proc_cycles,
            "tx": self.tx_cycles,
            "overhead": self.overhead_cycles,
        }

    def cycles_per_packet(self) -> dict[str, float]:
        if not self.packets:
            return {stage: 0.0 for stage in STAGES}
        return {stage: cycles / self.packets for stage, cycles in self.stage_cycles().items()}

    @property
    def mean_batch(self) -> float:
        return self.packets / self.batches if self.batches else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """The per-run attribution artifact: per-path and chain breakdowns."""

    switch: str
    scenario: str
    paths: tuple[PathProfile, ...]
    #: Cycles not attributable to a single path (pipeline app overhead,
    #: stability stalls), amortised into the chain's "overhead" stage.
    global_overhead_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def packets(self) -> int:
        return sum(path.packets for path in self.paths)

    def chain_cycles_per_packet(self) -> dict[str, float]:
        """Per-stage cycles a packet pays traversing the whole chain.

        A packet crosses every path of its direction once, so the chain
        cost is the *sum* of per-path cycles/packet -- directly
        comparable to the closed-form sum over hops.  Bidirectional runs
        sum both (symmetric) directions; halve, or inspect ``paths``
        individually, to recover the per-direction figure.
        """
        out = {stage: 0.0 for stage in STAGES}
        for path in self.paths:
            for stage, value in path.cycles_per_packet().items():
                out[stage] += value
        packets = self.packets
        if packets:
            out["overhead"] += sum(self.global_overhead_cycles.values()) / packets
        return out

    @property
    def total_cycles_per_packet(self) -> float:
        return sum(self.chain_cycles_per_packet().values())

    def to_dict(self) -> dict:
        """JSON-safe form, embedded in campaign metric snapshots."""
        return {
            "switch": self.switch,
            "scenario": self.scenario,
            "packets": self.packets,
            "chain_cycles_per_packet": self.chain_cycles_per_packet(),
            "global_overhead_cycles": dict(self.global_overhead_cycles),
            "paths": [
                {
                    "name": path.name,
                    "packets": path.packets,
                    "batches": path.batches,
                    "mean_batch": path.mean_batch,
                    "cycles_per_packet": path.cycles_per_packet(),
                }
                for path in self.paths
            ],
        }


class CycleProfiler:
    """Accumulates per-batch stage cycles reported by the switch probe."""

    def __init__(self, switch: str = "", scenario: str = "") -> None:
        self.switch = switch
        self.scenario = scenario
        self._paths: dict[str, PathProfile] = {}
        self._global_overhead: dict[str, float] = {}

    def record_batch(
        self,
        path_name: str,
        n_packets: int,
        rx_cycles: float,
        proc_cycles: float,
        tx_cycles: float,
        overhead_cycles: float = 0.0,
    ) -> None:
        profile = self._paths.get(path_name)
        if profile is None:
            profile = self._paths[path_name] = PathProfile(path_name)
        profile.packets += n_packets
        profile.batches += 1
        profile.rx_cycles += rx_cycles
        profile.proc_cycles += proc_cycles
        profile.tx_cycles += tx_cycles
        profile.overhead_cycles += overhead_cycles

    def record_global_overhead(self, kind: str, cycles: float) -> None:
        """Cycles with no owning path (pipeline app overhead, stalls)."""
        self._global_overhead[kind] = self._global_overhead.get(kind, 0.0) + cycles

    def report(self) -> ProfileReport:
        return ProfileReport(
            switch=self.switch,
            scenario=self.scenario,
            paths=tuple(self._paths.values()),
            global_overhead_cycles=dict(self._global_overhead),
        )
