"""Per-flow telemetry: FloWatcher-style flow-level accounting.

A :class:`FlowStats` instance rides the flyweight data path: every hook
folds a :class:`~repro.core.packet.PacketBlock`'s run-length flow summary
(``((flow, count), ...)``) into per-flow counters without materialising
per-packet state.  Aggregates (PASTRAMI's lesson: distributions, not
point estimates) come out as per-flow tx/rx/drop frames and bytes, cache
hit/miss attribution, latency histograms for probe-tagged flows, and
derived fairness metrics -- Jain's index, head/tail rate skew, per-flow
loss percentiles.

Bounded cardinality
-------------------
A million-flow run must not allocate a million records.  The tracker is a
*conservation-preserving* variant of the space-saving algorithm
(Metwally et al.): at most ``top_k`` flows hold live records; when an
unseen flow arrives at a full table the minimum-weight record is evicted
and its counters fold into a single ``other`` rollup record.  Unlike
textbook space-saving the adopted record does **not** inherit the
victim's count (that would break conservation); instead the victim's
weight is kept as the new record's attribution ``error`` bound.  The
invariant the property tests pin down::

    sum(tracked counters) + other == exact aggregate totals

holds for every counter at all times, so flow sums always reconcile
against the port/ring/switch aggregates, while memory stays O(top_k).

Disabled-by-default economics mirror PR 2's ``obs is None`` contract:
hot-path objects carry a ``flowstats`` attribute that stays ``None``
unless a session enables per-flow telemetry, and every hook is gated by
a single ``is not None`` test.  Hooks only *read* simulation state, so
an accounted run is bit-identical to an unaccounted one.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.metrics import Histogram, hdr_bounds

#: Default heavy-hitter table capacity (live per-flow records).
DEFAULT_TOP_K = 64

#: Flow-id labels used for the rollup / aggregate pseudo-records.
OTHER_FLOW = -1
TOTAL_FLOW = -2

#: Bounds for the per-flow RTT histograms (microseconds) -- same shape as
#: the aggregate ``latency.rtt_us`` series so digests are comparable.
_LATENCY_BOUNDS = hdr_bounds(max_value=16384, subdivisions=8)


class FlowRecord:
    """Counters for one flow (or the ``other`` / ``total`` rollups)."""

    __slots__ = (
        "flow",
        "tx_frames",
        "tx_bytes",
        "wire_frames",
        "wire_bytes",
        "rx_frames",
        "rx_bytes",
        "drop_frames",
        "drop_bytes",
        "fwd_frames",
        "cache_hits",
        "cache_misses",
        "weight",
        "error",
    )

    def __init__(self, flow: int) -> None:
        self.flow = flow
        self.tx_frames = 0
        self.tx_bytes = 0
        self.wire_frames = 0
        self.wire_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.drop_frames = 0
        self.drop_bytes = 0
        self.fwd_frames = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: space-saving rank weight: frames accounted through any hook.
        self.weight = 0
        #: attribution error bound inherited from the evicted record.
        self.error = 0

    def fold(self, victim: "FlowRecord") -> None:
        """Absorb another record's counters (eviction into ``other``)."""
        self.tx_frames += victim.tx_frames
        self.tx_bytes += victim.tx_bytes
        self.wire_frames += victim.wire_frames
        self.wire_bytes += victim.wire_bytes
        self.rx_frames += victim.rx_frames
        self.rx_bytes += victim.rx_bytes
        self.drop_frames += victim.drop_frames
        self.drop_bytes += victim.drop_bytes
        self.fwd_frames += victim.fwd_frames
        self.cache_hits += victim.cache_hits
        self.cache_misses += victim.cache_misses
        self.weight += victim.weight

    @property
    def loss_rate(self) -> float:
        """Fraction of this flow's offered frames that were dropped.

        Falls back to drop/(drop+rx) for records that only saw the
        receive side (e.g. a monitor hooked without its source).
        """
        if self.tx_frames:
            return min(1.0, self.drop_frames / self.tx_frames)
        seen = self.drop_frames + self.rx_frames
        return self.drop_frames / seen if seen else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    def to_dict(self) -> dict:
        return {
            "flow": self.flow,
            "tx_frames": self.tx_frames,
            "tx_bytes": self.tx_bytes,
            "wire_frames": self.wire_frames,
            "wire_bytes": self.wire_bytes,
            "rx_frames": self.rx_frames,
            "rx_bytes": self.rx_bytes,
            "drop_frames": self.drop_frames,
            "drop_bytes": self.drop_bytes,
            "fwd_frames": self.fwd_frames,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "loss_rate": self.loss_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "error": self.error,
        }


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n maximally unfair."""
    xs = [float(v) for v in values]
    n = len(xs)
    if not n:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (n * squares)


class FlowStats:
    """Bounded per-flow accounting over run-length flow summaries.

    All ``*_runs`` methods take ``((flow, count), ...)`` iterables -- the
    exact shape of ``PacketBlock.flows`` -- plus the block's uniform frame
    size; batch-level helpers unpack mixed Packet/PacketBlock lists so
    hook sites stay one call.
    """

    def __init__(self, top_k: int = DEFAULT_TOP_K) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.capacity = top_k
        self.records: dict[int, FlowRecord] = {}
        self.other = FlowRecord(OTHER_FLOW)
        self.totals = FlowRecord(TOTAL_FLOW)
        self.evictions = 0
        #: records ever created (approximate distinct flows: a flow that
        #: was evicted and returns is counted again).
        self.adoptions = 0
        self._latency: dict[int, Histogram] = {}
        self._latency_other: Histogram | None = None

    # -- record management -------------------------------------------------

    def _record(self, flow: int) -> FlowRecord:
        records = self.records
        record = records.get(flow)
        if record is not None:
            return record
        record = FlowRecord(flow)
        if len(records) >= self.capacity:
            # Space-saving eviction: the minimum-weight record folds into
            # the ``other`` rollup (conservation) and its weight becomes
            # the newcomer's attribution error bound.
            victim = min(records.values(), key=lambda r: (r.weight, r.flow))
            del records[victim.flow]
            self.other.fold(victim)
            self.evictions += 1
            record.error = victim.weight
        records[flow] = record
        self.adoptions += 1
        return record

    # -- accounting hooks --------------------------------------------------

    def tx_runs(self, runs: Iterable[tuple[int, int]], size: int) -> None:
        """Offered frames leaving a traffic source."""
        totals = self.totals
        for flow, count in runs:
            record = self._record(flow)
            record.tx_frames += count
            record.tx_bytes += count * size
            record.weight += count
            totals.tx_frames += count
            totals.tx_bytes += count * size

    def wire_runs(self, runs: Iterable[tuple[int, int]], size: int) -> None:
        """Frames actually serialised onto a wire (post-drop)."""
        totals = self.totals
        for flow, count in runs:
            record = self._record(flow)
            record.wire_frames += count
            record.wire_bytes += count * size
            record.weight += count
            totals.wire_frames += count
            totals.wire_bytes += count * size

    def rx_runs(self, runs: Iterable[tuple[int, int]], size: int) -> None:
        """Frames delivered to a terminal monitor."""
        totals = self.totals
        for flow, count in runs:
            record = self._record(flow)
            record.rx_frames += count
            record.rx_bytes += count * size
            record.weight += count
            totals.rx_frames += count
            totals.rx_bytes += count * size

    def drop_runs(self, runs: Iterable[tuple[int, int]], size: int) -> None:
        """Frames lost at any drop site (ring overflow, tx backlog...)."""
        totals = self.totals
        for flow, count in runs:
            record = self._record(flow)
            record.drop_frames += count
            record.drop_bytes += count * size
            record.weight += count
            totals.drop_frames += count
            totals.drop_bytes += count * size

    def fwd_runs(self, runs: Iterable[tuple[int, int]]) -> None:
        """Frames completing a switch forwarding path."""
        totals = self.totals
        for flow, count in runs:
            record = self._record(flow)
            record.fwd_frames += count
            record.weight += count
            totals.fwd_frames += count

    def cache(self, flow: int, hits: int, misses: int) -> None:
        """Flow-cache attribution (EMC / MAC table / P4 flow table)."""
        record = self._record(flow)
        record.cache_hits += hits
        record.cache_misses += misses
        totals = self.totals
        totals.cache_hits += hits
        totals.cache_misses += misses

    def latency(self, flow: int, rtt_ns: float) -> None:
        """Probe RTT sample for one flow (stored in microseconds)."""
        hist = self._latency.get(flow)
        if hist is None:
            if len(self._latency) >= self.capacity:
                if self._latency_other is None:
                    self._latency_other = Histogram(
                        "flow.latency.other", bounds=_LATENCY_BOUNDS
                    )
                hist = self._latency_other
            else:
                hist = Histogram(f"flow.latency.{flow}", bounds=_LATENCY_BOUNDS)
                self._latency[flow] = hist
        hist.observe(rtt_ns / 1e3)

    # -- batch helpers (one call per hook site) ----------------------------

    def tx_batch(self, batch) -> None:
        for item in batch:
            runs = item.flows
            if runs is None:
                runs = ((item.flow_id, item.count),)
            self.tx_runs(runs, item.size)

    def rx_batch(self, batch) -> None:
        for item in batch:
            runs = item.flows
            if runs is None:
                runs = ((item.flow_id, item.count),)
            self.rx_runs(runs, item.size)

    def fwd_batch(self, batch) -> None:
        for item in batch:
            runs = item.flows
            if runs is None:
                runs = ((item.flow_id, item.count),)
            self.fwd_runs(runs)

    def drop_item(self, item) -> None:
        runs = item.flows
        if runs is None:
            runs = ((item.flow_id, item.count),)
        self.drop_runs(runs, item.size)

    def wire_split_runs(
        self,
        runs: Iterable[tuple[int, int]],
        kept: list[int],
        size: int,
    ) -> None:
        """Split a block's runs into wire-sent and dropped frames.

        ``kept`` holds the surviving frame offsets (ascending), exactly
        the list :meth:`NicPort.send_batch` builds while puncturing a
        multi-flow block; frames not in ``kept`` were dropped.
        """
        sent: list[tuple[int, int]] = []
        lost: list[tuple[int, int]] = []
        cursor = 0
        end = 0
        total_kept = len(kept)
        for flow, count in runs:
            end += count
            kept_here = 0
            while cursor < total_kept and kept[cursor] < end:
                kept_here += 1
                cursor += 1
            if kept_here:
                sent.append((flow, kept_here))
            if count - kept_here:
                lost.append((flow, count - kept_here))
        if sent:
            self.wire_runs(sent, size)
        if lost:
            self.drop_runs(lost, size)

    # -- reporting ---------------------------------------------------------

    def top_flows(self, n: int | None = None) -> list[FlowRecord]:
        """Tracked records ranked by weight (heaviest first, stable)."""
        ranked = sorted(self.records.values(), key=lambda r: (-r.weight, r.flow))
        return ranked if n is None else ranked[:n]

    def _fairness(self, tracked: list[FlowRecord]) -> dict:
        # Rate fairness over delivered frames; offered frames are the
        # fallback for hook subsets that never see the receive side.
        values = [r.rx_frames for r in tracked]
        if not any(values):
            values = [r.tx_frames for r in tracked]
        nonzero = [v for v in values if v]
        head = max(nonzero) if nonzero else 0
        tail = min(nonzero) if nonzero else 0
        losses = sorted(r.loss_rate for r in tracked)

        def pct(q: float) -> float:
            if not losses:
                return 0.0
            rank = max(0, math.ceil(len(losses) * q / 100) - 1)
            return losses[rank]

        return {
            "jain": jain_index(values) if values else 1.0,
            "head_rate": head,
            "tail_rate": tail,
            "skew": (head / tail) if tail else math.inf if head else 1.0,
            "loss_p50": pct(50),
            "loss_p90": pct(90),
            "loss_p99": pct(99),
        }

    def latency_digests(self) -> dict:
        """Per-probe-flow latency digests (microseconds), JSON-safe."""
        out = {
            str(flow): hist.summary()
            for flow, hist in sorted(self._latency.items())
        }
        if self._latency_other is not None:
            out["other"] = self._latency_other.summary()
        return out

    def summary(self, top: int | None = None) -> dict:
        """Compact JSON-safe digest for campaign records and exports."""
        tracked = self.top_flows(top)
        fairness = self._fairness(tracked)
        if fairness["skew"] == math.inf:
            fairness["skew"] = None  # JSON-safe
        return {
            "top_k": self.capacity,
            "tracked": len(self.records),
            "evictions": self.evictions,
            "adoptions": self.adoptions,
            "totals": self.totals.to_dict(),
            "other": self.other.to_dict(),
            "flows": [record.to_dict() for record in tracked],
            "fairness": fairness,
            "latency_us": self.latency_digests(),
        }


def flow_table(summary: dict, top: int = 10) -> str:
    """Render a flowstats summary as an aligned heavy-hitter table."""
    header = (
        f"{'flow':>10}  {'tx':>10}  {'rx':>10}  {'drop':>8}  "
        f"{'loss%':>7}  {'hit%':>6}  {'p50us':>8}  {'p99us':>8}"
    )
    lines = [header, "-" * len(header)]
    latency = summary.get("latency_us", {})

    def fmt(record: dict, label: str | None = None) -> str:
        digest = latency.get(str(record["flow"]), {})
        p50, p99 = digest.get("p50"), digest.get("p99")
        p50_s = f"{p50:>8.1f}" if p50 is not None else f"{'-':>8}"
        p99_s = f"{p99:>8.1f}" if p99 is not None else f"{'-':>8}"
        return (
            f"{label if label is not None else record['flow']:>10}  "
            f"{record['tx_frames']:>10}  {record['rx_frames']:>10}  "
            f"{record['drop_frames']:>8}  {record['loss_rate'] * 100:>7.3f}  "
            f"{record['cache_hit_rate'] * 100:>6.2f}  {p50_s}  {p99_s}"
        )

    for record in summary["flows"][:top]:
        lines.append(fmt(record))
    other = summary["other"]
    if other["tx_frames"] or other["rx_frames"] or other["drop_frames"]:
        lines.append(fmt(other, label="other"))
    lines.append(fmt(summary["totals"], label="total"))
    fairness = summary["fairness"]
    skew = fairness["skew"]
    lines.append(
        f"tracked {summary['tracked']}/{summary['top_k']} flows "
        f"({summary['evictions']} evictions)  "
        f"jain={fairness['jain']:.4f}  "
        f"skew={'inf' if skew is None else f'{skew:.2f}'}  "
        f"loss p50/p90/p99={fairness['loss_p50'] * 100:.3f}/"
        f"{fairness['loss_p90'] * 100:.3f}/{fairness['loss_p99'] * 100:.3f}%"
    )
    return "\n".join(lines)


def wire_flowstats(tb, stats: FlowStats) -> None:
    """Attach a :class:`FlowStats` to every hook point of a testbed.

    Touches the switch, its attachments' NIC ports (both ends of each
    wire) and rings, vif rings, pipeline link rings, and any traffic
    source/monitor the scenario stashed in ``tb.extras``.  Objects opt in
    by carrying a ``flowstats`` attribute; everything else is skipped.
    """
    seen: set[int] = set()

    def hook(obj) -> None:
        if obj is None or id(obj) in seen:
            return
        seen.add(id(obj))
        if hasattr(obj, "flowstats"):
            obj.flowstats = stats

    hook(tb.switch)
    for attachment in tb.switch.attachments:
        port = getattr(attachment, "port", None)
        if port is not None:
            hook(port)
            hook(port.rx_ring)
            if port.peer is not None:
                hook(port.peer)
                hook(port.peer.rx_ring)
        vif = getattr(attachment, "vif", None)
        if vif is not None:
            hook(vif.to_guest)
            hook(vif.to_host)
    for path in tb.switch.paths:
        hook(path.link)
    for value in tb.extras.values():
        items = value if isinstance(value, (list, tuple)) else (value,)
        for obj in items:
            hook(obj)
    tb.extras["flowstats"] = stats
