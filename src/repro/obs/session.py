"""Observation sessions: wire tracing/metrics/profiling onto a Testbed.

:func:`observe` is the single entry point: given a wired
:class:`~repro.scenarios.base.Testbed` and an :class:`ObsConfig`, it
installs the per-component probes (engine observer, core probes, the
switch probe) and registers the uniform metric series over every layer.
Nothing in the simulation changes behaviour -- probes only *read* -- so
an observed run produces bit-identical measurements to an unobserved one.

Disabled-by-default economics: components carry an ``obs`` attribute
that is ``None`` until a session attaches, and every hot-path hook is a
single ``is not None`` test; the engine keeps its un-instrumented
dispatch loop whenever no observer is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.core.packet import batch_count
from repro.obs.exporters import (
    flow_prometheus_text,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_flow_prometheus,
    write_prometheus,
)
from repro.obs.flowstats import DEFAULT_TOP_K, FlowStats, wire_flowstats
from repro.obs.metrics import MetricsRegistry, hdr_bounds
from repro.obs.profiler import CycleProfiler, ProfileReport
from repro.obs.tracing import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_SAMPLE_RATE,
    SimObserver,
    Tracer,
)


@dataclass(frozen=True)
class ObsConfig:
    """What to collect during a run.

    ``sample_rate`` applies to per-packet lifecycle spans: one serviced
    batch in N is traced.  ``metrics`` costs (almost) nothing during the
    run -- series are read lazily at snapshot time plus one histogram
    update per serviced batch; ``trace`` buffers events and is the
    expensive mode.
    """

    trace: bool = False
    metrics: bool = True
    profile: bool = True
    sample_rate: int = DEFAULT_SAMPLE_RATE
    max_trace_events: int = DEFAULT_MAX_EVENTS
    #: Per-flow telemetry (``repro.obs.flowstats``): off by default so
    #: pre-existing observed snapshots stay bit-identical.
    flowstats: bool = False
    #: Heavy-hitter table capacity when ``flowstats`` is on.
    top_k: int = DEFAULT_TOP_K

    @classmethod
    def from_items(cls, items: Iterable[tuple[str, Any]]) -> "ObsConfig":
        """Revive from a RunSpec's canonical ``obs`` tuple."""
        known = {f for f in cls.__dataclass_fields__}
        payload = {key: value for key, value in items if key in known}
        return cls(**payload)

    def to_items(self) -> tuple[tuple[str, Any], ...]:
        """Canonical hashable form for embedding in a RunSpec."""
        return tuple(
            sorted(
                (name, getattr(self, name))
                for name in self.__dataclass_fields__
            )
        )

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile or self.flowstats


class CoreProbe:
    """Per-core trace hook: busy-poll spans, sleep/wake instants."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def on_poll(self, core_name: str, ts_ns: float, dur_ns: float, cycles: float) -> None:
        self.tracer.span(
            "poll", ts_ns, dur_ns, tid=f"core/{core_name}", cat="cpu",
            args={"cycles": cycles},
        )

    def on_sleep(self, core_name: str, ts_ns: float) -> None:
        self.tracer.instant("sleep", ts_ns, tid=f"core/{core_name}", cat="cpu")

    def on_wake(self, core_name: str, ts_ns: float) -> None:
        self.tracer.instant("wake", ts_ns, tid=f"core/{core_name}", cat="cpu")


class SwitchProbe:
    """Per-batch hook on the switch poll loop.

    Receives the raw stage cycle components of every serviced batch and
    fans them into the profiler (attribution), the metrics histograms
    (batch constitution) and, for sampled batches, per-packet lifecycle
    spans on the tracer.
    """

    __slots__ = ("tracer", "profiler", "batch_hist", "service_hist", "freq_hz", "flowstats")

    def __init__(
        self,
        tracer: Tracer | None,
        profiler: CycleProfiler | None,
        batch_hist=None,
        service_hist=None,
        freq_hz: float = 2.6e9,
        flowstats=None,
    ) -> None:
        self.tracer = tracer
        self.profiler = profiler
        self.batch_hist = batch_hist
        self.service_hist = service_hist
        self.freq_hz = freq_hz
        self.flowstats = flowstats

    def on_batch(
        self,
        path,
        ts_ns: float,
        rx_cycles: float,
        proc_cycles: float,
        tx_cycles: float,
        overhead_cycles: float,
        n_packets: int,
        batch,
        service_ns: float,
    ) -> None:
        """Record one serviced batch.

        ``n_packets`` is the number of packets *completing* the path in
        this call -- pipeline RX stages pass 0 (their packets complete at
        the TX stage) so attribution never double-counts, while ``batch``
        is always the actual packet list serviced by the stage.
        """
        path_name = f"{path.input.name}->{path.output.name}"
        if self.profiler is not None:
            self.profiler.record_batch(
                path_name, n_packets, rx_cycles, proc_cycles, tx_cycles, overhead_cycles
            )
        if self.batch_hist is not None and batch:
            self.batch_hist.observe(float(batch_count(batch)))
        if self.service_hist is not None and n_packets:
            total = rx_cycles + proc_cycles + tx_cycles + overhead_cycles
            self.service_hist.observe(total / n_packets)
        tracer = self.tracer
        if tracer is None:
            return
        tracer.span(
            "batch", ts_ns, max(service_ns, 0.0), tid=f"path/{path_name}", cat="switch",
            args={
                "packets": n_packets,
                "rx_cycles": rx_cycles,
                "proc_cycles": proc_cycles,
                "tx_cycles": tx_cycles,
                "overhead_cycles": overhead_cycles,
            },
        )
        # Per-packet lifecycle: the head packet of sampled batches gets a
        # wait span (creation -> service start) and a service span.
        if batch and tracer.sampled(ts_ns):
            head = batch[0]
            tid = f"pkt/{path_name}"
            wait_ns = ts_ns - head.t_created
            if wait_ns > 0:
                tracer.span(
                    "pkt.wait", head.t_created, wait_ns, tid=tid, cat="packet",
                    args={"flow": head.flow_id, "hops": head.hops},
                )
            tracer.span(
                "pkt.service", ts_ns, max(service_ns, 0.0), tid=tid, cat="packet",
                args={"flow": head.flow_id, "size": head.size, "batch": batch_count(batch)},
            )
            # Flow lanes: one span per tracked flow in the sampled batch's
            # head item.  Restricting lanes to flows the heavy-hitter
            # table currently tracks keeps trace cardinality O(top_k).
            flowstats = self.flowstats
            if flowstats is not None:
                runs = head.flows
                if runs is None:
                    runs = ((head.flow_id, head.count),)
                records = flowstats.records
                for flow, frames in runs:
                    if flow in records:
                        tracer.span(
                            "flow.batch", ts_ns, max(service_ns, 0.0),
                            tid=f"flow/{flow}", cat="flow",
                            args={"frames": frames},
                        )

    def on_global_overhead(self, kind: str, cycles: float) -> None:
        if self.profiler is not None:
            self.profiler.record_global_overhead(kind, cycles)


def _sanitize(name: str) -> str:
    return name.replace(" ", "_")


class Observation:
    """One run's observability state: tracer + registry + profiler."""

    def __init__(self, tb, config: ObsConfig) -> None:
        self.tb = tb
        self.config = config
        self.tracer: Tracer | None = (
            Tracer(sample_rate=config.sample_rate, max_events=config.max_trace_events)
            if config.trace
            else None
        )
        self.registry: MetricsRegistry | None = MetricsRegistry() if config.metrics else None
        self.profiler: CycleProfiler | None = (
            CycleProfiler(switch=tb.switch.params.name, scenario=tb.scenario)
            if config.profile
            else None
        )
        self.flowstats: FlowStats | None = (
            FlowStats(top_k=config.top_k) if config.flowstats else None
        )
        self.sim_observer: SimObserver | None = None
        self._latency_hist = None
        self._wire()

    # -- wiring ------------------------------------------------------------

    def _wire(self) -> None:
        tb, registry, tracer = self.tb, self.registry, self.tracer
        if tracer is not None:
            self.sim_observer = SimObserver(tb.sim, tracer)
            tb.sim.set_observer(self.sim_observer)
            probe = CoreProbe(tracer)
            for node in tb.machine.nodes:
                for core in node.cores:
                    core.obs = probe

        batch_hist = service_hist = None
        if registry is not None:
            self._register_metrics()
            batch_hist = registry.histogram(
                f"switch.{tb.switch.params.name}.batch_size",
                bounds=hdr_bounds(max_value=512, subdivisions=4),
            )
            service_hist = registry.histogram(
                f"switch.{tb.switch.params.name}.cycles_per_packet",
                bounds=hdr_bounds(max_value=65536, subdivisions=8),
            )
        if self.flowstats is not None:
            wire_flowstats(tb, self.flowstats)
        if tracer is not None or self.profiler is not None or registry is not None:
            tb.switch.obs = SwitchProbe(
                tracer,
                self.profiler,
                batch_hist=batch_hist,
                service_hist=service_hist,
                freq_hz=tb.machine.freq_hz,
                flowstats=self.flowstats,
            )

    def _register_metrics(self) -> None:
        """The uniform series: one gauge per counter across every layer."""
        tb, registry = self.tb, self.registry
        assert registry is not None
        sim = tb.sim
        registry.gauge("sim.events_executed", lambda: float(sim.events_executed))
        registry.gauge("sim.pending", lambda: float(sim.pending()))
        registry.gauge("sim.now_ns", lambda: sim.now)

        for node in tb.machine.nodes:
            for core in node.cores:
                name = _sanitize(core.name)
                registry.gauge(f"cpu.core.{name}.busy_ns", lambda c=core: c.busy_ns)
            bus = node.bus
            registry.gauge(
                f"cpu.numa{node.index}.bus.bytes_copied",
                lambda b=bus: float(b.bytes_copied),
            )

        switch = tb.switch
        sw = _sanitize(switch.params.name)
        registry.gauge(
            f"switch.{sw}.forwarded", lambda s=switch: float(s.total_forwarded)
        )
        for index, path in enumerate(switch.paths):
            label = f"switch.{sw}.path.{index}"
            registry.gauge(f"{label}.forwarded", lambda p=path: float(p.forwarded))
            ring = path.input.input_ring
            registry.gauge(f"{label}.input.depth", ring.peek_len)
            registry.gauge(f"{label}.input.dropped", lambda r=ring: float(r.dropped))
            registry.gauge(f"{label}.input.enqueued", lambda r=ring: float(r.enqueued))

        if tb.extras.get("flow_population") is not None:
            # Flow-cache gauges exist only under a non-trivial population:
            # single-flow observed snapshots stay bit-identical to the
            # pre-flow-axis golden capture.
            for key in switch.cache_stats():
                registry.gauge(
                    f"switch.{sw}.cache.{key}",
                    lambda s=switch, k=key: float(s.cache_stats()[k]),
                )

        seen_ports: set[int] = set()
        for attachment in switch.attachments:
            port = getattr(attachment, "port", None)
            if port is not None and id(port) not in seen_ports:
                seen_ports.add(id(port))
                self._register_port(port)
            vif = getattr(attachment, "vif", None)
            if vif is not None:
                self._register_vif(vif)

    def _register_port(self, port) -> None:
        registry = self.registry
        assert registry is not None
        base = f"nic.{_sanitize(port.name)}"
        registry.gauge(f"{base}.tx_packets", lambda p=port: float(p.tx_packets))
        registry.gauge(f"{base}.rx_packets", lambda p=port: float(p.rx_packets))
        registry.gauge(f"{base}.tx_dropped", lambda p=port: float(p.tx_dropped))
        registry.gauge(f"{base}.driver_drops", lambda p=port: float(p.driver_drops))
        ring = port.rx_ring
        registry.gauge(f"{base}.rx_ring.depth", ring.peek_len)
        registry.gauge(f"{base}.rx_ring.dropped", lambda r=ring: float(r.dropped))
        registry.gauge(f"{base}.rx_ring.enqueued", lambda r=ring: float(r.enqueued))

    def _register_vif(self, vif) -> None:
        registry = self.registry
        assert registry is not None
        base = f"vif.{_sanitize(vif.name)}"
        for direction in ("to_guest", "to_host"):
            ring = getattr(vif, direction)
            registry.gauge(f"{base}.{direction}.depth", ring.peek_len)
            registry.gauge(
                f"{base}.{direction}.dropped", lambda r=ring: float(r.dropped)
            )
            registry.gauge(
                f"{base}.{direction}.enqueued", lambda r=ring: float(r.enqueued)
            )

    # -- end of run --------------------------------------------------------

    def finish(self, result=None) -> None:
        """Fold end-of-run data (latency samples) into the registry."""
        registry = self.registry
        if registry is None:
            return
        if self._latency_hist is None and any(
            len(meter.latency) for meter in self.tb.latency_meters
        ):
            hist = registry.histogram(
                "latency.rtt_us", bounds=hdr_bounds(max_value=16384, subdivisions=8)
            )
            for meter in self.tb.latency_meters:
                for sample_ns in meter.latency.samples_ns:
                    hist.observe(sample_ns / 1e3)
            self._latency_hist = hist
        if result is not None and "run.gbps" not in registry.names():
            registry.gauge("run.gbps").set(result.gbps)
            registry.gauge("run.mpps").set(result.mpps)
            registry.gauge("run.duration_ns").set(result.duration_ns)
        if self.flowstats is not None and "flow.tracked" not in registry.names():
            # Scalar ``flow.*`` series fold into the standard registry;
            # the labelled per-flow tables stay in the dedicated exporter
            # so cardinality in the main series is fixed.
            summary = self.flowstats.summary()
            totals = summary["totals"]
            fairness = summary["fairness"]
            registry.gauge("flow.tracked").set(summary["tracked"])
            registry.gauge("flow.evictions").set(summary["evictions"])
            registry.gauge("flow.total.tx_frames").set(totals["tx_frames"])
            registry.gauge("flow.total.rx_frames").set(totals["rx_frames"])
            registry.gauge("flow.total.drop_frames").set(totals["drop_frames"])
            registry.gauge("flow.total.cache_hit_rate").set(totals["cache_hit_rate"])
            registry.gauge("flow.fairness.jain").set(fairness["jain"])
            if fairness["skew"] is not None:
                registry.gauge("flow.fairness.skew").set(fairness["skew"])
            registry.gauge("flow.loss.p50").set(fairness["loss_p50"])
            registry.gauge("flow.loss.p90").set(fairness["loss_p90"])
            registry.gauge("flow.loss.p99").set(fairness["loss_p99"])

    # -- artifacts ---------------------------------------------------------

    def profile(self) -> ProfileReport | None:
        return self.profiler.report() if self.profiler is not None else None

    def metrics_snapshot(self) -> dict:
        """Compact JSON-safe snapshot: metrics + profile + trace digest.

        This is what campaign workers return across the process boundary
        and what the store persists alongside results.  Deterministic for
        a deterministic run.
        """
        snapshot: dict = {}
        if self.registry is not None:
            snapshot["metrics"] = self.registry.snapshot()
        if self.profiler is not None:
            snapshot["profile"] = self.profiler.report().to_dict()
        if self.tracer is not None:
            snapshot["trace"] = {
                "events": len(self.tracer),
                "dropped": self.tracer.dropped_events,
            }
        if self.flowstats is not None:
            snapshot["flowstats"] = self.flowstats.summary()
        return snapshot

    def trace_metadata(self) -> dict:
        tb = self.tb
        return {
            "switch": tb.switch.params.name,
            "scenario": tb.scenario,
            "frame_size": tb.frame_size,
            "sample_rate": self.config.sample_rate,
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        if self.tracer is None:
            raise ValueError("run was not traced (ObsConfig.trace=False)")
        return write_chrome_trace(path, self.tracer.events, self.trace_metadata())

    def write_events_jsonl(self, path: str | Path) -> Path:
        if self.tracer is None:
            raise ValueError("run was not traced (ObsConfig.trace=False)")
        return write_events_jsonl(path, self.tracer.events)

    def prometheus_text(self, labels: dict[str, str] | None = None) -> str:
        if self.registry is None:
            raise ValueError("run collected no metrics (ObsConfig.metrics=False)")
        return prometheus_text(self.registry, labels)

    def write_prometheus(self, path: str | Path, labels: dict[str, str] | None = None) -> Path:
        if self.registry is None:
            raise ValueError("run collected no metrics (ObsConfig.metrics=False)")
        return write_prometheus(path, self.registry, labels)

    def flow_summary(self) -> dict:
        if self.flowstats is None:
            raise ValueError("run collected no flow stats (ObsConfig.flowstats=False)")
        return self.flowstats.summary()

    def flow_prometheus_text(self, labels: dict[str, str] | None = None) -> str:
        if self.flowstats is None:
            raise ValueError("run collected no flow stats (ObsConfig.flowstats=False)")
        return flow_prometheus_text(self.flowstats.summary(), labels)

    def write_flow_prometheus(
        self, path: str | Path, labels: dict[str, str] | None = None
    ) -> Path:
        if self.flowstats is None:
            raise ValueError("run collected no flow stats (ObsConfig.flowstats=False)")
        return write_flow_prometheus(path, self.flowstats.summary(), labels)


def observe(tb, config: ObsConfig | None = None, **overrides) -> Observation:
    """Attach an observability session to a wired testbed.

    ``observe(tb)`` collects metrics + profile; ``observe(tb, trace=True)``
    adds the structured event trace.  Call before driving the testbed.
    """
    if config is None:
        config = ObsConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    return Observation(tb, config)
