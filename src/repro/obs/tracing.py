"""Structured event tracing in Chrome trace-event form.

A :class:`Tracer` buffers *span* ("X", complete), *instant* ("i") and
*counter* ("C") events keyed to the simulated clock.  Components never
talk to the tracer directly on their hot paths; they hold an optional
probe object (``core.obs``, ``switch.obs``) that is ``None`` unless a run
is being observed, so the disabled cost is a single attribute test.

Timestamps are simulated nanoseconds; export converts to the microsecond
unit Chrome/Perfetto expect.  Events stay plain dicts throughout -- the
exporter only wraps them in the document envelope.
"""

from __future__ import annotations

from typing import Any

#: Hard ceiling on buffered events: a runaway trace degrades to dropping
#: (counted) rather than eating the host's memory.
DEFAULT_MAX_EVENTS = 500_000

#: Default per-packet lifecycle sampling: one traced batch in N.
DEFAULT_SAMPLE_RATE = 64


class Tracer:
    """Buffers structured trace events for one observed run."""

    def __init__(
        self,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.sample_rate = sample_rate
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped_events = 0

    # -- emission ----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def span(
        self,
        name: str,
        ts_ns: float,
        dur_ns: float,
        tid: str = "sim",
        cat: str = "sim",
        args: dict[str, Any] | None = None,
    ) -> None:
        """A complete event: work occupying [ts, ts+dur] on track ``tid``."""
        event = {"name": name, "ph": "X", "cat": cat, "ts": ts_ns, "dur": dur_ns, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    def instant(
        self,
        name: str,
        ts_ns: float,
        tid: str = "sim",
        cat: str = "sim",
        args: dict[str, Any] | None = None,
    ) -> None:
        event = {"name": name, "ph": "i", "cat": cat, "ts": ts_ns, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, ts_ns: float, values: dict[str, float], tid: str = "sim") -> None:
        self._emit({"name": name, "ph": "C", "cat": "sim", "ts": ts_ns, "tid": tid, "args": values})

    # -- sampling ----------------------------------------------------------

    def sampled(self, key: float) -> bool:
        """Deterministic 1-in-N sampling decision from a simulation key.

        The key must be derived from simulated state (e.g. the batch's
        service timestamp), *never* from process-local counters, so the
        same run traces the same packets under serial and parallel
        campaign execution alike.
        """
        if self.sample_rate == 1:
            return True
        return int(key) % self.sample_rate == 0

    def __len__(self) -> int:
        return len(self.events)


class SimObserver:
    """Engine dispatch hook: per-callback event counts + queue-depth track.

    Installed via :meth:`repro.core.engine.Simulator.set_observer`; the
    engine only pays for it when one is attached (the un-observed loop
    does not consult it at all).
    """

    #: Queue-depth counter sampling: one counter event per N dispatches.
    COUNTER_EVERY = 256

    def __init__(self, sim, tracer: Tracer | None = None) -> None:
        self.sim = sim
        self.tracer = tracer
        self.dispatch_counts: dict[str, int] = {}
        self._since_counter = 0

    def on_event(self, ts_ns: float, callback) -> None:
        func = getattr(callback, "__func__", callback)
        name = getattr(func, "__qualname__", repr(func))
        self.dispatch_counts[name] = self.dispatch_counts.get(name, 0) + 1
        if self.tracer is None:
            return
        self._since_counter += 1
        if self._since_counter >= self.COUNTER_EVERY:
            self._since_counter = 0
            self.tracer.counter(
                "sim.queue", ts_ns, {"pending": float(self.sim.pending())}, tid="engine"
            )

    def top_dispatchers(self, limit: int = 10) -> list[tuple[str, int]]:
        ranked = sorted(self.dispatch_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]
