"""repro.obs -- observability for the simulated testbed.

Three layers, composable per run:

* **tracing** (:mod:`repro.obs.tracing`): structured span/instant/counter
  events on the simulated clock, exportable as Chrome trace-event JSON
  (Perfetto-loadable) or JSONL;
* **metrics** (:mod:`repro.obs.metrics`): a registry of uniformly named
  counters/gauges/histograms spanning the ``sim``/``cpu``/``nic``/
  ``vif``/``switch`` layers;
* **profiling** (:mod:`repro.obs.profiler`): per-(path, stage)
  cycles/packet attribution, diffable against the closed-form
  :func:`repro.analysis.bottleneck.stage_breakdown`.

Entry point::

    from repro.obs import observe

    tb = p2p.build("vpp")
    obs = observe(tb, trace=True)
    result = drive(tb)
    obs.finish(result)
    obs.write_chrome_trace("trace.json")
    print(obs.profile().chain_cycles_per_packet())
"""

from repro.obs.flowstats import (
    DEFAULT_TOP_K,
    FlowRecord,
    FlowStats,
    flow_table,
    jain_index,
    wire_flowstats,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, hdr_bounds
from repro.obs.profiler import CycleProfiler, PathProfile, ProfileReport, STAGES
from repro.obs.session import ObsConfig, Observation, observe
from repro.obs.tracing import SimObserver, Tracer

__all__ = [
    "Counter",
    "CycleProfiler",
    "DEFAULT_TOP_K",
    "FlowRecord",
    "FlowStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "Observation",
    "PathProfile",
    "ProfileReport",
    "STAGES",
    "SimObserver",
    "Tracer",
    "flow_table",
    "hdr_bounds",
    "jain_index",
    "observe",
    "wire_flowstats",
]
