"""Trace and metric exporters: Chrome trace JSON, Prometheus text, JSONL.

Chrome trace documents load directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing``; Prometheus text is scrape-format for dashboards;
JSONL is the greppable raw stream.  All three consume the same in-memory
event/metric objects, so a run observed once can be exported every way.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import IO, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry

#: Chrome trace 'ts' unit is microseconds; the simulator clock is ns.
_NS_TO_US = 1e-3

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def chrome_trace_document(
    events: Iterable[dict],
    metadata: dict | None = None,
    pid: int = 1,
) -> dict:
    """Wrap raw tracer events in the Chrome trace-event JSON envelope.

    Event ``ts``/``dur`` arrive in simulated ns and leave in µs; string
    ``tid``s are mapped to stable integer ids with thread-name metadata
    records so Perfetto shows readable track names.
    """
    tids: dict[str, int] = {}
    out: list[dict] = []
    for event in events:
        converted = dict(event)
        tid = converted.get("tid", "sim")
        if tid not in tids:
            tids[tid] = len(tids) + 1
        converted["tid"] = tids[tid]
        converted["pid"] = pid
        converted["ts"] = converted.get("ts", 0.0) * _NS_TO_US
        if "dur" in converted:
            converted["dur"] = converted["dur"] * _NS_TO_US
        out.append(converted)
    for name, tid in tids.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    document = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    return document


def write_chrome_trace(
    path: str | Path,
    events: Iterable[dict],
    metadata: dict | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_document(events, metadata)))
    return path


def write_events_jsonl(path: str | Path, events: Iterable[dict]) -> Path:
    """Raw tracer events, one JSON object per line (ns timestamps)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted metric name to a legal Prometheus metric name."""
    return prefix + _PROM_SANITIZE.sub("_", name)


def prometheus_text(registry: MetricsRegistry, labels: dict[str, str] | None = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms become the standard ``_bucket``/``_sum``/``_count``
    triple with cumulative ``le`` buckets.
    """
    label_items = sorted((labels or {}).items())

    def fmt_labels(extra: tuple[tuple[str, str], ...] = ()) -> str:
        items = label_items + list(extra)
        if not items:
            return ""
        body = ",".join(f'{key}="{value}"' for key, value in items)
        return "{" + body + "}"

    lines: list[str] = []
    for metric in registry:
        name = prometheus_name(metric.name)
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(f'{name}_bucket{fmt_labels((("le", repr(bound)),))} {cumulative}')
            lines.append(f'{name}_bucket{fmt_labels((("le", "+Inf"),))} {metric.count}')
            lines.append(f"{name}_sum{fmt_labels()} {metric.total}")
            lines.append(f"{name}_count{fmt_labels()} {metric.count}")
        else:
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.append(f"{name}{fmt_labels()} {metric.read()}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: str | Path,
    registry: MetricsRegistry,
    labels: dict[str, str] | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry, labels))
    return path


#: Hard ceiling on per-flow label cardinality in one exposition document.
#: A flowstats summary is already capped at its top-k, but an adversarial
#: or hand-built summary must still never emit an unbounded .prom file.
MAX_FLOW_LABELS = 1024

#: Per-flow counters exported from a flowstats record.
_FLOW_FIELDS = (
    "tx_frames",
    "tx_bytes",
    "wire_frames",
    "rx_frames",
    "rx_bytes",
    "drop_frames",
    "fwd_frames",
    "cache_hits",
    "cache_misses",
    "loss_rate",
    "cache_hit_rate",
)


def _flow_label(value) -> str:
    """Sanitize a flow id for use as a Prometheus label value."""
    return _PROM_SANITIZE.sub("_", str(value))[:64]


def flow_prometheus_text(summary: dict, labels: dict[str, str] | None = None) -> str:
    """Render a flowstats summary as labelled Prometheus gauges.

    Cardinality is bounded by construction: only the summary's tracked
    heavy hitters (at most ``MAX_FLOW_LABELS``, normally top-k) get a
    ``flow="<id>"`` label; everything evicted rides the ``flow="other"``
    rollup, and exact aggregate totals export under ``flow="total"`` so
    scrapes can always reconcile the table against the aggregates.
    """
    base_items = sorted((labels or {}).items())

    def fmt(flow_label: str) -> str:
        items = base_items + [("flow", flow_label)]
        body = ",".join(f'{key}="{value}"' for key, value in items)
        return "{" + body + "}"

    lines: list[str] = []
    for field in _FLOW_FIELDS:
        lines.append(f"# TYPE {prometheus_name('flow.' + field)} gauge")
    rows = [(str(r["flow"]), r) for r in summary["flows"][:MAX_FLOW_LABELS]]
    rows.append(("other", summary["other"]))
    rows.append(("total", summary["totals"]))
    for flow_label, record in rows:
        decorated = fmt(_flow_label(flow_label))
        for field in _FLOW_FIELDS:
            lines.append(
                f"{prometheus_name('flow.' + field)}{decorated} {record[field]}"
            )
    base = "{" + ",".join(f'{k}="{v}"' for k, v in base_items) + "}" if base_items else ""
    fairness = summary["fairness"]
    for key in ("jain", "skew", "loss_p50", "loss_p90", "loss_p99"):
        value = fairness[key]
        if value is None:
            continue
        name = prometheus_name(f"flow.fairness.{key}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{base} {value}")
    for key in ("tracked", "evictions", "top_k"):
        name = prometheus_name(f"flow.{key}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{base} {summary[key]}")
    return "\n".join(lines) + "\n"


def write_flow_prometheus(
    path: str | Path,
    summary: dict,
    labels: dict[str, str] | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(flow_prometheus_text(summary, labels))
    return path


#: Numeric TrialSummary fields exported per measurement point.
_TRIAL_FIELDS = (
    "n",
    "mean",
    "std",
    "cv",
    "p5",
    "p50",
    "p95",
    "ci_low",
    "ci_high",
)


def trial_prometheus_text(
    summaries: dict[str, dict], labels: dict[str, str] | None = None
) -> str:
    """Render trial summaries as labelled Prometheus gauges.

    ``summaries`` maps a point label to a
    :meth:`repro.measure.soundness.TrialSummary.to_dict` payload
    (optionally carrying the scheduler's ``status``/``reason``, as
    :meth:`repro.measure.soundness.TrialCampaignResult.summary_dict`
    produces).  Each point gets a ``point="<label>"`` label; the
    instability verdict exports both as a ``verdict`` label on
    ``repro_trials_stable`` (value 1 when stable, else 0) and as a
    ``repro_trials_quarantined`` 0/1 gauge, so alert rules can key on
    either.
    """
    base_items = sorted((labels or {}).items())

    def fmt(point: str, extra: tuple[tuple[str, str], ...] = ()) -> str:
        items = base_items + [("point", _flow_label(point))] + list(extra)
        body = ",".join(f'{key}="{value}"' for key, value in items)
        return "{" + body + "}"

    lines: list[str] = []
    for field in _TRIAL_FIELDS:
        lines.append(f"# TYPE {prometheus_name('trials.' + field)} gauge")
    for key in ("stable", "quarantined"):
        lines.append(f"# TYPE {prometheus_name('trials.' + key)} gauge")
    for point, summary in sorted(summaries.items()):
        decorated = fmt(point)
        for field in _TRIAL_FIELDS:
            value = summary.get(field)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                lines.append(
                    f"{prometheus_name('trials.' + field)}{decorated} {value}"
                )
        verdict = str(summary.get("verdict", "inconclusive"))
        stable = 1 if verdict == "stable" else 0
        lines.append(
            f"{prometheus_name('trials.stable')}"
            f"{fmt(point, (('verdict', _flow_label(verdict)),))} {stable}"
        )
        quarantined = 1 if summary.get("status") == "quarantined" else 0
        lines.append(
            f"{prometheus_name('trials.quarantined')}{decorated} {quarantined}"
        )
    return "\n".join(lines) + "\n"


def write_trial_prometheus(
    path: str | Path,
    summaries: dict[str, dict],
    labels: dict[str, str] | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trial_prometheus_text(summaries, labels))
    return path


def warp_decline_prometheus_text(
    outcomes: Iterable[tuple[str, object]],
    labels: dict[str, str] | None = None,
) -> str:
    """Render campaign fast-forward outcomes as Prometheus counters.

    Consumes ``(key, outcome)`` pairs (the campaign result list) and
    aggregates each record's ``warp`` column: engaged runs count into
    ``repro_warp_engaged_total{mode="..."}``, declines into
    ``repro_warp_declined_total{reason="..."}``.  Records without the
    column (warp disabled, failures, pre-column stored rows) are skipped.
    """
    base_items = sorted((labels or {}).items())
    engaged: dict[str, int] = {}
    declined: dict[str, int] = {}
    for _, outcome in outcomes:
        label = getattr(outcome, "warp", None)
        if not label:
            continue
        if label.startswith("declined:"):
            reason = label.split(":", 1)[1]
            declined[reason] = declined.get(reason, 0) + 1
        else:
            engaged[label] = engaged.get(label, 0) + 1

    def fmt(extra: tuple[tuple[str, str], ...]) -> str:
        items = base_items + list(extra)
        if not items:
            return ""
        return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"

    lines = [f"# TYPE {prometheus_name('warp.engaged.total')} counter"]
    for mode in sorted(engaged):
        lines.append(
            f"{prometheus_name('warp.engaged.total')}"
            f"{fmt((('mode', mode),))} {engaged[mode]}"
        )
    lines.append(f"# TYPE {prometheus_name('warp.declined.total')} counter")
    for reason in sorted(declined):
        lines.append(
            f"{prometheus_name('warp.declined.total')}"
            f"{fmt((('reason', _flow_label(reason)),))} {declined[reason]}"
        )
    return "\n".join(lines) + "\n"


def snapshot_prometheus_text(
    snapshots: Iterable[tuple[dict[str, str], dict]],
    fh: IO[str],
) -> None:
    """Render (labels, snapshot-dict) pairs as Prometheus gauges.

    Used for campaign-level exports where each run contributes a compact
    metric snapshot rather than a live registry: scalars export directly,
    histogram digests export their count/mean/percentile fields.
    """
    for labels, snapshot in snapshots:
        label_str = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        decorated = "{" + label_str + "}" if label_str else ""
        for name, value in sorted(snapshot.items()):
            if isinstance(value, dict):
                for sub, subvalue in sorted(value.items()):
                    if isinstance(subvalue, (int, float)):
                        fh.write(
                            f"{prometheus_name(name + '.' + sub)}{decorated} {subvalue}\n"
                        )
            elif isinstance(value, (int, float)):
                fh.write(f"{prometheus_name(name)}{decorated} {value}\n")
