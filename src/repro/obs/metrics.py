"""Metrics registry: counters, gauges and HDR-style histograms.

Replaces the scattered per-object counters (``ring.dropped``,
``core.busy_ns``, ``port.tx_packets``...) as the *reporting* surface: the
attributes stay where they are -- they are the simulation's working state
-- but an :class:`ObservedRun <repro.obs.session.Observation>` registers a
lazily-evaluated :class:`Gauge` over each one under a uniform dotted name
(``<layer>.<component>.<metric>``), so every run exports the same series
regardless of scenario or switch.

Naming convention
-----------------
``layer.component[.subcomponent].metric`` with layers ``sim``, ``cpu``,
``nic``, ``vif``, ``switch``, ``latency`` -- e.g.::

    cpu.core.numa0/sut.busy_ns
    nic.sut-nic.p0.rx_ring.dropped
    vif.vm1.eth0.to_guest.depth
    switch.vpp.path.0.forwarded

Histograms use HDR-style buckets: powers of two subdivided linearly, so
relative quantile error is bounded (~1/subdivisions) across many decades
at a fixed, small memory footprint -- the right shape for latency data.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Iterable


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value, either set directly or read from a callback.

    Callback gauges are how the registry observes simulation state with
    zero hot-path cost: nothing is recorded while the run executes; the
    probe fires only when a snapshot/export asks for the value.
    """

    __slots__ = ("name", "fn", "value")
    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-driven")
        self.value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value


def hdr_bounds(
    max_value: float = 1e9,
    subdivisions: int = 4,
) -> tuple[float, ...]:
    """HDR-style bucket upper bounds: powers of two, linearly subdivided.

    ``subdivisions`` sub-buckets per octave bound the relative error of
    any reported quantile to ~``1/subdivisions``.
    """
    if max_value <= 1 or subdivisions < 1:
        raise ValueError("max_value must exceed 1 and subdivisions be >= 1")
    bounds: list[float] = [float(i + 1) / subdivisions for i in range(subdivisions)]
    octave = 1.0
    while bounds[-1] < max_value:
        step = octave / subdivisions
        for i in range(subdivisions):
            bounds.append(octave + (i + 1) * step)
        octave *= 2
    return tuple(bounds)


class Histogram:
    """Fixed-bucket histogram with HDR-style default bounds.

    Values above the last bound land in a +Inf overflow bucket; exact
    ``min``/``max``/``sum`` are tracked alongside so the summary stays
    honest even when the tails clip.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float] | None = None) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else hdr_bounds()
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate percentile (``q`` in [0, 100]) from bucket ranks.

        Returns the upper bound of the bucket holding the q-th ranked
        observation, clipped to the exact observed min/max.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range [0, 100]")
        if not self.count:
            return math.nan
        rank = math.ceil(self.count * q / 100) or 1
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                bound = self.bounds[index] if index < len(self.bounds) else self.max
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count guarantees a hit

    def read(self) -> float:
        return float(self.count)

    def summary(self) -> dict:
        """Compact JSON-safe digest (used in campaign metric snapshots)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named, ordered collection of metrics for one run."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._register(Counter(name))  # type: ignore[return-value]

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        return self._register(Gauge(name, fn))  # type: ignore[return-value]

    def histogram(self, name: str, bounds: Iterable[float] | None = None) -> Histogram:
        return self._register(Histogram(name, bounds))  # type: ignore[return-value]

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            known = ", ".join(sorted(self._metrics)) or "<none>"
            raise KeyError(f"unknown metric {name!r}; registered: {known}") from None

    def names(self) -> list[str]:
        return list(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> dict:
        """JSON-safe state of every metric (histograms as digests).

        Deterministic given a deterministic simulation: values are read
        from simulation state only, never from wall clocks.
        """
        out: dict = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[metric.name] = metric.summary()
            else:
                out[metric.name] = metric.read()
        return out
