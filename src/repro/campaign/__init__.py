"""Experiment-campaign execution: declarative grids, fan-out, caching.

The paper's evaluation is a large grid (7 switches x 4 scenarios x 3
frame sizes x 2 directions x 1-5 VNF chains plus latency sweeps) and
assessing software-switch performance needs repeated trials to tame
measurement instability (PASTRAMI, Lungaroni et al.).  This package
turns a grid into a :class:`~repro.campaign.spec.CampaignSpec`, executes
it across worker processes with per-run fault isolation
(:mod:`repro.campaign.executor`), memoises results on disk keyed by the
cost-model fingerprint (:mod:`repro.campaign.cache`), reports live
progress (:mod:`repro.campaign.progress`) and persists/resumes partial
campaigns (:mod:`repro.campaign.store`).
"""

from repro.campaign.cache import ResultCache, params_fingerprint, run_key
from repro.campaign.executor import CampaignInterrupted, CampaignResult, run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import (
    CampaignSpec,
    RunFailure,
    RunRecord,
    RunSpec,
    execute_run,
    from_suite,
    grid,
    runspec_from_experiment,
)
from repro.campaign.store import CampaignStore, export_csv

__all__ = [
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "ProgressReporter",
    "ResultCache",
    "RunFailure",
    "RunRecord",
    "RunSpec",
    "execute_run",
    "export_csv",
    "from_suite",
    "grid",
    "params_fingerprint",
    "run_campaign",
    "run_key",
    "runspec_from_experiment",
]
