"""Campaign result persistence: append-only JSONL plus CSV export.

Every finished run (result or failure) is appended as one JSON line the
moment it lands, so a campaign killed halfway leaves a usable partial
record -- :meth:`CampaignStore.load` keyed by the cache key is what
``--resume`` consumes to skip completed work.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.campaign.cache import run_key
from repro.campaign.spec import RunFailure, RunRecord, outcome_from_dict

CSV_COLUMNS = (
    "key",
    "scenario",
    "switch",
    "frame_size",
    "bidirectional",
    "n_vnfs",
    "seed",
    "kind",
    "status",
    "gbps",
    "mpps",
    "latency_mean_us",
    "latency_std_us",
    "events",
    "wall_clock_s",
    "error",
    "metrics",
    "flowstats",
    "trials",
    "warp",
)


class CampaignStore:
    """One campaign's results on disk, one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, key: str, outcome: RunRecord | RunFailure) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = outcome.to_dict()
        payload["key"] = key
        with self.path.open("a+") as fh:
            # A process killed mid-write leaves a torn final line with no
            # newline; terminate it so this record starts on a clean line
            # (the torn fragment then fails json.loads on its own and is
            # skipped by load(), costing exactly one row).
            fh.seek(0, 2)
            if fh.tell() > 0:
                fh.seek(fh.tell() - 1)
                if fh.read(1) != "\n":
                    fh.write("\n")
            fh.write(json.dumps(payload, sort_keys=True) + "\n")

    def load(self) -> dict[str, RunRecord | RunFailure]:
        """Replay the log into {key: outcome}; later lines win.

        Failures are loaded but *not* treated as completed by the
        executor, so resuming a campaign retries exactly the runs that
        failed or never ran.
        """
        outcomes: dict[str, RunRecord | RunFailure] = {}
        if not self.path.exists():
            return outcomes
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a killed process
                key = data.pop("key", None)
                if key is None:
                    continue
                outcomes[key] = outcome_from_dict(data)
        return outcomes

    def completed_keys(self) -> set[str]:
        """Keys with a successful (or inapplicable) record on disk."""
        return {
            key
            for key, outcome in self.load().items()
            if isinstance(outcome, RunRecord)
        }


def _row_for(outcome: RunRecord | RunFailure, key: str) -> dict:
    spec = outcome.spec
    row = {
        "key": key,
        "scenario": spec.scenario,
        "switch": spec.switch,
        "frame_size": spec.frame_size,
        "bidirectional": spec.bidirectional,
        "n_vnfs": spec.n_vnfs,
        "seed": spec.seed,
        "kind": spec.kind,
        "status": outcome.status,
        "gbps": "",
        "mpps": "",
        "latency_mean_us": "",
        "latency_std_us": "",
        "events": "",
        "wall_clock_s": f"{outcome.wall_clock_s:.3f}",
        "error": "",
        "metrics": "",
        "flowstats": "",
        "trials": "",
        "warp": "",
    }
    if isinstance(outcome, RunFailure):
        row["error"] = f"{outcome.error}: {outcome.message}"
    elif outcome.status == "ok":
        row["gbps"] = f"{outcome.gbps:.4f}"
        row["mpps"] = f"{outcome.mpps:.4f}"
        if outcome.latency_mean_us is not None:
            row["latency_mean_us"] = f"{outcome.latency_mean_us:.2f}"
        if outcome.latency_std_us is not None:
            row["latency_std_us"] = f"{outcome.latency_std_us:.2f}"
        row["events"] = outcome.events
    if getattr(outcome, "metrics", None) is not None:
        row["metrics"] = json.dumps(outcome.metrics, sort_keys=True)
    if getattr(outcome, "flowstats", None) is not None:
        row["flowstats"] = json.dumps(outcome.flowstats, sort_keys=True)
    if getattr(outcome, "trials", None) is not None:
        row["trials"] = json.dumps(outcome.trials, sort_keys=True)
    if getattr(outcome, "warp", None) is not None:
        row["warp"] = outcome.warp
    return row


def export_csv(
    outcomes: Iterable[tuple[str, RunRecord | RunFailure]] | dict,
    path: str | Path,
) -> Path | None:
    """Write (key, outcome) pairs (or a load() mapping) as a CSV table.

    ``path="-"`` streams the table to stdout (for shell pipelines:
    ``repro-bench campaign ... --export-csv - > results.csv``) and
    returns None.
    """
    if isinstance(outcomes, dict):
        outcomes = outcomes.items()
    if str(path) == "-":
        import sys

        _write_csv(sys.stdout, outcomes)
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        _write_csv(fh, outcomes)
    return path


def _write_csv(fh, outcomes: Iterable[tuple[str, RunRecord | RunFailure]]) -> None:
    writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for key, outcome in outcomes:
        writer.writerow(_row_for(outcome, key))


def store_key(outcome: RunRecord | RunFailure) -> str:
    """The canonical key for an outcome (cache key of its spec)."""
    return run_key(outcome.spec)
