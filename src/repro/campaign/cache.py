"""Deterministic on-disk result cache.

Simulated experiments are pure functions of (RunSpec, seed, cost model):
the same spec against the same calibrated parameters always produces the
same numbers.  That makes results safe to memoise on disk -- one JSON
file per entry under ``.repro-cache/`` -- keyed by a stable hash of the
spec plus a *fingerprint* of the switch's calibrated parameters, so any
recalibration in :mod:`repro.switches.params` silently invalidates every
entry it affects.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.campaign.spec import RunRecord, RunSpec

#: Bump when the record schema or keying scheme changes.
CACHE_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical(obj):
    """Recursively reduce params objects to JSON-stable plain data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def params_fingerprint(switch: str) -> str:
    """Stable hash of one switch's calibrated cost model + engine config.

    Derived from every field of its :class:`SwitchParams` tree (costs,
    batching, rings, stability) plus the engine feature flags
    (:func:`repro.core.warp.engine_features`: warp on/off and its
    version), so editing any calibration constant -- or toggling or
    upgrading the steady-state fast-forward -- yields a different
    fingerprint and therefore different cache keys.  Warp results are
    verified bit-identical, but the cache must never have to take that
    on faith: a record says which engine produced it.
    """
    from repro.core.warp import engine_features
    from repro.switches.registry import params_for

    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "params": _canonical(params_for(switch)),
            "engine": _canonical(engine_features()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_key(spec: RunSpec, fingerprint: str | None = None) -> str:
    """Cache/store key for one run: hash of (spec, seed, cost model)."""
    if fingerprint is None:
        fingerprint = params_fingerprint(spec.switch)
    payload = json.dumps(
        {"spec": spec.to_dict(), "fingerprint": fingerprint}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class ResultCache:
    """JSON-per-entry result cache under a root directory."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        #: switch name -> fingerprint, computed once per cache instance.
        self._fingerprints: dict[str, str] = {}

    def _fingerprint(self, switch: str) -> str:
        fp = self._fingerprints.get(switch)
        if fp is None:
            fp = self._fingerprints[switch] = params_fingerprint(switch)
        return fp

    def key(self, spec: RunSpec) -> str:
        return run_key(spec, self._fingerprint(spec.switch))

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{self.key(spec)}.json"

    def get(self, spec: RunSpec) -> RunRecord | None:
        """The cached record for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        record = RunRecord.from_dict(data)
        record.cached = True
        return record

    def put(self, spec: RunSpec, record: RunRecord) -> Path:
        """Persist one record (atomically: write-then-rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record.to_dict(), sort_keys=True))
        tmp.replace(path)
        return path

    def invalidate(self, spec: RunSpec | None = None) -> int:
        """Drop one entry (or, with ``spec=None``, every entry).

        Returns the number of entries removed.
        """
        if spec is not None:
            path = self.path_for(spec)
            if path.exists():
                path.unlink()
                return 1
            return 0
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
