"""Campaign execution: serial or process-pool fan-out with fault isolation.

Each :class:`~repro.campaign.spec.RunSpec` is an independent, pure
simulation, so a campaign parallelises embarrassingly: a
``ProcessPoolExecutor`` fans runs out across cores, results come back as
plain dicts, and the final record list is ordered by the campaign spec
-- not by completion -- so serial and parallel execution are
indistinguishable to the caller, numbers included.

Fault handling:

* a run that raises is recorded as a :class:`RunFailure`; the campaign
  continues;
* a *worker death* (the child process exits -- the pool breaks) is
  transient from the campaign's point of view: the pool is rebuilt and
  the interrupted runs are retried with exponential backoff, a bounded
  number of times;
* a run exceeding the per-run timeout is interrupted inside the worker
  (SIGALRM, where the platform has it) and recorded as a failure.

Interruption handling: SIGINT/SIGTERM during the execution phase raises
:class:`CampaignInterrupted`.  Outstanding workers are cancelled, every
already-finished row has been flushed to the store (rows are appended as
they complete, not at the end), and :func:`run_campaign` returns a partial
:class:`CampaignResult` with ``interrupted=True`` -- so a re-run with
``resume=True`` against the same store picks up exactly where the
campaign stopped.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.campaign.cache import ResultCache, run_key
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import (
    CampaignSpec,
    RunFailure,
    RunRecord,
    RunSpec,
    execute_run,
)
from repro.campaign.store import CampaignStore

#: Retry budget for runs interrupted by a dying worker process.
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.25


class RunTimeoutError(RuntimeError):
    """A run exceeded its per-run wall-clock budget."""


class CampaignInterrupted(BaseException):
    """SIGINT/SIGTERM arrived mid-campaign.

    Derives :class:`BaseException` (like ``KeyboardInterrupt``) so it
    sails past the per-run ``except Exception`` fault barriers instead of
    being recorded as just another failed run.
    """

    def __init__(self, signum: int) -> None:
        name = signal.Signals(signum).name if signum in iter(signal.Signals) else str(signum)
        super().__init__(f"campaign interrupted by {name}")
        self.signum = signum


@contextlib.contextmanager
def _interruptible(signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)):
    """Convert the given signals into :class:`CampaignInterrupted`.

    Installing handlers only works on the main thread; anywhere else
    (e.g. a campaign driven from a worker thread) the block runs with the
    process defaults -- graceful degradation, same as :func:`_deadline`.
    """

    def _on_signal(signum, frame):
        raise CampaignInterrupted(signum)

    previous: dict[int, object] = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _on_signal)
    except ValueError:  # not the main thread
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        previous = {}
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


@contextlib.contextmanager
def _deadline(timeout_s: float | None, label: str):
    """Interrupt the enclosed block after ``timeout_s`` wall-clock seconds.

    Uses SIGALRM, which only exists on Unix and only works on a main
    thread -- exactly the situation inside a pool worker process.  Where
    unavailable the block runs unbounded (graceful degradation).
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeoutError(f"{label} exceeded {timeout_s:.1f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _worker(spec_dict: dict, timeout_s: float | None) -> dict:
    """Pool entry point: revive the spec, run it, return plain data."""
    spec = RunSpec.from_dict(spec_dict)
    if dict(spec.extra).get("_inject") == "worker-death":
        # Sanctioned fault-injection hook: simulate a segfaulting worker
        # (exercised by the failure-injection tests and the CI smoke).
        os._exit(13)
    with _deadline(timeout_s, spec.label):
        return execute_run(spec).to_dict()


@dataclass
class CampaignResult:
    """Everything a finished campaign produced, in campaign order."""

    name: str
    outcomes: list[tuple[str, RunRecord | RunFailure]] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    wall_clock_s: float = 0.0
    #: True when SIGINT/SIGTERM cut the campaign short; ``outcomes`` then
    #: holds the completed prefix and the store (if any) is resumable.
    interrupted: bool = False

    @property
    def records(self) -> list[RunRecord]:
        return [o for _, o in self.outcomes if isinstance(o, RunRecord)]

    @property
    def failures(self) -> list[RunFailure]:
        return [o for _, o in self.outcomes if isinstance(o, RunFailure)]

    @property
    def inapplicable(self) -> list[RunRecord]:
        return [o for _, o in self.outcomes if isinstance(o, RunRecord) and o.status == "inapplicable"]

    def outcome_for(self, spec: RunSpec) -> RunRecord | RunFailure | None:
        """First outcome whose spec matches (specs are value objects)."""
        for _, outcome in self.outcomes:
            if outcome.spec == spec:
                return outcome
        return None


def resolve_workers(workers: int | None) -> int:
    """``None`` means one worker per core (the campaign is CPU-bound)."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _failure_from_exception(spec: RunSpec, exc: BaseException, attempts: int, started: float) -> RunFailure:
    return RunFailure(
        spec=spec,
        error=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        wall_clock_s=time.monotonic() - started,
    )


def _run_serial(
    pending: list[tuple[int, RunSpec]],
    timeout_s: float | None,
    on_done,
) -> None:
    for index, spec in pending:
        started = time.monotonic()
        try:
            with _deadline(timeout_s, spec.label):
                outcome: RunRecord | RunFailure = execute_run(spec)
        except Exception as exc:  # graceful degradation: record, continue
            outcome = _failure_from_exception(spec, exc, attempts=1, started=started)
        on_done(index, outcome)


def _pool_round(
    batch: list[tuple[int, RunSpec, int]],
    n_workers: int,
    timeout_s: float | None,
    on_done,
) -> list[tuple[int, RunSpec, int]]:
    """One pool lifetime: run ``batch``, return the runs a dying worker
    interrupted (everything else is reported through ``on_done``)."""
    context = multiprocessing.get_context("fork")
    pool = ProcessPoolExecutor(max_workers=min(n_workers, len(batch)), mp_context=context)
    futures = {
        pool.submit(_worker, spec.to_dict(), timeout_s): (index, spec, attempt)
        for index, spec, attempt in batch
    }
    interrupted: list[tuple[int, RunSpec, int]] = []
    started = time.monotonic()
    not_done = set(futures)
    try:
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                index, spec, attempt = futures[future]
                try:
                    outcome: RunRecord | RunFailure = RunRecord.from_dict(future.result())
                except BrokenProcessPool:
                    interrupted.append((index, spec, attempt))
                    continue
                except Exception as exc:
                    outcome = _failure_from_exception(spec, exc, attempt, started)
                on_done(index, outcome)
    except BaseException:
        # SIGINT/SIGTERM (or anything equally fatal): cancel whatever has
        # not started, abandon the in-flight workers, let the caller land.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=False, cancel_futures=True)
    return interrupted


def _run_parallel(
    pending: list[tuple[int, RunSpec]],
    n_workers: int,
    timeout_s: float | None,
    retries: int,
    backoff_s: float,
    on_done,
) -> None:
    """Fan ``pending`` out over a process pool, rebuilding it on breakage.

    A pool breakage takes every in-flight future down with the culprit,
    so after the first breakage the interrupted runs are retried in
    *isolation* -- one single-use pool each.  Collateral runs then
    succeed on their first isolated attempt while the true culprit burns
    its own bounded retry budget and lands as a :class:`RunFailure`.
    """
    queue: list[tuple[int, RunSpec, int]] = [(i, spec, 1) for i, spec in pending]
    isolate = False
    while queue:
        if isolate:
            batch, queue = [queue[0]], queue[1:]
        else:
            batch, queue = queue, []
        interrupted = _pool_round(batch, n_workers, timeout_s, on_done)
        if not interrupted:
            continue
        isolate = True
        for index, spec, attempt in interrupted:
            if attempt <= retries:
                queue.append((index, spec, attempt + 1))
            else:
                on_done(
                    index,
                    RunFailure(
                        spec=spec,
                        error="WorkerDied",
                        message="worker process died repeatedly (retries exhausted)",
                        attempts=attempt,
                    ),
                )
        if queue:
            worst = max(attempt for _, _, attempt in queue)
            time.sleep(backoff_s * 2 ** max(0, worst - 2))


def run_campaign(
    campaign: CampaignSpec,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    store: CampaignStore | None = None,
    resume: bool = False,
    progress: ProgressReporter | None = None,
    timeout_s: float | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> CampaignResult:
    """Execute a campaign; never raises for an individual run's failure.

    Resolution order per run: the store (``resume=True``), then the
    cache, then actual execution.  Executed results are written back to
    both.  ``workers=None`` auto-sizes to the machine; 1 or a platform
    without ``fork`` selects the serial in-process executor.
    """
    started = time.monotonic()
    n_workers = resolve_workers(workers)
    result = CampaignResult(name=campaign.name)
    if progress is None:
        progress = ProgressReporter(total=len(campaign))
    progress.total = len(campaign)
    progress.start()

    fingerprints: dict[str, str] = {}

    def key_for(spec: RunSpec) -> str:
        if cache is not None:
            return cache.key(spec)
        fp = fingerprints.get(spec.switch)
        if fp is None:
            from repro.campaign.cache import params_fingerprint

            fp = fingerprints[spec.switch] = params_fingerprint(spec.switch)
        return run_key(spec, fp)

    keys = [key_for(spec) for spec in campaign.runs]
    slots: list[RunRecord | RunFailure | None] = [None] * len(campaign)
    stored = store.load() if (store is not None and resume) else {}

    pending: list[tuple[int, RunSpec]] = []
    for index, spec in enumerate(campaign.runs):
        prior = stored.get(keys[index])
        if isinstance(prior, RunRecord):
            slots[index] = prior
            result.resumed += 1
            progress.update(prior, source="store")
            continue
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            slots[index] = hit
            result.cache_hits += 1
            if store is not None:
                store.append(keys[index], hit)
            progress.update(hit, source="cache")
            continue
        pending.append((index, spec))

    def on_done(index: int, outcome: RunRecord | RunFailure) -> None:
        slots[index] = outcome
        result.executed += 1
        if cache is not None and isinstance(outcome, RunRecord):
            cache.put(campaign.runs[index], outcome)
        if store is not None:
            store.append(keys[index], outcome)
        progress.update(outcome, source="executed")

    if pending:
        try:
            with _interruptible():
                if n_workers > 1 and _fork_available():
                    _run_parallel(pending, n_workers, timeout_s, retries, backoff_s, on_done)
                else:
                    _run_serial(pending, timeout_s, on_done)
        except CampaignInterrupted:
            # Partial rows are already flushed (the store appends per
            # outcome); report what completed and flag the truncation.
            result.interrupted = True

    result.outcomes = [
        (keys[index], outcome)
        for index, outcome in enumerate(slots)
        if outcome is not None
    ]
    result.wall_clock_s = time.monotonic() - started
    return result
