"""Declarative experiment specifications and their execution.

A :class:`RunSpec` names one simulation -- (scenario, switch, frame size,
direction, chain length, seed, metric kind, windows) -- without holding
any live object, so it can cross a process boundary, key a cache entry
and round-trip through JSON.  A :class:`CampaignSpec` is an ordered grid
of them.  :func:`execute_run` is the single choke point that turns a
spec into a :class:`RunRecord`; serial and process-pool executors both
call it, which is what makes their results bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Sequence

from repro.faults.plan import FaultEvent, FaultPlan
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS

#: Scenarios a RunSpec may name (the paper's Fig. 2 plus the Table 4
#: latency variant of v2v).
SCENARIOS = ("p2p", "p2v", "v2v", "loopback")
KINDS = ("throughput", "latency", "resilience")


def _canonical_fault_key(item) -> tuple:
    """Normalise one fault description (event, dict or key tuple) to a
    validated canonical key (see :meth:`FaultEvent.to_key`)."""
    if isinstance(item, FaultEvent):
        return item.to_key()
    if isinstance(item, dict):
        return FaultEvent.from_dict(item).to_key()
    return FaultEvent.from_key(item).to_key()


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described by plain data."""

    scenario: str
    switch: str
    frame_size: int = 64
    bidirectional: bool = False
    n_vnfs: int = 1
    seed: int = 1
    kind: str = "throughput"
    warmup_ns: float = DEFAULT_WARMUP_NS
    measure_ns: float = DEFAULT_MEASURE_NS
    #: extra builder kwargs (e.g. ``reversed_path`` for p2v), kept as a
    #: sorted tuple of items so the spec stays hashable and canonical.
    extra: tuple[tuple[str, Any], ...] = ()
    #: observability configuration (:meth:`repro.obs.ObsConfig.to_items`);
    #: empty means "run unobserved" and is omitted from :meth:`to_dict`
    #: so pre-observability cache keys and stored records stay valid.
    obs: tuple[tuple[str, Any], ...] = ()
    #: fault schedule (:meth:`repro.faults.FaultPlan.to_keys` canonical
    #: tuples); empty means "no faults" and is omitted from
    #: :meth:`to_dict` so pre-fault cache keys and stored records stay
    #: valid.  Non-empty requires ``kind='resilience'``.
    faults: tuple[tuple, ...] = ()
    #: trial index on the soundness repeat axis (``repro.measure.
    #: soundness``): 0 is the unperturbed base run; k > 0 perturbs
    #: traffic phase / hiccup hash / churn offset through ``trial.*``
    #: RNG streams while keeping the workload identical.  0 is omitted
    #: from :meth:`to_dict` so single-trial cache keys and stored
    #: records stay valid.
    trial: int = 0

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; known: {SCENARIOS}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; known: {KINDS}")
        if self.kind == "latency" and self.scenario != "v2v":
            raise ValueError("kind='latency' is the Table 4 RTT drive; only scenario 'v2v' supports it")
        object.__setattr__(self, "extra", tuple(sorted(self.extra)))
        object.__setattr__(self, "obs", tuple(sorted(self.obs)))
        object.__setattr__(
            self,
            "faults",
            tuple(sorted(_canonical_fault_key(item) for item in self.faults)),
        )
        if self.kind == "resilience" and not self.faults:
            raise ValueError("kind='resilience' needs a non-empty fault schedule")
        if self.faults and self.kind != "resilience":
            raise ValueError(
                f"fault schedules require kind='resilience', got kind={self.kind!r}"
            )
        if self.trial < 0:
            raise ValueError(f"trial must be >= 0, got {self.trial}")

    @property
    def fault_plan(self) -> FaultPlan:
        """The spec's fault schedule as a live :class:`FaultPlan`."""
        return FaultPlan.from_keys(self.faults)

    @property
    def label(self) -> str:
        """Human-readable run name, e.g. ``loopback3-64B-uni/vale#s1``."""
        scenario = f"loopback{self.n_vnfs}" if self.scenario == "loopback" else self.scenario
        direction = "bidi" if self.bidirectional else "uni"
        kind = "" if self.kind == "throughput" else f"+{self.kind}"
        extra = dict(self.extra)
        flows = extra.get("flows", 1)
        flow_part = f"+{flows}flows" if flows != 1 else ""
        trial = f"+t{self.trial}" if self.trial else ""
        return f"{scenario}-{self.frame_size}B-{direction}{kind}{flow_part}/{self.switch}#s{self.seed}{trial}"

    def to_dict(self) -> dict:
        data = {
            "scenario": self.scenario,
            "switch": self.switch,
            "frame_size": self.frame_size,
            "bidirectional": self.bidirectional,
            "n_vnfs": self.n_vnfs,
            "seed": self.seed,
            "kind": self.kind,
            "warmup_ns": self.warmup_ns,
            "measure_ns": self.measure_ns,
            "extra": [list(item) for item in self.extra],
        }
        if self.obs:
            # Only when observed: keeps unobserved cache keys / stored
            # records byte-identical to pre-observability versions.
            data["obs"] = [list(item) for item in self.obs]
        if self.faults:
            # Only when faulted, for the same cache-key stability reason.
            data["faults"] = self.fault_plan.to_items()
        if self.trial:
            # Only for trial replicas, for the same cache-key stability
            # reason: trial 0 *is* the pre-soundness run.
            data["trial"] = self.trial
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        payload = dict(data)
        payload["extra"] = tuple((key, value) for key, value in payload.get("extra", ()))
        payload["obs"] = tuple((key, value) for key, value in payload.get("obs", ()))
        payload["faults"] = tuple(payload.get("faults", ()))
        return cls(**payload)


@dataclass
class RunRecord:
    """Outcome of one completed (or inapplicable) run -- plain data."""

    spec: RunSpec
    status: str = "ok"  # "ok" | "inapplicable"
    per_direction_gbps: list[float] = field(default_factory=list)
    per_direction_mpps: list[float] = field(default_factory=list)
    latency_mean_us: float | None = None
    latency_std_us: float | None = None
    latency_samples: int = 0
    events: int = 0
    duration_ns: float = 0.0
    wall_clock_s: float = 0.0
    cached: bool = False
    detail: str = ""
    #: Compact observability snapshot (metrics + profile + trace digest)
    #: from :meth:`repro.obs.session.Observation.metrics_snapshot`; None
    #: for unobserved runs and omitted from :meth:`to_dict`.
    metrics: dict | None = None
    #: Resilience report (:meth:`repro.measure.resilience.ResilienceReport.to_dict`);
    #: None for non-resilience runs and omitted from :meth:`to_dict`.
    resilience: dict | None = None
    #: Per-flow telemetry summary (:meth:`repro.obs.flowstats.FlowStats.summary`);
    #: None unless the run was observed with ``flowstats=True`` and
    #: omitted from :meth:`to_dict` so older stored records stay valid.
    flowstats: dict | None = None
    #: Multi-trial summary (:meth:`repro.measure.soundness.TrialSummary.
    #: to_dict` plus point status/reason), attached by the repeat
    #: scheduler to a point's first trial record; None for single-trial
    #: runs and omitted from :meth:`to_dict` so older stored records
    #: stay valid.
    trials: dict | None = None
    #: Which fast-forward tier handled the run: an engaged mode
    #: (``"replay"``, ``"turbo"``, ``"fluid"``) or ``"declined:<reason>"``.
    #: None when the engine reported nothing (warp disabled, latency
    #: kinds) and omitted from :meth:`to_dict` so older stored records
    #: stay valid.
    warp: str | None = None

    # Convenience mirrors of RunResult so suite/table code can treat a
    # record like a measurement.
    @property
    def gbps(self) -> float:
        return sum(self.per_direction_gbps)

    @property
    def mpps(self) -> float:
        return sum(self.per_direction_mpps)

    @property
    def scenario(self) -> str:
        return self.spec.scenario

    @property
    def switch(self) -> str:
        return self.spec.switch

    @property
    def frame_size(self) -> int:
        return self.spec.frame_size

    @property
    def bidirectional(self) -> bool:
        return self.spec.bidirectional

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        data = {
            "record": "result",
            "spec": self.spec.to_dict(),
            "status": self.status,
            "per_direction_gbps": self.per_direction_gbps,
            "per_direction_mpps": self.per_direction_mpps,
            "latency_mean_us": self.latency_mean_us,
            "latency_std_us": self.latency_std_us,
            "latency_samples": self.latency_samples,
            "events": self.events,
            "duration_ns": self.duration_ns,
            "wall_clock_s": self.wall_clock_s,
            "detail": self.detail,
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.resilience is not None:
            data["resilience"] = self.resilience
        if self.flowstats is not None:
            data["flowstats"] = self.flowstats
        if self.trials is not None:
            data["trials"] = self.trials
        if self.warp is not None:
            data["warp"] = self.warp
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        payload = {k: v for k, v in data.items() if k != "record"}
        payload["spec"] = RunSpec.from_dict(payload["spec"])
        return cls(**payload)


@dataclass
class RunFailure:
    """A run that errored out; recorded instead of sinking the campaign."""

    spec: RunSpec
    error: str
    message: str
    attempts: int = 1
    wall_clock_s: float = 0.0
    status: str = "failed"

    @property
    def ok(self) -> bool:
        return False

    def to_dict(self) -> dict:
        return {
            "record": "failure",
            "spec": self.spec.to_dict(),
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "wall_clock_s": self.wall_clock_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        payload = {k: v for k, v in data.items() if k != "record"}
        payload["spec"] = RunSpec.from_dict(payload["spec"])
        return cls(**payload)


def outcome_from_dict(data: dict) -> RunRecord | RunFailure:
    """Revive either record kind from its JSON form."""
    if data.get("record") == "failure":
        return RunFailure.from_dict(data)
    return RunRecord.from_dict(data)


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, named collection of runs."""

    name: str
    runs: tuple[RunSpec, ...] = ()

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.runs)

    def deduplicated(self) -> "CampaignSpec":
        """Drop exact-duplicate runs, keeping first-occurrence order."""
        return CampaignSpec(name=self.name, runs=tuple(dict.fromkeys(self.runs)))

    def with_repeats(self, repeat: int) -> "CampaignSpec":
        """Replicate every run over ``repeat`` consecutive seeds.

        This is the legacy ``reseed`` policy: every replica re-derives
        *all* RNG streams, changing the workload itself.  For sound
        repeats of an identical workload use :meth:`with_trials`.
        """
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        if repeat == 1:
            return self
        runs = tuple(
            replace(spec, seed=spec.seed + i) for spec in self.runs for i in range(repeat)
        )
        return CampaignSpec(name=self.name, runs=runs)

    def with_trials(self, repeat: int, seed_policy: str = "trial") -> "CampaignSpec":
        """Replicate every run over ``repeat`` trials on the soundness axis.

        ``trial`` replicas keep the workload definition identical and
        perturb only measurement-irrelevant phases (traffic start phase,
        driver-hiccup hash, churn offset) through dedicated ``trial.*``
        RNG streams -- the distribution they produce is measurement
        noise, not workload variation.  ``seed_policy="reseed"`` falls
        back to :meth:`with_repeats`.
        """
        from repro.measure.soundness import trial_specs

        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        if repeat == 1:
            return self
        runs = tuple(
            trial
            for spec in self.runs
            for trial in trial_specs(spec, repeat, seed_policy)
        )
        return CampaignSpec(name=self.name, runs=runs)

    def with_obs(self, config=None, **overrides) -> "CampaignSpec":
        """Run every spec observed (``repro.obs``), collecting per-run
        metric snapshots.

        Accepts an :class:`~repro.obs.session.ObsConfig` or its keyword
        overrides (``with_obs(trace=True)``).  A disabled config (all
        collection off) clears the ``obs`` field instead, restoring the
        unobserved cache keys.
        """
        from repro.obs import ObsConfig

        if config is None:
            config = ObsConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides, not both")
        items = config.to_items() if config.enabled else ()
        runs = tuple(replace(spec, obs=items) for spec in self.runs)
        return CampaignSpec(name=self.name, runs=runs)

    def with_flows(
        self,
        flows: int,
        flow_dist: str = "uniform",
        churn: float = 0.0,
        size_mix: str | None = None,
    ) -> "CampaignSpec":
        """Offer every run a flow population (``repro.flows``).

        ``flows=1`` with defaults clears the flow axis instead, restoring
        the single-flow cache keys (flow keys are omitted entirely from
        trivial specs, so pre-flow-axis stored records stay valid).
        """
        from repro.flows import flow_axis_items

        items = flow_axis_items(
            flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix
        )
        flow_keys = ("flows", "flow_dist", "churn", "size_mix")
        runs = tuple(
            replace(
                spec,
                extra=tuple(
                    item for item in spec.extra if item[0] not in flow_keys
                ) + items,
            )
            for spec in self.runs
        )
        return CampaignSpec(name=self.name, runs=runs)

    def with_faults(self, plan: FaultPlan) -> "CampaignSpec":
        """Turn every run into a resilience run under ``plan``.

        An empty plan clears the fault axis instead, restoring throughput
        runs with their pre-fault cache keys.
        """
        if not plan:
            runs = tuple(
                replace(spec, kind="throughput", faults=()) for spec in self.runs
            )
        else:
            runs = tuple(
                replace(spec, kind="resilience", faults=plan.to_keys())
                for spec in self.runs
            )
        return CampaignSpec(name=self.name, runs=runs)


# ---------------------------------------------------------------------------
# Grid builders
# ---------------------------------------------------------------------------

def grid(
    name: str,
    switches: Sequence[str],
    scenarios: Sequence[str] = ("p2p", "p2v", "v2v"),
    frame_sizes: Sequence[int] = (64, 256, 1024),
    directions: Sequence[bool] = (False, True),
    vnfs: Sequence[int] = (1,),
    seeds: Sequence[int] = (1,),
    kind: str = "throughput",
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
    fault_plans: Sequence[FaultPlan] = (),
    flows: Sequence[int] = (1,),
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
) -> CampaignSpec:
    """Cartesian campaign over the paper's axes.

    ``vnfs`` only applies to the loopback scenario; other scenarios get a
    single entry per (size, direction, seed) regardless of ``vnfs``.
    ``fault_plans`` adds a fault axis: every grid point is crossed with
    every plan (and the runs become ``kind='resilience'``).
    ``flows`` adds the flow-population axis (``repro.flows``): every grid
    point is crossed with every flow count, sharing one distribution/
    churn/size-mix configuration; ``flows=(1,)`` with defaults is the
    seed workload with unchanged cache keys.
    """
    if fault_plans and kind not in ("throughput", "resilience"):
        raise ValueError(f"fault_plans cannot combine with kind={kind!r}")
    plan_keys: tuple[tuple[tuple, ...], ...] = tuple(
        plan.to_keys() for plan in fault_plans if plan
    )
    if fault_plans and not plan_keys:
        raise ValueError("fault_plans given but every plan is empty")
    from repro.flows import flow_axis_items

    flow_extras = tuple(
        flow_axis_items(
            flows=count, flow_dist=flow_dist, churn=churn, size_mix=size_mix
        )
        for count in (flows or (1,))
    )
    runs: list[RunSpec] = []
    for switch in switches:
        for scenario in scenarios:
            chain_lengths: Iterable[int] = vnfs if scenario == "loopback" else (1,)
            for n in chain_lengths:
                for size in frame_sizes:
                    for bidi in directions:
                        for seed in seeds:
                            for faults in plan_keys or ((),):
                                for extra in flow_extras:
                                    runs.append(
                                        RunSpec(
                                            scenario=scenario,
                                            switch=switch,
                                            frame_size=size,
                                            bidirectional=bidi,
                                            n_vnfs=n,
                                            seed=seed,
                                            kind="resilience" if faults else kind,
                                            warmup_ns=warmup_ns,
                                            measure_ns=measure_ns,
                                            faults=faults,
                                            extra=extra,
                                        )
                                    )
    return CampaignSpec(name=name, runs=tuple(runs))


def runspec_from_experiment(
    experiment,
    switch: str,
    warmup_ns: float,
    measure_ns: float,
    seed: int,
) -> RunSpec | None:
    """Map a suite :class:`~repro.measure.suites.ExperimentSpec` to a RunSpec.

    Returns None when the experiment's builder is not one of the stock
    scenario modules (a custom callable cannot be named declaratively, so
    it cannot cross a process boundary or key a cache entry).
    """
    module = getattr(experiment.build, "__module__", "") or ""
    if not module.startswith("repro.scenarios."):
        return None
    scenario = module.rsplit(".", 1)[-1]
    if scenario not in SCENARIOS:
        return None
    kwargs = dict(experiment.kwargs)
    n_vnfs = kwargs.pop("n_vnfs", 1)
    return RunSpec(
        scenario=scenario,
        switch=switch,
        frame_size=experiment.frame_size,
        bidirectional=experiment.bidirectional,
        n_vnfs=n_vnfs,
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        extra=tuple(sorted(kwargs.items())),
    )


def from_suite(
    suite,
    switches: Sequence[str],
    seeds: Sequence[int] = (1,),
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
) -> CampaignSpec:
    """Expand a named :class:`~repro.measure.suites.TestSuite` (or its
    name) over switches and seed replicas."""
    if isinstance(suite, str):
        from repro.measure.suites import SUITES

        try:
            suite = SUITES[suite]
        except KeyError:
            raise KeyError(f"unknown suite {suite!r}; known: {sorted(SUITES)}") from None
    runs: list[RunSpec] = []
    for switch in switches:
        for experiment in suite.experiments:
            for seed in seeds:
                spec = runspec_from_experiment(experiment, switch, warmup_ns, measure_ns, seed)
                if spec is None:
                    raise ValueError(
                        f"experiment {experiment.name!r} uses a custom builder and "
                        "cannot be expressed as a campaign RunSpec"
                    )
                runs.append(spec)
    return CampaignSpec(name=f"suite:{suite.name}", runs=tuple(runs))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_run(spec: RunSpec) -> RunRecord:
    """Run one spec in-process and return its plain-data record.

    This is the only function that touches live simulator objects; both
    executors call it, so a spec+seed maps to exactly one result no
    matter where it runs.  A :class:`QemuCompatibilityError` is an
    *inapplicable* configuration (the paper's footnote 5), not a
    failure.
    """
    import time

    from repro.measure.runner import drive
    from repro.measure.throughput import measure_throughput
    from repro.scenarios import loopback, p2p, p2v, v2v
    from repro.vm.machine import QemuCompatibilityError

    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}
    started = time.monotonic()
    kwargs = dict(spec.extra)
    # Sanctioned fault-injection hook (tests, CI smoke): "error" poisons
    # this run; "worker-death" is handled one level up by the pool worker.
    if kwargs.pop("_inject", None) is not None:
        raise RuntimeError(f"injected fault in {spec.label}")
    if spec.scenario == "loopback":
        kwargs["n_vnfs"] = spec.n_vnfs
    if spec.trial:
        # Trial 0 never passes the kwarg, so the base run reaches the
        # builders with the exact pre-soundness signature (bit-identity).
        kwargs["trial"] = spec.trial
    observation = None
    resilience = None
    try:
        if spec.kind == "latency":
            tb = v2v.build_latency(spec.switch, frame_size=spec.frame_size, seed=spec.seed, **kwargs)
            observation = _observe_for_spec(tb, spec)
            result = drive(tb, warmup_ns=spec.warmup_ns, measure_ns=spec.measure_ns)
        elif spec.kind == "resilience":
            from repro.measure.resilience import (
                DEFAULT_BIN_NS,
                DEFAULT_EPSILON,
                measure_resilience,
            )

            result, report, observation = measure_resilience(
                builders[spec.scenario],
                spec.switch,
                spec.frame_size,
                spec.fault_plan,
                bidirectional=spec.bidirectional,
                epsilon=kwargs.pop("epsilon", DEFAULT_EPSILON),
                bin_ns=kwargs.pop("bin_ns", DEFAULT_BIN_NS),
                warmup_ns=spec.warmup_ns,
                measure_ns=spec.measure_ns,
                seed=spec.seed,
                observe_config=_obs_config_for_spec(spec),
                **kwargs,
            )
            resilience = report.to_dict()
        elif spec.obs:
            # Observed runs build the testbed here so probes attach before
            # the drive; measurements stay bit-identical to the unobserved
            # path (probes only read).
            tb = builders[spec.scenario](
                spec.switch,
                frame_size=spec.frame_size,
                bidirectional=spec.bidirectional,
                seed=spec.seed,
                **kwargs,
            )
            observation = _observe_for_spec(tb, spec)
            result = drive(
                tb,
                warmup_ns=spec.warmup_ns,
                measure_ns=spec.measure_ns,
                bidirectional=spec.bidirectional,
            )
        else:
            result = measure_throughput(
                builders[spec.scenario],
                spec.switch,
                spec.frame_size,
                bidirectional=spec.bidirectional,
                warmup_ns=spec.warmup_ns,
                measure_ns=spec.measure_ns,
                seed=spec.seed,
                **kwargs,
            )
    except QemuCompatibilityError as exc:
        return RunRecord(
            spec=spec,
            status="inapplicable",
            detail=f"qemu: {exc}",
            wall_clock_s=time.monotonic() - started,
        )

    metrics = None
    flowstats = None
    if observation is not None:
        observation.finish(result)
        metrics = observation.metrics_snapshot()
        # Flow telemetry is its own record column, not a metrics blob.
        flowstats = metrics.pop("flowstats", None)

    latency = result.latency
    has_latency = latency is not None and len(latency)
    mean_us = latency.mean_us if has_latency else None
    std_us = latency.std_us if has_latency else None
    if mean_us is not None and math.isnan(mean_us):
        mean_us = None
    if std_us is not None and math.isnan(std_us):
        std_us = None
    return RunRecord(
        spec=spec,
        status="ok",
        per_direction_gbps=list(result.per_direction_gbps),
        per_direction_mpps=list(result.per_direction_mpps),
        latency_mean_us=mean_us,
        latency_std_us=std_us,
        latency_samples=len(latency) if latency is not None else 0,
        events=result.events,
        duration_ns=result.duration_ns,
        wall_clock_s=time.monotonic() - started,
        metrics=metrics,
        resilience=resilience,
        flowstats=flowstats,
        warp=_warp_label(result),
    )


def _warp_label(result) -> str | None:
    """Compact record column for what the fast-forward engine did."""
    report = getattr(result, "warp", None)
    if report is None:
        return None
    if report.engaged:
        return report.mode
    return f"declined:{report.reason}"


def _obs_config_for_spec(spec: RunSpec):
    """The spec's ObsConfig, or None when it runs unobserved."""
    if not spec.obs:
        return None
    from repro.obs import ObsConfig

    config = ObsConfig.from_items(spec.obs)
    return config if config.enabled else None


def _observe_for_spec(tb, spec: RunSpec):
    """Attach an observation session when the spec asks for one."""
    config = _obs_config_for_spec(spec)
    if config is None:
        return None
    from repro.obs import observe

    return observe(tb, config)
