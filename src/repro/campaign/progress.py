"""Live campaign progress: per-run telemetry, counters, ETA.

The reporter is deliberately dumb about where its numbers come from --
the executor feeds it one outcome at a time tagged with its source
(executed, cache hit, resumed from a store) and it keeps the running
tallies the summary line needs: events executed, wall-clock, hit/miss
counts, failures.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.campaign.spec import RunFailure, RunRecord


def run_tier(outcome: RunRecord | RunFailure) -> str:
    """Cost tier of one run, from its record's ``warp`` column.

    Warped (replay/turbo) and fluid runs complete orders of magnitude
    faster than event-by-event runs, so averaging their wall-clocks into
    one pace would wreck the ETA whenever the mix shifts; the reporter
    tracks each tier's cost separately and blends them explicitly.
    """
    label = getattr(outcome, "warp", None) or ""
    if label == "fluid":
        return "fluid"
    if label and not label.startswith("declined:"):
        return "warped"
    return "exact"


def emit_to_stderr(message: str) -> None:
    """Progress sink that keeps stdout clean for piped data.

    The CLI routes all campaign/suite telemetry through this, so
    ``repro-bench campaign ... --export-csv - > results.csv`` yields a
    parseable CSV with the live progress still visible on the terminal.
    """
    print(message, file=sys.stderr, flush=True)


class ProgressReporter:
    """Counts outcomes and renders ``[k/n] label ... ETA`` lines."""

    def __init__(
        self,
        total: int,
        emit: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.emit = emit
        self.clock = clock
        self.done = 0
        self.executed = 0
        self.cache_hits = 0
        self.resumed = 0
        self.inapplicable = 0
        self.failures = 0
        self.events = 0
        self.sim_wall_clock_s = 0.0
        self._started: float | None = None
        #: Executed-run wall-clock per fast-forward tier:
        #: ``tier -> [runs, wall_clock_s]``.  Cache hits and store
        #: resumes never land here, so the pace stays cache-hit-blind.
        self.tier_costs: dict[str, list] = {}
        #: Per-run completion records, in completion order -- enough to
        #: reconstruct a campaign-execution timeline (``--trace-out``).
        self.timeline: list[dict] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._started = self.clock()
        self._say(f"campaign: {self.total} runs")

    def update(self, outcome: RunRecord | RunFailure, source: str = "executed") -> None:
        """Register one finished run.  ``source``: executed|cache|store."""
        if self._started is None:
            self.start()
        self.done += 1
        if source == "cache":
            self.cache_hits += 1
        elif source == "store":
            self.resumed += 1
        else:
            self.executed += 1
            bucket = self.tier_costs.setdefault(run_tier(outcome), [0, 0.0])
            bucket[0] += 1
            bucket[1] += outcome.wall_clock_s
        self.sim_wall_clock_s += outcome.wall_clock_s
        if isinstance(outcome, RunFailure):
            self.failures += 1
            status = f"FAILED ({outcome.error}: {outcome.message})"
        elif outcome.status == "inapplicable":
            self.inapplicable += 1
            status = "n/a (qemu)"
        else:
            self.events += outcome.events
            status = f"{outcome.gbps:.2f} Gbps"
            if outcome.latency_mean_us is not None:
                status += f", RTT {outcome.latency_mean_us:.1f} us"
        tag = {"cache": " [cached]", "store": " [resumed]"}.get(source, "")
        self.timeline.append(
            {
                "label": outcome.spec.label,
                "status": outcome.status,
                "source": source,
                "finished_s": self.elapsed_s,
                "wall_clock_s": outcome.wall_clock_s,
            }
        )
        self._say(
            f"[{self.done}/{self.total}] {outcome.spec.label}: {status}{tag}{self._eta_suffix()}"
        )

    def retire(self, count: int) -> None:
        """Shrink the expected total by ``count`` runs that will never
        happen (a trial point converged early, so its remaining repeat
        budget is cancelled).  The ETA shrinks immediately; the pace
        estimate stays executed-only, so it remains cache-hit-blind.
        """
        if count > 0:
            self.total = max(self.done, self.total - count)

    # -- derived -----------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        if self._started is None:
            return 0.0
        return self.clock() - self._started

    def eta_s(self) -> float | None:
        """Wall-clock estimate for the remainder, from the pace so far.

        Pace is derived from *executed* runs only: cache hits and store
        resumes complete in microseconds, and folding them into the mean
        would forecast a near-zero ETA for a campaign that still has real
        runs ahead of it.  Executed runs are costed per fast-forward tier
        (warped/fluid/exact, see :func:`run_tier`) and blended by the
        observed mix -- a campaign whose early runs all warped no longer
        forecasts warp pace for the event-by-event runs still queued,
        because the exact tier's own mean enters the blend the moment one
        completes.  The per-run cost model also keeps the estimate
        honest under parallel workers (recorded run cost is divided by
        the observed concurrency) and blind to reporter overhead between
        runs.  Falls back to elapsed-over-executed when the records
        carry no wall-clock telemetry.  Returns ``None`` when there is
        no basis for an estimate -- empty or fully-done grids (including
        the degenerate zero- and single-run grids) and campaigns that
        have only served hits so far.
        """
        if self._started is None or self.executed == 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return None
        runs = sum(count for count, _ in self.tier_costs.values())
        cost = sum(spent for _, spent in self.tier_costs.values())
        if runs == 0 or cost <= 0.0:
            return self.elapsed_s / self.executed * remaining
        blended = cost / runs
        elapsed = self.elapsed_s
        concurrency = max(1.0, cost / elapsed) if elapsed > 0 else 1.0
        return remaining * blended / concurrency

    def _eta_suffix(self) -> str:
        eta = self.eta_s()
        return f" (ETA {eta:.0f}s)" if eta is not None and eta >= 1.0 else ""

    def summary(self) -> str:
        """One-paragraph campaign telemetry, printed at the end."""
        parts = [
            f"{self.done}/{self.total} runs",
            f"{self.executed} executed",
            f"{self.cache_hits} cache hits",
        ]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.inapplicable:
            parts.append(f"{self.inapplicable} n/a")
        parts.append(f"{self.failures} failed")
        parts.append(f"{self.events} sim events")
        parts.append(f"{self.elapsed_s:.1f}s elapsed")
        for tier in ("warped", "fluid", "exact"):
            bucket = self.tier_costs.get(tier)
            if bucket and bucket[1] > 0.0:
                parts.append(f"{tier} pace {bucket[1] / bucket[0]:.3f}s/run x{bucket[0]}")
        return "campaign summary: " + ", ".join(parts)

    def _say(self, message: str) -> None:
        if self.emit is not None:
            self.emit(message)
