"""p2v (physical-to-virtual) scenario -- Fig. 2b / Fig. 3b.

MoonGen on node 1 sends over the wire into the SUT, which forwards into
a guest through its virtual interface; the guest monitor (FloWatcher for
vhost-user switches, pkt-gen for VALE) counts throughput.  For the
bidirectional test a guest generator transmits back through the SUT and
out of the physical port, where MoonGen's RX thread counts.

VALE's bidirectional quirk is reproduced: two pkt-gen instances cannot
share a ptnet port, so they attach through an in-VM VALE bridge that
"imposes an extra hop of packet forwarding" (Sec. 5.2) -- the measured
bidirectional numbers are therefore a lower bound, exactly as the paper
warns.
"""

from __future__ import annotations

from repro.nic.port import NicPort
from repro.scenarios.base import (
    Testbed,
    apply_flow_axis,
    connect_ports,
    flow_source_kwargs,
    make_guest_interface,
    make_hypervisor,
    new_testbed_parts,
    trial_axis,
    uses_ptnet,
)
from repro.traffic.flowatcher import FloWatcher
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate
from repro.traffic.pktgen import make_pktgen_rx, make_pktgen_tx
from repro.traffic.guest import GuestTrafficGen
from repro.vm.apps import GuestValeBridge


def build(
    switch_name: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    rate_pps: float | None = None,
    reversed_path: bool = False,
    probe_interval_ns: float | None = None,
    virtualization: str = "vm",
    seed: int = 1,
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
    trial: int = 0,
) -> Testbed:
    """Wire the p2v testbed.

    ``reversed_path`` builds the paper's VM->NIC unidirectional probe
    (used to expose VPP's vhost receive penalty, Sec. 5.2).
    """
    if reversed_path and bidirectional:
        raise ValueError("reversed_path is a unidirectional experiment")
    sim, machine, rngs, switch, sut_core = new_testbed_parts(switch_name, seed)

    gen0 = NicPort(sim, "gen-nic.p0")
    sut0 = NicPort(sim, "sut-nic.p0")
    connect_ports(gen0, sut0)

    hypervisor = make_hypervisor(switch_name, machine, sim, virtualization=virtualization)
    vm = hypervisor.spawn("vm1")
    vif = vm.plug(make_guest_interface(switch_name, machine, "vm1.eth0", virtualization=virtualization))

    phy = switch.attach_phy(sut0)
    virt = switch.attach_vif(vif)
    rate = rate_pps if rate_pps is not None else saturating_rate(frame_size)
    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="p2v")
    tb.vms.append(vm)
    tb.extras.update(gen_port=gen0, sut_port=sut0, vif=vif)
    apply_flow_axis(tb, flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix)
    perturb = trial_axis(tb, trial)
    perturb.salt_ports(gen0, sut0)

    ptnet = uses_ptnet(switch_name)
    forward = not reversed_path
    if forward:
        switch.add_path(phy, virt)
    if reversed_path or bidirectional:
        switch.add_path(virt, phy)
    switch.bind_core(sut_core)

    if forward:
        # NIC -> VM direction: MoonGen TX on node 1, monitor in the guest.
        tx = MoonGenTx(
            sim, gen0, rate, frame_size, probe_interval_ns=probe_interval_ns,
            **flow_source_kwargs(tb, "tx0"),
        )
        tx.start(perturb.phase_ns())
        tb.extras["tx"] = tx

    needs_guest_tx = reversed_path or bidirectional
    if ptnet:
        if needs_guest_tx:
            # pkt-gen pair multiplexed onto the ptnet port via a VALE bridge.
            bridge = GuestValeBridge(sim, vif)
            vm.run(bridge, vcpu=1)
            if forward:
                monitor = make_pktgen_rx(sim, None, frame_size, from_ring=bridge.bridge_to_monitor)
                vm.run(monitor, vcpu=2)
                tb.meters.append(monitor.meter)
                tb.extras["monitor"] = monitor
            guest_tx = make_pktgen_tx(
                sim, vif, rate, frame_size, via_ring=bridge.gen_to_bridge,
                **flow_source_kwargs(tb, "guest_tx"),
            )
            guest_tx.start(perturb.phase_ns())
            tb.extras["bridge"] = bridge
        else:
            monitor = make_pktgen_rx(sim, vif, frame_size)
            vm.run(monitor, vcpu=1)
            tb.meters.append(monitor.meter)
            tb.extras["monitor"] = monitor
    else:
        if forward:
            monitor = FloWatcher(sim, vif, frame_size)
            vm.run(monitor, vcpu=1)
            tb.meters.append(monitor.meter)
            # Monitors opt in to per-flow telemetry through the extras
            # walk in wire_flowstats.
            tb.extras["monitor"] = monitor
        if needs_guest_tx:
            # MoonGen inside the guest; its virtio vNIC tops out at 10 Gbps.
            guest_tx = GuestTrafficGen(
                sim, vif, min(rate, saturating_rate(frame_size)), frame_size,
                **flow_source_kwargs(tb, "guest_tx"),
            )
            guest_tx.start(perturb.phase_ns())

    if needs_guest_tx:
        rx0 = MoonGenRx(sim, gen0, frame_size)
        tb.meters.append(rx0.meter)
        tb.extras["rx_host"] = rx0
        tb.extras["guest_tx"] = guest_tx
    return tb
