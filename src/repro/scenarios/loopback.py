"""loopback scenario -- Fig. 2d / Fig. 3d: a full NFV service chain.

MoonGen injects on one physical port; the SUT steers each packet through
a chain of 1-5 VNF VMs and out of the other physical port back to
MoonGen.  Every VM runs the DPDK ``l2fwd`` sample app cross-connecting
its two virtio interfaces (or, for VALE, an in-guest VALE instance
cross-connecting two ptnet ports -- "we need N+1 VALE instances for an
N-VNF service chain").

For an N-VNF chain the switch core services N+1 forwarding hops per
direction -- the linear cost growth that drives Fig. 5/6, with VALE's
cheap ptnet hops overtaking BESS beyond one VNF and Snabb collapsing at
four.
"""

from __future__ import annotations

from repro.nic.port import NicPort
from repro.scenarios.base import (
    Testbed,
    apply_flow_axis,
    connect_ports,
    flow_source_kwargs,
    make_guest_interface,
    make_hypervisor,
    new_testbed_parts,
    trial_axis,
    uses_ptnet,
)
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate
from repro.vm.apps import GuestL2Fwd, GuestValeXConnect

MAX_CHAIN_LENGTH = 5


def build(
    switch_name: str,
    n_vnfs: int = 1,
    frame_size: int = 64,
    bidirectional: bool = False,
    rate_pps: float | None = None,
    probe_interval_ns: float | None = None,
    virtualization: str = "vm",
    seed: int = 1,
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
    trial: int = 0,
) -> Testbed:
    """Wire the loopback testbed with an ``n_vnfs``-VM service chain.

    Raises :class:`~repro.vm.machine.QemuCompatibilityError` when the
    switch cannot host the requested chain (BESS beyond 3 VMs).
    """
    if not 1 <= n_vnfs <= MAX_CHAIN_LENGTH:
        raise ValueError(f"chain length must be in [1, {MAX_CHAIN_LENGTH}]")
    sim, machine, rngs, switch, sut_core = new_testbed_parts(switch_name, seed)

    gen0 = NicPort(sim, "gen-nic.p0")
    gen1 = NicPort(sim, "gen-nic.p1")
    sut0 = NicPort(sim, "sut-nic.p0")
    sut1 = NicPort(sim, "sut-nic.p1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)

    hypervisor = make_hypervisor(switch_name, machine, sim, virtualization=virtualization)
    ptnet = uses_ptnet(switch_name)

    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario=f"loopback-{n_vnfs}")
    phy_in = switch.attach_phy(sut0)
    phy_out = switch.attach_phy(sut1)

    # Build VMs, each with an upstream (a) and downstream (b) interface.
    hops_in = []  # switch attachments, chain order
    hops_out = []
    for i in range(n_vnfs):
        vm = hypervisor.spawn(f"vm{i + 1}")
        vif_a = vm.plug(make_guest_interface(switch_name, machine, f"vm{i + 1}.eth0", virtualization=virtualization))
        vif_b = vm.plug(make_guest_interface(switch_name, machine, f"vm{i + 1}.eth1", virtualization=virtualization))
        if ptnet:
            vnf = GuestValeXConnect(sim, vif_a, vif_b)
        else:
            vnf = GuestL2Fwd(sim, vif_a, vif_b)
        vm.run(vnf, vcpu=0)
        if bidirectional and not ptnet:
            # l2fwd's single lcore also serves the reverse direction.
            vm.run(GuestL2Fwd(sim, vif_b, vif_a), vcpu=0)
        tb.vms.append(vm)
        tb.extras[f"vnf{i + 1}"] = vnf
        hops_in.append(switch.attach_vif(vif_a))
        hops_out.append(switch.attach_vif(vif_b))

    # Forward chain: NIC0 -> vm1 -> vm2 -> ... -> vmN -> NIC1.  The guest
    # app carries eth0 -> eth1 inside each VM; the switch does the hops
    # between them.
    switch.add_path(phy_in, hops_in[0])
    for i in range(n_vnfs - 1):
        switch.add_path(hops_out[i], hops_in[i + 1])
    switch.add_path(hops_out[-1], phy_out)
    if bidirectional:
        # Reverse chain: NIC1 -> vmN -> ... -> vm1 -> NIC0.
        switch.add_path(phy_out, hops_out[-1])
        for i in range(n_vnfs - 1, 0, -1):
            switch.add_path(hops_in[i], hops_out[i - 1])
        switch.add_path(hops_in[0], phy_in)
    switch.bind_core(sut_core)

    rate = rate_pps if rate_pps is not None else saturating_rate(frame_size)
    apply_flow_axis(tb, flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix)
    perturb = trial_axis(tb, trial)
    perturb.salt_ports(gen0, gen1, sut0, sut1)
    tx0 = MoonGenTx(
        sim, gen0, rate, frame_size, probe_interval_ns=probe_interval_ns,
        **flow_source_kwargs(tb, "tx0"),
    )
    rx1 = MoonGenRx(sim, gen1, frame_size)
    tx0.start(perturb.phase_ns())
    tb.meters.append(rx1.meter)
    tb.latency_meters.append(rx1.meter)
    tb.extras.update(gen_ports=(gen0, gen1), sut_ports=(sut0, sut1), tx=[tx0], rx=[rx1])

    if bidirectional:
        tx1 = MoonGenTx(
            sim, gen1, rate, frame_size, probe_interval_ns=probe_interval_ns,
            **flow_source_kwargs(tb, "tx1"),
        )
        rx0 = MoonGenRx(sim, gen0, frame_size)
        tx1.start(perturb.phase_ns())
        tb.meters.append(rx0.meter)
        tb.latency_meters.append(rx0.meter)
        tb.extras["tx"].append(tx1)
        tb.extras["rx"].append(rx0)
    return tb
