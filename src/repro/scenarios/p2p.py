"""p2p (physical-to-physical) scenario -- Fig. 2a / Fig. 3a.

MoonGen on NUMA node 1 saturates one (or both) 10 Gbps wires; the SUT on
node 0 forwards between its two physical ports; throughput is counted at
MoonGen's receive port(s), RTT from hardware-timestamped PTP probes.
"""

from __future__ import annotations

from repro.nic.port import NicPort
from repro.scenarios.base import (
    Testbed,
    apply_flow_axis,
    connect_ports,
    flow_source_kwargs,
    new_testbed_parts,
    trial_axis,
)
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate


def build(
    switch_name: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    rate_pps: float | None = None,
    probe_interval_ns: float | None = None,
    seed: int = 1,
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
    trial: int = 0,
) -> Testbed:
    """Wire the p2p testbed for one switch.

    ``rate_pps`` is the offered load per direction; None means saturating
    input (the throughput methodology).  ``probe_interval_ns`` enables
    PTP latency probes (the latency methodology).  ``trial`` selects a
    soundness-trial replica (``repro.measure.soundness``): same workload,
    perturbed traffic phase / hiccup hash / churn clock.
    """
    sim, machine, rngs, switch, sut_core = new_testbed_parts(switch_name, seed)

    # NUMA node 1: the generator NIC; node 0: the SUT NIC (Fig. 3a).
    gen0 = NicPort(sim, "gen-nic.p0")
    gen1 = NicPort(sim, "gen-nic.p1")
    sut0 = NicPort(sim, "sut-nic.p0")
    sut1 = NicPort(sim, "sut-nic.p1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)

    att0 = switch.attach_phy(sut0)
    att1 = switch.attach_phy(sut1)
    switch.add_path(att0, att1)
    if bidirectional:
        switch.add_path(att1, att0)
    switch.bind_core(sut_core)

    rate = rate_pps if rate_pps is not None else saturating_rate(frame_size)
    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="p2p")
    apply_flow_axis(tb, flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix)
    perturb = trial_axis(tb, trial)
    perturb.salt_ports(gen0, gen1, sut0, sut1)

    tx0 = MoonGenTx(
        sim, gen0, rate, frame_size, probe_interval_ns=probe_interval_ns,
        **flow_source_kwargs(tb, "tx0"),
    )
    rx1 = MoonGenRx(sim, gen1, frame_size)
    tx0.start(perturb.phase_ns())
    tb.meters.append(rx1.meter)
    tb.latency_meters.append(rx1.meter)
    tb.extras.update(gen_ports=(gen0, gen1), sut_ports=(sut0, sut1), tx=[tx0], rx=[rx1])

    if bidirectional:
        tx1 = MoonGenTx(
            sim, gen1, rate, frame_size, probe_interval_ns=probe_interval_ns,
            **flow_source_kwargs(tb, "tx1"),
        )
        rx0 = MoonGenRx(sim, gen0, frame_size)
        tx1.start(perturb.phase_ns())
        tb.meters.append(rx0.meter)
        tb.latency_meters.append(rx0.meter)
        tb.extras["tx"].append(tx1)
        tb.extras["rx"].append(rx0)
    return tb
