"""v2v (virtual-to-virtual) scenario -- Fig. 2c / Fig. 3c.

Everything runs on NUMA node 0; no physical NIC is involved, so "the
traffic forwarding rate is only limited by the local memory speed"
(Sec. 5.1).  A generator in VM1 injects towards the SUT, which forwards
into VM2's monitor.  Bidirectionally, both VMs generate and monitor.

Latency mode reproduces Table 4's setup: the probe stream runs at 1 Mpps
(672 Mbps), VM2 bounces packets back with DPDK l2fwd over a second pair
of interfaces, and MoonGen stamps in *software* (virtual interfaces have
no PTP hardware); VALE instead uses standard tools (ping) over ptnet,
with no software-stamping overhead.
"""

from __future__ import annotations

from repro.scenarios.base import (
    Testbed,
    apply_flow_axis,
    flow_source_kwargs,
    make_guest_interface,
    make_hypervisor,
    new_testbed_parts,
    trial_axis,
    uses_ptnet,
)
from repro.nic.timestamp import SoftwareTimestamper
from repro.traffic.flowatcher import FloWatcher
from repro.traffic.moongen import saturating_rate
from repro.traffic.pktgen import PKTGEN_MAX_RATE_PPS, make_pktgen_rx, make_pktgen_tx
from repro.traffic.guest import GuestMonitor, GuestTrafficGen
from repro.vm.apps import GuestL2Fwd, GuestValeBridge, GuestValeXConnect


def build(
    switch_name: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    rate_pps: float | None = None,
    virtualization: str = "vm",
    seed: int = 1,
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
    trial: int = 0,
) -> Testbed:
    """Wire the v2v throughput testbed."""
    sim, machine, rngs, switch, sut_core = new_testbed_parts(switch_name, seed)
    hypervisor = make_hypervisor(switch_name, machine, sim, virtualization=virtualization)
    vm1 = hypervisor.spawn("vm1")
    vm2 = hypervisor.spawn("vm2")
    vif1 = vm1.plug(make_guest_interface(switch_name, machine, "vm1.eth0", virtualization=virtualization))
    vif2 = vm2.plug(make_guest_interface(switch_name, machine, "vm2.eth0", virtualization=virtualization))

    att1 = switch.attach_vif(vif1)
    att2 = switch.attach_vif(vif2)
    switch.add_path(att1, att2)
    if bidirectional:
        switch.add_path(att2, att1)
    switch.bind_core(sut_core)

    ptnet = uses_ptnet(switch_name)
    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="v2v")
    tb.vms.extend((vm1, vm2))
    tb.extras.update(vifs=(vif1, vif2))
    apply_flow_axis(tb, flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix)
    # No physical NIC in v2v: the trial axis perturbs phase and churn only.
    perturb = trial_axis(tb, trial)

    if rate_pps is not None:
        rate = rate_pps
    elif ptnet:
        # pkt-gen over ptnet is not a 10G vNIC; offer its full rate so the
        # memory-bound ceiling (Sec. 5.2) is observable.
        rate = PKTGEN_MAX_RATE_PPS
    else:
        rate = saturating_rate(frame_size)
    directions = [(vm1, vif1, vm2, vif2)]
    if bidirectional:
        directions.append((vm2, vif2, vm1, vif1))

    for idx, (src_vm, src_vif, dst_vm, dst_vif) in enumerate(directions):
        if ptnet:
            if bidirectional:
                # pkt-gen TX and RX share the ptnet port via a VALE bridge
                # in each VM (the Sec. 5.2 workaround).
                bridge = tb.extras.setdefault(f"bridge{src_vm.name}", GuestValeBridge(sim, src_vif))
                if f"bridge{src_vm.name}_started" not in tb.extras:
                    src_vm.run(bridge, vcpu=1)
                    tb.extras[f"bridge{src_vm.name}_started"] = True
                gen = make_pktgen_tx(
                    sim, src_vif, rate, frame_size, via_ring=bridge.gen_to_bridge,
                    **flow_source_kwargs(tb, f"gen{idx}"),
                )
                dst_bridge = tb.extras.setdefault(f"bridge{dst_vm.name}", GuestValeBridge(sim, dst_vif))
                if f"bridge{dst_vm.name}_started" not in tb.extras:
                    dst_vm.run(dst_bridge, vcpu=1)
                    tb.extras[f"bridge{dst_vm.name}_started"] = True
                monitor = make_pktgen_rx(sim, None, frame_size, from_ring=dst_bridge.bridge_to_monitor)
            else:
                gen = make_pktgen_tx(
                    sim, src_vif, rate, frame_size, **flow_source_kwargs(tb, f"gen{idx}")
                )
                monitor = make_pktgen_rx(sim, dst_vif, frame_size)
        else:
            # MoonGen in the source guest (virtio vNIC: 10 Gbps ceiling),
            # FloWatcher in the destination guest.
            gen = GuestTrafficGen(
                sim, src_vif, min(rate, saturating_rate(frame_size)), frame_size,
                **flow_source_kwargs(tb, f"gen{idx}"),
            )
            monitor = FloWatcher(sim, dst_vif, frame_size)
        gen.start(perturb.phase_ns())
        dst_vm.run(monitor, vcpu=2 + idx)
        tb.meters.append(monitor.meter)
        tb.extras[f"gen{idx}"] = gen
        # Monitors opt in to per-flow telemetry (repro.obs.flowstats)
        # through the extras walk in wire_flowstats.
        tb.extras[f"monitor{idx}"] = monitor
    return tb


#: Table 4 probe rate: "Packets are transmitted at 672 Mbps (=1 Mpps)".
V2V_LATENCY_RATE_PPS = 1_000_000.0

#: ICMP stack traversal + syscall wake-up inside a guest (each direction of
#: the ping used to measure VALE's v2v RTT, Sec. 5.3).
PING_STACK_NS = 6_500.0


def build_latency(
    switch_name: str,
    frame_size: int = 64,
    probe_interval_ns: float = 20_000.0,
    seed: int = 1,
    trial: int = 0,
) -> Testbed:
    """Wire the Table 4 v2v latency testbed (VM1 gen+rx, VM2 l2fwd bounce)."""
    sim, machine, rngs, switch, sut_core = new_testbed_parts(switch_name, seed)
    hypervisor = make_hypervisor(switch_name, machine, sim)
    vm1 = hypervisor.spawn("vm1")
    vm2 = hypervisor.spawn("vm2")
    # Two interfaces per VM (Sec. 5.3 v2v latency setup).
    vif1a = vm1.plug(make_guest_interface(switch_name, machine, "vm1.eth0"))
    vif1b = vm1.plug(make_guest_interface(switch_name, machine, "vm1.eth1"))
    vif2a = vm2.plug(make_guest_interface(switch_name, machine, "vm2.eth0"))
    vif2b = vm2.plug(make_guest_interface(switch_name, machine, "vm2.eth1"))

    a1 = switch.attach_vif(vif1a)
    b1 = switch.attach_vif(vif1b)
    a2 = switch.attach_vif(vif2a)
    b2 = switch.attach_vif(vif2b)
    switch.add_path(a1, a2)  # VM1 -> VM2
    switch.add_path(b2, b1)  # VM2 -> VM1 (the bounce)
    switch.bind_core(sut_core)

    ptnet = uses_ptnet(switch_name)
    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="v2v-latency")
    tb.vms.extend((vm1, vm2))
    perturb = trial_axis(tb, trial)

    if ptnet:
        # VALE: "standard tools can be used" -- ping over the guest kernel
        # stack and ptnet; the VNF in VM2 is a VALE cross-connect.  ping
        # pays ICMP stack + syscall time at each end instead of MoonGen's
        # software-stamping overhead.
        def stamp_tx(packet, now_ns, _stack_ns=PING_STACK_NS):
            packet.tx_timestamp = now_ns - _stack_ns

        def stamp_rx(packet, now_ns, _stack_ns=PING_STACK_NS):
            packet.rx_timestamp = now_ns + _stack_ns

        bounce = GuestValeXConnect(sim, vif2a, vif2b)
    else:
        stamper = SoftwareTimestamper(rngs.stream("v2v.swts"))
        stamp_tx = stamper.stamp_tx
        stamp_rx = stamper.stamp_rx
        bounce = GuestL2Fwd(sim, vif2a, vif2b)
    vm2.run(bounce, vcpu=0)

    gen = GuestTrafficGen(
        sim,
        vif1a,
        V2V_LATENCY_RATE_PPS,
        frame_size,
        probe_interval_ns=probe_interval_ns,
        stamp_probe_tx=stamp_tx,
    )
    gen.start(perturb.phase_ns())
    monitor = GuestMonitor(sim, vif1b, frame_size, stamp_probe_rx=stamp_rx)
    vm1.run(monitor, vcpu=1)
    tb.meters.append(monitor.meter)
    tb.latency_meters.append(monitor.meter)
    tb.extras.update(gen=gen, bounce=bounce, monitor=monitor)
    return tb
