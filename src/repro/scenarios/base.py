"""Scenario plumbing shared by p2p / p2v / v2v / loopback builders.

A *scenario builder* assembles the full testbed of Fig. 3 for one switch:
the dual-NUMA machine, NICs and back-to-back wires, the switch pinned to
one core on node 0, VMs with the right virtual-interface backend and
guest tools (pkt-gen for VALE, MoonGen/FloWatcher for the rest), and the
traffic generators.  It returns a :class:`Testbed` the measurement runner
drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.core.stats import RateMeter
from repro.cpu.cores import Core
from repro.cpu.numa import Machine
from repro.nic.port import NicPort
from repro.switches.base import SoftwareSwitch
from repro.switches.registry import create_switch, params_for
from repro.switches.taxonomy import TAXONOMY
from repro.vif.ptnet import make_ptnet_interface
from repro.vif.vhost_user import make_vhost_user_interface
from repro.vif.virtio import VirtualInterface
from repro.vm.machine import Hypervisor, VirtualMachine


@dataclass
class Testbed:
    """A fully wired scenario, ready for the measurement runner."""

    __test__ = False  # not a pytest test class despite the Test* name

    sim: Simulator
    machine: Machine
    rngs: RngRegistry
    switch: SoftwareSwitch
    sut_core: Core
    frame_size: int
    scenario: str
    #: meters counting delivered traffic, one per traffic direction.
    meters: list[RateMeter] = field(default_factory=list)
    #: meters that additionally collect probe RTTs.
    latency_meters: list[RateMeter] = field(default_factory=list)
    vms: list[VirtualMachine] = field(default_factory=list)
    #: scenario-specific objects (NIC ports, guest apps...) for tests.
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def aggregate_gbps_parts(self) -> list[float]:
        return [meter.gbps() for meter in self.meters]


def new_testbed_parts(switch_name: str, seed: int) -> tuple[Simulator, Machine, RngRegistry, SoftwareSwitch, Core]:
    """Simulator + machine + switch pinned to the node-0 SUT core."""
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(seed)
    switch = create_switch(switch_name, sim, rngs=rngs, bus=machine.node0.bus)
    sut_core = machine.node0.add_core("sut")
    return sim, machine, rngs, switch, sut_core


def uses_ptnet(switch_name: str) -> bool:
    """Whether this switch connects VMs via ptnet (VALE) or vhost-user.

    Built-ins are answered from the Table 1 taxonomy; custom registered
    switches from their cost contract (zero host copies == ptnet-style).
    """
    row = TAXONOMY.get(switch_name)
    if row is not None:
        return row.virtual_interface == "ptnet"
    return params_for(switch_name).vif_costs.host_copy_factor == 0.0


def make_guest_interface(
    switch_name: str,
    machine: Machine,
    name: str,
    virtualization: str = "vm",
) -> VirtualInterface:
    """Create the right backend of guest interface for a switch.

    ``virtualization`` is "vm" (the paper's QEMU guests) or "container"
    (the paper's future work): containers keep the host-side vhost costs
    but lighten the guest-side driver path and the notification latency.
    """
    if virtualization not in ("vm", "container"):
        raise ValueError(f"unknown virtualization {virtualization!r}")
    params = params_for(switch_name)
    bus = machine.node0.bus
    if uses_ptnet(switch_name):
        return make_ptnet_interface(name, slots=params.vring_slots, bus=bus)
    costs = params.vif_costs
    notify_ns = None
    if virtualization == "container":
        from dataclasses import replace

        from repro.vm.container import CONTAINER_GUEST_COST_FACTOR, CONTAINER_NOTIFY_NS

        costs = replace(
            costs,
            guest_tx=costs.guest_tx.scaled(CONTAINER_GUEST_COST_FACTOR),
            guest_rx=costs.guest_rx.scaled(CONTAINER_GUEST_COST_FACTOR),
        )
        notify_ns = CONTAINER_NOTIFY_NS
    if notify_ns is None:
        return make_vhost_user_interface(
            name, costs=costs, slots=params.vring_slots, bus=bus
        )
    return make_vhost_user_interface(
        name, costs=costs, slots=params.vring_slots, bus=bus, notify_ns=notify_ns
    )


def make_hypervisor(
    switch_name: str,
    machine: Machine,
    sim: Simulator,
    virtualization: str = "vm",
):
    """Guest runtime: QEMU hypervisor (with the switch's compatibility
    limit) for VMs, or a container runtime (no QEMU, no limit)."""
    if virtualization == "container":
        from repro.vm.container import ContainerRuntime

        return ContainerRuntime(sim, machine.node0)
    params = params_for(switch_name)
    return Hypervisor(sim, machine.node0, max_vms=params.max_vms)


def connect_ports(a: NicPort, b: NicPort) -> None:
    """Back-to-back cable between a generator port and a SUT port."""
    a.connect(b)


def apply_flow_axis(
    tb: Testbed,
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
) -> None:
    """Resolve the flow axis for a testbed under construction.

    A non-trivial population lands in ``tb.extras["flow_population"]``
    (the obs layer keys its cache gauges off it) and is announced to the
    switch so capacity-gated models (t4p4s) can arm themselves.  The
    trivial single-flow case leaves the testbed exactly as it was.
    """
    from repro.flows import resolve_flow_population

    population = resolve_flow_population(
        flows=flows, flow_dist=flow_dist, churn=churn, size_mix=size_mix
    )
    if population is None:
        return
    tb.extras["flow_population"] = population
    tb.switch.on_flow_population(population)


#: Span of the per-trial traffic start-phase offset, in ns.  Small
#: enough that warmup absorbs it entirely (warmup windows are hundreds
#: of microseconds), large enough to decorrelate batch-boundary
#: alignment between trials.
TRIAL_PHASE_SPAN_NS = 2_048

#: Span of the per-trial churn-clock offset: up to one simulated second,
#: so a trial replica sees a genuinely shifted active-flow window.
TRIAL_CHURN_SPAN_NS = 1_000_000_000


class TrialPerturbation:
    """Per-trial seed perturbations for one testbed (``repro.measure.soundness``).

    A trial replica must measure the *same workload* under different
    measurement-irrelevant phases, so all perturbations draw from
    dedicated ``trial.<k>.*`` RNG streams: traffic start phase
    (:meth:`phase_ns`), driver-hiccup hash salt (:meth:`salt_ports`) and
    churn-clock offset (:meth:`shift_churn`).  Trial 0 is the identity
    -- every method returns its neutral element *without creating any
    RNG stream*, so the base run's draws (and hence its results) are
    bit-identical to a build that never heard of trials.
    """

    def __init__(self, tb: Testbed, trial: int) -> None:
        if trial < 0:
            raise ValueError(f"trial must be >= 0, got {trial}")
        self.tb = tb
        self.trial = trial

    def _stream(self, name: str):
        return self.tb.rngs.stream(f"trial.{self.trial}.{name}")

    def phase_ns(self) -> float:
        """Start-time offset for the next traffic source (0.0 at trial 0)."""
        if self.trial == 0:
            return 0.0
        return float(self._stream("phase").integers(0, TRIAL_PHASE_SPAN_NS))

    def salt_ports(self, *ports) -> None:
        """Salt each port's driver-hiccup hash (no-op at trial 0)."""
        if self.trial == 0:
            return
        rng = self._stream("hiccup")
        for port in ports:
            port.set_hiccup_salt(int(rng.integers(1, 1 << 62)))

    def shift_churn(self) -> None:
        """Offset the flow population's churn clock (no-op at trial 0).

        Must run after :func:`apply_flow_axis` and before any traffic
        source is created, so :func:`flow_source_kwargs` hands out the
        shifted population.
        """
        if self.trial == 0:
            return
        population = self.tb.extras.get("flow_population")
        if population is None or not population.churn_fps:
            return
        from dataclasses import replace

        shifted = replace(
            population,
            churn_offset_ns=float(self._stream("churn").integers(0, TRIAL_CHURN_SPAN_NS)),
        )
        self.tb.extras["flow_population"] = shifted
        self.tb.switch.on_flow_population(shifted)


def trial_axis(tb: Testbed, trial: int) -> TrialPerturbation:
    """Resolve the trial axis for a testbed under construction.

    Applies the churn shift immediately (it must precede traffic-source
    creation) and returns the perturbation so the builder can salt its
    NIC ports and phase-shift its sources.  ``trial=0`` leaves the
    testbed exactly as it was.
    """
    perturbation = TrialPerturbation(tb, trial)
    perturbation.shift_churn()
    return perturbation


def flow_source_kwargs(tb: Testbed, source_name: str) -> dict:
    """Per-source kwargs for the testbed's flow population, if any.

    Each traffic source samples from its own named per-run RNG stream
    (``flows.<source>``), the same discipline the fault planner uses, so
    multi-flow runs are deterministic and serial-vs-parallel identical.
    """
    population = tb.extras.get("flow_population")
    if population is None:
        return {}
    return {
        "flow_population": population,
        "rng": tb.rngs.stream(f"flows.{source_name}"),
    }
