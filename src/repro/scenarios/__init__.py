"""The four test scenarios of Sec. 4: p2p, p2v, v2v, loopback."""

from repro.scenarios import loopback, p2p, p2v, v2v
from repro.scenarios.base import Testbed, make_guest_interface, new_testbed_parts, uses_ptnet

BUILDERS = {
    "p2p": p2p.build,
    "p2v": p2v.build,
    "v2v": v2v.build,
    "loopback": loopback.build,
}

__all__ = [
    "BUILDERS",
    "Testbed",
    "loopback",
    "make_guest_interface",
    "new_testbed_parts",
    "p2p",
    "p2v",
    "uses_ptnet",
    "v2v",
]
