"""CPU substrate: cores, cycle cost model, NUMA topology."""

from repro.cpu.cores import DEFAULT_FREQ_HZ, Core, Task
from repro.cpu.costmodel import ZERO_COST, Cost
from repro.cpu.numa import DEFAULT_MEM_BW_BYTES_PER_S, Machine, MemoryBus, NumaNode

__all__ = [
    "Core",
    "Cost",
    "DEFAULT_FREQ_HZ",
    "DEFAULT_MEM_BW_BYTES_PER_S",
    "Machine",
    "MemoryBus",
    "NumaNode",
    "Task",
    "ZERO_COST",
]
