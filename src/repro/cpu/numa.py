"""NUMA topology and memory bandwidth.

The paper's testbed has two NUMA nodes, each with its own dual-port NIC;
the system under test lives on node 0 while traffic generation lives on
node 1, and the v2v scenario is explicitly "only limited by the memory
bandwidth" (Sec. 5.2).  We model each node's memory controller as a shared
bandwidth resource that packet copies reserve time on; when aggregate copy
demand exceeds the controller, copies stretch and throughput caps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cpu.cores import DEFAULT_FREQ_HZ, Core

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: Effective per-socket copy bandwidth (bytes/s).  A Haswell-EP socket
#: sustains roughly 40-60 GB/s streaming; packet-sized memcpys with
#: descriptor walks achieve less.  30 GB/s reproduces the paper's v2v
#: ceiling (VALE ~55 Gbps unidirectional at 1024 B means ~7 GB/s of
#: payload moved twice, well below saturation; contention only binds for
#: bidirectional multi-copy workloads).
DEFAULT_MEM_BW_BYTES_PER_S = 30e9


class MemoryBus:
    """A NUMA node's memory controller as a serial bandwidth resource.

    Copies *reserve* bus time: a copy of ``n`` bytes issued at ``now``
    completes at ``max(now, busy_until) + n/bandwidth``.  The caller (a
    core paying memcpy cycles) takes the later of its own cycle cost and
    the bus completion, so an uncontended bus never slows anyone down but
    concurrent copiers serialise.
    """

    def __init__(self, bandwidth_bytes_per_s: float = DEFAULT_MEM_BW_BYTES_PER_S) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")
        self.bandwidth = bandwidth_bytes_per_s
        self._busy_until_ns = 0.0
        self.bytes_copied = 0
        self._bw_base: float | None = None

    def reserve(self, n_bytes: int, now_ns: float) -> float:
        """Reserve bus time for ``n_bytes``; return extra delay in ns.

        The returned value is the delay *beyond* ``now_ns`` until the copy
        completes (0 when the bus is idle and the copy is instantaneous at
        this granularity).
        """
        if n_bytes <= 0:
            return 0.0
        start = max(now_ns, self._busy_until_ns)
        duration = n_bytes * 1e9 / self.bandwidth
        self._busy_until_ns = start + duration
        self.bytes_copied += n_bytes
        return self._busy_until_ns - now_ns

    # -- fault hooks (repro.faults) ----------------------------------------

    def throttle(self, factor: float) -> None:
        """Contention burst: a co-runner claims ``1 - factor`` of the bus,
        so packet copies see only ``factor`` of the nominal bandwidth."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"throttle factor must be in (0, 1], got {factor}")
        if self._bw_base is not None:
            return
        self._bw_base = self.bandwidth
        self.bandwidth = self.bandwidth * factor

    def unthrottle(self) -> None:
        """Co-runner gone: restore the nominal bandwidth."""
        if self._bw_base is None:
            return
        self.bandwidth = self._bw_base
        self._bw_base = None


class NumaNode:
    """A socket: cores plus a local memory controller."""

    def __init__(self, sim: "Simulator", index: int, bus: MemoryBus | None = None) -> None:
        self.sim = sim
        self.index = index
        self.bus = bus if bus is not None else MemoryBus()
        self.cores: list[Core] = []

    def add_core(self, name: str, **kwargs) -> Core:
        """Allocate (and register) a core on this node."""
        core = Core(self.sim, f"numa{self.index}/{name}", **kwargs)
        self.cores.append(core)
        return core


class Machine:
    """The dual-socket testbed server (Sec. 5.1).

    Node 0 hosts the switch under test (and the VMs); node 1 hosts the
    traffic generator.  NICs attach one per node in the scenario builders.
    """

    def __init__(self, sim: "Simulator", freq_hz: float = DEFAULT_FREQ_HZ, nodes: int = 2) -> None:
        if nodes < 1:
            raise ValueError("a machine needs at least one NUMA node")
        self.sim = sim
        self.freq_hz = freq_hz
        self.nodes = [NumaNode(sim, i) for i in range(nodes)]

    @property
    def node0(self) -> NumaNode:
        return self.nodes[0]

    @property
    def node1(self) -> NumaNode:
        if len(self.nodes) < 2:
            raise ValueError("machine has a single NUMA node")
        return self.nodes[1]
