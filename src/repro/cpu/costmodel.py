"""Cycle cost primitives.

Everything a data plane does is expressed as a :class:`Cost`: a fixed
per-batch component (function-call, ring-doorbell, virtio kick, graph-node
dispatch), a per-packet component (descriptor handling, header work,
table lookup) and a per-byte component (memcpy -- the currency vhost-user
pays and ptnet avoids).

These are the knobs calibrated against the paper's measurements; the
per-switch values live in :mod:`repro.switches.params` next to the
citations that justify them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Cost:
    """Cycle cost of processing a batch of packets."""

    per_batch: float = 0.0
    per_packet: float = 0.0
    per_byte: float = 0.0

    def cycles(self, n_packets: int, total_bytes: int = 0) -> float:
        """Total cycles to process ``n_packets`` totalling ``total_bytes``."""
        if n_packets <= 0:
            return 0.0
        return self.per_batch + self.per_packet * n_packets + self.per_byte * total_bytes

    def cycles_per_packet(self, frame_size: int, batch_size: int = 32) -> float:
        """Amortised per-packet cost at a steady batch size (analytical model)."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        return self.per_batch / batch_size + self.per_packet + self.per_byte * frame_size

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(
            per_batch=self.per_batch + other.per_batch,
            per_packet=self.per_packet + other.per_packet,
            per_byte=self.per_byte + other.per_byte,
        )

    def scaled(self, factor: float) -> "Cost":
        """A cost uniformly scaled by ``factor`` (ablation experiments)."""
        return Cost(
            per_batch=self.per_batch * factor,
            per_packet=self.per_packet * factor,
            per_byte=self.per_byte * factor,
        )


ZERO_COST = Cost()
